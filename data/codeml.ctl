* Branch-site positive selection test on the Fig. 1 example data.
* Run with: cargo run --release -p slim-cli --bin slimcodeml -- --ctl data/codeml.ctl
      seqfile = data/fig1.fasta
     treefile = data/fig1.nwk
      outfile = mlc            * accepted for compatibility, output on stdout
        model = 2              * branch models
      NSsites = 2              * -> branch-site model A
    CodonFreq = 2              * F3x4
         seed = 1
