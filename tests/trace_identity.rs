//! Tracing must never perturb numerics.
//!
//! The `slim-trace` layer makes the same promise as `slim-obs`:
//! turning the flight recorder on or off changes *no* computed value —
//! span begin/end capture happens strictly outside the arithmetic.
//! These tests pin that contract at two levels (the raw parallel
//! likelihood engine on every Table II dataset analog, and a whole H0
//! fit through the cached `slim+` backend, each bit-compared between a
//! trace-off and a trace-on run), and a property test checks that span
//! begin/end events keep strict stack discipline per thread under
//! random thread schedules.

use proptest::prelude::*;
use slimcodeml::bio::FreqModel;
use slimcodeml::core::{Analysis, AnalysisOptions, Backend, Hypothesis};
use slimcodeml::lik::{site_class_log_likelihoods, EngineConfig, LikelihoodProblem};
use slimcodeml::sim::{dataset, DatasetId};
use slimcodeml::trace::Phase;
use std::sync::Mutex;

/// All tests toggle the process-global trace flag and drain the shared
/// ring; serialize them so one test's toggling cannot blank another's
/// trace-on window.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Engine lnL with tracing enabled vs disabled on every Table II
/// analog: identical to the last bit, for the total and every
/// per-pattern and per-class value.
#[test]
fn engine_lnl_bits_are_unchanged_by_tracing() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for id in DatasetId::ALL {
        let d = dataset(id);
        let problem = LikelihoodProblem::new(
            &d.tree,
            &d.alignment,
            &slimcodeml::bio::GeneticCode::universal(),
            FreqModel::F3x4,
        )
        .expect("preset dataset is well-formed");
        let bl = d.tree.branch_lengths();
        let model = d.true_model;
        let config = EngineConfig::slim().with_threads(2);

        slimcodeml::trace::set_enabled(false);
        let off = site_class_log_likelihoods(&problem, &config, &model, &bl)
            .expect("trace-off evaluation");

        slimcodeml::trace::set_enabled(true);
        slimcodeml::trace::clear();
        let on = site_class_log_likelihoods(&problem, &config, &model, &bl)
            .expect("trace-on evaluation");
        slimcodeml::trace::set_enabled(false);
        slimcodeml::trace::clear();

        assert_eq!(
            off.lnl.to_bits(),
            on.lnl.to_bits(),
            "dataset {}: lnL with tracing on ({}) differs from off ({})",
            id.label(),
            on.lnl,
            off.lnl
        );
        for (p, (a, b)) in off.per_pattern.iter().zip(&on.per_pattern).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "dataset {}: per-pattern {p} differs with tracing on",
                id.label()
            );
        }
        for (c, (a, b)) in off.per_class.iter().zip(&on.per_class).enumerate() {
            for (p, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "dataset {}: class {c} pattern {p} differs with tracing on",
                    id.label()
                );
            }
        }
    }
}

/// A full H0 fit through the cached `slim+` backend: every fitted
/// quantity bit-identical with tracing on vs off, and the trace-on
/// pass actually recorded spans (the test would be vacuous against a
/// permanently-disabled recorder).
#[test]
fn fit_bits_are_unchanged_by_tracing_and_recorder_records() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let tree = slimcodeml::bio::parse_newick("((A:0.1,B:0.2)#1:0.05,C:0.3);").unwrap();
    let aln = slimcodeml::bio::CodonAlignment::from_fasta(
        ">A\nATGCCCAAATGGTTT\n>B\nATGCCAAAATGGTTC\n>C\nATGCCCAAATGGTTT\n",
    )
    .unwrap();
    let options = AnalysisOptions {
        backend: Backend::SlimPlus,
        max_iterations: 12,
        seed: 7,
        threads: Some(2),
        ..AnalysisOptions::default()
    };

    slimcodeml::trace::set_enabled(false);
    let off = Analysis::new(&tree, &aln, options.clone())
        .unwrap()
        .fit(Hypothesis::H0)
        .expect("trace-off fit");

    slimcodeml::trace::set_enabled(true);
    slimcodeml::trace::clear();
    let on = Analysis::new(&tree, &aln, options)
        .unwrap()
        .fit(Hypothesis::H0)
        .expect("trace-on fit");
    slimcodeml::trace::flush_thread();
    let (events, _dropped) = slimcodeml::trace::take_events();
    slimcodeml::trace::set_enabled(false);

    assert_eq!(off.lnl.to_bits(), on.lnl.to_bits(), "lnL changed");
    assert_eq!(off.iterations, on.iterations, "iteration count changed");
    for (label, a, b) in [
        ("kappa", off.model.kappa, on.model.kappa),
        ("omega0", off.model.omega0, on.model.omega0),
        ("p0", off.model.p0, on.model.p0),
        ("p1", off.model.p1, on.model.p1),
    ] {
        assert_eq!(a.to_bits(), b.to_bits(), "{label} changed with tracing on");
    }
    for (i, (a, b)) in off
        .branch_lengths
        .iter()
        .zip(&on.branch_lengths)
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "branch length {i} changed with tracing on"
        );
    }

    // Sanity: the instrumented layers really recorded during the
    // trace-on fit.
    let has = |name: &str| events.iter().any(|e| e.name == name);
    assert!(!events.is_empty(), "trace-on fit recorded no events");
    assert!(has("opt.fit"), "optimizer fit span missing");
    assert!(has("opt.iteration"), "optimizer iteration spans missing");
    assert!(has("lik.evaluate"), "likelihood evaluate spans missing");
}

/// Nesting depth names, indexed by depth; spans need `&'static str`.
const DEPTH_NAMES: [&str; 5] = ["prop.d0", "prop.d1", "prop.d2", "prop.d3", "prop.d4"];

/// Open `depth` nested spans and drop them in LIFO order.
fn nested_spans(depth: usize) {
    let _span = slimcodeml::trace::span(DEPTH_NAMES[depth], "prop");
    std::thread::yield_now();
    if depth > 0 {
        nested_spans(depth - 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Under an arbitrary thread schedule — N threads, each opening a
    /// random sequence of randomly-deep nested spans with yields in
    /// between — the recorder preserves strict per-thread stack
    /// discipline: every End matches the most recent unmatched Begin of
    /// the same name on its thread, per-thread timestamps never go
    /// backwards, and nothing is lost or duplicated.
    #[test]
    fn spans_nest_under_random_thread_schedules(
        schedules in proptest::collection::vec(
            proptest::collection::vec(1usize..5, 1..8),
            1..4,
        ),
    ) {
        let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        slimcodeml::trace::set_enabled(true);
        slimcodeml::trace::clear();

        std::thread::scope(|scope| {
            for schedule in &schedules {
                scope.spawn(move || {
                    for &depth in schedule {
                        nested_spans(depth);
                        std::thread::yield_now();
                    }
                    // Scoped threads must drain their local buffers
                    // before the scope unblocks (TLS destructors race
                    // the join otherwise).
                    slimcodeml::trace::flush_thread();
                });
            }
        });

        let (mut events, dropped) = slimcodeml::trace::take_events();
        slimcodeml::trace::set_enabled(false);
        prop_assert_eq!(dropped, 0, "ring dropped events mid-test");

        // Only this test's spans; a concurrent test in this binary
        // cannot interleave (TRACE_LOCK), but keep the filter anyway.
        events.retain(|e| e.cat == "prop");
        events.sort_by_key(|e| e.seq);

        // Each schedule item of depth d opens d+1 spans (d..=0).
        let expected: usize = schedules
            .iter()
            .flatten()
            .map(|&d| d + 1)
            .sum();
        let begins = events.iter().filter(|e| e.phase == Phase::Begin).count();
        let ends = events.iter().filter(|e| e.phase == Phase::End).count();
        prop_assert_eq!(begins, expected, "lost or duplicated Begin events");
        prop_assert_eq!(ends, expected, "lost or duplicated End events");

        // Per-thread stack discipline and monotonic timestamps.
        let tids: std::collections::BTreeSet<u64> =
            events.iter().map(|e| e.tid).collect();
        prop_assert_eq!(tids.len(), schedules.len(), "unexpected thread count");
        for tid in tids {
            let mut stack: Vec<&str> = Vec::new();
            let mut last_ts = 0u64;
            for e in events.iter().filter(|e| e.tid == tid) {
                prop_assert!(
                    e.ts_us >= last_ts,
                    "thread {} timestamps went backwards",
                    tid
                );
                last_ts = e.ts_us;
                match e.phase {
                    Phase::Begin => stack.push(e.name),
                    Phase::End => {
                        let top = stack.pop();
                        prop_assert_eq!(
                            top,
                            Some(e.name),
                            "End does not match innermost Begin on thread {}",
                            tid
                        );
                    }
                    _ => {}
                }
            }
            prop_assert!(stack.is_empty(), "unclosed spans on thread {}", tid);
        }
    }
}
