//! Integration tests asserting the *shapes* of the paper's results: the
//! Slim engine computes the same numbers as the CodeML-style engine and
//! computes them faster where the paper says it should.

use slimcodeml::bio::{FreqModel, GeneticCode};
use slimcodeml::expm::EigenSystem;
use slimcodeml::lik::{log_likelihood, EngineConfig, LikelihoodProblem};
use slimcodeml::linalg::EigenMethod;
use slimcodeml::model::{build_rate_matrix, BranchSiteModel, Hypothesis, ScalePolicy};
use slimcodeml::sim::{dataset, DatasetId};
use std::time::Instant;

/// §IV-1 accuracy on the real dataset analogs: single likelihood
/// evaluations of the two engines agree to near machine precision.
#[test]
fn engines_agree_on_every_dataset_shape() {
    let code = GeneticCode::universal();
    let model = BranchSiteModel::default_start(Hypothesis::H1);
    // Dataset ii (5004 codons) is too slow for a unit test; i/iii/iv
    // cover short & tall shapes.
    for id in [DatasetId::I, DatasetId::III, DatasetId::IV] {
        let ds = dataset(id);
        let problem =
            LikelihoodProblem::new(&ds.tree, &ds.alignment, &code, FreqModel::F3x4).unwrap();
        let bl = ds.tree.branch_lengths();
        let base = log_likelihood(&problem, &EngineConfig::codeml_style(), &model, &bl).unwrap();
        let slim = log_likelihood(&problem, &EngineConfig::slim(), &model, &bl).unwrap();
        let d = ((base - slim) / base).abs();
        assert!(
            d < 5.5e-8,
            "dataset {}: D = {d} exceeds the paper's worst case",
            id.label()
        );
    }
}

/// The Eq. 10 syrk reconstruction must beat the naive Eq. 9 loop — the
/// paper's core performance claim, asserted as a conservative 1.5× bound
/// (the paper's per-iteration speedups are ≥ 1.7×).
#[test]
fn slim_expm_is_faster_than_naive() {
    let code = GeneticCode::universal();
    let pi = vec![1.0 / 61.0; 61];
    let rm = build_rate_matrix(&code, 2.0, 0.5, &pi, ScalePolicy::PerClass);
    let es = EigenSystem::from_rate_matrix(&rm, EigenMethod::HouseholderQl).unwrap();
    let reps = 300;

    // Warm up.
    let _ = es.transition_matrix_eq9_naive(0.3);
    let _ = es.transition_matrix_eq10(0.3);

    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(es.transition_matrix_eq9_naive(0.3));
    }
    let naive_time = t0.elapsed();

    let t1 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(es.transition_matrix_eq10(0.3));
    }
    let slim_time = t1.elapsed();

    let ratio = naive_time.as_secs_f64() / slim_time.as_secs_f64();
    assert!(
        ratio > 1.5,
        "expected the syrk path to be >1.5x faster, measured {ratio:.2}x \
         (naive {naive_time:?} vs slim {slim_time:?})"
    );
}

/// Speedup of a full likelihood evaluation grows with species count
/// (dataset iv's shape) — the mechanism behind Fig. 3.
#[test]
fn eval_speedup_grows_with_species() {
    use slimcodeml::sim::subsample_dataset;
    let code = GeneticCode::universal();
    let model = BranchSiteModel::default_start(Hypothesis::H1);

    let measure = |n_species: usize| -> f64 {
        let ds = subsample_dataset(n_species);
        let problem =
            LikelihoodProblem::new(&ds.tree, &ds.alignment, &code, FreqModel::F3x4).unwrap();
        let bl = ds.tree.branch_lengths();
        let time_engine = |cfg: &EngineConfig| {
            let _ = log_likelihood(&problem, cfg, &model, &bl).unwrap(); // warm
            let start = Instant::now();
            for _ in 0..3 {
                std::hint::black_box(log_likelihood(&problem, cfg, &model, &bl).unwrap());
            }
            start.elapsed().as_secs_f64()
        };
        time_engine(&EngineConfig::codeml_style()) / time_engine(&EngineConfig::slim())
    };

    let small = measure(10);
    let large = measure(60);
    assert!(
        large > small * 0.8,
        "speedup should not collapse with species count: 10sp {small:.2}x vs 60sp {large:.2}x"
    );
    assert!(
        large > 1.2,
        "60-species evaluation speedup only {large:.2}x"
    );
}
