//! Integration tests for the beyond-the-paper extensions: sites test,
//! ancestral reconstruction, BEB, M0/two-ratio models, parallel backend,
//! missing data through the full public API.

use slimcodeml::bio::{parse_newick, CodonAlignment, FreqModel, GeneticCode};
use slimcodeml::core::{
    sites_test, Analysis, AnalysisOptions, Backend, BebOptions, BranchSiteModel, Hypothesis,
    Optimizer, SitesHypothesis,
};
use slimcodeml::lik::ancestral::ancestral_reconstruction;
use slimcodeml::lik::{branch_model, m0, EngineConfig, LikelihoodProblem};
use slimcodeml::opt::GradMode;
use slimcodeml::sim::{simulate_alignment, yule_tree};

fn quick(backend: Backend) -> AnalysisOptions {
    AnalysisOptions {
        backend,
        max_iterations: 25,
        grad_mode: GradMode::Forward,
        ..Default::default()
    }
}

#[test]
fn sites_test_detects_pervasive_selection() {
    // ω2 > 1 on every branch: simulate by making the "foreground" ω apply
    // to a branch-site foreground covering the longest branch AND using a
    // high neutral proportion — the sites test should at least rank the
    // selection dataset above the purifying one.
    let tree = yule_tree(5, 0.3, 3);
    let pi = vec![1.0 / 61.0; 61];
    let sel = simulate_alignment(
        &tree,
        &BranchSiteModel {
            kappa: 2.0,
            omega0: 0.9,
            omega2: 1.0,
            p0: 0.9,
            p1: 0.05,
        },
        &pi,
        200,
        5,
    );
    let pur = simulate_alignment(
        &tree,
        &BranchSiteModel {
            kappa: 2.0,
            omega0: 0.05,
            omega2: 1.0,
            p0: 0.95,
            p1: 0.04,
        },
        &pi,
        200,
        6,
    );
    let r_sel = sites_test(&tree, &sel, &quick(Backend::SlimPlus)).unwrap();
    let r_pur = sites_test(&tree, &pur, &quick(Backend::SlimPlus)).unwrap();
    // The purifying dataset must show a smaller *effective* ω under M1a
    // (p0·ω0 + (1−p0)·1); the raw ω0 alone can be weakly identified when
    // the optimizer trades it against p0.
    let eff = |m: &slimcodeml::core::SiteModel| m.p0 * m.omega0 + (1.0 - m.p0);
    assert!(
        eff(&r_pur.m1a.model) < eff(&r_sel.m1a.model),
        "purifying effective w {} vs near-neutral {}",
        eff(&r_pur.m1a.model),
        eff(&r_sel.m1a.model)
    );
    for r in [&r_sel, &r_pur] {
        assert!(r.p_value > 0.0 && r.p_value <= 1.0);
        assert!(r.m1a.model.is_valid(SitesHypothesis::M1a));
        assert!(r.m2a.model.is_valid(SitesHypothesis::M2a));
    }
}

#[test]
fn ancestral_reconstruction_via_public_api() {
    let tree = yule_tree(6, 0.1, 9);
    let truth = BranchSiteModel::default_start(Hypothesis::H1);
    let pi = vec![1.0 / 61.0; 61];
    let aln = simulate_alignment(&tree, &truth, &pi, 40, 2);
    let code = GeneticCode::universal();
    let problem = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::F3x4).unwrap();
    let rec = ancestral_reconstruction(
        &problem,
        &EngineConfig::slim(),
        &truth,
        &tree.branch_lengths(),
    )
    .unwrap();
    let root_best = rec.most_probable_codons(problem.root, &code);
    assert_eq!(root_best.len(), 40);
    // With modest branch lengths the reconstruction should be confident
    // at most sites.
    let confident = root_best.iter().filter(|r| r.posterior > 0.9).count();
    assert!(confident > 20, "only {confident}/40 confident sites");
}

#[test]
fn beb_and_neb_agree_qualitatively() {
    let mut tree = yule_tree(6, 0.25, 17);
    let longest = tree
        .branch_nodes()
        .into_iter()
        .max_by(|a, b| {
            tree.node(*a)
                .branch_length
                .partial_cmp(&tree.node(*b).branch_length)
                .unwrap()
        })
        .unwrap();
    tree.set_foreground(longest).unwrap();
    let truth = BranchSiteModel {
        kappa: 2.0,
        omega0: 0.1,
        omega2: 8.0,
        p0: 0.45,
        p1: 0.2,
    };
    let pi = vec![1.0 / 61.0; 61];
    let aln = simulate_alignment(&tree, &truth, &pi, 150, 99);

    let analysis = Analysis::new(&tree, &aln, quick(Backend::SlimPlus)).unwrap();
    let result = analysis.test_positive_selection().unwrap();
    let beb = analysis
        .beb_site_posteriors(
            &result.h1,
            &BebOptions {
                n_omega0: 2,
                n_omega2: 3,
                n_props: 2,
                omega2_max: 10.0,
            },
        )
        .unwrap();
    assert_eq!(beb.len(), result.site_posteriors.len());
    // Sites NEB ranks highest should rank high under BEB too (rank
    // correlation proxy: the top NEB site is in BEB's top quartile).
    let top_neb = result
        .site_posteriors
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    let mut beb_sorted: Vec<f64> = beb.clone();
    beb_sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let quartile = beb_sorted[beb_sorted.len() / 4];
    assert!(
        beb[top_neb] >= quartile,
        "top NEB site {top_neb} has BEB {} below quartile {quartile}",
        beb[top_neb]
    );
}

#[test]
fn m0_and_two_ratio_nested_ordering() {
    let tree = parse_newick("((A:0.2,B:0.2)#1:0.1,C:0.3);").unwrap();
    let aln = CodonAlignment::from_fasta(
        ">A\nATGCCCAAATTTGGG\n>B\nATGCCAAAATTTGGA\n>C\nATGCCCAAGTTCGGG\n",
    )
    .unwrap();
    let code = GeneticCode::universal();
    let problem = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::F3x4).unwrap();
    let bl = tree.branch_lengths();
    let cfg = EngineConfig::slim();
    // Evaluate both models on a small omega grid; the two-ratio model's
    // best must be >= M0's best (it nests M0).
    let mut best_m0 = f64::NEG_INFINITY;
    let mut best_two = f64::NEG_INFINITY;
    for w_bg in [0.1, 0.3, 0.8] {
        best_m0 = best_m0.max(m0::log_likelihood_m0(&problem, &cfg, 2.0, w_bg, &bl).unwrap());
        for w_fg in [0.1, 0.3, 0.8, 2.0] {
            best_two = best_two.max(
                branch_model::log_likelihood_branch(&problem, &cfg, 2.0, w_bg, w_fg, &bl).unwrap(),
            );
        }
    }
    assert!(
        best_two >= best_m0 - 1e-12,
        "two-ratio {best_two} vs M0 {best_m0}"
    );
}

#[test]
fn parallel_backend_end_to_end() {
    let tree = parse_newick("((A:0.2,B:0.2)#1:0.1,C:0.3);").unwrap();
    let aln = CodonAlignment::from_fasta(">A\nATGCCCAAA\n>B\nATGCCAAAA\n>C\nATGCCCAAG\n").unwrap();
    let serial = Analysis::new(&tree, &aln, quick(Backend::Slim))
        .unwrap()
        .fit(Hypothesis::H0)
        .unwrap();
    let parallel = Analysis::new(&tree, &aln, quick(Backend::SlimParallel))
        .unwrap()
        .fit(Hypothesis::H0)
        .unwrap();
    assert!(
        (serial.lnl - parallel.lnl).abs() < 1e-6,
        "serial {} vs parallel {}",
        serial.lnl,
        parallel.lnl
    );
}

#[test]
fn missing_data_through_full_fit() {
    let tree = parse_newick("((A:0.2,B:0.2)#1:0.1,C:0.3);").unwrap();
    let aln = CodonAlignment::from_fasta(">A\nATGCCCAAA---\n>B\nATG---AAATTT\n>C\nATGCCCNNNTTT\n")
        .unwrap();
    assert!(aln.missing_fraction() > 0.0);
    let analysis = Analysis::new(&tree, &aln, quick(Backend::Slim)).unwrap();
    let fit = analysis.fit(Hypothesis::H0).unwrap();
    assert!(fit.lnl.is_finite() && fit.lnl < 0.0);
}

#[test]
fn lbfgs_and_dense_bfgs_agree_through_api() {
    let tree = yule_tree(5, 0.2, 7);
    let truth = BranchSiteModel::default_start(Hypothesis::H0);
    let pi = vec![1.0 / 61.0; 61];
    let aln = simulate_alignment(&tree, &truth, &pi, 100, 8);
    let mut opts = quick(Backend::SlimPlus);
    opts.max_iterations = 100;
    let dense = Analysis::new(&tree, &aln, opts.clone())
        .unwrap()
        .fit(Hypothesis::H0)
        .unwrap();
    opts.optimizer = Optimizer::LBfgs;
    let limited = Analysis::new(&tree, &aln, opts)
        .unwrap()
        .fit(Hypothesis::H0)
        .unwrap();
    assert!(
        (dense.lnl - limited.lnl).abs() < 0.05,
        "dense {} vs l-bfgs {}",
        dense.lnl,
        limited.lnl
    );
}
