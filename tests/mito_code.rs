//! End-to-end tests for the vertebrate mitochondrial genetic code
//! (CodeML `icode = 1`) through the full public API.

use slimcodeml::bio::{parse_newick, CodonAlignment, GeneticCode};
use slimcodeml::core::{Analysis, AnalysisOptions, Backend, Hypothesis};
use slimcodeml::opt::GradMode;

fn mito_options() -> AnalysisOptions {
    AnalysisOptions {
        backend: Backend::SlimPlus,
        max_iterations: 15,
        grad_mode: GradMode::Forward,
        genetic_code: GeneticCode::vertebrate_mitochondrial(),
        ..Default::default()
    }
}

#[test]
fn mito_alignment_with_tga_tryptophan_fits() {
    // TGA is a stop universally but Trp in the mitochondrial code: this
    // alignment is only analyzable under icode = 1.
    let tree = parse_newick("((A:0.2,B:0.2)#1:0.1,C:0.3);").unwrap();
    let mito = GeneticCode::vertebrate_mitochondrial();
    let aln = CodonAlignment::from_fasta_with_code(
        ">A\nATGTGACCC\n>B\nATGTGACCA\n>C\nATGTGGCCC\n",
        &mito,
    )
    .unwrap();
    // Universal validation must reject the same text.
    assert!(CodonAlignment::from_fasta(">A\nATGTGACCC\n>B\nATGTGACCA\n>C\nATGTGGCCC\n").is_err());

    let analysis = Analysis::new(&tree, &aln, mito_options()).unwrap();
    let fit = analysis.fit(Hypothesis::H0).unwrap();
    assert!(fit.lnl.is_finite() && fit.lnl < 0.0);
}

#[test]
fn mito_rejects_aga_stop() {
    // AGA is Arg universally but a stop in the mitochondrial code.
    let mito = GeneticCode::vertebrate_mitochondrial();
    let text = ">A\nATGAGA\n>B\nATGAGG\n";
    assert!(CodonAlignment::from_fasta(text).is_ok());
    assert!(CodonAlignment::from_fasta_with_code(text, &mito).is_err());
}

#[test]
fn mito_engines_agree() {
    let tree = parse_newick("((A:0.2,B:0.2)#1:0.1,C:0.3);").unwrap();
    let mito = GeneticCode::vertebrate_mitochondrial();
    let aln = CodonAlignment::from_fasta_with_code(
        ">A\nATGTGACCCAAA\n>B\nATGTGACCAAAA\n>C\nATGTGGCCCAAG\n",
        &mito,
    )
    .unwrap();
    let truth = slimcodeml::core::BranchSiteModel::default_start(Hypothesis::H1);
    let bl = tree.branch_lengths();
    let mut lnls = Vec::new();
    for backend in [Backend::CodeMlStyle, Backend::Slim, Backend::SlimPlus] {
        let mut opts = mito_options();
        opts.backend = backend;
        let analysis = Analysis::new(&tree, &aln, opts).unwrap();
        lnls.push(analysis.log_likelihood(&truth, &bl).unwrap());
    }
    for pair in lnls.windows(2) {
        assert!(((pair[0] - pair[1]) / pair[0]).abs() < 1e-10, "{lnls:?}");
    }
    // The 60-state system must produce a different likelihood than a
    // universal-code analysis of comparable (TGA-free) data would — just
    // assert finiteness and negativity here; dimension correctness is
    // covered by the engine agreement above.
    assert!(lnls[0] < 0.0);
}
