//! Cross-crate integration tests: the full SlimCodeML pipeline from
//! simulated data to LRT verdicts.

use slimcodeml::core::{Analysis, AnalysisOptions, Backend, BranchSiteModel, Hypothesis};
use slimcodeml::opt::GradMode;
use slimcodeml::sim::{simulate_alignment, yule_tree};

fn quick_options(backend: Backend) -> AnalysisOptions {
    AnalysisOptions {
        backend,
        max_iterations: 40,
        grad_mode: GradMode::Forward,
        ..Default::default()
    }
}

/// Simulate with strong positive selection on the longest branch.
fn selection_dataset() -> (
    slimcodeml::bio::Tree,
    slimcodeml::bio::CodonAlignment,
    BranchSiteModel,
) {
    let mut tree = yule_tree(6, 0.25, 17);
    let longest = tree
        .branch_nodes()
        .into_iter()
        .max_by(|a, b| {
            tree.node(*a)
                .branch_length
                .partial_cmp(&tree.node(*b).branch_length)
                .unwrap()
        })
        .unwrap();
    tree.set_foreground(longest).unwrap();
    let truth = BranchSiteModel {
        kappa: 2.0,
        omega0: 0.1,
        omega2: 8.0,
        p0: 0.45,
        p1: 0.2,
    };
    let pi = vec![1.0 / 61.0; 61];
    let aln = simulate_alignment(&tree, &truth, &pi, 300, 99);
    (tree, aln, truth)
}

#[test]
fn detects_simulated_positive_selection() {
    let (tree, aln, _truth) = selection_dataset();
    let analysis = Analysis::new(&tree, &aln, quick_options(Backend::Slim)).unwrap();
    let result = analysis.test_positive_selection().unwrap();
    assert!(
        result.lrt.statistic > 3.0,
        "expected a clear LRT signal, got {}",
        result.lrt.statistic
    );
    assert!(result.lrt.significant_at(0.05));
    assert!(
        result.h1.model.omega2 > 1.5,
        "w2 estimate {}",
        result.h1.model.omega2
    );
    // Some sites should be flagged.
    let flagged = result.site_posteriors.iter().filter(|&&p| p > 0.95).count();
    assert!(
        flagged > 0,
        "no sites flagged despite strong simulated selection"
    );
}

#[test]
fn null_data_yields_no_signal() {
    let tree = yule_tree(6, 0.25, 23);
    let truth = BranchSiteModel {
        kappa: 2.0,
        omega0: 0.1,
        omega2: 1.0,
        p0: 0.45,
        p1: 0.2,
    };
    let pi = vec![1.0 / 61.0; 61];
    let aln = simulate_alignment(&tree, &truth, &pi, 300, 31);
    let analysis = Analysis::new(&tree, &aln, quick_options(Backend::Slim)).unwrap();
    let result = analysis.test_positive_selection().unwrap();
    // 2ΔlnL should be tiny when the null generated the data.
    assert!(
        result.lrt.statistic < 4.0,
        "spurious LRT signal {} on null data",
        result.lrt.statistic
    );
}

#[test]
fn all_backends_agree_on_a_fixed_evaluation() {
    let (tree, aln, truth) = selection_dataset();
    let bl = tree.branch_lengths();
    let mut lnls = Vec::new();
    for backend in Backend::ALL {
        let analysis = Analysis::new(&tree, &aln, quick_options(backend)).unwrap();
        lnls.push(analysis.log_likelihood(&truth, &bl).unwrap());
    }
    for pair in lnls.windows(2) {
        let d = ((pair[0] - pair[1]) / pair[0]).abs();
        assert!(d < 1e-10, "backends disagree: {lnls:?}");
    }
}

#[test]
fn mle_beats_truth_and_truth_beats_null_params() {
    // The MLE must dominate the generating parameters, which must dominate
    // a deliberately wrong parameter set.
    let (tree, aln, truth) = selection_dataset();
    let analysis = Analysis::new(&tree, &aln, quick_options(Backend::Slim)).unwrap();
    let bl = tree.branch_lengths();
    let lnl_truth = analysis.log_likelihood(&truth, &bl).unwrap();
    let wrong = BranchSiteModel {
        kappa: 9.0,
        omega0: 0.9,
        omega2: 1.0,
        p0: 0.1,
        p1: 0.8,
    };
    let lnl_wrong = analysis.log_likelihood(&wrong, &bl).unwrap();
    assert!(
        lnl_truth > lnl_wrong,
        "truth {lnl_truth} should beat wrong {lnl_wrong}"
    );
    let fit = analysis.fit(Hypothesis::H1).unwrap();
    assert!(
        fit.lnl > lnl_truth - 1e-6,
        "MLE {} should beat truth {lnl_truth}",
        fit.lnl
    );
}

#[test]
fn iteration_accounting_is_populated() {
    let (tree, aln, _) = selection_dataset();
    let analysis = Analysis::new(&tree, &aln, quick_options(Backend::Slim)).unwrap();
    let fit = analysis.fit(Hypothesis::H0).unwrap();
    assert!(fit.iterations > 0);
    assert!(fit.f_evals > fit.iterations);
    assert!(fit.wall_time.as_nanos() > 0);
}
