//! Thread-determinism layer: `--threads N` is a pure scheduling knob.
//!
//! The parallel engine partitions site patterns into fixed blocks and
//! parallelizes eigen/expm/pruning, but the weighted reduction always runs
//! serially in fixed pattern order with compensated summation — so every
//! thread count must produce *bit-identical* results. These tests pin that
//! contract at three levels: the raw likelihood engine on all four Table II
//! dataset analogs, batch runs (intra-gene threads × worker pool), and
//! whole-tree branch scans.

use slimcodeml::batch::{run_batch, scan_branches, RunConfig, SchedulerConfig};
use slimcodeml::bio::FreqModel;
use slimcodeml::core::AnalysisOptions;
use slimcodeml::lik::{site_class_log_likelihoods, EngineConfig, LikelihoodProblem};
use slimcodeml::sim::{dataset, DatasetId};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// lnL at 1 thread vs {2, 4, 8} threads on every Table II analog:
/// identical to the last bit, for the total and every per-pattern value.
#[test]
fn engine_lnl_is_bit_identical_across_thread_counts() {
    for id in DatasetId::ALL {
        let d = dataset(id);
        let problem = LikelihoodProblem::new(
            &d.tree,
            &d.alignment,
            &slimcodeml::bio::GeneticCode::universal(),
            FreqModel::F3x4,
        )
        .expect("preset dataset is well-formed");
        let bl = d.tree.branch_lengths();
        let model = d.true_model;

        let serial = site_class_log_likelihoods(
            &problem,
            &EngineConfig::slim().with_threads(1),
            &model,
            &bl,
        )
        .expect("serial evaluation");
        assert!(serial.lnl.is_finite(), "dataset {}", id.label());

        for threads in [2usize, 4, 8] {
            let par = site_class_log_likelihoods(
                &problem,
                &EngineConfig::slim().with_threads(threads),
                &model,
                &bl,
            )
            .expect("parallel evaluation");
            assert_eq!(
                serial.lnl.to_bits(),
                par.lnl.to_bits(),
                "dataset {}: lnL at {threads} threads ({}) differs from serial ({})",
                id.label(),
                par.lnl,
                serial.lnl
            );
            for (p, (a, b)) in serial.per_pattern.iter().zip(&par.per_pattern).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "dataset {}: per-pattern {p} differs at {threads} threads",
                    id.label()
                );
            }
            for (c, (a, b)) in serial.per_class.iter().zip(&par.per_class).enumerate() {
                for (p, (x, y)) in a.iter().zip(b).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "dataset {}: class {c} pattern {p} differs at {threads} threads",
                        id.label()
                    );
                }
            }
        }
    }
}

fn workspace(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slim_thread_det_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_manifest(dir: &Path) -> PathBuf {
    std::fs::write(dir.join("tree.nwk"), "((A:0.1,B:0.2):0.05,C:0.3);").unwrap();
    let variants = ["AAA", "AAC", "AAG"];
    let mut genes = Vec::new();
    for (i, v) in variants.iter().enumerate() {
        std::fs::write(
            dir.join(format!("g{i}.fasta")),
            format!(">A\nATGCCCAAATGGTTT\n>B\nATGCCAAAATGGTTC\n>C\nATGCCC{v}TGGTTT\n"),
        )
        .unwrap();
        genes.push(format!(
            r#"{{"id":"g{i}","alignment":"g{i}.fasta","tree":"tree.nwk","branches":"all","backend":"slim","max_iterations":15,"seed":{}}}"#,
            11 + i
        ));
    }
    let path = dir.join("manifest.json");
    std::fs::write(
        &path,
        format!(r#"{{"version":1,"genes":[{}]}}"#, genes.join(",")),
    )
    .unwrap();
    path
}

/// Batch runs compose worker-pool parallelism with intra-gene threads
/// (via `SLIMCODEML_THREADS`, the same path CI uses): serial 1-thread
/// output and pooled multi-thread output must be byte-identical.
#[test]
fn batch_output_is_byte_identical_across_workers_and_threads() {
    let dir = workspace("batch");
    let manifest = write_manifest(&dir);
    let saved = std::env::var("SLIMCODEML_THREADS").ok();

    std::env::set_var("SLIMCODEML_THREADS", "1");
    let serial = run_batch(
        &manifest,
        &RunConfig {
            workers: 1,
            journal_path: dir.join("serial.jsonl"),
            backoff: Duration::from_millis(1),
            ..RunConfig::default()
        },
    )
    .expect("serial batch run");
    assert_eq!(serial.summary.failed, 0);

    std::env::set_var("SLIMCODEML_THREADS", "3");
    let pooled = run_batch(
        &manifest,
        &RunConfig {
            workers: 3,
            journal_path: dir.join("pooled.jsonl"),
            backoff: Duration::from_millis(1),
            ..RunConfig::default()
        },
    )
    .expect("pooled batch run");
    match saved {
        Some(v) => std::env::set_var("SLIMCODEML_THREADS", v),
        None => std::env::remove_var("SLIMCODEML_THREADS"),
    }

    assert_eq!(
        serial.to_tsv(),
        pooled.to_tsv(),
        "TSV must be byte-identical at (1 worker, 1 thread) vs (3 workers, 3 threads)"
    );
    assert_eq!(
        serial.to_json(false),
        pooled.to_json(false),
        "timing-free JSON must be byte-identical across worker/thread counts"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// Branch scans with explicit per-analysis thread overrides: every fitted
/// quantity identical to the last bit across (workers, threads) schedules.
#[test]
fn scan_results_are_bit_identical_across_workers_and_threads() {
    let tree = slimcodeml::bio::parse_newick("((A:0.1,B:0.2):0.05,C:0.3);").unwrap();
    let aln = slimcodeml::bio::CodonAlignment::from_fasta(
        ">A\nATGCCCAAATGGTTT\n>B\nATGCCAAAATGGTTC\n>C\nATGCCCAACTGGTTT\n",
    )
    .unwrap();
    let options = |threads: usize| AnalysisOptions {
        max_iterations: 15,
        seed: 42,
        threads: Some(threads),
        ..AnalysisOptions::default()
    };
    let sched = |workers: usize| SchedulerConfig {
        workers,
        retries: 0,
        backoff: Duration::from_millis(1),
        ..SchedulerConfig::default()
    };

    let serial = scan_branches(&tree, &aln, &options(1), &sched(1));
    let pooled = scan_branches(&tree, &aln, &options(2), &sched(2));
    assert_eq!(serial.len(), pooled.len());
    assert!(!serial.is_empty());

    for (a, b) in serial.iter().zip(&pooled) {
        assert_eq!(a.branch, b.branch, "entries must come back in branch order");
        match (&a.outcome, &b.outcome) {
            (Ok(x), Ok(y)) => {
                for (label, u, v) in [
                    ("lnl0", x.lnl0, y.lnl0),
                    ("lnl1", x.lnl1, y.lnl1),
                    ("stat", x.stat, y.stat),
                    ("p_value", x.p_value, y.p_value),
                    ("kappa", x.kappa, y.kappa),
                    ("omega0", x.omega0, y.omega0),
                    ("omega2", x.omega2, y.omega2),
                    ("p0", x.p0, y.p0),
                    ("p1", x.p1, y.p1),
                ] {
                    assert_eq!(
                        u.to_bits(),
                        v.to_bits(),
                        "branch {:?}: {label} differs across schedules ({u} vs {v})",
                        a.branch
                    );
                }
                assert_eq!(x.n_pos_sites, y.n_pos_sites);
                assert_eq!(x.iterations, y.iterations);
            }
            (Err(x), Err(y)) => assert_eq!(x.error, y.error),
            _ => panic!(
                "branch {:?}: outcome kind differs between schedules",
                a.branch
            ),
        }
    }
}
