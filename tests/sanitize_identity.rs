//! The `sanitize` feature must never perturb numerics.
//!
//! The tripwires added behind `--features sanitize` only *read* values —
//! they assert invariants and abort on violation, but touch no arithmetic.
//! This test pins that contract the same way `metrics_identity` pins the
//! observability layer: exact lnL bit patterns on every Table II dataset
//! analog are snapshotted to a checked-in golden file, and the test
//! passes only on bit-for-bit equality. Running it under the default
//! feature set *and* under `--features sanitize` against the same golden
//! file proves both directions at once:
//!
//! * feature off — the tripwires compile to nothing (bits match the
//!   snapshot taken before they existed);
//! * feature on — every invariant check passes on valid inputs and the
//!   checked computation still produces the identical bits.
//!
//! Regenerate (only after an intentional numerical change, with the
//! default feature set) via:
//!
//! ```text
//! SLIM_GOLDEN_WRITE=1 cargo test --test sanitize_identity
//! ```

use slimcodeml::bio::{FreqModel, GeneticCode};
use slimcodeml::lik::{log_likelihood, EngineConfig, LikelihoodProblem};
use slimcodeml::model::BranchSiteModel;
use slimcodeml::sim::{dataset, DatasetId};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/sanitize_lnl_bits.txt")
}

fn writing() -> bool {
    std::env::var("SLIM_GOLDEN_WRITE").is_ok_and(|v| v == "1")
}

/// Same off-optimum perturbation the golden-value layer uses, so the
/// snapshot covers more of the likelihood surface than the optimum.
fn perturbed(m: &BranchSiteModel) -> BranchSiteModel {
    BranchSiteModel {
        kappa: m.kappa * 1.3,
        omega0: m.omega0 * 0.8,
        omega2: m.omega2 + 0.7,
        p0: m.p0 - 0.10,
        p1: m.p1 + 0.05,
    }
}

fn eval_bits(id: DatasetId, model: &BranchSiteModel, threads: usize) -> u64 {
    let d = dataset(id);
    let problem = LikelihoodProblem::new(
        &d.tree,
        &d.alignment,
        &GeneticCode::universal(),
        FreqModel::F3x4,
    )
    .expect("preset dataset is well-formed");
    let bl = d.tree.branch_lengths();
    let config = EngineConfig::slim().with_threads(threads);
    log_likelihood(&problem, &config, model, &bl)
        .expect("likelihood evaluation")
        .to_bits()
}

/// One line per case: `<dataset> <model> <threads> <lnl bits as hex>`.
fn compute_lines() -> Vec<String> {
    let mut lines = Vec::new();
    for id in DatasetId::ALL {
        let truth = dataset(id).true_model;
        for (label, model) in [("true", truth), ("perturbed", perturbed(&truth))] {
            for threads in [1usize, 2] {
                let bits = eval_bits(id, &model, threads);
                lines.push(format!("{} {label} {threads} {bits:016x}", id.label()));
            }
        }
    }
    lines
}

#[test]
fn lnl_bits_match_golden_regardless_of_sanitize_feature() {
    let path = golden_path();
    let lines = compute_lines();

    if writing() {
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        eprintln!("wrote {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with SLIM_GOLDEN_WRITE=1",
            path.display()
        )
    });
    let golden: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(golden.len(), lines.len(), "golden case count drifted");
    for (want, got) in golden.iter().zip(&lines) {
        assert_eq!(
            *want, got,
            "lnL bits drifted (golden `{want}` vs computed `{got}`); if the \
             sanitize feature is on, it has perturbed the numerics"
        );
    }
}
