//! Golden-value regression layer: snapshot log-likelihoods and fitted
//! parameters against checked-in JSON, gated at the paper's agreement
//! threshold.
//!
//! The SlimCodeML paper validates its optimized engine against CodeML by
//! requiring the relative difference of the resulting log-likelihoods to
//! stay below `D = 5.5e-8` (the largest discrepancy they observed across
//! Table II). We reuse that bound as the regression gate for fixed-parameter
//! likelihood evaluations on all four dataset analogs. Fitted *parameters*
//! from a short MLE run get a looser documented gate (5e-4 relative):
//! optimizer trajectories amplify last-bit rounding differences far more
//! than a single likelihood evaluation does, and the paper's own Table III
//! comparisons are at that coarser precision.
//!
//! Regenerate the snapshots after an *intentional* numerical change with:
//!
//! ```text
//! SLIM_GOLDEN_WRITE=1 cargo test --test golden_values
//! ```

use slimcodeml::bio::{FreqModel, GeneticCode};
use slimcodeml::core::{Analysis, AnalysisOptions, Hypothesis};
use slimcodeml::lik::{log_likelihood, EngineConfig, LikelihoodProblem};
use slimcodeml::model::BranchSiteModel;
use slimcodeml::opt::GradMode;
use slimcodeml::sim::{dataset, DatasetId};
use std::path::PathBuf;

/// The paper's lnL agreement bound (largest relative difference between
/// SlimCodeML and CodeML across Table II).
const LNL_GATE: f64 = 5.5e-8;

/// Gate for fitted parameters from the short MLE snapshot.
const PARAM_GATE: f64 = 5e-4;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn writing() -> bool {
    std::env::var("SLIM_GOLDEN_WRITE").is_ok_and(|v| v == "1")
}

fn rel_diff(x: f64, golden: f64) -> f64 {
    (x - golden).abs() / golden.abs().max(1.0)
}

/// Perturb the generating model away from the simulation truth so the
/// snapshot also covers an off-optimum point of the likelihood surface.
fn perturbed(m: &BranchSiteModel) -> BranchSiteModel {
    BranchSiteModel {
        kappa: m.kappa * 1.3,
        omega0: m.omega0 * 0.8,
        omega2: m.omega2 + 0.7,
        p0: m.p0 - 0.10,
        p1: m.p1 + 0.05,
    }
}

/// The fixed-parameter cases: (dataset, model label, model).
fn engine_cases() -> Vec<(DatasetId, &'static str, BranchSiteModel)> {
    DatasetId::ALL
        .into_iter()
        .flat_map(|id| {
            let truth = dataset(id).true_model;
            [(id, "true", truth), (id, "perturbed", perturbed(&truth))]
        })
        .collect()
}

fn eval_lnl(id: DatasetId, model: &BranchSiteModel) -> f64 {
    let d = dataset(id);
    let problem = LikelihoodProblem::new(
        &d.tree,
        &d.alignment,
        &GeneticCode::universal(),
        FreqModel::F3x4,
    )
    .expect("preset dataset is well-formed");
    let bl = d.tree.branch_lengths();
    log_likelihood(&problem, &EngineConfig::slim().with_threads(1), model, &bl)
        .expect("likelihood evaluation")
}

#[test]
fn engine_lnl_matches_golden_snapshot() {
    let path = golden_dir().join("engine_lnl.json");
    let computed: Vec<(DatasetId, &str, f64)> = engine_cases()
        .into_iter()
        .map(|(id, label, model)| (id, label, eval_lnl(id, &model)))
        .collect();

    if writing() {
        let rows: Vec<String> = computed
            .iter()
            .map(|(id, label, lnl)| {
                format!(
                    r#"    {{"dataset":"{}","model":"{label}","lnl":{lnl:.17e}}}"#,
                    id.label()
                )
            })
            .collect();
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(
            &path,
            format!(
                "{{\"gate\":\"relative difference <= 5.5e-8\",\"cases\":[\n{}\n]}}\n",
                rows.join(",\n")
            ),
        )
        .unwrap();
        eprintln!("wrote {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with SLIM_GOLDEN_WRITE=1",
            path.display()
        )
    });
    let golden: serde_json::Value = serde_json::from_str(&text).expect("golden JSON parses");
    let cases = golden
        .get("cases")
        .and_then(|c| c.as_array())
        .expect("golden file has a cases array");
    assert_eq!(cases.len(), computed.len(), "golden case count drifted");

    for (case, (id, label, lnl)) in cases.iter().zip(&computed) {
        assert_eq!(
            case.get("dataset").and_then(|v| v.as_str()),
            Some(id.label())
        );
        assert_eq!(case.get("model").and_then(|v| v.as_str()), Some(*label));
        let want = case
            .get("lnl")
            .and_then(|v| v.as_f64())
            .expect("golden lnl is a number");
        let d = rel_diff(*lnl, want);
        assert!(
            d <= LNL_GATE,
            "dataset {} ({label}): lnL {lnl} vs golden {want}, relative difference {d:.3e} > {LNL_GATE:.1e}",
            id.label()
        );
    }
}

#[test]
fn mle_snapshot_matches_golden() {
    let path = golden_dir().join("mle_dataset_i.json");
    let d = dataset(DatasetId::I);
    let options = AnalysisOptions {
        max_iterations: 10,
        seed: 7,
        grad_mode: GradMode::Forward,
        threads: Some(1),
        ..AnalysisOptions::default()
    };
    let analysis = Analysis::new(&d.tree, &d.alignment, options).expect("analysis builds");
    let fit = analysis.fit(Hypothesis::H1).expect("short H1 fit");
    let m = &fit.model;

    if writing() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(
            &path,
            format!(
                "{{\"dataset\":\"i\",\"hypothesis\":\"H1\",\"max_iterations\":10,\"seed\":7,\
                 \"lnl\":{:.17e},\"kappa\":{:.17e},\"omega0\":{:.17e},\"omega2\":{:.17e},\
                 \"p0\":{:.17e},\"p1\":{:.17e}}}\n",
                fit.lnl, m.kappa, m.omega0, m.omega2, m.p0, m.p1
            ),
        )
        .unwrap();
        eprintln!("wrote {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with SLIM_GOLDEN_WRITE=1",
            path.display()
        )
    });
    let golden: serde_json::Value = serde_json::from_str(&text).expect("golden JSON parses");
    let field = |name: &str| -> f64 {
        golden
            .get(name)
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("golden field {name} missing"))
    };

    let d_lnl = rel_diff(fit.lnl, field("lnl"));
    assert!(
        d_lnl <= LNL_GATE,
        "MLE lnL {} vs golden {}, relative difference {d_lnl:.3e} > {LNL_GATE:.1e}",
        fit.lnl,
        field("lnl")
    );
    for (name, got) in [
        ("kappa", m.kappa),
        ("omega0", m.omega0),
        ("omega2", m.omega2),
        ("p0", m.p0),
        ("p1", m.p1),
    ] {
        let want = field(name);
        let dp = rel_diff(got, want);
        assert!(
            dp <= PARAM_GATE,
            "MLE {name} {got} vs golden {want}, relative difference {dp:.3e} > {PARAM_GATE:.1e}"
        );
    }
}
