//! Observability must never perturb numerics.
//!
//! The `slim-obs` layer promises that turning metric collection on or
//! off changes *no* computed value: recording happens strictly outside
//! the arithmetic (wall-clock reads and atomic bumps around, never
//! inside, the likelihood kernels). These tests pin that contract at
//! two levels: the raw parallel likelihood engine on every Table II
//! dataset analog, and a whole H0 fit through the cached `slim+`
//! backend — each bit-compared between a metrics-off and a metrics-on
//! evaluation of the same inputs.

use slimcodeml::bio::FreqModel;
use slimcodeml::core::{Analysis, AnalysisOptions, Backend, Hypothesis};
use slimcodeml::lik::{site_class_log_likelihoods, EngineConfig, LikelihoodProblem};
use slimcodeml::sim::{dataset, DatasetId};
use std::sync::Mutex;

/// Both tests toggle the process-global enable flag; serialize them so
/// one test's toggling cannot blank the other's metrics-on window.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Engine lnL with metrics enabled vs disabled on every Table II
/// analog: identical to the last bit, for the total and every
/// per-pattern and per-class value.
#[test]
fn engine_lnl_bits_are_unchanged_by_metrics() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for id in DatasetId::ALL {
        let d = dataset(id);
        let problem = LikelihoodProblem::new(
            &d.tree,
            &d.alignment,
            &slimcodeml::bio::GeneticCode::universal(),
            FreqModel::F3x4,
        )
        .expect("preset dataset is well-formed");
        let bl = d.tree.branch_lengths();
        let model = d.true_model;
        let config = EngineConfig::slim().with_threads(2);

        slimcodeml::obs::set_enabled(false);
        let off = site_class_log_likelihoods(&problem, &config, &model, &bl)
            .expect("metrics-off evaluation");

        slimcodeml::obs::set_enabled(true);
        slimcodeml::lik::register_metrics();
        let on = site_class_log_likelihoods(&problem, &config, &model, &bl)
            .expect("metrics-on evaluation");
        slimcodeml::obs::set_enabled(false);

        assert_eq!(
            off.lnl.to_bits(),
            on.lnl.to_bits(),
            "dataset {}: lnL with metrics on ({}) differs from off ({})",
            id.label(),
            on.lnl,
            off.lnl
        );
        for (p, (a, b)) in off.per_pattern.iter().zip(&on.per_pattern).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "dataset {}: per-pattern {p} differs with metrics on",
                id.label()
            );
        }
        for (c, (a, b)) in off.per_class.iter().zip(&on.per_class).enumerate() {
            for (p, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "dataset {}: class {c} pattern {p} differs with metrics on",
                    id.label()
                );
            }
        }
    }
}

/// A full H0 fit through the cached `slim+` backend: every fitted
/// quantity bit-identical with metrics on vs off, and the metrics-on
/// pass actually recorded (the test would be vacuous against a
/// permanently-disabled registry).
#[test]
fn fit_bits_are_unchanged_by_metrics_and_registry_records() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let tree = slimcodeml::bio::parse_newick("((A:0.1,B:0.2)#1:0.05,C:0.3);").unwrap();
    let aln = slimcodeml::bio::CodonAlignment::from_fasta(
        ">A\nATGCCCAAATGGTTT\n>B\nATGCCAAAATGGTTC\n>C\nATGCCCAAATGGTTT\n",
    )
    .unwrap();
    let options = AnalysisOptions {
        backend: Backend::SlimPlus,
        max_iterations: 12,
        seed: 7,
        threads: Some(2),
        ..AnalysisOptions::default()
    };

    slimcodeml::obs::set_enabled(false);
    let off = Analysis::new(&tree, &aln, options.clone())
        .unwrap()
        .fit(Hypothesis::H0)
        .expect("metrics-off fit");

    slimcodeml::obs::set_enabled(true);
    slimcodeml::opt::register_metrics();
    slimcodeml::lik::register_metrics();
    slimcodeml::expm::register_metrics();
    let before = slimcodeml::obs::snapshot();
    let on = Analysis::new(&tree, &aln, options)
        .unwrap()
        .fit(Hypothesis::H0)
        .expect("metrics-on fit");
    let after = slimcodeml::obs::snapshot();
    slimcodeml::obs::set_enabled(false);

    assert_eq!(off.lnl.to_bits(), on.lnl.to_bits(), "lnL changed");
    assert_eq!(off.iterations, on.iterations, "iteration count changed");
    for (label, a, b) in [
        ("kappa", off.model.kappa, on.model.kappa),
        ("omega0", off.model.omega0, on.model.omega0),
        ("p0", off.model.p0, on.model.p0),
        ("p1", off.model.p1, on.model.p1),
    ] {
        assert_eq!(a.to_bits(), b.to_bits(), "{label} changed with metrics on");
    }
    for (i, (a, b)) in off
        .branch_lengths
        .iter()
        .zip(&on.branch_lengths)
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "branch length {i} changed with metrics on"
        );
    }

    // Sanity: the instrumented layers really recorded during the
    // metrics-on fit (deltas, because the registry is process-global
    // and other tests may run concurrently).
    let delta = |name: &str| {
        after
            .counter(name)
            .unwrap_or(0)
            .saturating_sub(before.counter(name).unwrap_or(0))
    };
    assert!(delta("lik.evaluations") > 0, "lik layer did not record");
    assert!(delta("opt.iterations") > 0, "opt layer did not record");
    assert!(
        delta("expm.cache.hits") + delta("expm.cache.misses") > 0,
        "expm cache layer did not record"
    );
}
