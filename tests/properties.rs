//! Property-based tests (proptest) on the numerical core: invariants that
//! must hold for arbitrary valid parameters, not just hand-picked ones.

use proptest::prelude::*;
use slimcodeml::bio::{GeneticCode, N_CODONS};
use slimcodeml::expm::EigenSystem;
use slimcodeml::linalg::gemm::{matmul, Transpose};
use slimcodeml::linalg::{naive, sym_eigen, syrk, EigenMethod, Mat};
use slimcodeml::model::{build_rate_matrix, BranchSiteModel, ScalePolicy};

/// Strategy: a valid codon frequency vector (strictly positive, sums to 1).
fn pi_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.1f64..10.0, N_CODONS).prop_map(|raw| {
        let s: f64 = raw.iter().sum();
        raw.into_iter().map(|v| v / s).collect()
    })
}

/// Strategy: valid branch-site parameters.
fn model_strategy() -> impl Strategy<Value = BranchSiteModel> {
    (
        0.5f64..8.0,
        0.01f64..0.95,
        1.0f64..10.0,
        0.1f64..0.7,
        0.05f64..0.25,
    )
        .prop_map(|(kappa, omega0, omega2, p0, p1)| BranchSiteModel {
            kappa,
            omega0,
            omega2,
            p0,
            p1,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// P(t) rows are probability distributions for arbitrary (κ, ω, π, t).
    #[test]
    fn transition_matrices_are_stochastic(
        kappa in 0.5f64..8.0,
        omega in 0.01f64..6.0,
        pi in pi_strategy(),
        t in 0.0f64..3.0,
    ) {
        let code = GeneticCode::universal();
        let rm = build_rate_matrix(&code, kappa, omega, &pi, ScalePolicy::PerClass);
        let es = EigenSystem::from_rate_matrix(&rm, EigenMethod::HouseholderQl).unwrap();
        let p = es.transition_matrix_eq10(t);
        for i in 0..N_CODONS {
            let row_sum: f64 = p.row(i).iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-8, "row {i} sums to {row_sum}");
            prop_assert!(p.row(i).iter().all(|&v| v >= 0.0));
        }
    }

    /// Eq. 9 and Eq. 10 reconstructions agree for arbitrary parameters —
    /// the algebraic identity behind the paper's flop saving.
    #[test]
    fn eq9_equals_eq10(
        kappa in 0.5f64..8.0,
        omega in 0.01f64..6.0,
        pi in pi_strategy(),
        t in 0.001f64..2.0,
    ) {
        let code = GeneticCode::universal();
        let rm = build_rate_matrix(&code, kappa, omega, &pi, ScalePolicy::PerClass);
        let es = EigenSystem::from_rate_matrix(&rm, EigenMethod::HouseholderQl).unwrap();
        let p9 = es.transition_matrix_eq9(t);
        let p10 = es.transition_matrix_eq10(t);
        prop_assert!(p9.approx_eq(&p10, 1e-10), "max diff {}", p9.max_abs_diff(&p10));
    }

    /// Detailed balance: π_i P_ij(t) = π_j P_ji(t) (time reversibility is
    /// what makes the symmetrization of Eq. 2 legitimate).
    #[test]
    fn detailed_balance_of_transition_probabilities(
        kappa in 0.5f64..8.0,
        omega in 0.05f64..4.0,
        pi in pi_strategy(),
        t in 0.01f64..2.0,
    ) {
        let code = GeneticCode::universal();
        let rm = build_rate_matrix(&code, kappa, omega, &pi, ScalePolicy::PerClass);
        let es = EigenSystem::from_rate_matrix(&rm, EigenMethod::HouseholderQl).unwrap();
        let p = es.transition_matrix_eq10(t);
        for (i, j) in [(0usize, 1usize), (5, 33), (20, 60), (7, 41)] {
            let lhs = pi[i] * p[(i, j)];
            let rhs = pi[j] * p[(j, i)];
            prop_assert!((lhs - rhs).abs() < 1e-10, "({i},{j}): {lhs} vs {rhs}");
        }
    }

    /// Site-class proportions always form a distribution.
    #[test]
    fn site_class_proportions_are_a_distribution(model in model_strategy()) {
        let classes = model.site_classes();
        let total: f64 = classes.iter().map(|c| c.proportion).sum();
        prop_assert!((total - 1.0).abs() < 1e-10);
        prop_assert!(classes.iter().all(|c| c.proportion >= 0.0));
    }

    /// syrk(A) == gemm(A, Aᵀ) for arbitrary rectangular matrices.
    #[test]
    fn syrk_matches_gemm(
        rows in 1usize..24,
        cols in 1usize..24,
        seed in 0u64..1000,
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let a = Mat::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        let mut via_syrk = Mat::zeros(rows, rows);
        syrk(1.0, &a, 0.0, &mut via_syrk);
        let via_gemm = matmul(&a, Transpose::No, &a, Transpose::Yes);
        prop_assert!(via_syrk.approx_eq(&via_gemm, 1e-11));
    }

    /// Blocked gemm matches the naive triple loop for arbitrary shapes.
    #[test]
    fn gemm_matches_naive(
        m in 1usize..20,
        k in 1usize..20,
        n in 1usize..20,
        seed in 0u64..1000,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let a = Mat::from_fn(m, k, |_, _| next());
        let b = Mat::from_fn(k, n, |_, _| next());
        let tuned = matmul(&a, Transpose::No, &b, Transpose::No);
        let reference = naive::matmul(&a, &b);
        prop_assert!(tuned.approx_eq(&reference, 1e-11));
    }

    /// Eigendecomposition reconstructs arbitrary symmetric matrices and
    /// preserves the trace.
    #[test]
    fn eigen_reconstructs(
        n in 2usize..16,
        seed in 0u64..1000,
    ) {
        let mut state = seed | 3;
        let mut a = Mat::from_fn(n, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        a.symmetrize();
        let eig = sym_eigen(&a, EigenMethod::HouseholderQl).unwrap();
        prop_assert!(eig.reconstruct().approx_eq(&a, 1e-8));
        let trace: f64 = a.diag().iter().sum();
        let sum: f64 = eig.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-9);
    }
}
