//! Simulate data with known positive selection, then recover it.
//!
//! The motivating workflow of the paper's §I-A: simulate a gene where ~10%
//! of sites on the foreground branch evolve with ω2 = 4 (strong positive
//! selection), fit both hypotheses, and confirm the LRT detects the signal
//! — then repeat on data simulated *without* selection (H0 truth) and
//! confirm the test stays quiet.
//!
//! ```text
//! cargo run --release --example simulate_and_detect
//! ```

use slimcodeml::core::{Analysis, AnalysisOptions, BranchSiteModel};
use slimcodeml::model::Hypothesis;
use slimcodeml::sim::{simulate_alignment, yule_tree};

fn run_case(label: &str, true_model: &BranchSiteModel, seed: u64) {
    let n_species = 8;
    let n_codons = 600;
    let mut tree = yule_tree(n_species, 0.2, seed);
    // The branch-site test has limited power on short branches; put the
    // foreground mark on the longest branch so a positive simulation
    // carries a detectable number of selected substitutions.
    let longest = tree
        .branch_nodes()
        .into_iter()
        .max_by(|a, b| {
            tree.node(*a)
                .branch_length
                .partial_cmp(&tree.node(*b).branch_length)
                .unwrap()
        })
        .unwrap();
    tree.set_foreground(longest).unwrap();
    let pi = vec![1.0 / 61.0; 61];
    let aln = simulate_alignment(&tree, true_model, &pi, n_codons, seed ^ 0xFEED);

    let options = AnalysisOptions {
        max_iterations: 150,
        ..Default::default()
    };
    let analysis = Analysis::new(&tree, &aln, options).expect("consistent inputs");
    let result = analysis.test_positive_selection().expect("fits succeed");

    println!("--- {label} ---");
    println!(
        "truth: w2 = {:.2}, p(selected) = {:.3}",
        true_model.omega2,
        true_model.positive_selection_proportion()
    );
    println!("{}", result.h0.summary());
    println!("{}", result.h1.summary());
    println!(
        "LRT 2dlnL = {:.3}, p = {:.5} -> {}",
        result.lrt.statistic,
        result.lrt.p_value,
        if result.lrt.significant_at(0.05) {
            "SELECTION DETECTED"
        } else {
            "not significant"
        }
    );
    let top: Vec<_> = result
        .site_posteriors
        .iter()
        .enumerate()
        .filter(|(_, &p)| p > 0.95)
        .map(|(i, _)| i + 1)
        .collect();
    println!("sites with NEB posterior > 0.95: {top:?}\n");
}

fn main() {
    // Case 1: strong positive selection on the foreground branch
    // (30% of sites at ω2 = 6).
    run_case(
        "data simulated UNDER positive selection",
        &BranchSiteModel {
            kappa: 2.5,
            omega0: 0.1,
            omega2: 6.0,
            p0: 0.5,
            p1: 0.2,
        },
        11,
    );

    // Case 2: the null is true (ω2 = 1 → classes 2a/2b are neutral on the
    // foreground branch).
    run_case(
        "data simulated UNDER the null (no positive selection)",
        &BranchSiteModel {
            kappa: 2.5,
            omega0: 0.1,
            omega2: 1.0,
            p0: 0.5,
            p1: 0.2,
        },
        13,
    );

    let _ = Hypothesis::H1;
}
