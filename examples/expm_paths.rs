//! The paper's core numerics, hands-on: build one codon rate matrix and
//! compute `P(t) = e^{Qt}` through every implemented path, timing them and
//! checking they agree.
//!
//! This is §III-A of the paper in miniature — the place the 2n³ → n³ flop
//! saving (Eq. 9 → Eq. 10) lives.
//!
//! ```text
//! cargo run --release --example expm_paths
//! ```

use slimcodeml::bio::GeneticCode;
use slimcodeml::expm::{expm_taylor, EigenSystem};
use slimcodeml::linalg::EigenMethod;
use slimcodeml::model::{build_rate_matrix, ScalePolicy};
use std::time::Instant;

fn main() {
    let code = GeneticCode::universal();
    // A skewed but valid codon frequency vector.
    let mut pi: Vec<f64> = (0..61).map(|i| 1.0 + ((i * 7) % 13) as f64 * 0.2).collect();
    let total: f64 = pi.iter().sum();
    pi.iter_mut().for_each(|p| *p /= total);

    let rm = build_rate_matrix(&code, 2.5, 0.4, &pi, ScalePolicy::PerClass);
    println!(
        "rate matrix built: 61×61, stationary rate = {:.6}",
        rm.stationary_rate()
    );

    // check: allow(det-wallclock) timing demo; printed, never fed back
    let started = Instant::now();
    let es = EigenSystem::from_rate_matrix(&rm, EigenMethod::HouseholderQl).unwrap();
    println!(
        "symmetric eigendecomposition (tred2+tql2): {:?}",
        started.elapsed()
    );

    let t = 0.37;
    let reps = 2000;

    let time = |label: &str, f: &dyn Fn() -> slimcodeml::linalg::Mat| {
        // check: allow(det-wallclock) timing demo; printed, never fed back
        let start = Instant::now();
        let mut last = None;
        for _ in 0..reps {
            last = Some(f());
        }
        let per = start.elapsed().as_secs_f64() / reps as f64;
        println!("{label:<34} {:>9.1} µs/expm", per * 1e6);
        last.unwrap()
    };

    let p9n = time("Eq. 9, naive kernels (CodeML)", &|| {
        es.transition_matrix_eq9_naive(t)
    });
    let p9 = time("Eq. 9, blocked gemm", &|| es.transition_matrix_eq9(t));
    let p10 = time("Eq. 10, syrk (SlimCodeML)", &|| {
        es.transition_matrix_eq10(t)
    });

    // Accuracy against the Taylor scaling-and-squaring oracle.
    let mut qt = rm.q.clone();
    qt.scale(t);
    let oracle = expm_taylor(&qt);
    println!("\nmax |P - oracle|:");
    println!("  Eq. 9 naive : {:.3e}", p9n.max_abs_diff(&oracle));
    println!("  Eq. 9 gemm  : {:.3e}", p9.max_abs_diff(&oracle));
    println!("  Eq. 10 syrk : {:.3e}", p10.max_abs_diff(&oracle));
    println!("\nmax |Eq9 - Eq10| = {:.3e}", p9.max_abs_diff(&p10));
    println!(
        "row sums of Eq. 10 path (first 3): {:.12} {:.12} {:.12}",
        p10.row(0).iter().sum::<f64>(),
        p10.row(1).iter().sum::<f64>(),
        p10.row(2).iter().sum::<f64>()
    );
}
