//! The M1a-vs-M2a *sites* test — positive selection affecting sites across
//! all branches (no foreground branch needed).
//!
//! This exercises the paper's §V-B remark that the optimized likelihood
//! computation carries over to other ML codon models: the same Eq. 10
//! expm pipeline evaluates the M1a/M2a mixtures here.
//!
//! ```text
//! cargo run --release --example sites_test
//! ```

use slimcodeml::core::{sites_test, AnalysisOptions, Backend, BranchSiteModel};
use slimcodeml::opt::GradMode;
use slimcodeml::sim::{simulate_alignment, yule_tree};

fn main() {
    // Simulate with a fraction of sites under ω = 5 on EVERY branch — the
    // regime the sites test is designed for. Reusing the branch-site
    // simulator with the foreground mark on the root child and ω2 acting
    // tree-wide is equivalent to an M2a simulation when background and
    // foreground ω coincide, so instead simulate under the branch-site
    // model with a long foreground branch and let M2a pick up the signal
    // partially — and also run a null dataset for contrast.
    let tree = yule_tree(7, 0.25, 31);
    let pi = vec![1.0 / 61.0; 61];

    let options = AnalysisOptions {
        backend: Backend::SlimPlus,
        max_iterations: 120,
        grad_mode: GradMode::Forward,
        ..Default::default()
    };

    // Dataset A: pervasive selection (ω2 = 5 on the foreground branch,
    // which we choose to be a long internal edge, plus elevated ω0).
    let strong = BranchSiteModel {
        kappa: 2.0,
        omega0: 0.9,
        omega2: 5.0,
        p0: 0.4,
        p1: 0.2,
    };
    let aln_sel = simulate_alignment(&tree, &strong, &pi, 400, 71);

    // Dataset B: purifying evolution everywhere.
    let purifying = BranchSiteModel {
        kappa: 2.0,
        omega0: 0.05,
        omega2: 1.0,
        p0: 0.8,
        p1: 0.15,
    };
    let aln_null = simulate_alignment(&tree, &purifying, &pi, 400, 72);

    for (label, aln) in [
        ("selection-enriched data", &aln_sel),
        ("purifying data", &aln_null),
    ] {
        println!("--- {label} ---");
        let r = sites_test(&tree, aln, &options).expect("sites test");
        println!(
            "M1a: lnL = {:.4} (kappa {:.3}, w0 {:.3}, p0 {:.3})",
            r.m1a.lnl, r.m1a.model.kappa, r.m1a.model.omega0, r.m1a.model.p0
        );
        println!(
            "M2a: lnL = {:.4} (w2 {:.3}, p(w2 class) {:.3})",
            r.m2a.lnl,
            r.m2a.model.omega2,
            (1.0 - r.m2a.model.p0 - r.m2a.model.p1).max(0.0)
        );
        println!(
            "LRT: 2dlnL = {:.4}, p = {:.5} (chi2, 2 df)",
            r.statistic, r.p_value
        );
        let flagged: Vec<usize> = r
            .site_posteriors
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.95)
            .map(|(i, _)| i + 1)
            .collect();
        println!(
            "sites with posterior > 0.95: {} of {}\n",
            flagged.len(),
            aln.n_codons()
        );
    }
}
