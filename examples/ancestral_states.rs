//! Ancestral sequence reconstruction (CodeML's `RateAncestor`).
//!
//! Simulates a gene along a known tree, fits the branch-site model, then
//! reconstructs the codon at every internal node by marginal posterior —
//! and, because the simulator recorded nothing but the leaves, checks the
//! reconstruction against fresh simulations' consensus behaviour instead:
//! the root posterior should be confident where the leaves agree and
//! diffuse where they diverge.
//!
//! ```text
//! cargo run --release --example ancestral_states
//! ```

use slimcodeml::bio::{FreqModel, GeneticCode};
use slimcodeml::core::{Analysis, AnalysisOptions, BranchSiteModel, Hypothesis};
use slimcodeml::lik::ancestral::ancestral_reconstruction;
use slimcodeml::lik::LikelihoodProblem;
use slimcodeml::opt::GradMode;
use slimcodeml::sim::{simulate_alignment, yule_tree};

fn main() {
    let tree = yule_tree(6, 0.15, 41);
    let truth = BranchSiteModel {
        kappa: 2.2,
        omega0: 0.1,
        omega2: 2.0,
        p0: 0.7,
        p1: 0.2,
    };
    let pi = vec![1.0 / 61.0; 61];
    let aln = simulate_alignment(&tree, &truth, &pi, 60, 17);

    // Fit H1, then reconstruct at the MLE.
    let options = AnalysisOptions {
        max_iterations: 80,
        grad_mode: GradMode::Forward,
        ..Default::default()
    };
    let analysis = Analysis::new(&tree, &aln, options).expect("inputs consistent");
    let fit = analysis.fit(Hypothesis::H1).expect("fit");
    println!("{}", fit.summary());

    let code = GeneticCode::universal();
    let problem = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::F3x4).unwrap();
    let rec = ancestral_reconstruction(
        &problem,
        &analysis.options().backend.config(),
        &fit.model,
        &fit.branch_lengths,
    )
    .expect("reconstruction");

    // Report the root's reconstruction with confidence per site.
    let root = problem.root;
    let best = rec.most_probable_codons(root, &code);
    println!("\nroot reconstruction ({} codons):", best.len());
    let mut confident = 0;
    for (i, r) in best.iter().enumerate() {
        if r.posterior > 0.95 {
            confident += 1;
        }
        if i < 10 {
            println!(
                "  site {:>2}: {} (posterior {:.3})",
                i + 1,
                r.codon.to_string_repr(),
                r.posterior
            );
        }
    }
    println!("  …");
    println!(
        "{confident}/{} sites reconstructed with posterior > 0.95",
        best.len()
    );

    // Internal nodes overall.
    let n_internal = (0..problem.children.len())
        .filter(|&n| rec.posteriors[n].is_some())
        .count();
    println!("reconstructed {n_internal} internal nodes");
}
