//! Quantifying uncertainty around the branch-site test: standard errors
//! (CodeML `getSE`) and the parametric bootstrap.
//!
//! ```text
//! cargo run --release --example uncertainty
//! ```

use slimcodeml::core::{
    parametric_bootstrap_lrt, Analysis, AnalysisOptions, Backend, BootstrapOptions,
    BranchSiteModel, Hypothesis,
};
use slimcodeml::opt::GradMode;
use slimcodeml::sim::{simulate_alignment, yule_tree};

fn main() {
    let tree = yule_tree(6, 0.2, 19);
    let truth = BranchSiteModel {
        kappa: 2.5,
        omega0: 0.15,
        omega2: 1.0,
        p0: 0.7,
        p1: 0.2,
    };
    let pi = vec![1.0 / 61.0; 61];
    let aln = simulate_alignment(&tree, &truth, &pi, 250, 8);

    let options = AnalysisOptions {
        backend: Backend::SlimPlus,
        max_iterations: 60,
        grad_mode: GradMode::Forward,
        ..Default::default()
    };

    // --- Standard errors at the H1 MLE. ---
    let analysis = Analysis::new(&tree, &aln, options.clone()).expect("inputs");
    let fit = analysis.fit(Hypothesis::H1).expect("fit");
    println!("{}", fit.summary());
    let se = analysis.standard_errors(&fit).expect("SEs");
    let show = |name: &str, v: f64, s: Option<f64>| match s {
        Some(s) => println!("  {name:<7} = {v:.4} ± {s:.4}"),
        None => println!("  {name:<7} = {v:.4} (SE unavailable: boundary/flat direction)"),
    };
    println!("\nobserved-information standard errors:");
    show("kappa", fit.model.kappa, se.kappa);
    show("omega0", fit.model.omega0, se.omega0);
    show("omega2", fit.model.omega2, se.omega2);
    show("p0", fit.model.p0, se.p0);
    show("p1", fit.model.p1, se.p1);

    // --- Parametric bootstrap of the LRT (small R for the demo). ---
    println!("\nparametric bootstrap (R = 10, simulating under the H0 MLE)…");
    let boot = BootstrapOptions {
        replicates: 10,
        seed: 33,
    };
    let result = parametric_bootstrap_lrt(&tree, &aln, &options, &boot).expect("bootstrap");
    println!("observed 2dlnL = {:.4}", result.observed_statistic);
    let mut sorted = result.null_statistics.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!("null statistics: {sorted:.4?}");
    println!(
        "bootstrap p = {:.3} (data simulated under the null, so expect non-significance)",
        result.p_value
    );
}
