//! Selectome-style whole-tree scan: test every branch for positive
//! selection.
//!
//! "CodeML … is the central component for populating the Selectome
//! database, which carries out genome-wide analyses of positive selection"
//! (§I-A); Selectome runs the branch-site test once per branch. This
//! example scans all branches of a simulated gene and prints the LRT table
//! — the workload whose cost the paper's optimizations target.
//!
//! ```text
//! cargo run --release --example branch_scan
//! ```

use slimcodeml::core::{scan_all_branches, AnalysisOptions, Backend, BranchSiteModel};
use slimcodeml::opt::GradMode;
use slimcodeml::sim::{simulate_alignment, yule_tree};

fn main() {
    // Simulate a 6-species gene with positive selection on whichever
    // branch the generator marked as foreground.
    let tree = yule_tree(6, 0.2, 21);
    let truth = BranchSiteModel {
        kappa: 2.0,
        omega0: 0.15,
        omega2: 5.0,
        p0: 0.55,
        p1: 0.3,
    };
    let pi = vec![1.0 / 61.0; 61];
    let aln = simulate_alignment(&tree, &truth, &pi, 300, 99);

    let true_fg = tree
        .foreground_branch()
        .expect("simulator marks one branch");
    println!(
        "simulated with positive selection on branch {} (child {})\n",
        true_fg.0,
        tree.node(true_fg)
            .name
            .clone()
            .unwrap_or_else(|| "internal".into())
    );

    let options = AnalysisOptions {
        backend: Backend::SlimPlus, // fastest backend for bulk scans
        max_iterations: 80,
        grad_mode: GradMode::Forward,
        ..Default::default()
    };

    let entries = scan_all_branches(&tree, &aln, &options).expect("scan succeeds");

    println!("branch  child       2dlnL      p-value   verdict");
    for e in &entries {
        println!(
            "{:<7} {:<11} {:<10.4} {:<9.5} {}",
            e.branch.0,
            e.child_name.clone().unwrap_or_else(|| "(internal)".into()),
            e.result.lrt.statistic,
            e.result.lrt.p_value,
            if e.result.lrt.significant_at(0.05) {
                "POSITIVE SELECTION"
            } else {
                "-"
            }
        );
    }

    let best = entries
        .iter()
        .min_by(|a, b| {
            a.result
                .lrt
                .p_value
                .partial_cmp(&b.result.lrt.p_value)
                .unwrap()
        })
        .unwrap();
    println!(
        "\nstrongest signal on branch {} (true foreground was {})",
        best.branch.0, true_fg.0
    );
}
