//! Quickstart: the smallest end-to-end positive-selection test.
//!
//! Mirrors the paper's Fig. 1 setup: a 5-species codon alignment and a
//! phylogenetic tree with one branch marked (`#1`) for testing. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use slimcodeml::bio::{parse_newick, CodonAlignment};
use slimcodeml::core::{Analysis, AnalysisOptions, Backend};

fn main() {
    // The Fig. 1 example: 5 species, 6 codons, foreground branch above the
    // (A, B, C) clade's ancestor... here above (A, B) to keep it interesting.
    let tree = parse_newick("(((A:0.1,B:0.1)#1:0.05,C:0.15):0.05,(D:0.12,E:0.12):0.08);")
        .expect("valid Newick");
    let aln = CodonAlignment::from_fasta(concat!(
        ">A\nCCCTACTGCCCCAAGGAG\n",
        ">B\nCCCTACTGCCCCAAGGAG\n",
        ">C\nCCCTACTGCCCCAAGGAG\n",
        ">D\nCCCTATTGCCCCAAGGAG\n",
        ">E\nCCCTACTGCACCAAGGAG\n",
    ))
    .expect("valid alignment");

    let options = AnalysisOptions {
        backend: Backend::Slim,
        max_iterations: 200,
        ..Default::default()
    };
    let analysis = Analysis::new(&tree, &aln, options).expect("consistent inputs");

    println!("Fitting H0 (no positive selection allowed) and H1 (ω2 free ≥ 1)…");
    let result = analysis.test_positive_selection().expect("fits succeed");

    println!("\n{}", result.h0.summary());
    println!("{}", result.h1.summary());
    println!(
        "\nLRT: 2ΔlnL = {:.4}, p = {:.4} → {}",
        result.lrt.statistic,
        result.lrt.p_value,
        if result.lrt.significant_at(0.05) {
            "positive selection detected on the marked branch"
        } else {
            "no significant signal (expected for this tiny conserved example)"
        }
    );

    println!("\nPer-site posterior probability of positive selection (NEB):");
    for (i, p) in result.site_posteriors.iter().enumerate() {
        println!("  codon {:>2}: {:.3}", i + 1, p);
    }
}
