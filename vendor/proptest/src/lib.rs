//! Vendored minimal stand-in for the `proptest` crate (see
//! `vendor/README.md`): the subset of the API this workspace's property
//! tests use — `proptest!`, `prop_assert!`/`prop_assert_eq!`,
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`/
//! `prop_recursive`, [`collection::vec`], range and tuple strategies,
//! and [`strategy::LazyJust`].
//!
//! Differences from upstream, deliberate for a hermetic build:
//! - **No shrinking.** A failing case panics with its case index; rerun
//!   is deterministic (see below), so the failing input is reproducible
//!   but not minimized.
//! - **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's module path and name, so every run samples the same cases —
//!   property tests behave like a fixed battery of regression cases.
//! - Sampling is plain uniform draws; there is no size-biasing or
//!   probability ramp in `prop_recursive`.

/// Assert a condition inside a `proptest!` body (early-`Err` return, so
/// it also works in helper functions returning
/// `Result<(), TestCaseError>`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // Float conditions are common here; the negated form is the
        // macro's contract, not a refactoring hazard.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test running `cases` sampled inputs. Attributes (including
/// `#[test]`) are written at the call site and passed through.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                let strategies = ($($strat,)+);
                for case in 0..config.cases {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::sample(&strategies, &mut rng);
                    let outcome = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        // check: allow(rob-unwrap) panicking is how a property test reports failure
                        panic!(
                            "proptest {}: case {}/{} failed: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

pub mod test_runner {
    //! Test configuration, failure type, and the deterministic RNG.

    use std::fmt;

    /// Per-block configuration (`cases` is the only knob implemented).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled inputs per test.
        pub cases: u32,
        /// Accepted for upstream signature compatibility; this stand-in
        /// never shrinks, so the value is unused.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property does not hold; the message explains why.
        Fail(String),
        /// The input was rejected (treated as a failure here — there is
        /// no resampling machinery).
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// Build a rejection with the given reason.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    /// Deterministic splitmix64 stream, seeded from the test's name so
    /// every run of a given test samples identical cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test identifier (FNV-1a hash of the name).
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits (splitmix64 step).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo bias < bound/2^64 — immaterial at test-input scale.
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use std::sync::Arc;

    /// A recipe for producing values of `Self::Value` from random bits.
    ///
    /// Unlike upstream there is no value-tree/shrinking layer: a
    /// strategy is just a sampler.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform produced values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Derive a second strategy from each produced value and sample
        /// from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Recursive strategy: `self` is the leaf case; `recurse` builds
        /// a composite from a strategy for the nested level. `depth`
        /// bounds nesting; the other two parameters (upstream's size
        /// controls) are accepted and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
        {
            Recursive {
                base: self.boxed(),
                recurse: Arc::new(move |inner| recurse(inner).boxed()),
                depth,
            }
        }

        /// Type-erase into a clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// Object-safe sampling facade behind [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A clonable, type-erased strategy handle.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    /// Always produce a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Produce values by calling a closure (fresh value each draw).
    #[derive(Debug, Clone)]
    pub struct LazyJust<F> {
        f: F,
    }

    impl<T, F: Fn() -> T> LazyJust<F> {
        /// Wrap the generator closure.
        pub fn new(f: F) -> LazyJust<F> {
            LazyJust { f }
        }
    }

    impl<T, F: Fn() -> T> Strategy for LazyJust<F> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            (self.f)()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_recursive`]. At each level: stop at the
    /// leaf with probability ½ (always at `depth` 0), else expand one
    /// nesting level.
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
        depth: u32,
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Recursive<T> {
            Recursive {
                base: self.base.clone(),
                recurse: Arc::clone(&self.recurse),
                depth: self.depth,
            }
        }
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            if self.depth == 0 || rng.next_u64().is_multiple_of(2) {
                self.base.sample(rng)
            } else {
                let inner = Recursive {
                    base: self.base.clone(),
                    recurse: Arc::clone(&self.recurse),
                    depth: self.depth - 1,
                }
                .boxed();
                (self.recurse)(inner).sample(rng)
            }
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, i64, i32);

    macro_rules! tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    // Left-to-right draw order, part of the deterministic
                    // sampling contract.
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Inclusive length bounds for [`vec`]; build from a `usize` (exact
    /// length) or a half-open `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        let s = (0usize..10, 0.0f64..1.0);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
        let mut c = TestRng::from_name("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn vec_and_ranges_respect_bounds() {
        let mut rng = TestRng::from_name("bounds");
        let s = crate::collection::vec(1usize..5, 2usize..9);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| (1..5).contains(&x)));
        }
        let exact = crate::collection::vec(0.0f64..1.0, 7usize);
        assert_eq!(exact.sample(&mut rng).len(), 7);
    }

    #[test]
    fn recursive_strategy_bottoms_out() {
        let leaf = crate::strategy::LazyJust::new(|| "L".to_string());
        let tree = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a},{b})"))
        });
        let mut rng = TestRng::from_name("rec");
        let mut saw_composite = false;
        for _ in 0..50 {
            let t = tree.sample(&mut rng);
            // Depth 3 with binary branching caps leaves at 2^3.
            assert!(t.matches('L').count() <= 8, "{t}");
            saw_composite |= t.contains('(');
        }
        assert!(saw_composite);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_and_asserts(x in 0usize..100, (a, b) in (0.0f64..1.0, 1.0f64..2.0)) {
            prop_assert!(x < 100);
            prop_assert!(a < b, "{a} vs {b}");
            prop_assert_eq!(x, x);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn prop_assert_failure_reports() {
        fn helper(v: usize) -> Result<(), TestCaseError> {
            prop_assert!(v < 3, "too big: {v}");
            Ok(())
        }
        assert!(helper(1).is_ok());
        let err = helper(9).unwrap_err();
        assert!(format!("{err}").contains("too big: 9"));
    }
}
