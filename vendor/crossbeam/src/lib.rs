//! Vendored minimal stand-in for the `crossbeam` crate.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the external dependencies are replaced by small local
//! crates exposing exactly the API surface the workspace uses (see
//! `vendor/README.md`). For `crossbeam` that is:
//!
//! * [`thread::scope`] with spawn closures receiving the scope handle,
//! * [`channel::unbounded`] — a multi-producer **multi-consumer** FIFO
//!   channel (std's `mpsc` receiver cannot be cloned, so this one is
//!   built on a mutex-guarded queue and a condvar).
//!
//! Semantics relied upon by the workspace and preserved here:
//! `scope` joins every spawned thread before returning (worker slot
//! writes are visible afterwards); `recv` blocks until an item arrives
//! or every sender is dropped; dropping all receivers makes `send` fail
//! so producers can bail out.

pub mod thread {
    //! Scoped threads over [`std::thread::scope`], with the crossbeam
    //! call shape (`scope(|s| ...)` returning `Result`, spawn closures
    //! taking `&Scope`).

    use std::any::Any;

    /// Handle passed to the scope closure and to every spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to this scope. The closure receives the
        /// scope handle (crossbeam's shape) so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope; every spawned thread is joined before this
    /// returns. A panic in a child propagates out of the join (the
    /// std behavior), so the `Ok` wrapper is unconditional — callers'
    /// `.expect(...)` never fires spuriously.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! An unbounded MPMC FIFO channel (mutex-guarded `VecDeque` +
    //! condvar). Performance is adequate for the workspace's use — a few
    //! hundred coarse work units per evaluation, not a hot loop.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent value like crossbeam's.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The producing endpoint; clone freely.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The consuming endpoint; clone freely (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a value; fails only when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut st = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            st.senders += 1;
            drop(st);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            st.senders -= 1;
            let none_left = st.senders == 0;
            drop(st);
            if none_left {
                // Wake blocked receivers so they observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the next value, blocking while the channel is empty
        /// and at least one sender is alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = match self.shared.ready.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        /// Blocking iterator over received values; ends at disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut st = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            st.receivers += 1;
            drop(st);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            st.receivers -= 1;
        }
    }

    /// See [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_slots_are_visible() {
        let mut slots = vec![0usize; 4];
        crate::thread::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    *slot = i + 1;
                });
            }
        })
        .unwrap();
        assert_eq!(slots, vec![1, 2, 3, 4]);
    }

    #[test]
    fn mpmc_channel_delivers_every_item_once() {
        let (tx, rx) = crate::channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total = std::sync::atomic::AtomicUsize::new(0);
        crate::thread::scope(|scope| {
            for _ in 0..4 {
                let rx = rx.clone();
                let total = &total;
                scope.spawn(move |_| {
                    while let Ok(v) = rx.recv() {
                        total.fetch_add(v + 1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        })
        .unwrap();
        // Σ (i+1) for 0..100 = 5050.
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 5050);
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = crate::channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn iter_drains_then_ends() {
        let (tx, rx) = crate::channel::unbounded::<u8>();
        tx.send(7).unwrap();
        tx.send(9).unwrap();
        drop(tx);
        let got: Vec<u8> = rx.iter().collect();
        assert_eq!(got, vec![7, 9]);
    }
}
