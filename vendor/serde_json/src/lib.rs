//! Vendored minimal stand-in for the `serde_json` crate (see
//! `vendor/README.md`).
//!
//! The workspace reads JSON exclusively through [`Value`]'s accessor API
//! and writes it either by hand (the batch layer's canonical writer) or
//! through [`to_string`]/[`to_string_pretty`] on a [`Value`] tree, so
//! this crate implements exactly that: a strict JSON parser into
//! [`Value`], ordered-by-key objects (`BTreeMap`, matching upstream's
//! deterministic `preserve_order`-off behavior), and a printer whose
//! float formatting is Rust's shortest-roundtrip `Display`.
//!
//! There is no serde data model and no derive support — types
//! (de)serialize themselves via `Value` trees.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation: keys sorted, deterministic iteration.
pub type Map = BTreeMap<String, Value>;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like upstream's lossy mode).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (keys sorted).
    Object(Map),
}

impl Value {
    /// Member access: `&str` keys index objects, `usize` indexes arrays;
    /// `None` on kind mismatch or absence.
    pub fn get<I: Index>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    /// The boolean, if this is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`, if this is `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64` if this is a non-negative integral `Number`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // check: allow(det-float-cmp) fract()==0.0 is the exact integrality test
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as `i64` if this is an integral `Number` in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n)
                // check: allow(det-float-cmp) fract()==0.0 is the exact integrality test
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The string slice, if this is `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element vector, if this is `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key→value map, if this is `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// `true` iff this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// `true` iff this is `Bool`.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// `true` iff this is `Number`.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// `true` iff this is `String`.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// `true` iff this is `Array`.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// `true` iff this is `Object`.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }
}

/// Keys usable with [`Value::get`].
pub trait Index {
    /// Resolve this key against a value.
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
}

impl Index for &str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        match v {
            Value::Object(m) => m.get(*self),
            _ => None,
        }
    }
}

impl Index for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        match v {
            Value::Array(a) => a.get(*self),
            _ => None,
        }
    }
}

/// Parse or print failure, with a byte offset for parse errors.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

/// Types constructible from a parsed [`Value`] (the stand-in for
/// serde's `DeserializeOwned`, so `from_str::<Value>` turbofish compiles
/// unchanged).
pub trait FromValue: Sized {
    /// Convert a parsed tree into `Self`.
    fn from_value(v: Value) -> Result<Self, Error>;
}

impl FromValue for Value {
    fn from_value(v: Value) -> Result<Value, Error> {
        Ok(v)
    }
}

/// Parse a JSON document (strict: one value, trailing whitespace only).
///
/// # Errors
/// Returns a positioned [`Error`] on malformed input.
pub fn from_str<T: FromValue>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    T::from_value(v)
}

/// Print compactly (no spaces, keys in map order).
///
/// # Errors
/// Infallible for tree input; `Result` kept for call-site compatibility.
pub fn to_string(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(v, None, 0, &mut out);
    Ok(out)
}

/// Print with two-space indentation (upstream's pretty format).
///
/// # Errors
/// Infallible for tree input; `Result` kept for call-site compatibility.
pub fn to_string_pretty(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(v, Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            if n.is_finite() {
                // Shortest-roundtrip Display: parses back bit-exactly.
                out.push_str(&format!("{n}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            write_seq(items.iter(), '[', ']', indent, depth, out, |item, out| {
                write_value(item, indent, depth + 1, out)
            })
        }
        Value::Object(map) => {
            write_seq(map.iter(), '{', '}', indent, depth, out, |(k, val), out| {
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out)
            })
        }
    }
}

fn write_seq<T, I: ExactSizeIterator<Item = T>>(
    items: I,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut write_item: impl FnMut(T, &mut String),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        write_item(item, out);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * depth));
        }
    }
    out.push(close);
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected '{'")?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                // Multi-byte UTF-8: pass the raw bytes through (the
                // input is a &str, so sequences are valid).
                _ => {
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            self.pos += 1;
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v: Value =
            from_str(r#"{"a": [1, 2.5, -3e2], "b": {"x": true, "y": null}, "s": "hi\n"}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.get(1)).and_then(Value::as_f64),
            Some(2.5)
        );
        assert_eq!(
            v.get("a").and_then(|a| a.get(2)).and_then(Value::as_f64),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("x")).and_then(Value::as_bool),
            Some(true)
        );
        assert!(v
            .get("b")
            .and_then(|b| b.get("y"))
            .is_some_and(Value::is_null));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi\n"));
        assert_eq!(v.get("a").and_then(Value::as_array).map(Vec::len), Some(3));
        assert!(v.as_object().is_some());
    }

    #[test]
    fn roundtrips_floats_bit_exactly() {
        let cases = [0.1, 1.0 / 3.0, -2.5e-300, 12345.6789, f64::MIN_POSITIVE];
        for x in cases {
            let text = to_string(&Value::Number(x)).unwrap();
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn integral_accessors() {
        let v: Value = from_str("[7, -1, 2.5]").unwrap();
        assert_eq!(v.get(0).and_then(Value::as_u64), Some(7));
        assert_eq!(v.get(1).and_then(Value::as_u64), None);
        assert_eq!(v.get(1).and_then(Value::as_i64), Some(-1));
        assert_eq!(v.get(2).and_then(Value::as_u64), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("true false").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn pretty_printing_shape() {
        let v: Value = from_str(r#"{"b": 1, "a": [true]}"#).unwrap();
        // Keys sort (BTreeMap), two-space indent.
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    true\n  ],\n  \"b\": 1\n}"
        );
        assert_eq!(to_string(&v).unwrap(), r#"{"a":[true],"b":1}"#);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀é""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀é"));
    }
}
