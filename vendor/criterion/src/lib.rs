//! Vendored minimal stand-in for the `criterion` crate (see
//! `vendor/README.md`): enough of the API for the workspace's
//! `harness = false` bench targets — `criterion_group!`/
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::{sample_size, bench_function, finish}`] and
//! [`Bencher::iter`].
//!
//! Measurement is a plain best-of-samples wall-clock loop (median and
//! minimum reported); there is no statistical regression machinery.
//! Numbers are indicative — the serious measurements in this repository
//! come from the `src/bin/` bench binaries, which have their own
//! calibrated timing loops.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Opaque-to-the-optimizer value wrapper (std's, re-exported for source
/// compatibility with `use criterion::black_box`).
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Entry point handed to each registered bench function.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench -- <substring>` filters benchmark names, matching
        // criterion's CLI behavior well enough for interactive use
        // (cargo itself passes only flag-style args like `--bench`).
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            filter: self.filter.clone(),
            _criterion: std::marker::PhantomData,
        }
    }
}

/// A named group; benchmarks run as `bench_function` is called.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    filter: Option<String>,
    _criterion: std::marker::PhantomData<&'c ()>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Measure one closure; prints median/min per-iteration time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            iters: 1,
            elapsed_ns: 0.0,
        };
        // Calibrate: grow the per-sample iteration count until one sample
        // takes ≳ 2 ms, so short kernels are not all timer noise.
        loop {
            b.elapsed_ns = 0.0;
            f(&mut b);
            if b.elapsed_ns >= 2e6 || b.iters >= (1 << 20) {
                break;
            }
            b.iters *= 4;
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed_ns = 0.0;
            f(&mut b);
            per_iter.push(b.elapsed_ns / b.iters as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        println!("{full:<60} median {} min {}", fmt_ns(median), fmt_ns(min));
        self
    }

    /// End the group (printing is incremental; this is a no-op kept for
    /// API compatibility).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:8.1} ns")
    } else if ns < 1e6 {
        format!("{:8.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:8.2} ms", ns / 1e6)
    } else {
        format!("{:8.2} s ", ns / 1e9)
    }
}

/// Timing handle: run the closure `iters` times inside one measured span.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Time `routine`, called `iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos() as f64;
    }
}

/// Register bench functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bencher_times_something() {
        let mut c = crate::Criterion { filter: None };
        let mut group = c.benchmark_group("t");
        group
            .sample_size(3)
            .bench_function("noop", |b| b.iter(|| crate::black_box(1 + 1)));
        group.finish();
    }
}
