//! Vendored minimal stand-in for the `rand` crate (see
//! `vendor/README.md`), exposing the surface the workspace uses:
//! `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and
//! [`Rng::{gen, gen_range}`] for `f64` and integer ranges.
//!
//! The generator is **not** stream-compatible with upstream rand's
//! `StdRng` (ChaCha12); it is xoshiro256++ seeded through splitmix64 —
//! deterministic, well-distributed, and stable across platforms, which
//! is the property the simulated datasets and golden snapshots rely on.
//! All golden fixtures in this repository were generated with this
//! generator.

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling surface: `gen()` for types with a standard distribution
/// and `gen_range(lo..hi)` for half-open ranges.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value with the standard distribution for `T` (`f64` in
    /// `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Sample uniformly from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut || self.next_u64())
    }
}

/// Types `gen()` can produce.
pub trait Standard {
    /// Map 64 random bits to a sample.
    fn sample(bits: u64) -> Self;
}

impl Standard for f64 {
    fn sample(bits: u64) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample(bits: u64) -> bool {
        bits >> 63 == 1
    }
}

/// Ranges `gen_range` accepts.
pub trait SampleRange<T> {
    /// Sample uniformly using the supplied bit source.
    fn sample(self, bits: &mut dyn FnMut() -> u64) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, bits: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = f64::sample(bits());
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, bits: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < span/2^64 — immaterial for the small
                // spans (tens of leaves / sequences) used here.
                self.start + (bits() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (seeded via splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion — the reference method for seeding
            // xoshiro state (never all-zero).
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_lie_in_unit_interval_and_vary() {
        let mut rng = StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u = rng.gen_range(1e-12..1.0f64);
            assert!((1e-12..1.0).contains(&u));
            let i = rng.gen_range(2usize..7);
            assert!((2..7).contains(&i));
        }
    }
}
