//! Vendored minimal stand-in for the `parking_lot` crate (see
//! `vendor/README.md`): a [`Mutex`] whose `lock()` returns the guard
//! directly — parking_lot's poison-free shape — implemented over
//! `std::sync::Mutex` by unwrapping poisoned locks into their inner
//! guard (the data is still consistent for the workspace's uses: caches
//! that are rebuilt on miss).

use std::sync::MutexGuard;

/// A mutual-exclusion lock with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, blocking; never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
