//! # slimcodeml
//!
//! Facade crate for the SlimCodeML reproduction (Schabauer et al.,
//! IPDPSW 2012): maximum-likelihood detection of positive selection on a
//! phylogenetic-tree branch under the branch-site codon model, with the
//! paper's optimized linear-algebra pipeline and its CodeML-style baseline
//! implemented side by side.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`linalg`] | `slim-linalg` | dense kernels (gemm/syrk/gemv/symv), symmetric eigensolvers |
//! | [`bio`] | `slim-bio` | genetic code, alignments, Newick trees, site patterns |
//! | [`model`] | `slim-model` | Eq. 1 codon rate matrices, branch-site model A |
//! | [`expm`] | `slim-expm` | `P(t) = e^{Qt}` via Eq. 9 / Eq. 10 / Eq. 12 |
//! | [`lik`] | `slim-lik` | Felsenstein pruning engine with selectable backends |
//! | [`opt`] | `slim-opt` | BFGS, transforms, numeric gradients, Brent |
//! | [`stat`] | `slim-stat` | χ², LRT (boundary mixture null), NEB posteriors |
//! | [`sim`] | `slim-sim` | Yule trees, BSM sequence simulation, Table II presets |
//! | [`core`] | `slim-core` | the public `Analysis` API |
//! | [`batch`] | `slim-batch` | multi-gene batch runs: manifest, worker pool, checkpoint/resume |
//! | [`obs`] | `slim-obs` | metrics registry: counters, gauges, histograms, span timers |
//! | [`trace`] | `slim-trace` | structured event tracing: flight recorder, Chrome trace export |
//!
//! ## Quickstart
//!
//! ```
//! use slimcodeml::core::{Analysis, AnalysisOptions};
//! use slimcodeml::bio::{parse_newick, CodonAlignment};
//!
//! let tree = parse_newick("((A:0.2,B:0.2)#1:0.1,C:0.3);").unwrap();
//! let aln = CodonAlignment::from_fasta(">A\nATGCCC\n>B\nATGCCA\n>C\nATGCCC\n").unwrap();
//! let options = AnalysisOptions { max_iterations: 5, ..Default::default() };
//! let analysis = Analysis::new(&tree, &aln, options).unwrap();
//! let fit = analysis.fit(slimcodeml::core::Hypothesis::H0).unwrap();
//! assert!(fit.lnl.is_finite());
//! ```

pub use slim_batch as batch;
pub use slim_bio as bio;
pub use slim_core as core;
pub use slim_expm as expm;
pub use slim_lik as lik;
pub use slim_linalg as linalg;
pub use slim_model as model;
pub use slim_obs as obs;
pub use slim_opt as opt;
pub use slim_sim as sim;
pub use slim_stat as stat;
pub use slim_trace as trace;
