//! `slimcodeml` binary entry point.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let invocation = match slim_cli::parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let config = match invocation {
        slim_cli::Invocation::Direct(c) => *c,
        slim_cli::Invocation::Batch(batch) => {
            return match slim_cli::run_batch(&batch) {
                Ok(summary) => {
                    print!("{summary}");
                    ExitCode::SUCCESS
                }
                Err(msg) => {
                    eprintln!("error: {msg}");
                    ExitCode::FAILURE
                }
            };
        }
        slim_cli::Invocation::TraceReport(path) => {
            return match slim_cli::run_trace_report(&path) {
                Ok(report) => {
                    print!("{report}");
                    ExitCode::SUCCESS
                }
                Err(msg) => {
                    eprintln!("error: {msg}");
                    ExitCode::FAILURE
                }
            };
        }
        slim_cli::Invocation::Ctl(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read control file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match slim_cli::ctl::parse_ctl(&text) {
                Ok(ctl) => slim_cli::CliConfig {
                    seq_path: ctl.seq_path,
                    tree_path: ctl.tree_path,
                    options: ctl.options,
                    scan: false,
                    workers: 1,
                    mode: ctl.mode,
                    timing: false,
                    metrics_path: None,
                    metrics_format: slim_cli::MetricsFormat::Json,
                    trace_path: None,
                },
                Err(msg) => {
                    eprintln!("control file error: {msg}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let seq_text = match std::fs::read_to_string(&config.seq_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", config.seq_path);
            return ExitCode::FAILURE;
        }
    };
    let tree_text = match std::fs::read_to_string(&config.tree_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", config.tree_path);
            return ExitCode::FAILURE;
        }
    };
    match slim_cli::run(&config, &seq_text, &tree_text) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
