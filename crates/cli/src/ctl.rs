//! CodeML-style control files.
//!
//! CodeML is driven by a `codeml.ctl` file of `key = value` lines
//! (§II of the paper: "a dedicated parameter file is read by CodeML to
//! set model parameters and corresponding optimization options"). This
//! module accepts the subset of that format relevant to the tests this
//! reproduction implements:
//!
//! ```text
//! seqfile   = gene.fasta       * codon alignment (FASTA or PHYLIP)
//! treefile  = gene.nwk         * Newick, foreground marked #1
//! model     = 2                * 2 = branch(-site) models, 0 = site models
//! NSsites   = 2                * 2 with model=2 → branch-site model A
//! CodonFreq = 2                * 0=equal 1=F1x4 2=F3x4 3=F61
//! seed      = 1                * RNG seed for starting values
//! ```
//!
//! `model = 2, NSsites = 2` selects the branch-site test (H0 + H1, the
//! paper's workload); `model = 0, NSsites = 1 2` selects the M1a/M2a
//! sites test. `*` starts a comment, as in PAML.

use slim_bio::FreqModel;
use slim_core::AnalysisOptions;

/// Which analysis a control file requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtlMode {
    /// Branch-site model A test (H0 vs H1).
    BranchSite,
    /// M1a vs M2a sites test.
    Sites,
}

/// Parsed control file.
#[derive(Debug, Clone)]
pub struct CtlConfig {
    /// Alignment path (`seqfile`).
    pub seq_path: String,
    /// Tree path (`treefile`).
    pub tree_path: String,
    /// Selected analysis.
    pub mode: CtlMode,
    /// Assembled options.
    pub options: AnalysisOptions,
}

/// Parse a control-file text.
///
/// # Errors
/// Human-readable message naming the offending line/key.
pub fn parse_ctl(text: &str) -> Result<CtlConfig, String> {
    let mut seqfile = None;
    let mut treefile = None;
    let mut model: i64 = 2;
    let mut nssites: Vec<i64> = vec![2];
    let mut options = AnalysisOptions::default();

    for (lineno, raw) in text.lines().enumerate() {
        // Strip PAML-style '*' comments.
        let line = raw.split('*').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "line {}: expected `key = value`, got {raw:?}",
                lineno + 1
            ));
        };
        let key = key.trim();
        let value = value.trim();
        let parse_int = |v: &str| -> Result<i64, String> {
            v.parse()
                .map_err(|_| format!("line {}: bad integer {v:?} for {key}", lineno + 1))
        };
        match key {
            "seqfile" => seqfile = Some(value.to_string()),
            "treefile" => treefile = Some(value.to_string()),
            "outfile" => {} // accepted for compatibility; output goes to stdout
            "model" => model = parse_int(value)?,
            "NSsites" => {
                nssites = value
                    .split_whitespace()
                    .map(parse_int)
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "CodonFreq" => {
                options.freq_model = match parse_int(value)? {
                    0 => FreqModel::Equal,
                    1 => FreqModel::F1x4,
                    2 => FreqModel::F3x4,
                    3 => FreqModel::F61,
                    other => {
                        return Err(format!(
                            "line {}: CodonFreq = {other} unsupported",
                            lineno + 1
                        ))
                    }
                };
            }
            "seed" => options.seed = parse_int(value)? as u64,
            "icode" => {
                options.genetic_code = match parse_int(value)? {
                    0 => slim_bio::GeneticCode::universal(),
                    1 => slim_bio::GeneticCode::vertebrate_mitochondrial(),
                    other => {
                        return Err(format!(
                            "line {}: icode = {other} unsupported (0|1)",
                            lineno + 1
                        ))
                    }
                };
            }
            "maxiter" => options.max_iterations = parse_int(value)? as usize,
            // Commonly present CodeML keys that this reproduction either
            // fixes implicitly (the H0/H1 pair is always run) or ignores.
            "noisy" | "verbose" | "runmode" | "seqtype" | "clock" | "getSE" | "RateAncestor"
            | "fix_kappa" | "kappa" | "fix_omega" | "omega" | "cleandata" | "fix_blength"
            | "method" | "Small_Diff" | "ndata" | "aaDist" => {}
            other => {
                return Err(format!(
                    "line {}: unknown control key {other:?}",
                    lineno + 1
                ))
            }
        }
    }

    let mode = match (model, nssites.as_slice()) {
        (2, ns) if ns.contains(&2) => CtlMode::BranchSite,
        (0, ns) if ns.contains(&1) || ns.contains(&2) => CtlMode::Sites,
        (m, ns) => {
            return Err(format!(
                "unsupported combination model = {m}, NSsites = {ns:?} \
                 (supported: model=2 NSsites=2 → branch-site; model=0 NSsites=1 2 → M1a/M2a)"
            ))
        }
    };

    Ok(CtlConfig {
        seq_path: seqfile.ok_or("control file missing `seqfile`")?,
        tree_path: treefile.ok_or("control file missing `treefile`")?,
        mode,
        options,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASIC: &str = "\
        seqfile = gene.fasta  * the alignment\n\
        treefile = gene.nwk\n\
        outfile = mlc\n\
        model = 2\n\
        NSsites = 2\n\
        CodonFreq = 3\n\
        seed = 7\n";

    #[test]
    fn parses_branch_site_ctl() {
        let c = parse_ctl(BASIC).unwrap();
        assert_eq!(c.seq_path, "gene.fasta");
        assert_eq!(c.tree_path, "gene.nwk");
        assert_eq!(c.mode, CtlMode::BranchSite);
        assert_eq!(c.options.freq_model, FreqModel::F61);
        assert_eq!(c.options.seed, 7);
    }

    #[test]
    fn parses_sites_ctl() {
        let text = "seqfile=a.fa\ntreefile=t.nwk\nmodel = 0\nNSsites = 1 2\n";
        let c = parse_ctl(text).unwrap();
        assert_eq!(c.mode, CtlMode::Sites);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "* a full comment line\n\nseqfile = a.fa * trailing\ntreefile = t.nwk\n";
        let c = parse_ctl(text).unwrap();
        assert_eq!(c.seq_path, "a.fa");
    }

    #[test]
    fn known_ignored_keys_pass() {
        let text = "seqfile=a\ntreefile=t\nnoisy = 9\ncleandata = 1\nfix_omega = 0\nomega = 1.5\n";
        assert!(parse_ctl(text).is_ok());
        let mito = parse_ctl("seqfile=a\ntreefile=t\nicode = 1\n").unwrap();
        assert_eq!(mito.options.genetic_code.n_sense(), 60);
        assert!(parse_ctl("seqfile=a\ntreefile=t\nicode = 5\n").is_err());
    }

    #[test]
    fn errors() {
        assert!(parse_ctl("treefile = t\n").unwrap_err().contains("seqfile"));
        assert!(parse_ctl("seqfile = a\ntreefile = t\nwat = 1\n")
            .unwrap_err()
            .contains("wat"));
        assert!(parse_ctl("seqfile = a\ntreefile = t\nmodel = 7\n")
            .unwrap_err()
            .contains("unsupported"));
        assert!(parse_ctl("seqfile = a\ntreefile = t\njust a line\n").is_err());
        assert!(parse_ctl("seqfile = a\ntreefile = t\nCodonFreq = 9\n").is_err());
    }
}
