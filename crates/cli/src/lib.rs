//! # slim-cli
//!
//! Command-line front end mirroring CodeML's workflow: read a codon
//! alignment (FASTA or PHYLIP), a Newick tree with the foreground branch
//! marked `#1`, run the H0/H1 branch-site fits, and report the LRT and
//! positively-selected sites.
//!
//! ```text
//! slimcodeml --seq aln.fasta --tree tree.nwk [--backend slim|codeml|slim+|eq12]
//!            [--freq f3x4|f61|f1x4|equal] [--seed N] [--max-iter N] [--scan]
//!            [--timing] [--metrics out.json] [--metrics-format json|prom]
//!            [--trace out.trace.json]
//! slimcodeml batch manifest.json [--workers N] [--retries N] [--resume]
//!            [--out PREFIX] [--timing] [--metrics out.json] [--trace out.trace.json]
//! slimcodeml trace-report out.trace.json
//! ```
//!
//! Observability: `--timing` prints a per-phase wall-clock breakdown
//! accumulated over the whole fit, and `--metrics <path>` writes a
//! `slim-obs` registry snapshot (JSON by default, Prometheus text with
//! `--metrics-format prom`) covering the optimizer, likelihood engine,
//! expm cache, and batch runner. Setting `SLIMCODEML_METRICS` to a
//! truthy value enables collection without any flag.
//!
//! Tracing: `--trace <path>` records ordered `slim-trace` events through
//! the whole pipeline and writes a Chrome Trace Event Format JSON
//! document for Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`; `trace-report <file>` summarizes such a file
//! into a per-iteration convergence table and a critical-path
//! breakdown. Both `--metrics` and `--trace` accept `-` for stdout.
//!
//! The `batch` subcommand drives `slim-batch`: a manifest of gene
//! families is expanded into jobs, fanned across a worker pool with
//! retry and quarantine, checkpointed to `<PREFIX>.journal.jsonl`, and
//! aggregated into `<PREFIX>.tsv` + `<PREFIX>.json`.

pub mod ctl;

use ctl::CtlMode;
use slim_bio::{parse_newick, CodonAlignment, FreqModel, Tree};
use slim_core::{sites_test, Analysis, AnalysisOptions, Backend};
use slim_lik::SimdMode;
use slim_obs::Snapshot;
use slim_opt::GradMode;
use std::path::PathBuf;

/// Output format of the `--metrics <path>` snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// `slimcodeml.metrics.v1` JSON document (the default).
    #[default]
    Json,
    /// Prometheus text exposition.
    Prom,
}

impl MetricsFormat {
    /// Parse a `--metrics-format` value (`json` or `prom`).
    pub fn from_str_opt(s: &str) -> Option<MetricsFormat> {
        match s.to_ascii_lowercase().as_str() {
            "json" => Some(MetricsFormat::Json),
            "prom" | "prometheus" => Some(MetricsFormat::Prom),
            _ => None,
        }
    }
}

/// Parsed command-line configuration.
#[derive(Debug, Clone)]
pub struct CliConfig {
    /// Alignment file path.
    pub seq_path: String,
    /// Tree file path.
    pub tree_path: String,
    /// Analysis options assembled from flags.
    pub options: AnalysisOptions,
    /// Scan every branch instead of using the `#1` mark.
    pub scan: bool,
    /// Worker threads for `--scan` (each branch is an independent job).
    pub workers: usize,
    /// Which test to run (branch-site by default; `--sites` or a control
    /// file with `model = 0` selects M1a/M2a).
    pub mode: CtlMode,
    /// Print a per-phase wall-clock breakdown (eigen / expm / pruning /
    /// reduction) accumulated over every likelihood evaluation of the
    /// whole H0 + H1 fit.
    pub timing: bool,
    /// Write a metrics snapshot to this path after the run.
    pub metrics_path: Option<String>,
    /// Format of the `--metrics` snapshot.
    pub metrics_format: MetricsFormat,
    /// Write a Chrome Trace Event Format JSON trace to this path after
    /// the run (`-` = stdout).
    pub trace_path: Option<String>,
}

/// Configuration of the `batch` subcommand.
#[derive(Debug, Clone)]
pub struct BatchCliConfig {
    /// Manifest file path.
    pub manifest_path: String,
    /// Worker threads.
    pub workers: usize,
    /// Extra attempts per job for recoverable failures.
    pub retries: usize,
    /// Continue from the checkpoint journal.
    pub resume: bool,
    /// Output prefix: writes `<prefix>.tsv`, `<prefix>.json`, and the
    /// journal `<prefix>.journal.jsonl`.
    pub out_prefix: String,
    /// Include wall-clock timing (and journal provenance) in the JSON
    /// report plus eigen-cache hit/miss columns in the TSV; off by
    /// default so output is deterministic.
    pub timing: bool,
    /// Write a metrics snapshot to this path after the run.
    pub metrics_path: Option<String>,
    /// Format of the `--metrics` snapshot.
    pub metrics_format: MetricsFormat,
    /// Write a Chrome Trace Event Format JSON trace to this path after
    /// the run (`-` = stdout).
    pub trace_path: Option<String>,
}

/// How the program was invoked: direct flags, a CodeML control file, the
/// `batch` subcommand, or the `trace-report` summarizer.
#[derive(Debug, Clone)]
pub enum Invocation {
    /// All inputs given as flags.
    Direct(Box<CliConfig>),
    /// `--ctl <path>`: read a codeml.ctl-style file.
    Ctl(String),
    /// `batch <manifest.json> ...`.
    Batch(BatchCliConfig),
    /// `trace-report <trace.json>`: summarize an emitted trace.
    TraceReport(String),
}

/// Parse argv-style arguments (excluding the program name).
///
/// # Errors
/// A human-readable message describing the flag problem.
pub fn parse_args(args: &[String]) -> Result<Invocation, String> {
    if args.first().map(String::as_str) == Some("batch") {
        return parse_batch_args(&args[1..]).map(Invocation::Batch);
    }
    if args.first().map(String::as_str) == Some("trace-report") {
        return match args.get(1) {
            Some(path) if args.len() == 2 => Ok(Invocation::TraceReport(path.clone())),
            Some(_) => Err(format!("trace-report takes exactly one path\n{}", usage())),
            None => Err(format!(
                "trace-report requires a trace file path\n{}",
                usage()
            )),
        };
    }
    let mut seq_path = None;
    let mut tree_path = None;
    let mut options = AnalysisOptions::default();
    let mut scan = false;
    let mut workers = 1usize;
    let mut mode = CtlMode::BranchSite;
    let mut timing = false;
    let mut metrics_path = None;
    let mut metrics_format = MetricsFormat::default();
    let mut trace_path = None;

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let mut take_value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match arg.as_str() {
            "--seq" | "-s" => seq_path = Some(take_value("--seq")?),
            "--tree" | "-t" => tree_path = Some(take_value("--tree")?),
            "--backend" | "-b" => {
                let v = take_value("--backend")?;
                options.backend = Backend::from_str_opt(&v)
                    .ok_or_else(|| format!("unknown backend {v:?} (codeml|slim|slim+|eq12)"))?;
            }
            "--freq" | "-f" => {
                let v = take_value("--freq")?;
                options.freq_model = FreqModel::from_str_opt(&v)
                    .ok_or_else(|| format!("unknown frequency model {v:?}"))?;
            }
            "--seed" => {
                options.seed = take_value("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed value".to_string())?;
            }
            "--max-iter" => {
                options.max_iterations = take_value("--max-iter")?
                    .parse()
                    .map_err(|_| "bad --max-iter value".to_string())?;
            }
            "--forward-grad" => options.grad_mode = GradMode::Forward,
            "--mito" => options.genetic_code = slim_bio::GeneticCode::vertebrate_mitochondrial(),
            "--scan" => scan = true,
            "--workers" | "-w" => {
                workers = take_value("--workers")?
                    .parse()
                    .ok()
                    .filter(|&w: &usize| w >= 1)
                    .ok_or_else(|| "bad --workers value (need an integer ≥ 1)".to_string())?;
            }
            "--threads" => {
                // 0 = auto (available_parallelism); any value is
                // bit-identical to serial by the slim-par determinism
                // contract.
                options.threads = Some(
                    take_value("--threads")?
                        .parse()
                        .map_err(|_| "bad --threads value (need an integer, 0 = auto)")?,
                );
            }
            "--simd" => {
                // Forcing any mode is safe: every backend computes
                // bit-identical likelihoods (the kernels vectorize across
                // independent outputs only), and an unsupported force
                // falls back to scalar.
                let v = take_value("--simd")?;
                options.simd = SimdMode::parse(&v)
                    .ok_or_else(|| format!("unknown simd mode {v:?} (auto|scalar|avx2|neon)"))?;
            }
            "--timing" => timing = true,
            // Cross-evaluation partial-likelihood reuse: on by default for
            // the Slim backends (bit-identical by contract), off for the
            // CodeML-style profile. The flags override both the backend
            // default and SLIMCODEML_REUSE.
            "--reuse" => options.reuse = Some(true),
            "--no-reuse" => options.reuse = Some(false),
            "--metrics" => metrics_path = Some(take_value("--metrics")?),
            "--metrics-format" => {
                let v = take_value("--metrics-format")?;
                metrics_format = MetricsFormat::from_str_opt(&v)
                    .ok_or_else(|| format!("unknown metrics format {v:?} (json|prom)"))?;
            }
            "--trace" => trace_path = Some(take_value("--trace")?),
            "--sites" => mode = CtlMode::Sites,
            "--ctl" => return Ok(Invocation::Ctl(take_value("--ctl")?)),
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(Invocation::Direct(Box::new(CliConfig {
        seq_path: seq_path.ok_or_else(|| format!("--seq is required\n{}", usage()))?,
        tree_path: tree_path.ok_or_else(|| format!("--tree is required\n{}", usage()))?,
        options,
        scan,
        workers,
        mode,
        timing,
        metrics_path,
        metrics_format,
        trace_path,
    })))
}

fn parse_batch_args(args: &[String]) -> Result<BatchCliConfig, String> {
    let mut manifest_path = None;
    let mut workers = 1usize;
    let mut retries = 1usize;
    let mut resume = false;
    let mut out_prefix = None;
    let mut timing = false;
    let mut metrics_path = None;
    let mut metrics_format = MetricsFormat::default();
    let mut trace_path = None;

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let mut take_value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match arg.as_str() {
            "--workers" | "-w" => {
                workers = take_value("--workers")?
                    .parse()
                    .ok()
                    .filter(|&w: &usize| w >= 1)
                    .ok_or_else(|| "bad --workers value (need an integer ≥ 1)".to_string())?;
            }
            "--retries" => {
                retries = take_value("--retries")?
                    .parse()
                    .map_err(|_| "bad --retries value".to_string())?;
            }
            "--resume" => resume = true,
            "--out" | "-o" => out_prefix = Some(take_value("--out")?),
            "--timing" => timing = true,
            "--metrics" => metrics_path = Some(take_value("--metrics")?),
            "--metrics-format" => {
                let v = take_value("--metrics-format")?;
                metrics_format = MetricsFormat::from_str_opt(&v)
                    .ok_or_else(|| format!("unknown metrics format {v:?} (json|prom)"))?;
            }
            "--trace" => trace_path = Some(take_value("--trace")?),
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                return Err(format!("unknown batch flag {other:?}\n{}", usage()));
            }
            positional => {
                if manifest_path.replace(positional.to_string()).is_some() {
                    return Err(format!(
                        "unexpected extra argument {positional:?}\n{}",
                        usage()
                    ));
                }
            }
        }
    }
    let manifest_path =
        manifest_path.ok_or_else(|| format!("batch requires a manifest path\n{}", usage()))?;
    // Default the output prefix to `<manifest sans extension>.batch`, so
    // reports land next to the inputs. The `.batch` suffix keeps
    // `<prefix>.json` from colliding with the manifest itself.
    let out_prefix = out_prefix.unwrap_or_else(|| {
        let p = PathBuf::from(&manifest_path);
        format!("{}.batch", p.with_extension("").to_string_lossy())
    });
    Ok(BatchCliConfig {
        manifest_path,
        workers,
        retries,
        resume,
        out_prefix,
        timing,
        metrics_path,
        metrics_format,
        trace_path,
    })
}

/// Eagerly register every metric of the four instrumented layers
/// (optimizer, likelihood engine, expm cache, batch runner), so a
/// `--metrics` snapshot always lists the full schema even for metrics
/// that never fired during the run.
pub fn register_all_metrics() {
    slim_opt::register_metrics();
    slim_lik::register_metrics();
    slim_expm::register_metrics();
    slim_batch::register_metrics();
}

/// Turn metric collection on when the invocation needs it (`--timing`,
/// `--metrics`, or the `SLIMCODEML_METRICS` env var) and return a
/// baseline snapshot for delta reporting, or `None` when collection
/// stays off.
fn metrics_setup(timing: bool, metrics_path: Option<&String>) -> Option<Snapshot> {
    let collect = timing || metrics_path.is_some() || slim_obs::enabled();
    if !collect {
        return None;
    }
    slim_obs::set_enabled(true);
    register_all_metrics();
    Some(slim_obs::snapshot())
}

/// Write `text` to `path`, where `-` means stdout.
fn write_output(path: &str, text: &str, what: &str) -> Result<(), String> {
    if path == "-" {
        use std::io::Write;
        let mut out = std::io::stdout().lock();
        out.write_all(text.as_bytes())
            .and_then(|()| out.flush())
            .map_err(|e| format!("cannot write {what} to stdout: {e}"))
    } else {
        std::fs::write(path, text).map_err(|e| format!("cannot write {what} file {path}: {e}"))
    }
}

/// Write the global registry snapshot to `path` (`-` = stdout) in the
/// requested format.
fn write_metrics_file(path: &str, format: MetricsFormat) -> Result<(), String> {
    let snap = slim_obs::snapshot();
    let text = match format {
        MetricsFormat::Json => snap.to_json(),
        MetricsFormat::Prom => snap.to_prometheus(),
    };
    write_output(path, &text, "metrics")
}

/// Turn event tracing on when `--trace` was given (the
/// `SLIMCODEML_TRACE` env var enables the flight recorder without any
/// flag, but only `--trace` exports a file). Clears the ring so the
/// trace covers exactly this run.
fn trace_setup(trace_path: Option<&String>) {
    if trace_path.is_some() {
        slim_trace::set_enabled(true);
        slim_trace::clear();
    }
}

/// Drain the flight recorder and write a Chrome Trace Event Format JSON
/// document to `path` (`-` = stdout). Load it in Perfetto
/// (<https://ui.perfetto.dev>) or `chrome://tracing`.
fn write_trace_file(path: &str) -> Result<(), String> {
    let (events, dropped) = slim_trace::take_events();
    let json = slim_trace::chrome_trace_json(&events, dropped);
    write_output(path, &json, "trace")
}

/// Run the `batch` subcommand: execute the manifest, write
/// `<prefix>.tsv` and `<prefix>.json`, and return a human-readable
/// summary for stdout.
///
/// # Errors
/// A human-readable message on manifest/journal/IO failure. Per-job
/// failures do not error — they are quarantined in the reports.
pub fn run_batch(config: &BatchCliConfig) -> Result<String, String> {
    metrics_setup(config.timing, config.metrics_path.as_ref());
    trace_setup(config.trace_path.as_ref());
    let run_config = slim_batch::RunConfig {
        workers: config.workers,
        retries: config.retries,
        resume: config.resume,
        journal_path: PathBuf::from(format!("{}.journal.jsonl", config.out_prefix)),
        ..slim_batch::RunConfig::default()
    };
    let report = slim_batch::run_batch(std::path::Path::new(&config.manifest_path), &run_config)
        .map_err(|e| e.to_string())?;

    let tsv_path = format!("{}.tsv", config.out_prefix);
    let json_path = format!("{}.json", config.out_prefix);
    if json_path == config.manifest_path || tsv_path == config.manifest_path {
        return Err(format!(
            "output prefix {:?} would overwrite the manifest {:?}; pick another --out",
            config.out_prefix, config.manifest_path
        ));
    }
    std::fs::write(&tsv_path, report.to_tsv_with(config.timing))
        .map_err(|e| format!("cannot write {tsv_path}: {e}"))?;
    std::fs::write(&json_path, report.to_json(config.timing))
        .map_err(|e| format!("cannot write {json_path}: {e}"))?;
    if let Some(path) = &config.metrics_path {
        write_metrics_file(path, config.metrics_format)?;
    }
    if let Some(path) = &config.trace_path {
        write_trace_file(path)?;
    }

    let s = &report.summary;
    let mut out = format!(
        "batch: {} jobs — {} done, {} failed, {} cancelled ({} retried, {} from journal) \
         in {:.1}s on {} worker{}\n",
        s.total,
        s.done,
        s.failed,
        s.cancelled,
        s.retried,
        s.from_journal,
        s.wall_seconds,
        config.workers,
        if config.workers == 1 { "" } else { "s" }
    );
    for rec in &report.records {
        if let Err(f) = &rec.outcome {
            out.push_str(&format!(
                "  quarantined {} after {} attempt{}: {}\n",
                rec.key,
                rec.attempts,
                if rec.attempts == 1 { "" } else { "s" },
                f.error
            ));
        }
    }
    out.push_str(&format!("reports: {tsv_path}, {json_path}\n"));
    Ok(out)
}

/// Run the `trace-report` subcommand: parse a `--trace` JSON file back
/// into events and render the convergence table plus the critical-path
/// breakdown.
///
/// # Errors
/// A human-readable message on IO failure or a file that is not a
/// slimcodeml Chrome Trace Event Format document.
pub fn run_trace_report(path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace file {path}: {e}"))?;
    let doc: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .ok_or_else(|| format!("{path} has no \"traceEvents\" array (not a --trace output?)"))?;
    let mut recorded = Vec::with_capacity(events.len());
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(serde_json::Value::as_str)
            .unwrap_or("");
        // Metadata ("M") and any foreign phases are skipped: the report
        // only consumes B/E spans and instants.
        if !matches!(ph, "B" | "E" | "i") {
            continue;
        }
        let mut rec = slim_trace::report::RecordedEvent {
            name: ev
                .get("name")
                .and_then(serde_json::Value::as_str)
                .unwrap_or("")
                .to_string(),
            cat: ev
                .get("cat")
                .and_then(serde_json::Value::as_str)
                .unwrap_or("")
                .to_string(),
            ph: ph.chars().next().unwrap_or('i'),
            ts_us: ev
                .get("ts")
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(0),
            tid: ev
                .get("tid")
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(0),
            num_args: Vec::new(),
            str_args: Vec::new(),
        };
        if let Some(args) = ev.get("args").and_then(serde_json::Value::as_object) {
            for (k, v) in args {
                if let Some(x) = v.as_f64() {
                    rec.num_args.push((k.clone(), x));
                } else if let Some(b) = v.as_bool() {
                    rec.num_args.push((k.clone(), if b { 1.0 } else { 0.0 }));
                } else if let Some(s) = v.as_str() {
                    rec.str_args.push((k.clone(), s.to_string()));
                }
            }
        }
        recorded.push(rec);
    }
    if recorded.is_empty() {
        return Err(format!("{path}: trace contains no events"));
    }
    Ok(slim_trace::report::render_report(&recorded))
}

/// Render the per-phase wall-clock breakdown (`--timing`): the delta
/// between the pre-fit `baseline` registry snapshot and now, i.e. the
/// time accumulated across *every* likelihood evaluation of the H0 and
/// H1 fits (earlier versions timed a single extra evaluation at the H1
/// optimum; the header names the new semantics).
fn timing_report(analysis: &Analysis, baseline: &Snapshot) -> String {
    let after = slim_obs::snapshot();
    let sum = |name: &str| {
        let at = |s: &Snapshot| s.histogram(name).map_or(0.0, |h| h.sum_seconds);
        (at(&after) - at(baseline)).max(0.0)
    };
    let count = |name: &str| {
        after
            .counter(name)
            .unwrap_or(0)
            .saturating_sub(baseline.counter(name).unwrap_or(0))
    };
    let eigen = sum("lik.phase.eigen_seconds");
    let expm = sum("lik.phase.expm_seconds");
    let pruning = sum("lik.phase.pruning_seconds");
    let reduction = sum("lik.phase.reduction_seconds");
    let threads = analysis.engine_config().resolved_threads();
    let simd = slim_lik::simd::resolve(analysis.engine_config().simd);
    let mut out = format!(
        "\ntiming (cumulative over the H0 + H1 fits, {} likelihood evaluations, \
         {} thread{}):\n  \
         eigen      {:>9.3} ms\n  \
         expm       {:>9.3} ms\n  \
         pruning    {:>9.3} ms\n  \
         reduction  {:>9.3} ms\n  \
         total      {:>9.3} ms\n",
        count("lik.evaluations"),
        threads,
        if threads == 1 { "" } else { "s" },
        eigen * 1e3,
        expm * 1e3,
        pruning * 1e3,
        reduction * 1e3,
        (eigen + expm + pruning + reduction) * 1e3,
    );
    match analysis.eigen_cache_stats() {
        Some((hits, misses)) => {
            let total = hits + misses;
            let rate = if total > 0 {
                hits as f64 / total as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  eigen cache: {hits} hit{} / {misses} miss{} ({:.1}% hit rate)\n",
                if hits == 1 { "" } else { "s" },
                if misses == 1 { "" } else { "es" },
                rate * 100.0,
            ));
        }
        None => out.push_str("  eigen cache: off (backend runs without a cache)\n"),
    }
    if analysis.options().reuse_enabled() {
        let reused = count("lik.reuse.units_reused");
        let recomputed = count("lik.reuse.units_recomputed");
        let total = reused + recomputed;
        // 0/0 → 0.0: a reuse-enabled run with no CPV blocks at all (e.g.
        // zero evaluations) must not print NaN.
        let rate = if total > 0 {
            reused as f64 / total as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "  reuse: {reused} CPV block{} reused / {recomputed} recomputed \
             ({:.1}% hit rate, {} full invalidation{})\n",
            if reused == 1 { "" } else { "s" },
            rate * 100.0,
            count("lik.reuse.full_invalidations"),
            if count("lik.reuse.full_invalidations") == 1 {
                ""
            } else {
                "s"
            },
        ));
    } else {
        out.push_str("  reuse: off\n");
    }
    out.push_str(&format!(
        "  simd: {} ({} lane{})\n",
        simd.name(),
        simd.lanes(),
        if simd.lanes() == 1 { "" } else { "s" },
    ));
    out
}

/// Usage text.
pub fn usage() -> String {
    "usage: slimcodeml --seq <aln.fasta|aln.phy> --tree <tree.nwk> \
     [--backend codeml|slim|slim+|eq12|slim-par] [--freq equal|f1x4|f3x4|f61] \
     [--seed N] [--max-iter N] [--forward-grad] [--threads N] \
     [--simd auto|scalar|avx2|neon] [--reuse|--no-reuse] [--timing] \
     [--metrics <path>] [--metrics-format json|prom] [--trace <path>] \
     [--scan] [--workers N] [--sites]\n\
       or: slimcodeml --ctl <codeml.ctl>\n\
       or: slimcodeml batch <manifest.json> [--workers N] [--retries N] \
     [--resume] [--out PREFIX] [--timing] [--metrics <path>] \
     [--metrics-format json|prom] [--trace <path>]\n\
       or: slimcodeml trace-report <trace.json>\n\
     (--metrics/--trace accept \"-\" for stdout; --trace writes Chrome \
     Trace Event Format JSON for Perfetto / chrome://tracing; \
     SLIMCODEML_METRICS=1 / SLIMCODEML_TRACE=1 enable collection \
     without flags)"
        .to_string()
}

/// Load an alignment, sniffing FASTA vs PHYLIP from the first byte.
///
/// # Errors
/// A human-readable parse/IO message.
pub fn load_alignment(text: &str) -> Result<CodonAlignment, String> {
    load_alignment_with_code(text, &slim_bio::GeneticCode::universal())
}

/// Like [`load_alignment`] but validating stops under an explicit genetic
/// code (the `--mito` / `icode = 1` path).
///
/// # Errors
/// A human-readable parse message.
pub fn load_alignment_with_code(
    text: &str,
    code: &slim_bio::GeneticCode,
) -> Result<CodonAlignment, String> {
    let trimmed = text.trim_start();
    if slim_bio::is_nexus(text) {
        // NEXUS matrices are validated under the universal code at parse
        // time; re-validate under the requested code.
        let aln = slim_bio::parse_nexus_alignment(text).map_err(|e| e.to_string())?;
        let names = aln.names().to_vec();
        let seqs = (0..aln.n_sequences())
            .map(|i| aln.sequence(i).to_vec())
            .collect();
        CodonAlignment::new_with_code(names, seqs, code).map_err(|e| e.to_string())
    } else if trimmed.starts_with('>') {
        CodonAlignment::from_fasta_with_code(text, code).map_err(|e| e.to_string())
    } else {
        CodonAlignment::from_phylip_with_code(text, code).map_err(|e| e.to_string())
    }
}

/// Load a Newick tree.
///
/// # Errors
/// A human-readable parse message.
pub fn load_tree(text: &str) -> Result<Tree, String> {
    if slim_bio::is_nexus(text) {
        slim_bio::parse_nexus_tree(text).map_err(|e| e.to_string())
    } else {
        parse_newick(text).map_err(|e| e.to_string())
    }
}

/// Run the configured analysis and render a CodeML-style report.
///
/// # Errors
/// A human-readable message on any failure.
pub fn run(config: &CliConfig, seq_text: &str, tree_text: &str) -> Result<String, String> {
    let baseline = metrics_setup(config.timing, config.metrics_path.as_ref());
    trace_setup(config.trace_path.as_ref());
    let out = run_report(config, seq_text, tree_text, baseline.as_ref())?;
    if let Some(path) = &config.metrics_path {
        write_metrics_file(path, config.metrics_format)?;
    }
    if let Some(path) = &config.trace_path {
        write_trace_file(path)?;
    }
    Ok(out)
}

fn run_report(
    config: &CliConfig,
    seq_text: &str,
    tree_text: &str,
    baseline: Option<&Snapshot>,
) -> Result<String, String> {
    let aln = load_alignment_with_code(seq_text, &config.options.genetic_code)?;
    let tree = load_tree(tree_text)?;
    let mut out = String::new();
    out.push_str(&format!(
        "SlimCodeML reproduction — backend: {}\n{} sequences × {} codons\n\n",
        config.options.backend.label(),
        aln.n_sequences(),
        aln.n_codons()
    ));

    if config.mode == CtlMode::Sites {
        let result = sites_test(&tree, &aln, &config.options).map_err(|e| e.to_string())?;
        out.push_str(&format!(
            "M1a: lnL = {:.6}, kappa = {:.4}, w0 = {:.4}, p0 = {:.4}, {} iterations\n",
            result.m1a.lnl,
            result.m1a.model.kappa,
            result.m1a.model.omega0,
            result.m1a.model.p0,
            result.m1a.iterations
        ));
        out.push_str(&format!(
            "M2a: lnL = {:.6}, kappa = {:.4}, w0 = {:.4}, w2 = {:.4}, p0 = {:.4}, p1 = {:.4}, {} iterations\n\n",
            result.m2a.lnl,
            result.m2a.model.kappa,
            result.m2a.model.omega0,
            result.m2a.model.omega2,
            result.m2a.model.p0,
            result.m2a.model.p1,
            result.m2a.iterations
        ));
        out.push_str(&format!(
            "LRT (M1a vs M2a): 2dlnL = {:.4}, p = {:.6} (chi2, 2 df) ({})\n",
            result.statistic,
            result.p_value,
            if result.p_value < 0.05 {
                "positive selection detected"
            } else {
                "not significant"
            }
        ));
        let sites: Vec<String> = result
            .site_posteriors
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.95)
            .map(|(i, p)| format!("{} ({:.3})", i + 1, p))
            .collect();
        if sites.is_empty() {
            out.push_str("No sites with posterior > 0.95.\n");
        } else {
            out.push_str(&format!(
                "Sites under positive selection (NEB > 0.95): {}\n",
                sites.join(", ")
            ));
        }
        return Ok(out);
    }

    if config.scan {
        // Branch scans go through the slim-batch pool: each branch is an
        // independent job, so scans get parallelism (`--workers`), retry,
        // and fault isolation — one pathological branch cannot abort the
        // scan.
        let sched = slim_batch::SchedulerConfig {
            workers: config.workers,
            ..slim_batch::SchedulerConfig::default()
        };
        let entries = slim_batch::scan_branches(&tree, &aln, &config.options, &sched);
        out.push_str("branch  child      lnL0           lnL1           2dlnL     p-value\n");
        for e in &entries {
            let child = e.child_name.clone().unwrap_or_else(|| "(internal)".into());
            match &e.outcome {
                Ok(r) => out.push_str(&format!(
                    "{:<7} {:<10} {:<14.6} {:<14.6} {:<9.4} {:.4}{}\n",
                    e.branch.0,
                    child,
                    r.lnl0,
                    r.lnl1,
                    r.stat,
                    r.p_value,
                    if r.p_value < 0.05 { "  *" } else { "" }
                )),
                Err(f) => out.push_str(&format!(
                    "{:<7} {:<10} failed after {} attempt{}: {}\n",
                    e.branch.0,
                    child,
                    e.attempts,
                    if e.attempts == 1 { "" } else { "s" },
                    f.error
                )),
            }
        }
        return Ok(out);
    }

    let analysis = Analysis::new(&tree, &aln, config.options.clone()).map_err(|e| e.to_string())?;
    let result = analysis
        .test_positive_selection()
        .map_err(|e| e.to_string())?;
    out.push_str(&format!(
        "{}\n{}\n\n",
        result.h0.summary(),
        result.h1.summary()
    ));
    if config.timing {
        let baseline = baseline.expect("--timing turns metric collection on");
        out.push_str(&timing_report(&analysis, baseline));
    }
    out.push_str(&format!(
        "LRT: 2dlnL = {:.4}, p = {:.6} ({})\n",
        result.lrt.statistic,
        result.lrt.p_value,
        if result.lrt.significant_at(0.05) {
            "positive selection detected"
        } else {
            "not significant"
        }
    ));
    let sites: Vec<String> = result
        .site_posteriors
        .iter()
        .enumerate()
        .filter(|(_, &p)| p > 0.95)
        .map(|(i, p)| format!("{} ({:.3})", i + 1, p))
        .collect();
    if sites.is_empty() {
        out.push_str("No sites with posterior > 0.95.\n");
    } else {
        out.push_str(&format!(
            "Sites under positive selection (NEB > 0.95): {}\n",
            sites.join(", ")
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn direct(inv: Invocation) -> CliConfig {
        match inv {
            Invocation::Direct(c) => *c,
            Invocation::Ctl(p) => panic!("expected direct invocation, got ctl {p:?}"),
            Invocation::Batch(b) => panic!("expected direct invocation, got batch {b:?}"),
            Invocation::TraceReport(p) => {
                panic!("expected direct invocation, got trace-report {p:?}")
            }
        }
    }

    #[test]
    fn parses_minimal() {
        let c = direct(parse_args(&args(&["--seq", "a.fa", "--tree", "t.nwk"])).unwrap());
        assert_eq!(c.seq_path, "a.fa");
        assert_eq!(c.tree_path, "t.nwk");
        assert_eq!(c.options.backend, Backend::Slim);
        assert!(!c.scan);
        assert_eq!(c.mode, CtlMode::BranchSite);
    }

    #[test]
    fn parses_batch_subcommand() {
        let inv = parse_args(&args(&[
            "batch",
            "runs/m.json",
            "--workers",
            "4",
            "--retries",
            "2",
            "--resume",
            "--out",
            "runs/out",
            "--timing",
        ]))
        .unwrap();
        match inv {
            Invocation::Batch(b) => {
                assert_eq!(b.manifest_path, "runs/m.json");
                assert_eq!(b.workers, 4);
                assert_eq!(b.retries, 2);
                assert!(b.resume);
                assert_eq!(b.out_prefix, "runs/out");
                assert!(b.timing);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn batch_defaults_and_errors() {
        match parse_args(&args(&["batch", "m.json"])).unwrap() {
            Invocation::Batch(b) => {
                assert_eq!(b.workers, 1);
                assert_eq!(b.retries, 1);
                assert!(!b.resume);
                assert_eq!(
                    b.out_prefix, "m.batch",
                    "default prefix must not let <prefix>.json collide with the manifest"
                );
                assert!(!b.timing);
            }
            other => panic!("{other:?}"),
        }
        assert!(
            parse_args(&args(&["batch"])).is_err(),
            "manifest path required"
        );
        assert!(parse_args(&args(&["batch", "a.json", "b.json"])).is_err());
        assert!(parse_args(&args(&["batch", "m.json", "--workers", "0"])).is_err());
        assert!(parse_args(&args(&["batch", "m.json", "--wat"])).is_err());
    }

    #[test]
    fn batch_subcommand_runs_end_to_end() {
        let dir = std::env::temp_dir().join(format!("slim_cli_batch_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("t.nwk"), "((A:0.1,B:0.2):0.05,C:0.3);").unwrap();
        std::fs::write(
            dir.join("g.fasta"),
            ">A\nATGCCCAAA\n>B\nATGCCAAAA\n>C\nATGCCCAAG\n",
        )
        .unwrap();
        let manifest = dir.join("m.json");
        std::fs::write(
            &manifest,
            r#"{"version":1,"genes":[
                {"id":"g","alignment":"g.fasta","tree":"t.nwk","branches":["A"],"max_iterations":15}
            ]}"#,
        )
        .unwrap();
        let config = match parse_args(&args(&[
            "batch",
            manifest.to_str().unwrap(),
            "--workers",
            "2",
        ]))
        .unwrap()
        {
            Invocation::Batch(b) => b,
            other => panic!("{other:?}"),
        };
        let summary = run_batch(&config).unwrap();
        assert!(summary.contains("1 done"), "{summary}");
        let prefix = dir.join("m.batch");
        let tsv = std::fs::read_to_string(format!("{}.tsv", prefix.display())).unwrap();
        assert!(tsv.starts_with("job_id\t"));
        assert!(tsv.contains("g:2\tg:A\tdone"), "{tsv}");
        assert!(std::fs::metadata(format!("{}.json", prefix.display())).is_ok());
        assert!(std::fs::metadata(format!("{}.journal.jsonl", prefix.display())).is_ok());
        // The manifest must survive the run untouched.
        let manifest_after = std::fs::read_to_string(&manifest).unwrap();
        assert!(
            manifest_after.contains("\"genes\""),
            "manifest overwritten: {manifest_after}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_timing_adds_cache_columns_and_metrics() {
        let dir = std::env::temp_dir().join(format!("slim_cli_batch_obs_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("t.nwk"), "((A:0.1,B:0.2):0.05,C:0.3);").unwrap();
        std::fs::write(
            dir.join("g.fasta"),
            ">A\nATGCCCAAA\n>B\nATGCCAAAA\n>C\nATGCCCAAG\n",
        )
        .unwrap();
        let manifest = dir.join("m.json");
        std::fs::write(
            &manifest,
            r#"{"version":1,"genes":[
                {"id":"g","alignment":"g.fasta","tree":"t.nwk","branches":["A"],"max_iterations":15}
            ]}"#,
        )
        .unwrap();
        let metrics_path = dir.join("batch.metrics.json");
        let config = match parse_args(&args(&[
            "batch",
            manifest.to_str().unwrap(),
            "--timing",
            "--metrics",
            metrics_path.to_str().unwrap(),
        ]))
        .unwrap()
        {
            Invocation::Batch(b) => b,
            other => panic!("{other:?}"),
        };
        run_batch(&config).unwrap();
        let prefix = dir.join("m.batch");
        let tsv = std::fs::read_to_string(format!("{}.tsv", prefix.display())).unwrap();
        let header = tsv.lines().next().unwrap();
        assert!(
            header.ends_with("\tcache_hits\tcache_misses\tcache_hit_rate"),
            "{header}"
        );
        let json = std::fs::read_to_string(format!("{}.json", prefix.display())).unwrap();
        assert!(json.contains("\"cache_hit_rate\""), "{json}");
        let snap = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(snap.contains("\"batch.jobs.completed\""), "{snap}");
        assert!(snap.contains("\"batch.job_seconds\""), "{snap}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_report_via_worker_pool() {
        let cfg = direct(
            parse_args(&args(&[
                "--seq",
                "-",
                "--tree",
                "-",
                "--max-iter",
                "10",
                "--scan",
                "--workers",
                "2",
            ]))
            .unwrap(),
        );
        assert_eq!(cfg.workers, 2);
        let report = run(
            &cfg,
            ">A\nATGCCCAAA\n>B\nATGCCAAAA\n>C\nATGCCCAAG\n",
            "((A:0.2,B:0.2):0.1,C:0.3);",
        )
        .unwrap();
        assert!(report.contains("branch  child"), "{report}");
        // 3-taxon tree: 4 branches, each with finite fits.
        assert_eq!(
            report.lines().filter(|l| l.contains("0.")).count(),
            4,
            "{report}"
        );
        assert!(!report.contains("failed"), "{report}");
    }

    #[test]
    fn threads_and_timing_flags() {
        let c = direct(
            parse_args(&args(&[
                "--seq",
                "a",
                "--tree",
                "t",
                "--threads",
                "4",
                "--timing",
            ]))
            .unwrap(),
        );
        assert_eq!(c.options.threads, Some(4));
        assert!(c.timing);
        let auto =
            direct(parse_args(&args(&["--seq", "a", "--tree", "t", "--threads", "0"])).unwrap());
        assert_eq!(auto.options.threads, Some(0), "0 means auto");
        assert!(parse_args(&args(&["--seq", "a", "--tree", "t", "--threads", "x"])).is_err());
        assert!(parse_args(&args(&["--seq", "a", "--tree", "t", "--threads"])).is_err());
    }

    #[test]
    fn reuse_flags() {
        let on = direct(parse_args(&args(&["--seq", "a", "--tree", "t", "--reuse"])).unwrap());
        assert_eq!(on.options.reuse, Some(true));
        let off = direct(parse_args(&args(&["--seq", "a", "--tree", "t", "--no-reuse"])).unwrap());
        assert_eq!(off.options.reuse, Some(false));
        let auto = direct(parse_args(&args(&["--seq", "a", "--tree", "t"])).unwrap());
        assert_eq!(auto.options.reuse, None, "default defers to the backend");
        assert!(usage().contains("--no-reuse"));
    }

    #[test]
    fn simd_flag() {
        let forced =
            direct(parse_args(&args(&["--seq", "a", "--tree", "t", "--simd", "scalar"])).unwrap());
        assert_eq!(forced.options.simd, SimdMode::ForceScalar);
        let auto =
            direct(parse_args(&args(&["--seq", "a", "--tree", "t", "--simd", "auto"])).unwrap());
        assert_eq!(auto.options.simd, SimdMode::Auto);
        let default = direct(parse_args(&args(&["--seq", "a", "--tree", "t"])).unwrap());
        assert_eq!(default.options.simd, SimdMode::Auto);
        assert!(parse_args(&args(&["--seq", "a", "--tree", "t", "--simd", "sse9"])).is_err());
        assert!(parse_args(&args(&["--seq", "a", "--tree", "t", "--simd"])).is_err());
    }

    #[test]
    fn end_to_end_timing_report() {
        let cfg = direct(
            parse_args(&args(&[
                "--seq",
                "-",
                "--tree",
                "-",
                "--max-iter",
                "8",
                "--threads",
                "2",
                "--timing",
            ]))
            .unwrap(),
        );
        let report = run(
            &cfg,
            ">A\nATGCCCAAA\n>B\nATGCCAAAA\n>C\nATGCCCAAG\n",
            "((A:0.2,B:0.2)#1:0.1,C:0.3);",
        )
        .unwrap();
        for phase in ["eigen", "expm", "pruning", "reduction", "total"] {
            assert!(report.contains(phase), "missing {phase} in: {report}");
        }
        assert!(report.contains("2 threads"), "{report}");
        assert!(
            report.contains("cumulative over the H0 + H1 fits"),
            "timing header must state the cumulative semantics: {report}"
        );
        assert!(report.contains("likelihood evaluations"), "{report}");
        assert!(report.contains("eigen cache:"), "{report}");
        assert!(report.contains("reuse:"), "{report}");
    }

    #[test]
    fn timing_report_reuse_off_says_so() {
        let cfg = direct(
            parse_args(&args(&[
                "--seq",
                "-",
                "--tree",
                "-",
                "--max-iter",
                "6",
                "--no-reuse",
                "--timing",
            ]))
            .unwrap(),
        );
        let report = run(
            &cfg,
            ">A\nATGCCCAAA\n>B\nATGCCAAAA\n>C\nATGCCCAAG\n",
            "((A:0.2,B:0.2)#1:0.1,C:0.3);",
        )
        .unwrap();
        assert!(report.contains("reuse: off"), "{report}");
    }

    #[test]
    fn parses_metrics_flags() {
        let c = direct(
            parse_args(&args(&[
                "--seq",
                "a",
                "--tree",
                "t",
                "--metrics",
                "m.json",
                "--metrics-format",
                "prom",
            ]))
            .unwrap(),
        );
        assert_eq!(c.metrics_path.as_deref(), Some("m.json"));
        assert_eq!(c.metrics_format, MetricsFormat::Prom);
        let plain = direct(parse_args(&args(&["--seq", "a", "--tree", "t"])).unwrap());
        assert_eq!(plain.metrics_path, None);
        assert_eq!(plain.metrics_format, MetricsFormat::Json);
        assert!(parse_args(&args(&[
            "--seq",
            "a",
            "--tree",
            "t",
            "--metrics-format",
            "xml"
        ]))
        .is_err());
        match parse_args(&args(&["batch", "m.json", "--metrics", "b.prom"])).unwrap() {
            Invocation::Batch(b) => assert_eq!(b.metrics_path.as_deref(), Some("b.prom")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn metrics_snapshot_covers_all_layers() {
        let dir = std::env::temp_dir().join(format!("slim_cli_metrics_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.metrics.json");
        let cfg = CliConfig {
            metrics_path: Some(path.to_string_lossy().into_owned()),
            ..direct(parse_args(&args(&["--seq", "-", "--tree", "-", "--max-iter", "8"])).unwrap())
        };
        run(
            &cfg,
            ">A\nATGCCCAAA\n>B\nATGCCAAAA\n>C\nATGCCCAAG\n",
            "((A:0.2,B:0.2)#1:0.1,C:0.3);",
        )
        .unwrap();
        let snap = std::fs::read_to_string(&path).unwrap();
        assert!(
            snap.starts_with("{\"schema\":\"slimcodeml.metrics.v1\""),
            "{snap}"
        );
        // One representative metric per instrumented layer; eager
        // registration guarantees batch.* appears even in a single-gene
        // run.
        for key in [
            "opt.iterations",
            "lik.evaluations",
            "lik.phase.eigen_seconds",
            "expm.cache.hits",
            "batch.jobs.completed",
        ] {
            assert!(
                snap.contains(&format!("\"{key}\"")),
                "missing {key} in {snap}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_prometheus_format() {
        let dir = std::env::temp_dir().join(format!("slim_cli_prom_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.metrics.prom");
        let cfg = CliConfig {
            metrics_path: Some(path.to_string_lossy().into_owned()),
            metrics_format: MetricsFormat::Prom,
            ..direct(parse_args(&args(&["--seq", "-", "--tree", "-", "--max-iter", "8"])).unwrap())
        };
        run(
            &cfg,
            ">A\nATGCCCAAA\n>B\nATGCCAAAA\n>C\nATGCCCAAG\n",
            "((A:0.2,B:0.2)#1:0.1,C:0.3);",
        )
        .unwrap();
        let snap = std::fs::read_to_string(&path).unwrap();
        assert!(
            snap.contains("# TYPE slimcodeml_opt_iterations counter"),
            "{snap}"
        );
        assert!(
            snap.contains("# TYPE slimcodeml_lik_phase_pruning_seconds histogram"),
            "{snap}"
        );
        assert!(
            snap.contains("slimcodeml_lik_phase_pruning_seconds_bucket{le=\"+Inf\"}"),
            "{snap}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parses_trace_flags() {
        let c = direct(
            parse_args(&args(&["--seq", "a", "--tree", "t", "--trace", "out.json"])).unwrap(),
        );
        assert_eq!(c.trace_path.as_deref(), Some("out.json"));
        let stdout =
            direct(parse_args(&args(&["--seq", "a", "--tree", "t", "--trace", "-"])).unwrap());
        assert_eq!(stdout.trace_path.as_deref(), Some("-"));
        let plain = direct(parse_args(&args(&["--seq", "a", "--tree", "t"])).unwrap());
        assert_eq!(plain.trace_path, None);
        match parse_args(&args(&["batch", "m.json", "--trace", "b.trace.json"])).unwrap() {
            Invocation::Batch(b) => assert_eq!(b.trace_path.as_deref(), Some("b.trace.json")),
            other => panic!("{other:?}"),
        }
        match parse_args(&args(&["trace-report", "t.json"])).unwrap() {
            Invocation::TraceReport(p) => assert_eq!(p, "t.json"),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args(&["trace-report"])).is_err());
        assert!(parse_args(&args(&["trace-report", "a", "b"])).is_err());
    }

    #[test]
    fn end_to_end_trace_export_and_report() {
        let dir = std::env::temp_dir().join(format!("slim_cli_trace_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.trace.json");
        let cfg = CliConfig {
            trace_path: Some(path.to_string_lossy().into_owned()),
            ..direct(parse_args(&args(&["--seq", "-", "--tree", "-", "--max-iter", "8"])).unwrap())
        };
        run(
            &cfg,
            ">A\nATGCCCAAA\n>B\nATGCCAAAA\n>C\nATGCCCAAG\n",
            "((A:0.2,B:0.2)#1:0.1,C:0.3);",
        )
        .unwrap();
        slim_trace::set_enabled(false);
        let text = std::fs::read_to_string(&path).unwrap();
        // Structurally valid Trace Event Format: the document parses and
        // every event carries the required fields.
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        for ev in events {
            for key in ["name", "ph", "pid", "tid"] {
                assert!(ev.get(key).is_some(), "event missing {key}: {ev:?}");
            }
        }
        // The trace covers optimizer and likelihood layers.
        for name in ["opt.fit", "opt.iteration", "lik.evaluate"] {
            assert!(
                events
                    .iter()
                    .any(|e| e.get("name").and_then(serde_json::Value::as_str) == Some(name)),
                "no {name} event in trace"
            );
        }
        // And trace-report summarizes it.
        let report = run_trace_report(path.to_str().unwrap()).unwrap();
        assert!(report.contains("Convergence trace"), "{report}");
        assert!(report.contains("lnL"), "{report}");
        assert!(report.contains("Critical path"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ctl_invocation() {
        match parse_args(&args(&["--ctl", "codeml.ctl"])).unwrap() {
            Invocation::Ctl(p) => assert_eq!(p, "codeml.ctl"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sites_flag() {
        let c = direct(parse_args(&args(&["--seq", "a", "--tree", "t", "--sites"])).unwrap());
        assert_eq!(c.mode, CtlMode::Sites);
    }

    #[test]
    fn parses_all_flags() {
        let c = direct(
            parse_args(&args(&[
                "--seq",
                "a.fa",
                "--tree",
                "t.nwk",
                "--backend",
                "codeml",
                "--freq",
                "f61",
                "--seed",
                "7",
                "--max-iter",
                "99",
                "--forward-grad",
                "--scan",
            ]))
            .unwrap(),
        );
        assert_eq!(c.options.backend, Backend::CodeMlStyle);
        assert_eq!(c.options.freq_model, FreqModel::F61);
        assert_eq!(c.options.seed, 7);
        assert_eq!(c.options.max_iterations, 99);
        assert!(c.scan);
    }

    #[test]
    fn missing_required_flags() {
        assert!(parse_args(&args(&["--seq", "a.fa"])).is_err());
        assert!(parse_args(&args(&["--tree", "t.nwk"])).is_err());
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse_args(&args(&["--wat"])).is_err());
        assert!(parse_args(&args(&["--seq", "a", "--tree", "t", "--backend", "zzz"])).is_err());
    }

    #[test]
    fn alignment_sniffing() {
        assert!(load_alignment(">A\nATG\n>B\nATG\n").is_ok());
        assert!(load_alignment("2 3\nA ATG\nB ATG\n").is_ok());
        assert!(load_alignment("#NEXUS\nBEGIN DATA;\nMATRIX\nA ATG\nB ATG\n;\nEND;\n").is_ok());
        assert!(load_alignment("garbage").is_err());
        assert!(load_tree("#NEXUS\nBEGIN TREES;\nTREE t = (A:0.1,B:0.2);\nEND;\n").is_ok());
    }

    #[test]
    fn end_to_end_sites_report() {
        let cfg = direct(
            parse_args(&args(&[
                "--seq",
                "-",
                "--tree",
                "-",
                "--max-iter",
                "8",
                "--sites",
            ]))
            .unwrap(),
        );
        let report = run(
            &cfg,
            ">A\nATGCCCAAA\n>B\nATGCCAAAA\n>C\nATGCCCAAG\n",
            "((A:0.2,B:0.2):0.1,C:0.3);", // note: no #1 needed
        )
        .unwrap();
        assert!(report.contains("M1a"));
        assert!(report.contains("M2a"));
        assert!(report.contains("LRT"));
    }

    #[test]
    fn end_to_end_report() {
        let cfg =
            direct(parse_args(&args(&["--seq", "-", "--tree", "-", "--max-iter", "10"])).unwrap());
        let report = run(
            &cfg,
            ">A\nATGCCCAAA\n>B\nATGCCAAAA\n>C\nATGCCCAAG\n",
            "((A:0.2,B:0.2)#1:0.1,C:0.3);",
        )
        .unwrap();
        assert!(report.contains("lnL"));
        assert!(report.contains("LRT"));
    }
}
