//! Log-gamma and the regularized incomplete gamma function.

/// Lanczos coefficients (g = 7, n = 9), good to ~15 significant digits.
/// (Literal digit counts follow the published table; precision lints are
/// silenced deliberately.)
#[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// # Panics
/// Panics for non-positive `x`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula keeps the Lanczos series in its sweet spot.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)` for
/// `a > 0, x ≥ 0`, via the series (x < a + 1) or continued fraction.
///
/// # Panics
/// Panics for invalid arguments.
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_lower_gamma requires a > 0");
    assert!(x >= 0.0, "reg_lower_gamma requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-16 {
                break;
            }
        }
        (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a,x) (modified Lentz).
        let tiny = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / tiny;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < tiny {
                d = tiny;
            }
            c = b + an / c;
            if c.abs() < tiny {
                c = tiny;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-16 {
                break;
            }
        }
        let q = (a * x.ln() - x - ln_gamma(a)).exp() * h;
        1.0 - q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-13);
        assert!(ln_gamma(2.0).abs() < 1e-13);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x) → lnΓ(x+1) = ln x + lnΓ(x).
        for x in [0.3, 1.7, 4.2, 11.0] {
            assert!(
                (ln_gamma(x + 1.0) - x.ln() - ln_gamma(x)).abs() < 1e-11,
                "x={x}"
            );
        }
    }

    #[test]
    fn incomplete_gamma_limits() {
        assert_eq!(reg_lower_gamma(2.0, 0.0), 0.0);
        assert!((reg_lower_gamma(2.0, 100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn incomplete_gamma_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}.
        for x in [0.1, 0.5, 1.0, 3.0, 10.0] {
            let expect = 1.0 - f64::exp(-x);
            assert!((reg_lower_gamma(1.0, x) - expect).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn incomplete_gamma_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..50 {
            let x = i as f64 * 0.2;
            let v = reg_lower_gamma(3.0, x);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "a > 0")]
    fn invalid_a_panics() {
        let _ = reg_lower_gamma(0.0, 1.0);
    }
}
