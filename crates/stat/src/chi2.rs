//! χ² distribution functions.

use crate::gamma::reg_lower_gamma;

/// CDF of the χ² distribution with `k` degrees of freedom.
///
/// # Panics
/// Panics if `k == 0` or `x < 0` (via the gamma routines).
pub fn chi2_cdf(x: f64, k: usize) -> f64 {
    assert!(k > 0, "chi2_cdf: k must be positive");
    reg_lower_gamma(k as f64 / 2.0, x / 2.0)
}

/// Survival function `P(X > x)` of the χ² distribution.
pub fn chi2_sf(x: f64, k: usize) -> f64 {
    (1.0 - chi2_cdf(x, k)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi2_1_known_quantiles() {
        // Classic critical values for 1 df.
        assert!((chi2_sf(3.841, 1) - 0.05).abs() < 5e-4);
        assert!((chi2_sf(6.635, 1) - 0.01).abs() < 2e-4);
        assert!((chi2_sf(2.706, 1) - 0.10).abs() < 5e-4);
    }

    #[test]
    fn chi2_2_is_exponential() {
        // χ²₂ CDF = 1 − e^{−x/2}.
        for x in [0.5, 1.0, 2.0, 5.0] {
            assert!((chi2_cdf(x, 2) - (1.0 - (-x / 2.0f64).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_properties() {
        assert_eq!(chi2_cdf(0.0, 3), 0.0);
        assert!(chi2_cdf(1e6, 3) > 1.0 - 1e-12);
        let mut prev = 0.0;
        for i in 0..40 {
            let v = chi2_cdf(i as f64 * 0.5, 4);
            assert!(v >= prev);
            prev = v;
        }
    }
}
