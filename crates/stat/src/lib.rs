//! # slim-stat
//!
//! Statistical machinery downstream of the likelihood fits:
//!
//! * [`gamma`]: log-gamma and the regularized incomplete gamma function;
//! * [`chi2`]: χ² distribution functions built on them;
//! * [`lrt`]: the likelihood-ratio test between H0 and H1 — the
//!   positive-selection decision the whole pipeline exists for (§I-A of
//!   the paper), with the 50:50 {point-mass-at-0, χ²₁} boundary null;
//! * [`bayes`]: (naive) empirical-Bayes posterior probabilities that a
//!   site belongs to the positively-selected classes (2a/2b), the
//!   site-identification step the paper cites as the follow-up to a
//!   significant LRT.

pub mod bayes;
pub mod chi2;
pub mod gamma;
pub mod lrt;

pub use bayes::{class_posteriors, positive_selection_posteriors};
pub use chi2::{chi2_cdf, chi2_sf};
pub use gamma::{ln_gamma, reg_lower_gamma};
pub use lrt::{aic, bic, lrt_pvalue, LrtResult};
