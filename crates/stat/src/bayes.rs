//! Empirical-Bayes identification of positively-selected sites.
//!
//! After a significant LRT, "Bayesian approaches are used to assess the
//! posterior probability of a particular codon … to be evolving under
//! positive selection" (§I-A, citing Yang, Wong & Nielsen 2005). This
//! module implements the *naive* empirical Bayes (NEB) posterior at the
//! MLE: `P(class c | site) ∝ p_c · L_c(site)`. The full BEB additionally
//! integrates over a prior grid of (p0, p1, ω0, ω2); the `slim-core`
//! driver approximates that by averaging NEB posteriors over a small grid
//! around the MLE.

/// Posterior probability of each site class at each pattern, from
/// per-class per-pattern **log**-likelihoods and class proportions.
///
/// Returns `[pattern][class]` posteriors, each row summing to 1 (or all
/// zeros for a pattern with zero likelihood in every class).
///
/// # Panics
/// Panics if shapes are inconsistent.
pub fn class_posteriors(per_class_lnl: &[Vec<f64>], proportions: &[f64]) -> Vec<Vec<f64>> {
    let n_classes = per_class_lnl.len();
    assert_eq!(n_classes, proportions.len(), "class count mismatch");
    assert!(n_classes > 0);
    let n_pat = per_class_lnl[0].len();
    for c in per_class_lnl {
        assert_eq!(c.len(), n_pat, "ragged per-class likelihoods");
    }

    let mut out = vec![vec![0.0; n_classes]; n_pat];
    for p in 0..n_pat {
        // log-sum-exp across classes.
        let mut max = f64::NEG_INFINITY;
        for c in 0..n_classes {
            if proportions[c] > 0.0 {
                let v = proportions[c].ln() + per_class_lnl[c][p];
                if v > max {
                    max = v;
                }
            }
        }
        if !max.is_finite() {
            continue;
        }
        let mut denom = 0.0;
        for c in 0..n_classes {
            if proportions[c] > 0.0 {
                out[p][c] = (proportions[c].ln() + per_class_lnl[c][p] - max).exp();
                denom += out[p][c];
            }
        }
        for v in &mut out[p] {
            *v /= denom;
        }
    }
    out
}

/// Posterior probability that each pattern belongs to the
/// positively-selected classes (2a + 2b, indices 2 and 3 in the Table I
/// ordering).
pub fn positive_selection_posteriors(per_class_lnl: &[Vec<f64>], proportions: &[f64]) -> Vec<f64> {
    assert!(per_class_lnl.len() >= 4, "branch-site model has 4 classes");
    class_posteriors(per_class_lnl, proportions)
        .into_iter()
        .map(|row| row[2] + row[3])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn posterior_proportional_to_prior_times_lik() {
        // Two classes, one pattern, equal likelihoods → posterior = prior.
        let per_class = vec![vec![-10.0], vec![-10.0]];
        let post = class_posteriors(&per_class, &[0.3, 0.7]);
        assert!((post[0][0] - 0.3).abs() < 1e-12);
        assert!((post[0][1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn likelihood_dominance() {
        // Class 1 likelihood e^10 times larger.
        let per_class = vec![vec![-20.0], vec![-10.0]];
        let post = class_posteriors(&per_class, &[0.5, 0.5]);
        assert!(post[0][1] > 0.9999);
    }

    #[test]
    fn rows_sum_to_one() {
        let per_class = vec![
            vec![-5.0, -100.0, -3.0],
            vec![-6.0, -90.0, -3.5],
            vec![-7.0, -80.0, -4.0],
            vec![-8.0, -85.0, -2.0],
        ];
        let post = class_posteriors(&per_class, &[0.4, 0.3, 0.2, 0.1]);
        for row in &post {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_proportion_class_excluded() {
        let per_class = vec![vec![-1.0], vec![-1.0]];
        let post = class_posteriors(&per_class, &[1.0, 0.0]);
        assert_eq!(post[0][1], 0.0);
        assert!((post[0][0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn positive_selection_sums_classes_2a_2b() {
        let per_class = vec![vec![-10.0], vec![-10.0], vec![-10.0], vec![-10.0]];
        let ps = positive_selection_posteriors(&per_class, &[0.25, 0.25, 0.25, 0.25]);
        assert!((ps[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn underflow_safe_with_extreme_logs() {
        // Log-likelihoods around −10⁵ must not underflow the posteriors.
        let per_class = vec![
            vec![-100000.0],
            vec![-100001.0],
            vec![-100002.0],
            vec![-99999.0],
        ];
        let ps = positive_selection_posteriors(&per_class, &[0.25, 0.25, 0.25, 0.25]);
        assert!(ps[0].is_finite());
        assert!(ps[0] > 0.0 && ps[0] < 1.0);
    }
}
