//! The likelihood-ratio test between H0 and H1.
//!
//! "The most common method to detect positive selection is to test through
//! likelihood ratio test if a codon model allowing positive selection on a
//! particular branch (H1) explains the data better than a codon model that
//! does not (H0)" (§I-A). Because H0 pins ω2 = 1 at the *boundary* of H1's
//! parameter space, the asymptotic null is not χ²₁ but the 50:50 mixture
//! of a point mass at 0 and χ²₁ (Self & Liang, 1987), which halves the
//! p-value for positive statistics.

use crate::chi2::chi2_sf;

/// Outcome of the likelihood-ratio test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrtResult {
    /// `2 (lnL1 − lnL0)`, clamped at 0 (tiny negative values arise from
    /// independent numerical optimizations of the two hypotheses).
    pub statistic: f64,
    /// Mixture-null p-value.
    pub p_value: f64,
    /// Conventional χ²₁ p-value (what a naive test would report).
    pub p_value_chi2_1: f64,
}

/// Perform the branch-site LRT given the two maximized log-likelihoods.
pub fn lrt_pvalue(lnl_h0: f64, lnl_h1: f64) -> LrtResult {
    let raw = 2.0 * (lnl_h1 - lnl_h0);
    let statistic = raw.max(0.0);
    let p_chi2 = chi2_sf(statistic, 1);
    let p_mixture = if statistic <= 0.0 { 1.0 } else { 0.5 * p_chi2 };
    LrtResult {
        statistic,
        p_value: p_mixture,
        p_value_chi2_1: p_chi2,
    }
}

/// Conventional significance threshold used by Selectome-style scans.
pub const ALPHA: f64 = 0.05;

impl LrtResult {
    /// Is positive selection detected at the given significance level?
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Akaike information criterion `AIC = 2k − 2 lnL`.
pub fn aic(lnl: f64, n_params: usize) -> f64 {
    2.0 * n_params as f64 - 2.0 * lnl
}

/// Bayesian information criterion `BIC = k ln(n) − 2 lnL` with `n`
/// observations (alignment sites).
pub fn bic(lnl: f64, n_params: usize, n_sites: usize) -> f64 {
    n_params as f64 * (n_sites as f64).ln() - 2.0 * lnl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn information_criteria() {
        // Better lnL lowers both criteria; more parameters raise them.
        assert!(aic(-100.0, 5) < aic(-110.0, 5));
        assert!(aic(-100.0, 5) < aic(-100.0, 8));
        assert!(bic(-100.0, 5, 500) < bic(-110.0, 5, 500));
        // BIC penalizes harder than AIC once ln(n) > 2.
        assert!(bic(-100.0, 5, 500) > aic(-100.0, 5));
    }

    #[test]
    fn zero_improvement_is_not_significant() {
        let r = lrt_pvalue(-1000.0, -1000.0);
        assert_eq!(r.statistic, 0.0);
        assert_eq!(r.p_value, 1.0);
        assert!(!r.significant_at(ALPHA));
    }

    #[test]
    fn small_negative_clamped() {
        // H1 slightly below H0 (optimizer noise) must behave like 0.
        let r = lrt_pvalue(-1000.0, -1000.0001);
        assert_eq!(r.statistic, 0.0);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn large_improvement_significant() {
        let r = lrt_pvalue(-1000.0, -990.0); // statistic 20
        assert!(r.statistic == 20.0);
        assert!(r.p_value < 1e-4);
        assert!(r.significant_at(ALPHA));
    }

    #[test]
    fn mixture_halves_pvalue() {
        let r = lrt_pvalue(-500.0, -498.0); // statistic 4
        assert!((r.p_value - 0.5 * r.p_value_chi2_1).abs() < 1e-15);
    }

    #[test]
    fn boundary_critical_value() {
        // Under the mixture null, the 5% critical value is χ²₁(0.10) ≈ 2.71.
        let r = lrt_pvalue(0.0, 2.706 / 2.0);
        assert!((r.p_value - 0.05).abs() < 1e-3);
    }
}
