//! Missing-data masking for simulated alignments.
//!
//! Real Ensembl/Selectome alignments contain gaps and ambiguous codons;
//! the simulator produces fully-observed data. This module knocks out a
//! seeded random fraction of cells so tests and benches can exercise the
//! missing-data paths on realistic inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slim_bio::{CodonAlignment, Site};

/// Replace a random `fraction` of alignment cells with missing data.
///
/// Each cell is masked independently with probability `fraction`, but no
/// alignment *column* is ever fully masked (a fully-missing column carries
/// no signal and some tools reject it) — one uniformly chosen cell per
/// otherwise-fully-masked column is restored.
///
/// # Panics
/// Panics if `fraction` is outside `[0, 1)`.
pub fn mask_random_cells(aln: &CodonAlignment, fraction: f64, seed: u64) -> CodonAlignment {
    assert!((0.0..1.0).contains(&fraction), "fraction must be in [0, 1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let n_seq = aln.n_sequences();
    let n_cod = aln.n_codons();

    let mut seqs: Vec<Vec<Site>> = (0..n_seq).map(|i| aln.sequence(i).to_vec()).collect();
    for site in 0..n_cod {
        let mut masked = 0usize;
        for seq in seqs.iter_mut() {
            if rng.gen::<f64>() < fraction {
                seq[site] = Site::Missing;
                masked += 1;
            }
        }
        if masked == n_seq {
            // Restore one random cell from the original.
            let keep = rng.gen_range(0..n_seq);
            seqs[keep][site] = aln.sequence(keep)[site];
        }
    }
    CodonAlignment::new(aln.names().to_vec(), seqs).expect("masking preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqgen::simulate_alignment;
    use crate::tree_gen::yule_tree;
    use slim_model::{BranchSiteModel, Hypothesis};

    fn base() -> CodonAlignment {
        let tree = yule_tree(5, 0.2, 8);
        let model = BranchSiteModel::default_start(Hypothesis::H0);
        simulate_alignment(&tree, &model, &vec![1.0 / 61.0; 61], 200, 4)
    }

    #[test]
    fn masks_expected_fraction() {
        let aln = base();
        let masked = mask_random_cells(&aln, 0.2, 42);
        let f = masked.missing_fraction();
        assert!((f - 0.2).abs() < 0.05, "observed fraction {f}");
        assert_eq!(masked.n_sequences(), aln.n_sequences());
        assert_eq!(masked.n_codons(), aln.n_codons());
    }

    #[test]
    fn zero_fraction_is_identity() {
        let aln = base();
        let masked = mask_random_cells(&aln, 0.0, 1);
        assert_eq!(masked, aln);
    }

    #[test]
    fn deterministic_per_seed() {
        let aln = base();
        assert_eq!(
            mask_random_cells(&aln, 0.3, 7),
            mask_random_cells(&aln, 0.3, 7)
        );
        assert_ne!(
            mask_random_cells(&aln, 0.3, 7),
            mask_random_cells(&aln, 0.3, 8)
        );
    }

    #[test]
    fn no_fully_missing_columns_even_at_high_fraction() {
        let aln = base();
        let masked = mask_random_cells(&aln, 0.95, 13);
        for site in 0..masked.n_codons() {
            let observed = (0..masked.n_sequences())
                .filter(|&i| !masked.sequence(i)[site].is_missing())
                .count();
            assert!(observed >= 1, "column {site} fully masked");
        }
    }

    #[test]
    fn unmasked_cells_match_original() {
        let aln = base();
        let masked = mask_random_cells(&aln, 0.4, 21);
        for i in 0..aln.n_sequences() {
            for s in 0..aln.n_codons() {
                if !masked.sequence(i)[s].is_missing() {
                    assert_eq!(masked.sequence(i)[s], aln.sequence(i)[s]);
                }
            }
        }
    }
}
