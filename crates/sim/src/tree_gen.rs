//! Seeded random phylogenies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slim_bio::tree::Node;
use slim_bio::{NodeId, Tree};

/// Generate a rooted binary tree on `n_leaves` taxa by a Yule (pure-birth)
/// process: repeatedly split a uniformly chosen leaf. Branch lengths are
/// exponential with the given mean; leaves are named `S1..Sn`; one
/// uniformly chosen non-root branch is marked as foreground.
///
/// Deterministic for a fixed seed — the paper fixes the RNG seed "to
/// generate comparable and reproducible results" (§IV).
///
/// # Panics
/// Panics if `n_leaves < 2` or `mean_branch_length <= 0`.
pub fn yule_tree(n_leaves: usize, mean_branch_length: f64, seed: u64) -> Tree {
    assert!(n_leaves >= 2, "need at least two leaves");
    assert!(mean_branch_length > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let exp = |rng: &mut StdRng| -> f64 {
        let u: f64 = rng.gen_range(1e-12..1.0);
        -mean_branch_length * u.ln()
    };

    // Arena of nodes; start with a root and two leaf children.
    let mut nodes: Vec<Node> = Vec::with_capacity(2 * n_leaves - 1);
    nodes.push(Node {
        parent: None,
        children: vec![],
        name: None,
        branch_length: 0.0,
        foreground: false,
    });
    let mut leaves: Vec<usize> = Vec::with_capacity(n_leaves);
    for _ in 0..2 {
        let id = nodes.len();
        nodes.push(Node {
            parent: Some(NodeId(0)),
            children: vec![],
            name: None,
            branch_length: exp(&mut rng),
            foreground: false,
        });
        nodes[0].children.push(NodeId(id));
        leaves.push(id);
    }

    // Split random leaves until we have n_leaves.
    while leaves.len() < n_leaves {
        let pick = rng.gen_range(0..leaves.len());
        let parent = leaves.swap_remove(pick);
        for _ in 0..2 {
            let id = nodes.len();
            nodes.push(Node {
                parent: Some(NodeId(parent)),
                children: vec![],
                name: None,
                branch_length: exp(&mut rng),
                foreground: false,
            });
            nodes[parent].children.push(NodeId(id));
            leaves.push(id);
        }
    }

    // Name leaves deterministically by arena order.
    let mut counter = 0usize;
    for node in nodes.iter_mut() {
        if node.children.is_empty() {
            counter += 1;
            node.name = Some(format!("S{counter}"));
        }
    }

    // Mark a random non-root branch as foreground.
    let candidates: Vec<usize> = (1..nodes.len()).collect();
    let fg = candidates[rng.gen_range(0..candidates.len())];
    nodes[fg].foreground = true;

    Tree::new(nodes, NodeId(0)).expect("generated tree is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_leaf_count() {
        for n in [2usize, 3, 7, 25, 95] {
            let t = yule_tree(n, 0.1, 42);
            assert_eq!(t.n_leaves(), n, "n={n}");
            assert_eq!(t.n_nodes(), 2 * n - 1, "binary rooted tree node count");
            assert!(t.is_binary());
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = yule_tree(10, 0.2, 7);
        let b = yule_tree(10, 0.2, 7);
        assert_eq!(slim_bio::write_newick(&a), slim_bio::write_newick(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let a = yule_tree(10, 0.2, 1);
        let b = yule_tree(10, 0.2, 2);
        assert_ne!(slim_bio::write_newick(&a), slim_bio::write_newick(&b));
    }

    #[test]
    fn exactly_one_foreground() {
        let t = yule_tree(20, 0.1, 99);
        assert!(t.foreground_branch().is_ok());
    }

    #[test]
    fn branch_lengths_positive_with_requested_mean() {
        let t = yule_tree(50, 0.25, 3);
        let lens = t.branch_lengths();
        assert!(lens.iter().all(|&l| l > 0.0));
        let mean = lens.iter().sum::<f64>() / lens.len() as f64;
        assert!(
            mean > 0.1 && mean < 0.5,
            "sample mean {mean} too far from 0.25"
        );
    }

    #[test]
    fn leaf_names_unique() {
        let t = yule_tree(30, 0.1, 5);
        let mut names: Vec<String> = t
            .leaves()
            .into_iter()
            .map(|id| t.node(id).name.clone().unwrap())
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 30);
    }
}
