//! Dataset analogs of the paper's Table II.
//!
//! | id  | paper dataset                                 | species | codons |
//! |-----|-----------------------------------------------|---------|--------|
//! | I   | ENSGT00390000016702.Primates.1.2              | 7       | 299    |
//! | II  | ENSGT00580000081590.Primates.1.2              | 6       | 5004   |
//! | III | ENSGT00550000073950.Euteleostomi.7.2          | 25      | 67     |
//! | IV  | ENSGT00530000063518.Primates.1.1              | 95      | 39     |
//!
//! Each analog is simulated under branch-site model A on a seeded Yule
//! tree with the same (species × codons) shape; see DESIGN.md §2 for the
//! substitution argument.

use crate::seqgen::simulate_alignment;
use crate::tree_gen::yule_tree;
use slim_bio::{CodonAlignment, Tree, N_CODONS};
use slim_model::{BranchSiteModel, Hypothesis};

/// The four Table II dataset shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// 7 species × 299 codons — small tree, average length.
    I,
    /// 6 species × 5004 codons — small tree, very long alignment.
    II,
    /// 25 species × 67 codons — medium tree, short alignment.
    III,
    /// 95 species × 39 codons — large tree, very short alignment.
    IV,
}

impl DatasetId {
    /// All four, in paper order.
    pub const ALL: [DatasetId; 4] = [DatasetId::I, DatasetId::II, DatasetId::III, DatasetId::IV];

    /// (species, codons) shape from Table II.
    pub fn shape(self) -> (usize, usize) {
        match self {
            DatasetId::I => (7, 299),
            DatasetId::II => (6, 5004),
            DatasetId::III => (25, 67),
            DatasetId::IV => (95, 39),
        }
    }

    /// Roman-numeral label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            DatasetId::I => "i",
            DatasetId::II => "ii",
            DatasetId::III => "iii",
            DatasetId::IV => "iv",
        }
    }

    /// Deterministic seed per dataset (arbitrary but fixed, like the
    /// paper's fixed RNG seed).
    fn seed(self) -> u64 {
        match self {
            DatasetId::I => 1001,
            DatasetId::II => 1002,
            DatasetId::III => 1003,
            DatasetId::IV => 1004,
        }
    }
}

/// A simulated stand-in for one Table II dataset.
#[derive(Debug, Clone)]
pub struct SimulatedDataset {
    /// Which Table II shape this mirrors.
    pub id: DatasetId,
    /// The tree (with foreground branch marked) the data was simulated on.
    pub tree: Tree,
    /// The simulated codon alignment.
    pub alignment: CodonAlignment,
    /// The generating parameters (ground truth for recovery tests).
    pub true_model: BranchSiteModel,
}

/// The generating model shared by all presets: moderate positive
/// selection on ~10% of sites.
fn generating_model() -> BranchSiteModel {
    BranchSiteModel {
        kappa: 2.5,
        omega0: 0.15,
        omega2: 3.0,
        p0: 0.65,
        p1: 0.25,
    }
}

/// Skewed (non-uniform) codon frequencies shared by all presets, so that
/// F3×4/F61 estimation is non-trivial.
fn generating_pi() -> Vec<f64> {
    let mut pi: Vec<f64> = (0..N_CODONS)
        .map(|i| 1.0 + 0.5 * ((i as f64 * 0.61).sin() + 1.0))
        .collect();
    let s: f64 = pi.iter().sum();
    for p in &mut pi {
        *p /= s;
    }
    pi
}

/// Build the analog of one Table II dataset.
pub fn dataset(id: DatasetId) -> SimulatedDataset {
    let (species, codons) = id.shape();
    // Mean branch length 0.15 expected substitutions/codon — typical of
    // the within-clade Ensembl alignments the paper used.
    let tree = yule_tree(species, 0.15, id.seed());
    let model = generating_model();
    let alignment = simulate_alignment(&tree, &model, &generating_pi(), codons, id.seed() ^ 0xABCD);
    let _ = Hypothesis::H1;
    SimulatedDataset {
        id,
        tree,
        alignment,
        true_model: model,
    }
}

/// The Fig. 3 experiment: dataset iv sub-sampled to `n_species`
/// (15 ≤ n ≤ 95 in the paper), exactly as the paper does — the *same*
/// 95-species alignment and tree restricted to a subset of taxa (the
/// first `n_species` in name order), with suppressed unary nodes merged.
/// If the original foreground branch does not survive the restriction,
/// the longest remaining branch is marked instead.
///
/// # Panics
/// Panics if `n_species < 2` or `> 95`.
pub fn subsample_dataset(n_species: usize) -> SimulatedDataset {
    let full = dataset(DatasetId::IV);
    assert!(
        (2..=full.tree.n_leaves()).contains(&n_species),
        "subsample size out of range"
    );
    let names: Vec<String> = (1..=n_species).map(|i| format!("S{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut tree = full
        .tree
        .restrict_to_leaves(&name_refs)
        .expect("valid restriction");
    if tree.foreground_branch().is_err() {
        let longest = tree
            .branch_nodes()
            .into_iter()
            .max_by(|a, b| {
                tree.node(*a)
                    .branch_length
                    .partial_cmp(&tree.node(*b).branch_length)
                    .expect("finite lengths")
            })
            .expect("non-empty tree");
        tree.set_foreground(longest).expect("non-root branch");
    }
    let keep: Vec<usize> = names
        .iter()
        .map(|n| full.alignment.index_of(n).expect("leaf name in alignment"))
        .collect();
    let alignment = full.alignment.subset(&keep).expect("valid subset");
    SimulatedDataset {
        id: DatasetId::IV,
        tree,
        alignment,
        true_model: full.true_model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_table_ii() {
        for id in DatasetId::ALL {
            let (species, codons) = id.shape();
            let d = dataset(id);
            assert_eq!(d.alignment.n_sequences(), species, "{id:?}");
            assert_eq!(d.alignment.n_codons(), codons, "{id:?}");
            assert_eq!(d.tree.n_leaves(), species, "{id:?}");
            assert!(d.tree.foreground_branch().is_ok(), "{id:?}");
        }
    }

    #[test]
    fn deterministic() {
        let a = dataset(DatasetId::I);
        let b = dataset(DatasetId::I);
        assert_eq!(a.alignment, b.alignment);
        assert_eq!(
            slim_bio::write_newick(&a.tree),
            slim_bio::write_newick(&b.tree)
        );
    }

    #[test]
    fn datasets_differ() {
        assert_ne!(
            dataset(DatasetId::I).alignment,
            dataset(DatasetId::III).alignment
        );
    }

    #[test]
    fn subsample_sizes() {
        for n in [15usize, 55, 95] {
            let d = subsample_dataset(n);
            assert_eq!(d.tree.n_leaves(), n);
            assert_eq!(d.alignment.n_codons(), 39);
            assert_eq!(d.alignment.n_sequences(), n);
            assert!(d.tree.foreground_branch().is_ok());
        }
    }

    #[test]
    fn subsample_is_true_restriction_of_dataset_iv() {
        // The 15-species alignment must be a row subset of the full one.
        let full = dataset(DatasetId::IV);
        let sub = subsample_dataset(15);
        for name in sub.alignment.names() {
            let full_idx = full
                .alignment
                .index_of(name)
                .expect("name exists in full dataset");
            let sub_idx = sub.alignment.index_of(name).unwrap();
            assert_eq!(
                sub.alignment.sequence(sub_idx),
                full.alignment.sequence(full_idx)
            );
        }
        // Leaf-to-leaf path lengths are preserved by unary suppression:
        // check the tree total is smaller but every pendant name exists.
        assert!(sub.tree.total_length() < full.tree.total_length());
    }

    #[test]
    fn labels() {
        assert_eq!(DatasetId::I.label(), "i");
        assert_eq!(DatasetId::IV.label(), "iv");
    }
}
