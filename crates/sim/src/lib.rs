//! # slim-sim
//!
//! Synthetic-data substrate. The paper evaluates on four Ensembl/Selectome
//! alignments characterized by their shapes (Table II): we cannot ship
//! those proprietary-pipeline files, so this crate simulates codon
//! alignments of *identical shape* under the branch-site model itself —
//! exercising exactly the same code paths and cost profile (the
//! per-branch matrix exponentials and per-site CPV products depend only on
//! species count, alignment length, and pattern diversity).
//!
//! * [`tree_gen`]: seeded Yule (pure-birth) random trees with exponential
//!   branch lengths and a designated foreground branch;
//! * [`seqgen`]: forward simulation of codon sequences along the tree
//!   under branch-site model A;
//! * [`presets`]: dataset analogs i–iv matching Table II's
//!   (species × codons) shapes, plus the 15–95-species sub-sampling used
//!   by Fig. 3.

pub mod masking;
pub mod presets;
pub mod seqgen;
pub mod tree_gen;

pub use masking::mask_random_cells;
pub use presets::{dataset, subsample_dataset, DatasetId, SimulatedDataset};
pub use seqgen::simulate_alignment;
pub use tree_gen::yule_tree;
