//! Forward simulation of codon alignments under branch-site model A.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slim_bio::{CodonAlignment, GeneticCode, Tree};
use slim_expm::EigenSystem;
use slim_linalg::{EigenMethod, Mat};
use slim_model::{build_rate_matrix, BranchSiteModel, ScalePolicy};

/// Draw an index from a discrete distribution given as (possibly
/// unnormalized non-negative) weights.
fn sample_index(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0);
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// Simulate a codon alignment of `n_codons` sites along `tree` under
/// branch-site model A with the given parameters and equilibrium
/// frequencies. Deterministic per seed.
///
/// Per site: a class is drawn from the Table I proportions; the root codon
/// from π; each branch then transitions through `P(t)` built for the
/// class's ω on that branch's role (foreground/background).
///
/// # Panics
/// Panics if the tree lacks a foreground branch or `pi` is malformed.
pub fn simulate_alignment(
    tree: &Tree,
    model: &BranchSiteModel,
    pi: &[f64],
    n_codons: usize,
    seed: u64,
) -> CodonAlignment {
    let code = GeneticCode::universal();
    assert_eq!(pi.len(), code.n_sense());
    tree.foreground_branch()
        .expect("tree must have a foreground branch");
    let mut rng = StdRng::seed_from_u64(seed);

    // Transition matrices per (branch node, distinct ω), sharing the same
    // background-mixture rate scale the likelihood engine uses (see
    // BranchSiteModel::shared_scale) so simulated branch lengths mean the
    // same thing the estimator assumes.
    let omegas = model.omegas();
    let (syn_flux, nonsyn_flux) = slim_model::codon_model::rate_components(&code, model.kappa, pi);
    let scale = model.shared_scale(syn_flux, nonsyn_flux);
    let eigensystems: Vec<EigenSystem> = omegas
        .iter()
        .map(|&w| {
            let rm = build_rate_matrix(&code, model.kappa, w, pi, ScalePolicy::External(scale));
            EigenSystem::from_rate_matrix(&rm, EigenMethod::HouseholderQl).expect("eigensolve")
        })
        .collect();

    let n_nodes = tree.n_nodes();
    let mut pmats: Vec<[Option<Mat>; 3]> = (0..n_nodes).map(|_| [None, None, None]).collect();
    for id in tree.branch_nodes() {
        let t = tree.node(id).branch_length;
        let needed: &[usize] = if tree.node(id).foreground {
            &[0, 1, 2]
        } else {
            &[0, 1]
        };
        for &w in needed {
            pmats[id.0][w] = Some(eigensystems[w].transition_matrix_eq10(t));
        }
    }

    let classes = model.site_classes();
    let class_weights: Vec<f64> = classes.iter().map(|c| c.proportion).collect();

    // Simulate states per node per site, preorder (parents before children).
    let postorder = tree.postorder();
    let preorder: Vec<_> = postorder.iter().rev().copied().collect();
    let mut states: Vec<Vec<usize>> = vec![vec![0; n_codons]; n_nodes];

    #[allow(clippy::needless_range_loop)] // `site` indexes per-node state rows
    for site in 0..n_codons {
        let class = &classes[sample_index(&mut rng, &class_weights)];
        for &id in &preorder {
            let node = tree.node(id);
            match node.parent {
                None => states[id.0][site] = sample_index(&mut rng, pi),
                Some(parent) => {
                    let w = if node.foreground {
                        class.foreground_omega
                    } else {
                        class.background_omega
                    };
                    let p = pmats[id.0][w].as_ref().expect("P matrix built");
                    let from = states[parent.0][site];
                    states[id.0][site] = sample_index(&mut rng, p.row(from));
                }
            }
        }
    }

    // Extract leaf sequences.
    let mut names = Vec::new();
    let mut seqs = Vec::new();
    for id in tree.leaves() {
        names.push(tree.node(id).name.clone().expect("named leaf"));
        seqs.push(
            states[id.0]
                .iter()
                .map(|&s| code.sense_codon(s))
                .collect::<Vec<_>>(),
        );
    }
    CodonAlignment::from_codons(names, seqs).expect("simulated alignment is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree_gen::yule_tree;
    use slim_bio::N_CODONS;
    use slim_model::Hypothesis;

    fn uniform_pi() -> Vec<f64> {
        vec![1.0 / N_CODONS as f64; N_CODONS]
    }

    #[test]
    fn shape_and_determinism() {
        let tree = yule_tree(5, 0.2, 11);
        let model = BranchSiteModel::default_start(Hypothesis::H1);
        let a1 = simulate_alignment(&tree, &model, &uniform_pi(), 50, 123);
        let a2 = simulate_alignment(&tree, &model, &uniform_pi(), 50, 123);
        assert_eq!(a1, a2);
        assert_eq!(a1.n_sequences(), 5);
        assert_eq!(a1.n_codons(), 50);
        let a3 = simulate_alignment(&tree, &model, &uniform_pi(), 50, 124);
        assert_ne!(a1, a3);
    }

    #[test]
    fn no_stop_codons_by_construction() {
        // CodonAlignment::new validates this; just make sure a decent-size
        // simulation constructs successfully.
        let tree = yule_tree(8, 0.3, 7);
        let model = BranchSiteModel::default_start(Hypothesis::H1);
        let aln = simulate_alignment(&tree, &model, &uniform_pi(), 300, 5);
        assert_eq!(aln.n_codons(), 300);
    }

    #[test]
    fn short_branches_give_similar_sequences() {
        let tree = yule_tree(4, 0.001, 3);
        let model = BranchSiteModel::default_start(Hypothesis::H0);
        let aln = simulate_alignment(&tree, &model, &uniform_pi(), 200, 9);
        // With ~0.001 expected substitutions/codon, sequences are nearly
        // identical.
        let a = aln.sequence(0);
        let b = aln.sequence(1);
        let diff = a.iter().zip(b).filter(|(x, y)| x != y).count();
        assert!(diff < 10, "{diff} differences on near-zero branches");
    }

    #[test]
    fn long_branches_randomize() {
        let tree = yule_tree(4, 10.0, 3);
        let model = BranchSiteModel::default_start(Hypothesis::H0);
        let aln = simulate_alignment(&tree, &model, &uniform_pi(), 200, 9);
        let a = aln.sequence(0);
        let b = aln.sequence(1);
        let diff = a.iter().zip(b).filter(|(x, y)| x != y).count();
        assert!(diff > 150, "only {diff} differences on long branches");
    }

    #[test]
    fn respects_equilibrium_frequencies() {
        // Simulate with a pi concentrated on a few codons; the observed
        // composition must reflect it.
        let mut pi = vec![1e-4; N_CODONS];
        pi[0] = 0.5;
        pi[1] = 0.5 - 60.0 * 1e-4;
        let s: f64 = pi.iter().sum();
        for p in &mut pi {
            *p /= s;
        }
        let tree = yule_tree(3, 0.05, 2);
        let model = BranchSiteModel::default_start(Hypothesis::H0);
        let aln = simulate_alignment(&tree, &model, &pi, 400, 77);
        let code = GeneticCode::universal();
        let mut mass01 = 0usize;
        let mut total = 0usize;
        for i in 0..aln.n_sequences() {
            for &c in aln.sequence(i) {
                let idx = code.sense_index(c.codon().unwrap()).unwrap();
                if idx <= 1 {
                    mass01 += 1;
                }
                total += 1;
            }
        }
        assert!(
            mass01 as f64 / total as f64 > 0.9,
            "expected >90% mass on codons 0/1, got {}",
            mass01 as f64 / total as f64
        );
    }
}
