//! Property-based round-trip tests for the I/O layer: arbitrary valid
//! alignments and trees must survive serialization → parsing unchanged.

use proptest::prelude::*;
use slim_bio::{parse_newick, write_newick, Codon, CodonAlignment, GeneticCode};

/// Strategy: a random sense codon (index 0..61 in the universal code).
fn codon_strategy() -> impl Strategy<Value = Codon> {
    (0usize..61).prop_map(|i| GeneticCode::universal().sense_codon(i))
}

/// Strategy: an alignment of `n` sequences × `len` codons with simple
/// alphanumeric names.
fn alignment_strategy() -> impl Strategy<Value = CodonAlignment> {
    (2usize..6, 1usize..30).prop_flat_map(|(n, len)| {
        proptest::collection::vec(proptest::collection::vec(codon_strategy(), len), n).prop_map(
            move |seqs| {
                let names = (0..seqs.len()).map(|i| format!("SP{i}")).collect();
                CodonAlignment::from_codons(names, seqs)
                    .expect("sense codons form a valid alignment")
            },
        )
    })
}

/// Strategy: a random rooted binary tree in Newick text form, built
/// recursively with bounded depth.
fn newick_strategy() -> impl Strategy<Value = String> {
    let leaf_counter = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let leaf = proptest::strategy::LazyJust::new(move || {
        let k = leaf_counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        format!("L{k}")
    });
    leaf.prop_recursive(4, 16, 2, |inner| {
        (inner.clone(), inner, 0.001f64..2.0, 0.001f64..2.0)
            .prop_map(|(a, b, la, lb)| format!("({a}:{la},{b}:{lb})"))
    })
    .prop_map(|core| format!("{core};"))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn fasta_roundtrip(aln in alignment_strategy()) {
        let text = aln.to_fasta();
        let back = CodonAlignment::from_fasta(&text).unwrap();
        prop_assert_eq!(back, aln);
    }

    #[test]
    fn phylip_roundtrip(aln in alignment_strategy()) {
        let text = aln.to_phylip();
        let back = CodonAlignment::from_phylip(&text).unwrap();
        prop_assert_eq!(back, aln);
    }

    #[test]
    fn newick_roundtrip(text in newick_strategy()) {
        let tree = match parse_newick(&text) {
            Ok(t) => t,
            Err(e) => return Err(TestCaseError::fail(format!("parse failed on {text:?}: {e}"))),
        };
        let written = write_newick(&tree);
        let reparsed = parse_newick(&written).unwrap();
        prop_assert_eq!(tree.n_leaves(), reparsed.n_leaves());
        prop_assert_eq!(tree.n_branches(), reparsed.n_branches());
        prop_assert!((tree.total_length() - reparsed.total_length()).abs() < 1e-9);
    }

    #[test]
    fn patterns_weights_always_sum_to_sites(aln in alignment_strategy()) {
        let code = GeneticCode::universal();
        let patterns = slim_bio::SitePatterns::from_alignment(&aln, &code).unwrap();
        let total: f64 = patterns.weights().iter().sum();
        prop_assert!((total - aln.n_codons() as f64).abs() < 1e-12);
        prop_assert!(patterns.n_patterns() <= aln.n_codons());
        // every site maps to a pattern matching its column
        for s in 0..aln.n_codons() {
            let p = patterns.pattern_of_site(s);
            let col: Vec<usize> = (0..aln.n_sequences())
                .map(|t| code.sense_index(aln.sequence(t)[s].codon().unwrap()).unwrap())
                .collect();
            prop_assert_eq!(patterns.pattern(p), col.as_slice());
        }
    }

    #[test]
    fn frequencies_always_valid(aln in alignment_strategy()) {
        let code = GeneticCode::universal();
        for model in [
            slim_bio::FreqModel::Equal,
            slim_bio::FreqModel::F1x4,
            slim_bio::FreqModel::F3x4,
            slim_bio::FreqModel::F61,
        ] {
            let pi = slim_bio::codon_frequencies(&aln, &code, model);
            prop_assert!(slim_bio::frequencies::validate_frequencies(&pi), "{model:?}");
        }
    }
}
