//! Alignment-column site patterns.
//!
//! Identical alignment columns contribute identical per-site likelihoods,
//! so the pruning engine evaluates each *unique* column once and weights it
//! by its multiplicity — the standard trick in all ML phylogenetics codes
//! (CodeML included), essential for long alignments like dataset ii
//! (5004 codons).

use crate::alignment::CodonAlignment;
use crate::genetic_code::GeneticCode;
use crate::site::Site;
use crate::BioError;
use std::collections::HashMap;

/// Sentinel pattern entry for a missing-data cell. The pruning engine
/// treats it as an uninformative (all-ones) leaf CPV. Chosen outside any
/// genetic code's sense range.
pub const MISSING: usize = usize::MAX;

/// Unique alignment columns with multiplicities, in sense-codon index
/// space.
#[derive(Debug, Clone, PartialEq)]
pub struct SitePatterns {
    /// `patterns[p][taxon]` = dense sense-codon index of the codon of
    /// `taxon` in pattern `p`.
    patterns: Vec<Vec<usize>>,
    /// Multiplicity of each pattern.
    weights: Vec<f64>,
    /// For each original site, the pattern it maps to.
    site_to_pattern: Vec<usize>,
    n_taxa: usize,
}

impl SitePatterns {
    /// Compress an alignment into unique site patterns.
    ///
    /// # Errors
    /// [`BioError::InvalidAlignment`] if a codon is a stop under `code`
    /// (possible when an alignment validated under one code is used with
    /// another, e.g. AGA under the mitochondrial code).
    pub fn from_alignment(aln: &CodonAlignment, code: &GeneticCode) -> crate::Result<SitePatterns> {
        let n_taxa = aln.n_sequences();
        let n_sites = aln.n_codons();
        let mut map: HashMap<Vec<usize>, usize> = HashMap::new();
        let mut patterns: Vec<Vec<usize>> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        let mut site_to_pattern = Vec::with_capacity(n_sites);

        for site in 0..n_sites {
            let col: Vec<usize> = (0..n_taxa)
                .map(|t| match aln.sequence(t)[site] {
                    Site::Codon(c) => code.sense_index(c).ok_or_else(|| {
                        BioError::InvalidAlignment(format!(
                            "codon {} at site {site} is a stop under this genetic code",
                            c.to_string_repr()
                        ))
                    }),
                    Site::Missing => Ok(MISSING),
                })
                .collect::<crate::Result<Vec<usize>>>()?;
            let idx = *map.entry(col.clone()).or_insert_with(|| {
                patterns.push(col);
                weights.push(0.0);
                patterns.len() - 1
            });
            weights[idx] += 1.0;
            site_to_pattern.push(idx);
        }

        Ok(SitePatterns {
            patterns,
            weights,
            site_to_pattern,
            n_taxa,
        })
    }

    /// Number of unique patterns.
    pub fn n_patterns(&self) -> usize {
        self.patterns.len()
    }

    /// Number of taxa per pattern.
    pub fn n_taxa(&self) -> usize {
        self.n_taxa
    }

    /// Total number of sites (sum of weights).
    pub fn n_sites(&self) -> usize {
        self.site_to_pattern.len()
    }

    /// The sense-codon indices of pattern `p`, one per taxon.
    // check: allow(panic-free-hot-path) p < n_patterns by caller loop bound; rows are n_taxa wide by construction
    pub fn pattern(&self, p: usize) -> &[usize] {
        &self.patterns[p]
    }

    /// Multiplicity of pattern `p`.
    pub fn weight(&self, p: usize) -> f64 {
        self.weights[p]
    }

    /// All weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Pattern index for original alignment site `s` (used to expand
    /// per-pattern posteriors back to per-site results for BEB output).
    pub fn pattern_of_site(&self, s: usize) -> usize {
        self.site_to_pattern[s]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterns_of(fasta: &str) -> SitePatterns {
        let aln = CodonAlignment::from_fasta(fasta).unwrap();
        SitePatterns::from_alignment(&aln, &GeneticCode::universal()).unwrap()
    }

    #[test]
    fn identical_columns_collapse() {
        // Columns: [CCC,CCC], [TAC,TAC], [CCC,CCC] → 2 unique patterns.
        let p = patterns_of(">A\nCCCTACCCC\n>B\nCCCTACCCC\n");
        assert_eq!(p.n_patterns(), 2);
        assert_eq!(p.n_sites(), 3);
        assert_eq!(p.weight(0), 2.0); // CCC column appears twice
        assert_eq!(p.weight(1), 1.0);
        assert_eq!(p.pattern_of_site(0), 0);
        assert_eq!(p.pattern_of_site(1), 1);
        assert_eq!(p.pattern_of_site(2), 0);
    }

    #[test]
    fn weights_sum_to_sites() {
        let p =
            patterns_of(">A\nCCCTACTGCCCCAAGGAG\n>B\nCCCTACTGCCCCAAGGAG\n>C\nCCCTATTGCACCAAGGAG\n");
        let total: f64 = p.weights().iter().sum();
        assert_eq!(total, p.n_sites() as f64);
        assert_eq!(p.n_taxa(), 3);
    }

    #[test]
    fn distinct_columns_stay_distinct() {
        let p = patterns_of(">A\nCCCTAC\n>B\nCCCTAT\n");
        // col0 = [CCC,CCC], col1 = [TAC,TAT]
        assert_eq!(p.n_patterns(), 2);
        assert_ne!(p.pattern(0), p.pattern(1));
    }

    #[test]
    fn pattern_content_is_sense_indices() {
        let code = GeneticCode::universal();
        let p = patterns_of(">A\nTTT\n>B\nGGG\n");
        let expect_a = code
            .sense_index(crate::Codon::from_str("TTT").unwrap())
            .unwrap();
        let expect_b = code
            .sense_index(crate::Codon::from_str("GGG").unwrap())
            .unwrap();
        assert_eq!(p.pattern(0), &[expect_a, expect_b]);
    }

    #[test]
    fn long_repetitive_alignment_compresses_hard() {
        // 100 copies of the same codon → exactly 1 pattern of weight 100.
        let seq = "ATG".repeat(100);
        let text = format!(">A\n{seq}\n>B\n{seq}\n");
        let p = patterns_of(&text);
        assert_eq!(p.n_patterns(), 1);
        assert_eq!(p.weight(0), 100.0);
    }
}
