//! Newick tree parsing and writing with PAML-style branch labels.
//!
//! CodeML identifies the branch to test for positive selection with a `#1`
//! label in the Newick string (e.g. `((A,B)#1:0.1,C);`). This parser
//! accepts labels in either order relative to the branch length
//! (`name#1:0.3` or `name:0.3#1`) and treats any `#k` with `k ≥ 1` as the
//! foreground mark.

use crate::tree::{Node, NodeId, Tree};
use crate::BioError;

/// Parse a Newick string into a [`Tree`].
///
/// # Errors
/// [`BioError::InvalidNewick`] on any syntax problem.
pub fn parse_newick(text: &str) -> crate::Result<Tree> {
    let mut parser = Parser {
        chars: text.trim().chars().collect(),
        pos: 0,
        nodes: Vec::new(),
    };
    let root = parser.parse_subtree(None)?;
    parser.skip_ws();
    match parser.peek() {
        Some(';') => {
            parser.pos += 1;
            parser.skip_ws();
            if parser.pos != parser.chars.len() {
                return Err(BioError::InvalidNewick(
                    "trailing characters after ';'".into(),
                ));
            }
        }
        None => {}
        Some(c) => {
            return Err(BioError::InvalidNewick(format!(
                "unexpected character {c:?} at top level"
            )))
        }
    }
    Tree::new(parser.nodes, root)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    nodes: Vec<Node>,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn new_node(&mut self, parent: Option<NodeId>) -> NodeId {
        self.nodes.push(Node {
            parent,
            children: Vec::new(),
            name: None,
            branch_length: 0.0,
            foreground: false,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Parse one subtree: either `(child,child,…)annotations` or a leaf
    /// `nameannotations`.
    fn parse_subtree(&mut self, parent: Option<NodeId>) -> crate::Result<NodeId> {
        self.skip_ws();
        let id = self.new_node(parent);
        if self.peek() == Some('(') {
            self.pos += 1;
            loop {
                let child = self.parse_subtree(Some(id))?;
                self.nodes[id.0].children.push(child);
                self.skip_ws();
                match self.peek() {
                    Some(',') => {
                        self.pos += 1;
                    }
                    Some(')') => {
                        self.pos += 1;
                        break;
                    }
                    other => {
                        return Err(BioError::InvalidNewick(format!(
                            "expected ',' or ')' at position {}, found {other:?}",
                            self.pos
                        )))
                    }
                }
            }
        }
        self.parse_annotations(id)?;
        if self.nodes[id.0].children.is_empty() && self.nodes[id.0].name.is_none() {
            return Err(BioError::InvalidNewick(format!(
                "unnamed leaf at position {}",
                self.pos
            )));
        }
        Ok(id)
    }

    /// Parse `[name][#k][:len]` in any #/: order after a leaf name or
    /// closing parenthesis.
    fn parse_annotations(&mut self, id: NodeId) -> crate::Result<()> {
        self.skip_ws();
        // Optional name (for leaves or labelled internal nodes).
        let name = self.take_name();
        if !name.is_empty() {
            self.nodes[id.0].name = Some(name);
        }
        // Now zero or more of `#k` and `:len`, in either order.
        loop {
            self.skip_ws();
            match self.peek() {
                Some('#') => {
                    self.pos += 1;
                    let label = self.take_name();
                    let k: u32 = label.parse().map_err(|_| {
                        BioError::InvalidNewick(format!("bad branch label #{label:?}"))
                    })?;
                    if k >= 1 {
                        self.nodes[id.0].foreground = true;
                    }
                }
                Some(':') => {
                    self.pos += 1;
                    self.skip_ws();
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
                    {
                        self.pos += 1;
                    }
                    let text: String = self.chars[start..self.pos].iter().collect();
                    let len: f64 = text.parse().map_err(|_| {
                        BioError::InvalidNewick(format!("bad branch length {text:?}"))
                    })?;
                    if len < 0.0 {
                        return Err(BioError::InvalidNewick(format!(
                            "negative branch length {len}"
                        )));
                    }
                    self.nodes[id.0].branch_length = len;
                }
                _ => break,
            }
        }
        Ok(())
    }

    /// Take a run of name characters (anything except Newick structural
    /// characters).
    fn take_name(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if !matches!(c, '(' | ')' | ',' | ':' | ';' | '#') && !c.is_whitespace())
        {
            self.pos += 1;
        }
        self.chars[start..self.pos].iter().collect()
    }
}

/// Serialize a tree back to Newick, preserving branch lengths and the
/// foreground `#1` label.
pub fn write_newick(tree: &Tree) -> String {
    let mut out = String::new();
    write_node(tree, tree.root(), &mut out, true);
    out.push(';');
    out
}

fn write_node(tree: &Tree, id: NodeId, out: &mut String, is_root: bool) {
    let node = tree.node(id);
    if !node.children.is_empty() {
        out.push('(');
        for (i, &c) in node.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_node(tree, c, out, false);
        }
        out.push(')');
    }
    if let Some(name) = &node.name {
        out.push_str(name);
    }
    if node.foreground {
        out.push_str("#1");
    }
    if !is_root {
        out.push_str(&format!(":{}", format_len(node.branch_length)));
    }
}

fn format_len(len: f64) -> String {
    // Shortest representation that round-trips typical lengths.
    let s = format!("{len}");
    if s.contains('.') || s.contains('e') {
        s
    } else {
        format!("{len:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_pair() {
        let t = parse_newick("(A:0.1,B:0.2);").unwrap();
        assert_eq!(t.n_leaves(), 2);
        let a = t.leaf_by_name("A").unwrap();
        assert!((t.node(a).branch_length - 0.1).abs() < 1e-15);
    }

    #[test]
    fn parse_nested_with_internal_lengths() {
        let t = parse_newick("((A:0.1,B:0.2):0.05,C:0.3);").unwrap();
        assert_eq!(t.n_leaves(), 3);
        assert_eq!(t.n_branches(), 4);
        assert!((t.total_length() - 0.65).abs() < 1e-12);
    }

    #[test]
    fn foreground_label_on_leaf_and_internal() {
        let t = parse_newick("(A#1:0.1,B:0.2);").unwrap();
        let fg = t.foreground_branch().unwrap();
        assert_eq!(t.node(fg).name.as_deref(), Some("A"));

        let t2 = parse_newick("((A:0.1,B:0.2)#1:0.05,C:0.3);").unwrap();
        let fg2 = t2.foreground_branch().unwrap();
        assert_eq!(t2.node(fg2).children.len(), 2);
    }

    #[test]
    fn label_after_length_also_accepted() {
        let t = parse_newick("(A:0.1#1,B:0.2);").unwrap();
        assert!(t.foreground_branch().is_ok());
    }

    #[test]
    fn label_zero_is_background() {
        let t = parse_newick("(A#0:0.1,B:0.2);").unwrap();
        assert!(t.foreground_branch().is_err());
    }

    #[test]
    fn multifurcation_allowed() {
        let t = parse_newick("(A:0.1,B:0.2,C:0.3);").unwrap();
        assert_eq!(t.n_leaves(), 3);
        assert!(!t.is_binary());
    }

    #[test]
    fn scientific_notation_lengths() {
        let t = parse_newick("(A:1e-3,B:2.5E-2);").unwrap();
        let a = t.leaf_by_name("A").unwrap();
        assert!((t.node(a).branch_length - 1e-3).abs() < 1e-18);
    }

    #[test]
    fn whitespace_tolerated() {
        let t = parse_newick(" ( A : 0.1 , ( B : 0.2 , C : 0.3 ) : 0.05 ) ; ").unwrap();
        assert_eq!(t.n_leaves(), 3);
    }

    #[test]
    fn syntax_errors_rejected() {
        assert!(parse_newick("(A:0.1,B:0.2").is_err()); // unbalanced
        assert!(parse_newick("(A:0.1,:0.2);").is_err()); // unnamed leaf
        assert!(parse_newick("(A:0.1,B:0.2);junk").is_err()); // trailing
        assert!(parse_newick("(A:-0.5,B:0.2);").is_err()); // negative length
        assert!(parse_newick("(A#x:0.1,B:0.2);").is_err()); // bad label
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let text = "((A:0.1,B:0.2)#1:0.05,(C:0.3,D:0.4):0.15);";
        let t = parse_newick(text).unwrap();
        let written = write_newick(&t);
        let t2 = parse_newick(&written).unwrap();
        assert_eq!(t.n_leaves(), t2.n_leaves());
        assert!((t.total_length() - t2.total_length()).abs() < 1e-12);
        let fg1 = t.foreground_branch().unwrap();
        let fg2 = t2.foreground_branch().unwrap();
        assert_eq!(t.node(fg1).children.len(), t2.node(fg2).children.len());
    }
}
