//! Minimal NEXUS format support.
//!
//! NEXUS is the other interchange format of the phylogenetics ecosystem
//! (MrBayes, BEAST, PAUP*); supporting it lets the CLI consume datasets
//! without conversion. Implemented subset:
//!
//! * `BEGIN DATA;` blocks with `DIMENSIONS`, `FORMAT` and a `MATRIX` of
//!   name/sequence pairs (sequential, optionally interleaved);
//! * `BEGIN TREES;` blocks with optional `TRANSLATE` tables and `TREE
//!   name = [comment] <newick>;` statements.
//!
//! Comments in square brackets are stripped globally (NEXUS semantics),
//! which also removes rooting annotations like `[&R]`.

use crate::alignment::CodonAlignment;
use crate::newick::parse_newick;
use crate::site::Site;
use crate::tree::Tree;
use crate::BioError;
use std::collections::HashMap;

/// Strip `[...]` comments (non-nested, per the common dialect).
fn strip_comments(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut depth = 0usize;
    for c in text.chars() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Check the `#NEXUS` magic (case-insensitive).
pub fn is_nexus(text: &str) -> bool {
    text.trim_start().to_ascii_uppercase().starts_with("#NEXUS")
}

/// Parse the first DATA (or CHARACTERS) block into a codon alignment.
///
/// # Errors
/// [`BioError::ParseError`] on structural problems; alignment validation
/// errors propagate unchanged.
pub fn parse_nexus_alignment(text: &str) -> crate::Result<CodonAlignment> {
    if !is_nexus(text) {
        return Err(BioError::ParseError("missing #NEXUS header".into()));
    }
    let clean = strip_comments(text);
    let upper = clean.to_ascii_uppercase();

    // Locate the MATRIX section inside a DATA/CHARACTERS block.
    let block_start = upper
        .find("BEGIN DATA")
        .or_else(|| upper.find("BEGIN CHARACTERS"))
        .ok_or_else(|| BioError::ParseError("no DATA/CHARACTERS block".into()))?;
    let rest_upper = &upper[block_start..];
    let matrix_rel = rest_upper
        .find("MATRIX")
        .ok_or_else(|| BioError::ParseError("DATA block without MATRIX".into()))?;
    let matrix_start = block_start + matrix_rel + "MATRIX".len();
    let matrix_end_rel = upper[matrix_start..]
        .find(';')
        .ok_or_else(|| BioError::ParseError("MATRIX not terminated by ';'".into()))?;
    let matrix_text = &clean[matrix_start..matrix_start + matrix_end_rel];

    // Name/sequence tokens; interleaved blocks repeat names.
    let mut order: Vec<String> = Vec::new();
    let mut parts: HashMap<String, String> = HashMap::new();
    for line in matrix_text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let name = tokens
            .next()
            .expect("non-empty line has a first token")
            .to_string();
        let seq: String = tokens.collect();
        if seq.is_empty() {
            return Err(BioError::ParseError(format!(
                "MATRIX line for {name:?} has no sequence data"
            )));
        }
        if !parts.contains_key(&name) {
            order.push(name.clone());
        }
        parts.entry(name).or_default().push_str(&seq);
    }
    if order.is_empty() {
        return Err(BioError::ParseError("empty MATRIX".into()));
    }

    let mut seqs: Vec<Vec<Site>> = Vec::with_capacity(order.len());
    for name in &order {
        let nt = &parts[name];
        if !nt.len().is_multiple_of(3) {
            return Err(BioError::InvalidAlignment(format!(
                "sequence {name:?} has {} nucleotides (not a multiple of 3)",
                nt.len()
            )));
        }
        let sites = nt
            .as_bytes()
            .chunks(3)
            .map(|c| Site::from_chunk(std::str::from_utf8(c).expect("ASCII")))
            .collect::<crate::Result<Vec<_>>>()?;
        seqs.push(sites);
    }
    CodonAlignment::new(order, seqs)
}

/// Parse the first tree of the first TREES block, applying any TRANSLATE
/// table.
///
/// # Errors
/// [`BioError::ParseError`] / [`BioError::InvalidNewick`].
pub fn parse_nexus_tree(text: &str) -> crate::Result<Tree> {
    if !is_nexus(text) {
        return Err(BioError::ParseError("missing #NEXUS header".into()));
    }
    let clean = strip_comments(text);
    let upper = clean.to_ascii_uppercase();
    let block_start = upper
        .find("BEGIN TREES")
        .ok_or_else(|| BioError::ParseError("no TREES block".into()))?;

    // Optional TRANSLATE table: `TRANSLATE 1 name1, 2 name2, ...;`
    let mut translate: HashMap<String, String> = HashMap::new();
    if let Some(t_rel) = upper[block_start..].find("TRANSLATE") {
        let t_start = block_start + t_rel + "TRANSLATE".len();
        let t_end = upper[t_start..]
            .find(';')
            .ok_or_else(|| BioError::ParseError("TRANSLATE not terminated".into()))?;
        for entry in clean[t_start..t_start + t_end].split(',') {
            let mut it = entry.split_whitespace();
            if let (Some(key), Some(value)) = (it.next(), it.next()) {
                translate.insert(key.to_string(), value.to_string());
            }
        }
    }

    // First TREE statement.
    let tree_rel = upper[block_start..]
        .find("TREE ")
        .ok_or_else(|| BioError::ParseError("TREES block without TREE statement".into()))?;
    let stmt_start = block_start + tree_rel;
    let eq = clean[stmt_start..]
        .find('=')
        .ok_or_else(|| BioError::ParseError("TREE statement without '='".into()))?;
    let newick_start = stmt_start + eq + 1;
    let end = clean[newick_start..]
        .find(';')
        .ok_or_else(|| BioError::ParseError("TREE statement not terminated".into()))?;
    let newick = format!("{};", clean[newick_start..newick_start + end].trim());

    let mut tree = parse_newick(&newick)?;
    if !translate.is_empty() {
        for id in tree.leaves() {
            if let Some(name) = tree.node(id).name.clone() {
                if let Some(full) = translate.get(&name) {
                    tree.node_mut(id).name = Some(full.clone());
                }
            }
        }
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    const NEXUS: &str = "#NEXUS
BEGIN DATA;
  DIMENSIONS NTAX=3 NCHAR=9;
  FORMAT DATATYPE=DNA MISSING=? GAP=-;
  MATRIX
    A  ATGCCCTTT
    B  ATGCCATTT
    C  ATG---TTC
  ;
END;
BEGIN TREES;
  TRANSLATE 1 A, 2 B, 3 C;
  TREE tree1 = [&R] ((1:0.1,2:0.2)#1:0.05,3:0.3);
END;
";

    #[test]
    fn parses_alignment() {
        let aln = parse_nexus_alignment(NEXUS).unwrap();
        assert_eq!(aln.n_sequences(), 3);
        assert_eq!(aln.n_codons(), 3);
        assert_eq!(aln.names(), &["A", "B", "C"]);
        assert!(aln.sequence(2)[1].is_missing());
    }

    #[test]
    fn parses_tree_with_translation() {
        let tree = parse_nexus_tree(NEXUS).unwrap();
        assert_eq!(tree.n_leaves(), 3);
        assert!(tree.leaf_by_name("A").is_some());
        assert!(tree.leaf_by_name("1").is_none(), "translate table applied");
        assert!(tree.foreground_branch().is_ok());
    }

    #[test]
    fn interleaved_matrix() {
        let text = "#NEXUS\nBEGIN DATA;\nMATRIX\nA ATG\nB ATG\nA CCC\nB CCA\n;\nEND;\n";
        let aln = parse_nexus_alignment(text).unwrap();
        assert_eq!(aln.n_codons(), 2);
        assert_eq!(aln.sequence(0)[1].to_string_repr(), "CCC");
        assert_eq!(aln.sequence(1)[1].to_string_repr(), "CCA");
    }

    #[test]
    fn comments_stripped() {
        let text = "#NEXUS\nBEGIN DATA;\nMATRIX\nA ATG[comment]CCC\nB ATGCCA\n;\nEND;\n";
        let aln = parse_nexus_alignment(text).unwrap();
        assert_eq!(aln.n_codons(), 2);
    }

    #[test]
    fn rejects_non_nexus_and_malformed() {
        assert!(parse_nexus_alignment(">A\nATG\n").is_err());
        assert!(parse_nexus_alignment("#NEXUS\nBEGIN TREES;\nEND;\n").is_err());
        assert!(parse_nexus_alignment("#NEXUS\nBEGIN DATA;\nMATRIX\nA ATG\n").is_err()); // no ';'
        assert!(parse_nexus_tree("#NEXUS\nBEGIN DATA;\nMATRIX\nA ATG\n;\nEND;\n").is_err());
    }

    #[test]
    fn is_nexus_detection() {
        assert!(is_nexus("  #nexus\nstuff"));
        assert!(!is_nexus(">fasta"));
        assert!(!is_nexus("3 9\nA ATG..."));
    }
}
