//! One position of one sequence: an observed codon or missing data.
//!
//! Real alignments (including the paper's Ensembl/Selectome inputs)
//! contain gaps (`---`) and ambiguous codons (`N`s, partial gaps). CodeML
//! treats such sites as *missing data*: the leaf's conditional
//! probability vector is all-ones, i.e. the state is integrated out.

use crate::codon::Codon;
use crate::BioError;

/// A codon-alignment cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// An unambiguous sense codon.
    Codon(Codon),
    /// A gap or ambiguous codon, treated as missing data.
    Missing,
}

impl Site {
    /// Parse a three-character chunk. Unambiguous nucleotide triplets
    /// become [`Site::Codon`]; anything containing gap/ambiguity
    /// characters (`-`, `.`, `?`, `N`, `X`) becomes [`Site::Missing`].
    ///
    /// # Errors
    /// [`BioError::InvalidCodon`] for characters outside both alphabets
    /// or wrong chunk length. (Stop codons are *not* rejected here — the
    /// alignment validates those, so the error can name the sequence.)
    pub fn from_chunk(chunk: &str) -> crate::Result<Site> {
        let chars: Vec<char> = chunk.chars().collect();
        if chars.len() != 3 {
            return Err(BioError::InvalidCodon(chunk.to_string()));
        }
        let is_ambiguous = |c: char| matches!(c.to_ascii_uppercase(), '-' | '.' | '?' | 'N' | 'X');
        if chars.iter().any(|&c| is_ambiguous(c)) {
            // Every character must still be legal (nucleotide or ambiguity).
            for &c in &chars {
                if !is_ambiguous(c) && crate::nucleotide::Nuc::from_char(c).is_err() {
                    return Err(BioError::InvalidCodon(chunk.to_string()));
                }
            }
            return Ok(Site::Missing);
        }
        Codon::from_str(chunk).map(Site::Codon)
    }

    /// Three-character representation (`---` for missing).
    pub fn to_string_repr(self) -> String {
        match self {
            Site::Codon(c) => c.to_string_repr(),
            Site::Missing => "---".to_string(),
        }
    }

    /// Is this cell missing data?
    #[inline]
    pub fn is_missing(self) -> bool {
        matches!(self, Site::Missing)
    }

    /// The codon, if observed.
    #[inline]
    pub fn codon(self) -> Option<Codon> {
        match self {
            Site::Codon(c) => Some(c),
            Site::Missing => None,
        }
    }
}

impl From<Codon> for Site {
    fn from(c: Codon) -> Site {
        Site::Codon(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_codons_and_gaps() {
        assert_eq!(
            Site::from_chunk("ATG").unwrap(),
            Site::Codon(Codon::from_str("ATG").unwrap())
        );
        assert_eq!(Site::from_chunk("---").unwrap(), Site::Missing);
        assert_eq!(Site::from_chunk("A-G").unwrap(), Site::Missing);
        assert_eq!(Site::from_chunk("NNN").unwrap(), Site::Missing);
        assert_eq!(Site::from_chunk("aNg").unwrap(), Site::Missing);
        assert_eq!(Site::from_chunk("?..").unwrap(), Site::Missing);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Site::from_chunk("AT").is_err());
        assert!(Site::from_chunk("ATGA").is_err());
        assert!(Site::from_chunk("AZG").is_err());
        assert!(Site::from_chunk("A G").is_err());
    }

    #[test]
    fn roundtrip_repr() {
        for chunk in ["ATG", "---", "CCC"] {
            let site = Site::from_chunk(chunk).unwrap();
            let back = Site::from_chunk(&site.to_string_repr()).unwrap();
            assert_eq!(site, back);
        }
    }

    #[test]
    fn accessors() {
        let c = Site::from_chunk("ATG").unwrap();
        assert!(!c.is_missing());
        assert!(c.codon().is_some());
        assert!(Site::Missing.is_missing());
        assert_eq!(Site::Missing.codon(), None);
    }
}
