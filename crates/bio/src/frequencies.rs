//! Empirical codon frequency estimators.
//!
//! "The codon frequencies πᵢ used in the model are determined empirically
//! from the MSA" (§II-A). CodeML offers several estimators; the three used
//! in practice are implemented here.

use crate::alignment::CodonAlignment;
use crate::codon::Codon;
use crate::genetic_code::GeneticCode;
use crate::N_CODONS;

// NOTE: output vectors are sized by `code.n_sense()` (61 universal, 60
// vertebrate-mitochondrial); codons that are stops under `code` are
// skipped when counting (they can occur when the alignment was validated
// under a different code).

/// How to estimate equilibrium codon frequencies from the alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FreqModel {
    /// Equal frequencies, 1/61 each (CodeML `CodonFreq = 0`).
    Equal,
    /// From average nucleotide frequencies, one distribution shared by all
    /// three codon positions (CodeML `CodonFreq = 1`).
    F1x4,
    /// From position-specific nucleotide frequencies (CodeML
    /// `CodonFreq = 2`, the Selectome default).
    #[default]
    F3x4,
    /// Raw codon counts with a pseudo-count (CodeML `CodonFreq = 3`).
    F61,
}

impl FreqModel {
    /// Parse a user-facing name (case-insensitive): `equal`, `f1x4`,
    /// `f3x4`, `f61`. Shared by the CLI `--freq` flag and batch
    /// manifests so both accept the same vocabulary.
    pub fn from_str_opt(s: &str) -> Option<FreqModel> {
        match s.to_ascii_lowercase().as_str() {
            "equal" => Some(FreqModel::Equal),
            "f1x4" => Some(FreqModel::F1x4),
            "f3x4" => Some(FreqModel::F3x4),
            "f61" => Some(FreqModel::F61),
            _ => None,
        }
    }

    /// The name `from_str_opt` accepts for this model.
    pub fn label(&self) -> &'static str {
        match self {
            FreqModel::Equal => "equal",
            FreqModel::F1x4 => "f1x4",
            FreqModel::F3x4 => "f3x4",
            FreqModel::F61 => "f61",
        }
    }
}

/// Estimate sense-codon equilibrium frequencies (length `code.n_sense()`
/// vector, summing to 1, every entry strictly positive).
pub fn codon_frequencies(aln: &CodonAlignment, code: &GeneticCode, model: FreqModel) -> Vec<f64> {
    let n = code.n_sense();
    match model {
        FreqModel::Equal => vec![1.0 / n as f64; n],
        FreqModel::F1x4 => {
            let nuc = nucleotide_counts(aln, false);
            from_position_freqs(code, &[nuc[0], nuc[0], nuc[0]])
        }
        FreqModel::F3x4 => {
            let nuc = nucleotide_counts(aln, true);
            from_position_freqs(code, &nuc)
        }
        FreqModel::F61 => {
            let mut counts = vec![1.0f64; n]; // +1 pseudo-count keeps πᵢ > 0
            for i in 0..aln.n_sequences() {
                for site in aln.sequence(i) {
                    let Some(codon) = site.codon() else { continue };
                    let Some(idx) = code.sense_index(codon) else {
                        continue;
                    };
                    counts[idx] += 1.0;
                }
            }
            normalize(&mut counts);
            counts
        }
    }
}

/// Position-wise (or pooled) nucleotide frequency table. Returns
/// `[pos][nuc]` normalized distributions; when `by_position` is false all
/// three rows are the pooled distribution in row 0.
fn nucleotide_counts(aln: &CodonAlignment, by_position: bool) -> [[f64; 4]; 3] {
    let mut counts = [[1.0f64; 4]; 3]; // pseudo-count per cell
    for i in 0..aln.n_sequences() {
        for site in aln.sequence(i) {
            let Some(codon) = site.codon() else { continue };
            for p in 0..3 {
                let row = if by_position { p } else { 0 };
                counts[row][codon.at(p).index()] += 1.0;
            }
        }
    }
    for row in &mut counts {
        let s: f64 = row.iter().sum();
        for v in row.iter_mut() {
            *v /= s;
        }
    }
    counts
}

/// Codon frequencies as products of per-position nucleotide frequencies,
/// renormalized over sense codons (stop-codon mass redistributed).
fn from_position_freqs(code: &GeneticCode, pos_freq: &[[f64; 4]; 3]) -> Vec<f64> {
    let mut pi = vec![0.0f64; code.n_sense()];
    for (i, codon) in code.sense_codons().enumerate() {
        pi[i] = pos_freq[0][codon.at(0).index()]
            * pos_freq[1][codon.at(1).index()]
            * pos_freq[2][codon.at(2).index()];
    }
    normalize(&mut pi);
    pi
}

fn normalize(v: &mut [f64]) {
    let s: f64 = v.iter().sum();
    assert!(s > 0.0, "frequency normalization over zero mass");
    for x in v.iter_mut() {
        *x /= s;
    }
}

/// Helper to compute frequencies straight from a single sequence of
/// codons (used by the simulator's round-trip tests).
pub fn f61_from_codons(codons: &[Codon], code: &GeneticCode) -> Vec<f64> {
    let mut counts = vec![1.0f64; code.n_sense()];
    for &c in codons {
        if let Some(i) = code.sense_index(c) {
            counts[i] += 1.0;
        }
    }
    normalize(&mut counts);
    counts
}

/// Nucleotide composition of a frequency vector at a codon position
/// (diagnostic helper).
pub fn marginal_nucleotide_freqs(pi: &[f64], code: &GeneticCode, position: usize) -> [f64; 4] {
    let mut out = [0.0f64; 4];
    for (i, codon) in code.sense_codons().enumerate() {
        out[codon.at(position).index()] += pi[i];
    }
    out
}

/// Check invariants expected of any frequency vector: non-empty (61 for
/// the universal code, 60 mitochondrial), strictly positive, sums to 1
/// within tolerance.
pub fn validate_frequencies(pi: &[f64]) -> bool {
    (pi.len() == N_CODONS || pi.len() == 60)
        && pi.iter().all(|&p| p > 0.0 && p.is_finite())
        && ((pi.iter().sum::<f64>()) - 1.0).abs() < 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nucleotide::Nuc;

    fn toy_alignment() -> CodonAlignment {
        CodonAlignment::from_fasta(
            ">A\nCCCTACTGCCCCAAGGAG\n>B\nCCCTACTGCCCCAAGGAG\n>C\nCCCTATTGCACCAAGGAG\n",
        )
        .unwrap()
    }

    #[test]
    fn all_models_produce_valid_distributions() {
        let aln = toy_alignment();
        let code = GeneticCode::universal();
        for model in [
            FreqModel::Equal,
            FreqModel::F1x4,
            FreqModel::F3x4,
            FreqModel::F61,
        ] {
            let pi = codon_frequencies(&aln, &code, model);
            assert!(validate_frequencies(&pi), "{model:?}");
        }
    }

    #[test]
    fn equal_is_uniform() {
        let aln = toy_alignment();
        let code = GeneticCode::universal();
        let pi = codon_frequencies(&aln, &code, FreqModel::Equal);
        for &p in &pi {
            assert!((p - 1.0 / 61.0).abs() < 1e-15);
        }
    }

    #[test]
    fn f61_reflects_counts() {
        let aln = toy_alignment();
        let code = GeneticCode::universal();
        let pi = codon_frequencies(&aln, &code, FreqModel::F61);
        // CCC appears 6 times (2 per sequence in A and B, 2 in C);
        // codon GGG never appears: its frequency must be strictly smaller.
        let ccc = code.sense_index(Codon::from_str("CCC").unwrap()).unwrap();
        let ggg = code.sense_index(Codon::from_str("GGG").unwrap()).unwrap();
        assert!(pi[ccc] > pi[ggg]);
        assert!(pi[ggg] > 0.0, "pseudo-count keeps unseen codons positive");
    }

    #[test]
    fn f3x4_uses_positional_composition() {
        // Sequences where position 1 is always C but position 3 varies:
        // F3x4 should give higher mass to codons with C in position 1.
        let aln = CodonAlignment::from_fasta(">A\nCTTCTCCTACTG\n>B\nCTTCTCCTACTG\n").unwrap();
        let code = GeneticCode::universal();
        let pi = codon_frequencies(&aln, &code, FreqModel::F3x4);
        let m0 = marginal_nucleotide_freqs(&pi, &code, 0);
        // C must dominate position 0.
        assert!(m0[Nuc::C.index()] > 0.5, "{m0:?}");
    }

    #[test]
    fn f1x4_pools_positions() {
        let aln = toy_alignment();
        let code = GeneticCode::universal();
        let pi = codon_frequencies(&aln, &code, FreqModel::F1x4);
        assert!(validate_frequencies(&pi));
        // Under F1x4 the three positions share one nucleotide distribution,
        // so the marginal at each position should be (nearly) equal after
        // accounting for stop-codon renormalization.
        let m0 = marginal_nucleotide_freqs(&pi, &code, 0);
        let m2 = marginal_nucleotide_freqs(&pi, &code, 2);
        for k in 0..4 {
            assert!((m0[k] - m2[k]).abs() < 0.05, "{m0:?} vs {m2:?}");
        }
    }

    #[test]
    fn from_str_opt_roundtrips_labels() {
        for model in [
            FreqModel::Equal,
            FreqModel::F1x4,
            FreqModel::F3x4,
            FreqModel::F61,
        ] {
            assert_eq!(FreqModel::from_str_opt(model.label()), Some(model));
            assert_eq!(
                FreqModel::from_str_opt(&model.label().to_uppercase()),
                Some(model)
            );
        }
        assert_eq!(FreqModel::from_str_opt("f9x9"), None);
    }

    #[test]
    fn f61_helper_matches_uniform_for_empty() {
        let code = GeneticCode::universal();
        let pi = f61_from_codons(&[], &code);
        assert!(validate_frequencies(&pi));
        for &p in &pi {
            assert!((p - 1.0 / 61.0).abs() < 1e-15);
        }
    }
}
