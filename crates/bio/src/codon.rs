//! Codons: triplets of nucleotides.

use crate::nucleotide::{classify_change, ChangeKind, Nuc};
use crate::BioError;

/// A codon — three nucleotides, the unit of the 61-state substitution
/// models (Fig. 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Codon(pub Nuc, pub Nuc, pub Nuc);

impl Codon {
    /// Construct from three nucleotides.
    #[inline]
    pub fn new(a: Nuc, b: Nuc, c: Nuc) -> Codon {
        Codon(a, b, c)
    }

    /// Parse a three-character codon string.
    ///
    /// (Deliberately an inherent method rather than the `FromStr` trait:
    /// the error type is crate-specific and the call sites read better
    /// fully qualified.)
    ///
    /// # Errors
    /// [`BioError::InvalidCodon`] if the string is not exactly three valid
    /// nucleotide characters.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> crate::Result<Codon> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() != 3 {
            return Err(BioError::InvalidCodon(s.to_string()));
        }
        let a = Nuc::from_char(chars[0]).map_err(|_| BioError::InvalidCodon(s.to_string()))?;
        let b = Nuc::from_char(chars[1]).map_err(|_| BioError::InvalidCodon(s.to_string()))?;
        let c = Nuc::from_char(chars[2]).map_err(|_| BioError::InvalidCodon(s.to_string()))?;
        Ok(Codon(a, b, c))
    }

    /// Three-character string representation.
    pub fn to_string_repr(self) -> String {
        let mut s = String::with_capacity(3);
        s.push(self.0.to_char());
        s.push(self.1.to_char());
        s.push(self.2.to_char());
        s
    }

    /// Index in the 64-codon space with TCAG-major ordering
    /// (`16·n₁ + 4·n₂ + n₃`), matching PAML's numbering.
    #[inline]
    pub fn index64(self) -> usize {
        16 * self.0.index() + 4 * self.1.index() + self.2.index()
    }

    /// Inverse of [`Codon::index64`].
    ///
    /// # Panics
    /// Panics if `i >= 64`.
    #[inline]
    pub fn from_index64(i: usize) -> Codon {
        assert!(i < 64, "codon index out of range");
        Codon(
            Nuc::from_index(i / 16),
            Nuc::from_index((i / 4) % 4),
            Nuc::from_index(i % 4),
        )
    }

    /// The nucleotide at position `p` (0, 1, 2).
    ///
    /// # Panics
    /// Panics if `p > 2`.
    #[inline]
    pub fn at(self, p: usize) -> Nuc {
        match p {
            0 => self.0,
            1 => self.1,
            2 => self.2,
            _ => panic!("codon position out of range"),
        }
    }

    /// Return a copy with position `p` replaced by `n`.
    #[inline]
    // check: allow(panic-free-hot-path) reached via name-match only; position is a literal 0..3 at every caller
    pub fn with(self, p: usize, n: Nuc) -> Codon {
        let mut c = self;
        match p {
            0 => c.0 = n,
            1 => c.1 = n,
            2 => c.2 = n,
            _ => panic!("codon position out of range"),
        }
        c
    }

    /// Number of positions at which two codons differ (0–3).
    #[inline]
    pub fn hamming(self, other: Codon) -> usize {
        (self.0 != other.0) as usize + (self.1 != other.1) as usize + (self.2 != other.2) as usize
    }

    /// If the two codons differ at exactly one position, classify the
    /// change; otherwise `None`. Per Eq. 1 of the paper, multi-nucleotide
    /// changes carry zero instantaneous rate, so `None` ⇒ rate 0.
    pub fn single_change(self, other: Codon) -> Option<SingleChange> {
        let mut found: Option<(usize, Nuc, Nuc)> = None;
        for p in 0..3 {
            let (a, b) = (self.at(p), other.at(p));
            if a != b {
                if found.is_some() {
                    return None; // two or more differences
                }
                found = Some((p, a, b));
            }
        }
        found.map(|(position, from, to)| SingleChange {
            position,
            from,
            to,
            kind: classify_change(from, to),
        })
    }
}

/// A single-nucleotide difference between two codons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleChange {
    /// Codon position of the change (0, 1, 2).
    pub position: usize,
    /// Nucleotide before the change.
    pub from: Nuc,
    /// Nucleotide after the change.
    pub to: Nuc,
    /// Transition or transversion.
    pub kind: ChangeKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print() {
        let c = Codon::from_str("AtG").unwrap();
        assert_eq!(c, Codon(Nuc::A, Nuc::T, Nuc::G));
        assert_eq!(c.to_string_repr(), "ATG");
        assert!(Codon::from_str("AT").is_err());
        assert!(Codon::from_str("ATGA").is_err());
        assert!(Codon::from_str("ANN").is_err());
    }

    #[test]
    fn index64_roundtrip_all() {
        for i in 0..64 {
            assert_eq!(Codon::from_index64(i).index64(), i);
        }
        // Spot-check the TCAG-major convention.
        assert_eq!(Codon::from_str("TTT").unwrap().index64(), 0);
        assert_eq!(Codon::from_str("TTC").unwrap().index64(), 1);
        assert_eq!(Codon::from_str("GGG").unwrap().index64(), 63);
        assert_eq!(Codon::from_str("TAA").unwrap().index64(), 10);
        assert_eq!(Codon::from_str("TAG").unwrap().index64(), 11);
        assert_eq!(Codon::from_str("TGA").unwrap().index64(), 14);
    }

    #[test]
    fn hamming_distances() {
        let a = Codon::from_str("ATG").unwrap();
        assert_eq!(a.hamming(a), 0);
        assert_eq!(a.hamming(Codon::from_str("ATA").unwrap()), 1);
        assert_eq!(a.hamming(Codon::from_str("TTA").unwrap()), 2);
        assert_eq!(a.hamming(Codon::from_str("GCA").unwrap()), 3);
    }

    #[test]
    fn single_change_classification() {
        let a = Codon::from_str("ATG").unwrap();
        // A→G at position 0 is a transition.
        let ch = a.single_change(Codon::from_str("GTG").unwrap()).unwrap();
        assert_eq!(ch.position, 0);
        assert_eq!(ch.kind, ChangeKind::Transition);
        // G→C at position 2 is a transversion.
        let ch = a.single_change(Codon::from_str("ATC").unwrap()).unwrap();
        assert_eq!(ch.position, 2);
        assert_eq!(ch.kind, ChangeKind::Transversion);
        // two differences → None
        assert!(a.single_change(Codon::from_str("TTA").unwrap()).is_none());
        // identical → None
        assert!(a.single_change(a).is_none());
    }

    #[test]
    fn with_and_at() {
        let a = Codon::from_str("ATG").unwrap();
        assert_eq!(a.at(1), Nuc::T);
        let b = a.with(1, Nuc::C);
        assert_eq!(b.to_string_repr(), "ACG");
        // original untouched
        assert_eq!(a.to_string_repr(), "ATG");
    }

    #[test]
    fn single_change_count_per_codon() {
        // Every codon has exactly 9 single-nucleotide neighbours.
        let c = Codon::from_str("CCC").unwrap();
        let mut neighbours = 0;
        for i in 0..64 {
            if c.single_change(Codon::from_index64(i)).is_some() {
                neighbours += 1;
            }
        }
        assert_eq!(neighbours, 9);
    }
}
