//! The universal (standard) genetic code over 64 codons, with the
//! sense-codon indexing (0–60) used throughout the likelihood machinery.

use crate::codon::Codon;
use crate::nucleotide::Nuc;
use crate::N_CODONS;

/// Amino-acid letters for the 64 codons in TCAG-major order
/// (first nucleotide slowest); `*` marks stop codons.
const UNIVERSAL_TABLE: &[u8; 64] =
    b"FFLLSSSSYY**CC*WLLLLPPPPHHQQRRRRIIIMTTTTNNKKSSRRVVVVAAAADDEEGGGG";

/// Vertebrate mitochondrial code (NCBI transl_table 2, CodeML
/// `icode = 1`): TGA → Trp, ATA → Met, AGA/AGG → stop. 60 sense codons.
const VERTEBRATE_MITO_TABLE: &[u8; 64] =
    b"FFLLSSSSYY**CCWWLLLLPPPPHHQQRRRRIIMMTTTTNNKKSS**VVVVAAAADDEEGGGG";

/// The universal genetic code: maps codons to amino acids and defines the
/// dense index over the 61 *sense* codons that the 61×61 substitution
/// matrices of the paper are built on.
#[derive(Debug, Clone)]
pub struct GeneticCode {
    /// `aa[c64]` = amino-acid letter, `b'*'` for stops.
    aa: [u8; 64],
    /// `sense_index[c64]` = Some(dense 0..61 index) for sense codons.
    sense_index: [Option<u8>; 64],
    /// `codon64[dense]` = 64-space index of each sense codon, ascending.
    codon64: Vec<u8>,
}

impl GeneticCode {
    fn from_table(aa: [u8; 64]) -> Self {
        let mut sense_index = [None; 64];
        let mut codon64 = Vec::with_capacity(N_CODONS);
        let mut next = 0u8;
        for (c, &letter) in aa.iter().enumerate() {
            if letter != b'*' {
                sense_index[c] = Some(next);
                codon64.push(c as u8);
                next += 1;
            }
        }
        GeneticCode {
            aa,
            sense_index,
            codon64,
        }
    }

    /// The universal (standard) code — the code the paper's datasets use
    /// (61 sense codons).
    pub fn universal() -> Self {
        let code = Self::from_table(*UNIVERSAL_TABLE);
        debug_assert_eq!(code.n_sense(), N_CODONS);
        code
    }

    /// The vertebrate mitochondrial code (NCBI table 2, CodeML
    /// `icode = 1`): 60 sense codons — TGA codes Trp, ATA codes Met,
    /// AGA/AGG are stops.
    pub fn vertebrate_mitochondrial() -> Self {
        let code = Self::from_table(*VERTEBRATE_MITO_TABLE);
        debug_assert_eq!(code.n_sense(), 60);
        code
    }

    /// Number of sense codons (61 for the universal code).
    #[inline]
    pub fn n_sense(&self) -> usize {
        self.codon64.len()
    }

    /// Amino-acid letter for a codon (`'*'` for stops).
    #[inline]
    pub fn amino_acid(&self, codon: Codon) -> char {
        self.aa[codon.index64()] as char
    }

    /// Is this codon a stop codon?
    #[inline]
    pub fn is_stop(&self, codon: Codon) -> bool {
        self.aa[codon.index64()] == b'*'
    }

    /// Dense sense-codon index (0..61), or `None` for stop codons.
    #[inline]
    pub fn sense_index(&self, codon: Codon) -> Option<usize> {
        self.sense_index[codon.index64()].map(|v| v as usize)
    }

    /// The sense codon with dense index `i`.
    ///
    /// # Panics
    /// Panics if `i >= n_sense()`.
    #[inline]
    pub fn sense_codon(&self, i: usize) -> Codon {
        Codon::from_index64(self.codon64[i] as usize)
    }

    /// Iterate over all sense codons in dense-index order.
    pub fn sense_codons(&self) -> impl Iterator<Item = Codon> + '_ {
        self.codon64
            .iter()
            .map(|&c| Codon::from_index64(c as usize))
    }

    /// Do two codons encode the same amino acid? (Both must be sense
    /// codons for the answer to be biologically meaningful.)
    #[inline]
    pub fn is_synonymous(&self, a: Codon, b: Codon) -> bool {
        self.aa[a.index64()] == self.aa[b.index64()]
    }
}

impl Default for GeneticCode {
    fn default() -> Self {
        GeneticCode::universal()
    }
}

/// Convenience: the three stop codons of the universal code.
pub fn universal_stops() -> [Codon; 3] {
    [
        Codon::new(Nuc::T, Nuc::A, Nuc::A),
        Codon::new(Nuc::T, Nuc::A, Nuc::G),
        Codon::new(Nuc::T, Nuc::G, Nuc::A),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixty_one_sense_codons() {
        let code = GeneticCode::universal();
        assert_eq!(code.n_sense(), 61);
        assert_eq!(code.sense_codons().count(), 61);
    }

    #[test]
    fn stops_are_taa_tag_tga() {
        let code = GeneticCode::universal();
        for stop in universal_stops() {
            assert!(code.is_stop(stop), "{stop:?}");
            assert_eq!(code.sense_index(stop), None);
        }
        let mut stops = 0;
        for c in 0..64 {
            if code.is_stop(Codon::from_index64(c)) {
                stops += 1;
            }
        }
        assert_eq!(stops, 3);
    }

    #[test]
    fn known_translations() {
        let code = GeneticCode::universal();
        let cases = [
            ("ATG", 'M'),
            ("TGG", 'W'),
            ("TTT", 'F'),
            ("AAA", 'K'),
            ("GGG", 'G'),
            ("TCA", 'S'),
            ("AGA", 'R'),
            ("CGA", 'R'),
            ("GAT", 'D'),
            ("CAA", 'Q'),
        ];
        for (s, aa) in cases {
            let codon = Codon::from_str(s).unwrap();
            assert_eq!(code.amino_acid(codon), aa, "{s}");
        }
    }

    #[test]
    fn dense_index_roundtrip() {
        let code = GeneticCode::universal();
        for i in 0..code.n_sense() {
            let codon = code.sense_codon(i);
            assert_eq!(code.sense_index(codon), Some(i));
        }
    }

    #[test]
    fn dense_indices_ascending_in_64_space() {
        let code = GeneticCode::universal();
        let mut prev = None;
        for i in 0..code.n_sense() {
            let c64 = code.sense_codon(i).index64();
            if let Some(p) = prev {
                assert!(c64 > p);
            }
            prev = Some(c64);
        }
    }

    #[test]
    fn synonymy_examples() {
        let code = GeneticCode::universal();
        let ttt = Codon::from_str("TTT").unwrap(); // F
        let ttc = Codon::from_str("TTC").unwrap(); // F
        let tta = Codon::from_str("TTA").unwrap(); // L
        assert!(code.is_synonymous(ttt, ttc));
        assert!(!code.is_synonymous(ttt, tta));
        // six-fold serine: TCx and AGT/AGC
        let tct = Codon::from_str("TCT").unwrap();
        let agc = Codon::from_str("AGC").unwrap();
        assert!(code.is_synonymous(tct, agc));
    }

    #[test]
    fn vertebrate_mito_differences() {
        let uni = GeneticCode::universal();
        let mito = GeneticCode::vertebrate_mitochondrial();
        assert_eq!(mito.n_sense(), 60);
        let tga = Codon::from_str("TGA").unwrap();
        let ata = Codon::from_str("ATA").unwrap();
        let aga = Codon::from_str("AGA").unwrap();
        let agg = Codon::from_str("AGG").unwrap();
        // TGA: stop → Trp.
        assert!(uni.is_stop(tga));
        assert_eq!(mito.amino_acid(tga), 'W');
        // ATA: Ile → Met.
        assert_eq!(uni.amino_acid(ata), 'I');
        assert_eq!(mito.amino_acid(ata), 'M');
        // AGA/AGG: Arg → stop.
        assert_eq!(uni.amino_acid(aga), 'R');
        assert!(mito.is_stop(aga));
        assert!(mito.is_stop(agg));
        // Dense index roundtrip also holds for the mito code.
        for i in 0..mito.n_sense() {
            assert_eq!(mito.sense_index(mito.sense_codon(i)), Some(i));
        }
    }

    #[test]
    fn amino_acid_alphabet_complete() {
        // All 20 amino acids must appear in the table.
        let code = GeneticCode::universal();
        let mut seen = std::collections::HashSet::new();
        for codon in code.sense_codons() {
            seen.insert(code.amino_acid(codon));
        }
        assert_eq!(seen.len(), 20);
        assert!(!seen.contains(&'*'));
    }
}
