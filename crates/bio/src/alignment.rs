//! Codon multiple sequence alignments, with FASTA and PHYLIP I/O.
//!
//! The MSA is the left half of the paper's Fig. 1: one codon sequence per
//! species, all of equal length, with no in-frame stop codons.

use crate::codon::Codon;
use crate::genetic_code::GeneticCode;
use crate::site::Site;
use crate::BioError;

/// A multiple sequence alignment of codon sequences.
#[derive(Debug, Clone, PartialEq)]
pub struct CodonAlignment {
    names: Vec<String>,
    seqs: Vec<Vec<Site>>,
}

impl CodonAlignment {
    /// Build from parallel name/sequence lists.
    ///
    /// # Errors
    /// [`BioError::InvalidAlignment`] if empty, ragged, zero-length, if
    /// names repeat, or if any sequence contains a stop codon.
    pub fn new(names: Vec<String>, seqs: Vec<Vec<Site>>) -> crate::Result<Self> {
        Self::new_with_code(names, seqs, &GeneticCode::universal())
    }

    /// Build with stop-codon validation under an explicit genetic code
    /// (e.g. the vertebrate mitochondrial code, where TGA is sense but
    /// AGA/AGG are stops).
    ///
    /// # Errors
    /// Same validation as [`CodonAlignment::new`], under `code`.
    pub fn new_with_code(
        names: Vec<String>,
        seqs: Vec<Vec<Site>>,
        code: &GeneticCode,
    ) -> crate::Result<Self> {
        if names.len() != seqs.len() {
            return Err(BioError::InvalidAlignment(format!(
                "{} names but {} sequences",
                names.len(),
                seqs.len()
            )));
        }
        if names.is_empty() {
            return Err(BioError::InvalidAlignment("no sequences".into()));
        }
        let len = seqs[0].len();
        if len == 0 {
            return Err(BioError::InvalidAlignment("zero-length sequences".into()));
        }
        for (name, seq) in names.iter().zip(&seqs) {
            if seq.len() != len {
                return Err(BioError::InvalidAlignment(format!(
                    "sequence {name:?} has length {} != {len}",
                    seq.len()
                )));
            }
        }
        {
            let mut sorted: Vec<&String> = names.iter().collect();
            sorted.sort();
            if sorted.windows(2).any(|w| w[0] == w[1]) {
                return Err(BioError::InvalidAlignment(
                    "duplicate sequence names".into(),
                ));
            }
        }
        for (name, seq) in names.iter().zip(&seqs) {
            let stop = seq
                .iter()
                .position(|s| matches!(s, Site::Codon(c) if code.is_stop(*c)));
            if let Some(pos) = stop {
                return Err(BioError::InvalidAlignment(format!(
                    "sequence {name:?} contains stop codon at codon position {pos}"
                )));
            }
        }
        Ok(CodonAlignment { names, seqs })
    }

    /// Build from fully-observed codon sequences (no missing data) — the
    /// simulator's output format.
    ///
    /// # Errors
    /// Same validation as [`CodonAlignment::new`].
    pub fn from_codons(names: Vec<String>, seqs: Vec<Vec<Codon>>) -> crate::Result<Self> {
        let wrapped = seqs
            .into_iter()
            .map(|seq| seq.into_iter().map(Site::Codon).collect())
            .collect();
        CodonAlignment::new(names, wrapped)
    }

    /// Number of sequences (species).
    pub fn n_sequences(&self) -> usize {
        self.names.len()
    }

    /// Alignment length in codons.
    pub fn n_codons(&self) -> usize {
        self.seqs[0].len()
    }

    /// Sequence names, in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The sequence for species `i` (codons or missing-data cells).
    pub fn sequence(&self, i: usize) -> &[Site] {
        &self.seqs[i]
    }

    /// Fraction of cells that are missing data (diagnostic).
    pub fn missing_fraction(&self) -> f64 {
        let total = self.n_sequences() * self.n_codons();
        let missing: usize = self
            .seqs
            .iter()
            .map(|s| s.iter().filter(|c| c.is_missing()).count())
            .sum();
        missing as f64 / total as f64
    }

    /// Index of a sequence by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// One alignment column: the cell of every species at site `site`.
    // check: allow(panic-free-hot-path) reached via name-match with pruning column(); site < n_codons at every caller
    pub fn column(&self, site: usize) -> Vec<Site> {
        self.seqs.iter().map(|s| s[site]).collect()
    }

    /// Keep only the species whose indices are listed (in the given
    /// order). Used by the Fig. 3 experiment, which sub-samples dataset iv
    /// from 95 down to 15 species.
    ///
    /// # Errors
    /// [`BioError::InvalidAlignment`] if `keep` is empty or out of range.
    pub fn subset(&self, keep: &[usize]) -> crate::Result<CodonAlignment> {
        if keep.is_empty() {
            return Err(BioError::InvalidAlignment("empty subset".into()));
        }
        let mut names = Vec::with_capacity(keep.len());
        let mut seqs = Vec::with_capacity(keep.len());
        for &i in keep {
            if i >= self.n_sequences() {
                return Err(BioError::InvalidAlignment(format!(
                    "subset index {i} out of range"
                )));
            }
            names.push(self.names[i].clone());
            seqs.push(self.seqs[i].clone());
        }
        CodonAlignment::new(names, seqs)
    }

    // ---------------------------------------------------------------- FASTA

    /// Parse a FASTA string into a codon alignment.
    ///
    /// # Errors
    /// Parse errors for framing problems, invalid codons, stops, raggedness.
    pub fn from_fasta(text: &str) -> crate::Result<CodonAlignment> {
        Self::from_fasta_with_code(text, &GeneticCode::universal())
    }

    /// FASTA parse with stop validation under an explicit genetic code.
    ///
    /// # Errors
    /// Same as [`CodonAlignment::from_fasta`].
    pub fn from_fasta_with_code(text: &str, code: &GeneticCode) -> crate::Result<CodonAlignment> {
        let mut names = Vec::new();
        let mut buffers: Vec<String> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('>') {
                let name = header.split_whitespace().next().unwrap_or("").to_string();
                if name.is_empty() {
                    return Err(BioError::ParseError("FASTA header with empty name".into()));
                }
                names.push(name);
                buffers.push(String::new());
            } else {
                let buf = buffers.last_mut().ok_or_else(|| {
                    BioError::ParseError("FASTA sequence before first header".into())
                })?;
                buf.push_str(line);
            }
        }
        let seqs = buffers
            .iter()
            .zip(&names)
            .map(|(buf, name)| parse_sites(buf, name))
            .collect::<crate::Result<Vec<_>>>()?;
        CodonAlignment::new_with_code(names, seqs, code)
    }

    /// Serialize to FASTA (60 nucleotides per line).
    pub fn to_fasta(&self) -> String {
        let mut out = String::new();
        for (name, seq) in self.names.iter().zip(&self.seqs) {
            out.push('>');
            out.push_str(name);
            out.push('\n');
            let mut nt = String::with_capacity(seq.len() * 3);
            for site in seq {
                nt.push_str(&site.to_string_repr());
            }
            for chunk in nt.as_bytes().chunks(60) {
                out.push_str(std::str::from_utf8(chunk).expect("ASCII"));
                out.push('\n');
            }
        }
        out
    }

    // --------------------------------------------------------------- PHYLIP

    /// Parse sequential PHYLIP (the format CodeML reads).
    ///
    /// # Errors
    /// Parse errors for bad headers, counts, or sequence content.
    pub fn from_phylip(text: &str) -> crate::Result<CodonAlignment> {
        Self::from_phylip_with_code(text, &GeneticCode::universal())
    }

    /// PHYLIP parse with stop validation under an explicit genetic code.
    ///
    /// # Errors
    /// Same as [`CodonAlignment::from_phylip`].
    pub fn from_phylip_with_code(text: &str, code: &GeneticCode) -> crate::Result<CodonAlignment> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| BioError::ParseError("empty PHYLIP input".into()))?;
        let mut parts = header.split_whitespace();
        let n: usize = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| BioError::ParseError("bad PHYLIP species count".into()))?;
        let len_nt: usize = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| BioError::ParseError("bad PHYLIP length".into()))?;
        if !len_nt.is_multiple_of(3) {
            return Err(BioError::ParseError(format!(
                "PHYLIP length {len_nt} is not a multiple of 3"
            )));
        }
        let mut names = Vec::with_capacity(n);
        let mut seqs = Vec::with_capacity(n);
        for _ in 0..n {
            let line = lines
                .next()
                .ok_or_else(|| BioError::ParseError("PHYLIP truncated".into()))?;
            let mut it = line.split_whitespace();
            let name = it
                .next()
                .ok_or_else(|| BioError::ParseError("PHYLIP line missing name".into()))?
                .to_string();
            let mut seq_text: String = it.collect();
            // Sequential PHYLIP may wrap a sequence across lines.
            while seq_text.len() < len_nt {
                let cont = lines
                    .next()
                    .ok_or_else(|| BioError::ParseError(format!("sequence {name:?} truncated")))?;
                seq_text.extend(cont.split_whitespace().flat_map(|s| s.chars()));
            }
            if seq_text.len() != len_nt {
                return Err(BioError::ParseError(format!(
                    "sequence {name:?}: {} nucleotides, expected {len_nt}",
                    seq_text.len()
                )));
            }
            seqs.push(parse_sites(&seq_text, &name)?);
            names.push(name);
        }
        CodonAlignment::new_with_code(names, seqs, code)
    }

    /// Serialize to sequential PHYLIP.
    pub fn to_phylip(&self) -> String {
        let mut out = format!("{} {}\n", self.n_sequences(), self.n_codons() * 3);
        for (name, seq) in self.names.iter().zip(&self.seqs) {
            out.push_str(name);
            out.push_str("  ");
            for site in seq {
                out.push_str(&site.to_string_repr());
            }
            out.push('\n');
        }
        out
    }
}

/// Parse a run of nucleotide/gap characters into sites.
fn parse_sites(nt: &str, name: &str) -> crate::Result<Vec<Site>> {
    let chars: Vec<char> = nt.chars().filter(|c| !c.is_whitespace()).collect();
    if !chars.len().is_multiple_of(3) {
        return Err(BioError::InvalidAlignment(format!(
            "sequence {name:?} has {} nucleotides (not a multiple of 3)",
            chars.len()
        )));
    }
    chars
        .chunks(3)
        .map(|c| Site::from_chunk(&c.iter().collect::<String>()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const FASTA: &str = ">A\nCCCTACTGC\n>B\nCCCTACTGC\n>C\nCCCTATTGC\n";

    #[test]
    fn fasta_roundtrip() {
        let aln = CodonAlignment::from_fasta(FASTA).unwrap();
        assert_eq!(aln.n_sequences(), 3);
        assert_eq!(aln.n_codons(), 3);
        assert_eq!(aln.names(), &["A", "B", "C"]);
        let re = CodonAlignment::from_fasta(&aln.to_fasta()).unwrap();
        assert_eq!(re, aln);
    }

    #[test]
    fn fasta_multiline_sequences() {
        let text = ">X\nCCC\nTAC\n>Y\nCCCTAC\n";
        let aln = CodonAlignment::from_fasta(text).unwrap();
        assert_eq!(aln.n_codons(), 2);
        assert_eq!(aln.sequence(0), aln.sequence(1));
    }

    #[test]
    fn phylip_roundtrip() {
        let aln = CodonAlignment::from_fasta(FASTA).unwrap();
        let phy = aln.to_phylip();
        assert!(phy.starts_with("3 9"));
        let re = CodonAlignment::from_phylip(&phy).unwrap();
        assert_eq!(re, aln);
    }

    #[test]
    fn rejects_stop_codons() {
        let text = ">A\nTAATAC\n>B\nCCCTAC\n";
        let err = CodonAlignment::from_fasta(text).unwrap_err();
        assert!(err.to_string().contains("stop"));
    }

    #[test]
    fn rejects_ragged() {
        let text = ">A\nCCCTAC\n>B\nCCC\n";
        assert!(CodonAlignment::from_fasta(text).is_err());
    }

    #[test]
    fn rejects_duplicate_names() {
        let text = ">A\nCCC\n>A\nCCC\n";
        assert!(CodonAlignment::from_fasta(text).is_err());
    }

    #[test]
    fn rejects_bad_frame() {
        let text = ">A\nCCCT\n";
        assert!(CodonAlignment::from_fasta(text).is_err());
    }

    #[test]
    fn column_extraction() {
        let aln = CodonAlignment::from_fasta(FASTA).unwrap();
        let col = aln.column(1);
        assert_eq!(col[0].to_string_repr(), "TAC");
        assert_eq!(col[2].to_string_repr(), "TAT");
        assert!(col.iter().all(|c| !c.is_missing()));
    }

    #[test]
    fn subset_preserves_order() {
        let aln = CodonAlignment::from_fasta(FASTA).unwrap();
        let sub = aln.subset(&[2, 0]).unwrap();
        assert_eq!(sub.names(), &["C", "A"]);
        assert!(aln.subset(&[]).is_err());
        assert!(aln.subset(&[5]).is_err());
    }

    #[test]
    fn index_of_names() {
        let aln = CodonAlignment::from_fasta(FASTA).unwrap();
        assert_eq!(aln.index_of("B"), Some(1));
        assert_eq!(aln.index_of("Z"), None);
    }
}
