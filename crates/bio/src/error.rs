use std::fmt;

/// Errors from parsing or validating biological data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BioError {
    /// A character that is not a valid nucleotide.
    InvalidNucleotide(char),
    /// A codon string that is not three valid nucleotides or is a stop.
    InvalidCodon(String),
    /// Alignment-level problem (ragged rows, empty, stop codon inside, …).
    InvalidAlignment(String),
    /// Newick syntax or semantic problem.
    InvalidNewick(String),
    /// Tree-level problem (wrong foreground count, not binary, …).
    InvalidTree(String),
    /// Generic file-format problem (FASTA/PHYLIP framing).
    ParseError(String),
}

impl fmt::Display for BioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BioError::InvalidNucleotide(c) => write!(f, "invalid nucleotide character {c:?}"),
            BioError::InvalidCodon(s) => write!(f, "invalid codon {s:?}"),
            BioError::InvalidAlignment(s) => write!(f, "invalid alignment: {s}"),
            BioError::InvalidNewick(s) => write!(f, "invalid Newick: {s}"),
            BioError::InvalidTree(s) => write!(f, "invalid tree: {s}"),
            BioError::ParseError(s) => write!(f, "parse error: {s}"),
        }
    }
}

impl std::error::Error for BioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_payload() {
        assert!(BioError::InvalidNucleotide('X').to_string().contains('X'));
        assert!(BioError::InvalidCodon("TAA".into())
            .to_string()
            .contains("TAA"));
        assert!(BioError::InvalidNewick("unbalanced".into())
            .to_string()
            .contains("unbalanced"));
    }
}
