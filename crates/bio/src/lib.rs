//! # slim-bio
//!
//! Biological-data substrate for the SlimCodeML reproduction: the universal
//! genetic code over the 61 sense codons, codon alignments (FASTA and
//! PHYLIP), Newick phylogenies with PAML-style foreground-branch labels
//! (`#1`), alignment-column site patterns, and empirical codon frequency
//! estimators (F61, F3×4, F1×4).
//!
//! This crate corresponds to the *input layer* of Fig. 1 in the paper: a
//! multiple sequence alignment of codons plus a phylogenetic tree with one
//! branch marked for the positive-selection test.

pub mod alignment;
pub mod codon;
mod error;
pub mod frequencies;
pub mod genetic_code;
pub mod newick;
pub mod nexus;
pub mod nucleotide;
pub mod patterns;
pub mod site;
pub mod tree;

pub use alignment::CodonAlignment;
pub use codon::Codon;
pub use error::BioError;
pub use frequencies::{codon_frequencies, FreqModel};
pub use genetic_code::GeneticCode;
pub use newick::{parse_newick, write_newick};
pub use nexus::{is_nexus, parse_nexus_alignment, parse_nexus_tree};
pub use nucleotide::Nuc;
pub use patterns::SitePatterns;
pub use site::Site;
pub use tree::{NodeId, Tree};

/// Number of sense codons in the universal genetic code.
pub const N_CODONS: usize = 61;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BioError>;
