//! Nucleotides in PAML's canonical T, C, A, G order.

use crate::BioError;

/// A DNA nucleotide. The discriminants follow PAML's TCAG ordering so that
/// codon indices computed here match CodeML's internal numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Nuc {
    /// Thymine.
    T = 0,
    /// Cytosine.
    C = 1,
    /// Adenine.
    A = 2,
    /// Guanine.
    G = 3,
}

impl Nuc {
    /// All four nucleotides in TCAG order.
    pub const ALL: [Nuc; 4] = [Nuc::T, Nuc::C, Nuc::A, Nuc::G];

    /// Parse from an (upper- or lower-case) character; `U` is accepted as
    /// `T` for RNA input.
    ///
    /// # Errors
    /// [`BioError::InvalidNucleotide`] for anything else (including
    /// ambiguity codes, which this reproduction does not model).
    pub fn from_char(c: char) -> crate::Result<Nuc> {
        match c.to_ascii_uppercase() {
            'T' | 'U' => Ok(Nuc::T),
            'C' => Ok(Nuc::C),
            'A' => Ok(Nuc::A),
            'G' => Ok(Nuc::G),
            other => Err(BioError::InvalidNucleotide(other)),
        }
    }

    /// Upper-case character representation.
    pub fn to_char(self) -> char {
        match self {
            Nuc::T => 'T',
            Nuc::C => 'C',
            Nuc::A => 'A',
            Nuc::G => 'G',
        }
    }

    /// Index in TCAG order (0–3).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Build from a TCAG-order index.
    ///
    /// # Panics
    /// Panics if `i > 3`.
    #[inline]
    pub fn from_index(i: usize) -> Nuc {
        Nuc::ALL[i]
    }

    /// Is this a purine (A or G)?
    #[inline]
    pub fn is_purine(self) -> bool {
        matches!(self, Nuc::A | Nuc::G)
    }

    /// Is this a pyrimidine (C or T)?
    #[inline]
    pub fn is_pyrimidine(self) -> bool {
        matches!(self, Nuc::C | Nuc::T)
    }
}

/// Classification of a single-nucleotide change, per the paper's §II-A:
/// a *transition* keeps the purine/pyrimidine class, a *transversion*
/// crosses it. The ratio of the two rates is the model parameter κ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeKind {
    /// purine→purine or pyrimidine→pyrimidine.
    Transition,
    /// purine→pyrimidine or pyrimidine→purine.
    Transversion,
}

/// Classify the change between two **distinct** nucleotides.
///
/// # Panics
/// Panics in debug builds if `a == b` (no change to classify).
pub fn classify_change(a: Nuc, b: Nuc) -> ChangeKind {
    debug_assert_ne!(a, b, "classify_change: identical nucleotides");
    if a.is_purine() == b.is_purine() {
        ChangeKind::Transition
    } else {
        ChangeKind::Transversion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_all_cases() {
        assert_eq!(Nuc::from_char('a').unwrap(), Nuc::A);
        assert_eq!(Nuc::from_char('G').unwrap(), Nuc::G);
        assert_eq!(Nuc::from_char('u').unwrap(), Nuc::T);
        assert!(Nuc::from_char('N').is_err());
        assert!(Nuc::from_char('-').is_err());
    }

    #[test]
    fn roundtrip_char_index() {
        for n in Nuc::ALL {
            assert_eq!(Nuc::from_char(n.to_char()).unwrap(), n);
            assert_eq!(Nuc::from_index(n.index()), n);
        }
    }

    #[test]
    fn tcag_order() {
        assert_eq!(Nuc::T.index(), 0);
        assert_eq!(Nuc::C.index(), 1);
        assert_eq!(Nuc::A.index(), 2);
        assert_eq!(Nuc::G.index(), 3);
    }

    #[test]
    fn purine_pyrimidine_partition() {
        assert!(Nuc::A.is_purine() && Nuc::G.is_purine());
        assert!(Nuc::C.is_pyrimidine() && Nuc::T.is_pyrimidine());
        for n in Nuc::ALL {
            assert!(n.is_purine() != n.is_pyrimidine());
        }
    }

    #[test]
    fn transitions_and_transversions() {
        use ChangeKind::*;
        assert_eq!(classify_change(Nuc::A, Nuc::G), Transition);
        assert_eq!(classify_change(Nuc::C, Nuc::T), Transition);
        assert_eq!(classify_change(Nuc::A, Nuc::C), Transversion);
        assert_eq!(classify_change(Nuc::G, Nuc::T), Transversion);
        // Exactly 4 of the 12 ordered pairs are transitions.
        let mut transitions = 0;
        for a in Nuc::ALL {
            for b in Nuc::ALL {
                if a != b && classify_change(a, b) == Transition {
                    transitions += 1;
                }
            }
        }
        assert_eq!(transitions, 4);
    }
}
