//! Rooted phylogenetic trees with branch lengths and a foreground-branch
//! mark.
//!
//! The branch-site model divides branches into one **foreground** branch
//! (tested for positive selection) and **background** branches (§II-A,
//! Table I). Each non-root node carries the length of the edge to its
//! parent and a flag marking that edge as foreground.

use crate::BioError;

/// Index of a node in a [`Tree`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A single node: leaf (named, no children) or internal.
#[derive(Debug, Clone)]
pub struct Node {
    /// Parent node; `None` for the root.
    pub parent: Option<NodeId>,
    /// Child nodes (empty for leaves).
    pub children: Vec<NodeId>,
    /// Taxon name for leaves; optional label for internal nodes.
    pub name: Option<String>,
    /// Length of the edge to the parent (ignored for the root).
    pub branch_length: f64,
    /// Whether the edge to the parent is the foreground branch.
    pub foreground: bool,
}

/// A rooted phylogenetic tree stored as an arena of nodes.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Tree {
    /// Build a tree from an arena and root index.
    ///
    /// # Errors
    /// [`BioError::InvalidTree`] if the root index is out of range or
    /// parent/child links are inconsistent.
    pub fn new(nodes: Vec<Node>, root: NodeId) -> crate::Result<Tree> {
        if root.0 >= nodes.len() {
            return Err(BioError::InvalidTree("root index out of range".into()));
        }
        for (i, node) in nodes.iter().enumerate() {
            for &c in &node.children {
                if c.0 >= nodes.len() {
                    return Err(BioError::InvalidTree(format!(
                        "child index {} out of range",
                        c.0
                    )));
                }
                if nodes[c.0].parent != Some(NodeId(i)) {
                    return Err(BioError::InvalidTree(format!(
                        "node {} lists child {} whose parent link disagrees",
                        i, c.0
                    )));
                }
            }
        }
        if nodes[root.0].parent.is_some() {
            return Err(BioError::InvalidTree("root has a parent".into()));
        }
        let tree = Tree { nodes, root };
        // Reachability check: every node must be reachable from the root.
        if tree.postorder().len() != tree.nodes.len() {
            return Err(BioError::InvalidTree("disconnected nodes present".into()));
        }
        Ok(tree)
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of branches (edges) = nodes − 1.
    pub fn n_branches(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// Ids of all leaves, in arena order.
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .map(NodeId)
            .filter(|&id| self.nodes[id.0].children.is_empty())
            .collect()
    }

    /// Number of leaves (extant species, `s` in the paper).
    pub fn n_leaves(&self) -> usize {
        self.leaves().len()
    }

    /// Post-order traversal (children before parents, root last) — the
    /// order in which Felsenstein pruning visits nodes (§II-B).
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        // Iterative DFS to avoid recursion depth limits on large trees.
        let mut stack = vec![(self.root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                order.push(id);
            } else {
                stack.push((id, true));
                for &c in &self.nodes[id.0].children {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    /// Ids of all non-root nodes, i.e. one per branch, in arena order.
    pub fn branch_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .map(NodeId)
            .filter(|&id| self.nodes[id.0].parent.is_some())
            .collect()
    }

    /// The unique foreground branch, identified by its child node.
    ///
    /// # Errors
    /// [`BioError::InvalidTree`] unless exactly one branch is marked.
    pub fn foreground_branch(&self) -> crate::Result<NodeId> {
        let marked: Vec<NodeId> = self
            .branch_nodes()
            .into_iter()
            .filter(|&id| self.nodes[id.0].foreground)
            .collect();
        match marked.as_slice() {
            [one] => Ok(*one),
            [] => Err(BioError::InvalidTree(
                "no foreground branch marked (#1)".into(),
            )),
            many => Err(BioError::InvalidTree(format!(
                "{} foreground branches marked, expected 1",
                many.len()
            ))),
        }
    }

    /// Find a leaf by name.
    pub fn leaf_by_name(&self, name: &str) -> Option<NodeId> {
        self.leaves()
            .into_iter()
            .find(|&id| self.nodes[id.0].name.as_deref() == Some(name))
    }

    /// Collect branch lengths for all non-root nodes in arena order
    /// (the optimizer's view of the tree).
    pub fn branch_lengths(&self) -> Vec<f64> {
        self.branch_nodes()
            .into_iter()
            .map(|id| self.nodes[id.0].branch_length)
            .collect()
    }

    /// Set branch lengths for all non-root nodes in arena order.
    ///
    /// # Panics
    /// Panics if `lens.len() != n_branches()`.
    pub fn set_branch_lengths(&mut self, lens: &[f64]) {
        let ids = self.branch_nodes();
        assert_eq!(lens.len(), ids.len(), "set_branch_lengths: length mismatch");
        for (id, &len) in ids.into_iter().zip(lens) {
            self.nodes[id.0].branch_length = len;
        }
    }

    /// Sum of all branch lengths.
    pub fn total_length(&self) -> f64 {
        self.branch_lengths().iter().sum()
    }

    /// True if every internal node has exactly two children.
    pub fn is_binary(&self) -> bool {
        self.nodes
            .iter()
            .all(|n| n.children.is_empty() || n.children.len() == 2)
    }

    /// Restrict the tree to a subset of its leaves (identified by name),
    /// suppressing the internal nodes left with a single child by merging
    /// their branch lengths — the operation behind the paper's Fig. 3
    /// experiment, which sub-samples the 95-species dataset iv down to 15
    /// species.
    ///
    /// A merged edge is foreground if any of its constituent edges was.
    /// If the old root retains a single child, that child becomes the new
    /// root (its pendant length is dropped, as root edges carry none).
    ///
    /// # Errors
    /// [`BioError::InvalidTree`] if fewer than two names match leaves.
    pub fn restrict_to_leaves(&self, keep: &[&str]) -> crate::Result<Tree> {
        let keep_set: std::collections::HashSet<&str> = keep.iter().copied().collect();
        let kept_leaves: Vec<NodeId> = self
            .leaves()
            .into_iter()
            .filter(|id| {
                self.nodes[id.0]
                    .name
                    .as_deref()
                    .map(|n| keep_set.contains(n))
                    .unwrap_or(false)
            })
            .collect();
        if kept_leaves.len() < 2 {
            return Err(BioError::InvalidTree(format!(
                "restriction keeps {} leaves, need at least 2",
                kept_leaves.len()
            )));
        }

        // Count surviving leaves below each node (postorder).
        let mut survivors = vec![0usize; self.nodes.len()];
        for id in self.postorder() {
            let node = &self.nodes[id.0];
            if node.children.is_empty() {
                survivors[id.0] = usize::from(
                    node.name
                        .as_deref()
                        .map(|n| keep_set.contains(n))
                        .unwrap_or(false),
                );
            } else {
                survivors[id.0] = node.children.iter().map(|c| survivors[c.0]).sum();
            }
        }

        // Walk down from the old root past any unary chain.
        let mut new_root_old = self.root;
        loop {
            let surviving_children: Vec<NodeId> = self.nodes[new_root_old.0]
                .children
                .iter()
                .copied()
                .filter(|c| survivors[c.0] > 0)
                .collect();
            if surviving_children.len() == 1 && survivors[new_root_old.0] > 1 {
                new_root_old = surviving_children[0];
            } else {
                break;
            }
        }

        // Rebuild the arena recursively.
        let mut nodes: Vec<Node> = Vec::new();
        nodes.push(Node {
            parent: None,
            children: vec![],
            name: self.nodes[new_root_old.0].name.clone(),
            branch_length: 0.0,
            foreground: false,
        });
        let mut stack: Vec<(NodeId, usize)> = vec![(new_root_old, 0)]; // (old node, new parent index)
        while let Some((old_id, new_parent)) = stack.pop() {
            for &child in &self.nodes[old_id.0].children {
                if survivors[child.0] == 0 {
                    continue;
                }
                // Follow unary chains, accumulating length and foreground.
                let mut cur = child;
                let mut length = self.nodes[cur.0].branch_length;
                let mut foreground = self.nodes[cur.0].foreground;
                loop {
                    let alive: Vec<NodeId> = self.nodes[cur.0]
                        .children
                        .iter()
                        .copied()
                        .filter(|c| survivors[c.0] > 0)
                        .collect();
                    if alive.len() == 1 && !self.nodes[cur.0].children.is_empty() {
                        cur = alive[0];
                        length += self.nodes[cur.0].branch_length;
                        foreground |= self.nodes[cur.0].foreground;
                    } else {
                        break;
                    }
                }
                let new_id = nodes.len();
                nodes.push(Node {
                    parent: Some(NodeId(new_parent)),
                    children: vec![],
                    name: self.nodes[cur.0].name.clone(),
                    branch_length: length,
                    foreground,
                });
                nodes[new_parent].children.push(NodeId(new_id));
                stack.push((cur, new_id));
            }
        }
        Tree::new(nodes, NodeId(0))
    }

    /// Mark the branch above `id` as the (single) foreground branch,
    /// clearing any previous mark.
    ///
    /// # Errors
    /// [`BioError::InvalidTree`] if `id` is the root.
    pub fn set_foreground(&mut self, id: NodeId) -> crate::Result<()> {
        if self.nodes[id.0].parent.is_none() {
            return Err(BioError::InvalidTree("root has no branch to mark".into()));
        }
        for n in &mut self.nodes {
            n.foreground = false;
        }
        self.nodes[id.0].foreground = true;
        Ok(())
    }

    /// A copy of this tree with the branch above `id` as the single
    /// foreground branch. Convenience over clone + [`set_foreground`]
    /// for callers that keep the original; hot paths that only need a
    /// different mark should prefer
    /// `LikelihoodProblem::new_with_foreground`, which borrows the tree
    /// and overrides the mark without copying the arena.
    ///
    /// [`set_foreground`]: Tree::set_foreground
    ///
    /// # Errors
    /// [`BioError::InvalidTree`] if `id` is the root.
    pub fn with_foreground(&self, id: NodeId) -> crate::Result<Tree> {
        let mut tree = self.clone();
        tree.set_foreground(id)?;
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick::parse_newick;

    fn five_taxon() -> Tree {
        parse_newick("(((A:0.1,B:0.2):0.05,C:0.3)#1:0.1,(D:0.25,E:0.15):0.2);").unwrap()
    }

    #[test]
    fn counts() {
        let t = five_taxon();
        assert_eq!(t.n_leaves(), 5);
        assert_eq!(t.n_nodes(), 9);
        assert_eq!(t.n_branches(), 8);
        assert!(t.is_binary());
    }

    #[test]
    fn postorder_children_before_parents() {
        let t = five_taxon();
        let order = t.postorder();
        assert_eq!(order.len(), t.n_nodes());
        assert_eq!(*order.last().unwrap(), t.root());
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for id in order {
            for &c in &t.node(id).children {
                assert!(pos[&c] < pos[&id], "child after parent in postorder");
            }
        }
    }

    #[test]
    fn foreground_branch_found() {
        let t = five_taxon();
        let fg = t.foreground_branch().unwrap();
        // The marked branch subtends A, B, C.
        let mut names = vec![];
        let mut stack = vec![fg];
        while let Some(id) = stack.pop() {
            let n = t.node(id);
            if n.children.is_empty() {
                names.push(n.name.clone().unwrap());
            }
            stack.extend(&n.children);
        }
        names.sort();
        assert_eq!(names, vec!["A", "B", "C"]);
    }

    #[test]
    fn foreground_errors() {
        let t = parse_newick("(A:0.1,B:0.2);").unwrap();
        assert!(t.foreground_branch().is_err());
        let t2 = parse_newick("(A#1:0.1,B#1:0.2);").unwrap();
        assert!(t2.foreground_branch().is_err());
    }

    #[test]
    fn set_foreground_moves_mark() {
        let mut t = five_taxon();
        let leaf_a = t.leaf_by_name("A").unwrap();
        t.set_foreground(leaf_a).unwrap();
        assert_eq!(t.foreground_branch().unwrap(), leaf_a);
        assert!(t.set_foreground(t.root()).is_err());
    }

    #[test]
    fn with_foreground_leaves_original_untouched() {
        let t = five_taxon();
        let original_fg = t.foreground_branch().unwrap();
        let leaf_b = t.leaf_by_name("B").unwrap();
        let marked = t.with_foreground(leaf_b).unwrap();
        assert_eq!(marked.foreground_branch().unwrap(), leaf_b);
        assert_eq!(t.foreground_branch().unwrap(), original_fg);
        assert!(t.with_foreground(t.root()).is_err());
    }

    #[test]
    fn branch_length_roundtrip() {
        let mut t = five_taxon();
        let lens = t.branch_lengths();
        assert_eq!(lens.len(), 8);
        let doubled: Vec<f64> = lens.iter().map(|v| v * 2.0).collect();
        t.set_branch_lengths(&doubled);
        assert!((t.total_length() - 2.0 * lens.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn restrict_drops_leaves_and_merges_branches() {
        // (((A:0.1,B:0.2):0.05,C:0.3)#1:0.1,(D:0.25,E:0.15):0.2)
        let t = five_taxon();
        let r = t.restrict_to_leaves(&["A", "C", "D"]).unwrap();
        assert_eq!(r.n_leaves(), 3);
        assert!(r.is_binary());
        // B's removal makes A's edge merge with its parent edge:
        // A: 0.1 + 0.05 = 0.15.
        let a = r.leaf_by_name("A").unwrap();
        assert!((r.node(a).branch_length - 0.15).abs() < 1e-12);
        // E's removal merges D's edge: 0.25 + 0.2 = 0.45.
        let d = r.leaf_by_name("D").unwrap();
        assert!((r.node(d).branch_length - 0.45).abs() < 1e-12);
        // Total length = sum of surviving path segments.
        // Edges kept: A(0.15), C(0.3), fg(0.1), D(0.45).
        assert!((r.total_length() - 1.0).abs() < 1e-12);
        // The foreground mark survives on the (A,C) clade edge.
        assert!(r.foreground_branch().is_ok());
    }

    #[test]
    fn restrict_preserves_foreground_through_merges() {
        // Foreground on an internal edge whose child collapses away.
        let t = parse_newick("(((A:0.1,B:0.2)#1:0.05,C:0.3):0.1,D:0.4);").unwrap();
        let r = t.restrict_to_leaves(&["A", "C", "D"]).unwrap();
        // (A,B) clade reduces to leaf A; the foreground edge merges into
        // A's pendant edge.
        let fg = r.foreground_branch().unwrap();
        assert_eq!(r.node(fg).name.as_deref(), Some("A"));
        let a = r.leaf_by_name("A").unwrap();
        assert!((r.node(a).branch_length - 0.15).abs() < 1e-12);
    }

    #[test]
    fn restrict_rerooting_when_one_side_vanishes() {
        // Removing D and E leaves the root unary; the (A,B,C) clade node
        // becomes the new root.
        let t = five_taxon();
        let r = t.restrict_to_leaves(&["A", "B", "C"]).unwrap();
        assert_eq!(r.n_leaves(), 3);
        assert_eq!(r.node(r.root()).children.len(), 2);
        // Pendant lengths unchanged for A and B.
        let a = r.leaf_by_name("A").unwrap();
        assert!((r.node(a).branch_length - 0.1).abs() < 1e-12);
    }

    #[test]
    fn restrict_errors_on_too_few() {
        let t = five_taxon();
        assert!(t.restrict_to_leaves(&["A"]).is_err());
        assert!(t.restrict_to_leaves(&["nope", "nada"]).is_err());
    }

    #[test]
    fn restrict_to_all_is_identity_shape() {
        let t = five_taxon();
        let r = t.restrict_to_leaves(&["A", "B", "C", "D", "E"]).unwrap();
        assert_eq!(r.n_leaves(), 5);
        assert_eq!(r.n_branches(), t.n_branches());
        assert!((r.total_length() - t.total_length()).abs() < 1e-12);
    }

    #[test]
    fn leaf_lookup() {
        let t = five_taxon();
        assert!(t.leaf_by_name("D").is_some());
        assert!(t.leaf_by_name("Z").is_none());
    }
}
