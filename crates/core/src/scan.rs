//! Genome-scan style iteration: test every branch of a tree.
//!
//! "This is done iteratively for each branch of a phylogenetic tree"
//! (§I-A) — the Selectome workflow that motivates the paper's performance
//! work. This helper re-runs the positive-selection test with each branch
//! in turn as foreground.

use crate::{Analysis, AnalysisOptions, CoreError, TestResult};
use slim_bio::{CodonAlignment, NodeId, Tree};

/// One branch's test outcome in a whole-tree scan.
#[derive(Debug, Clone)]
pub struct BranchScanEntry {
    /// The branch, identified by its child node in the input tree.
    pub branch: NodeId,
    /// Name of the child node if it is a leaf (for reporting).
    pub child_name: Option<String>,
    /// The H0/H1/LRT outcome for this branch as foreground.
    pub result: TestResult,
}

/// Test every branch of `tree` as the foreground branch.
///
/// Existing foreground marks in the input are ignored; each branch is
/// marked in turn via [`Analysis::with_foreground`], so the tree arena is
/// never copied per branch. Results come back in arena branch order.
///
/// This is the sequential reference; `slim-batch` runs the same
/// per-branch jobs through its worker pool for parallel, fault-isolated
/// scans.
///
/// # Errors
/// Propagates per-branch analysis errors.
pub fn scan_all_branches(
    tree: &Tree,
    aln: &CodonAlignment,
    options: &AnalysisOptions,
) -> Result<Vec<BranchScanEntry>, CoreError> {
    let mut out = Vec::new();
    for branch in tree.branch_nodes() {
        let analysis = Analysis::with_foreground(tree, branch, aln, options.clone())?;
        let result = analysis.test_positive_selection()?;
        out.push(BranchScanEntry {
            branch,
            child_name: tree.node(branch).name.clone(),
            result,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;
    use slim_bio::parse_newick;
    use slim_opt::GradMode;

    #[test]
    fn scans_every_branch() {
        let tree = parse_newick("((A:0.2,B:0.2):0.1,C:0.3);").unwrap();
        let aln =
            slim_bio::CodonAlignment::from_fasta(">A\nATGCCCAAA\n>B\nATGCCAAAA\n>C\nATGCCCAAG\n")
                .unwrap();
        let options = AnalysisOptions {
            backend: Backend::SlimPlus,
            max_iterations: 15, // keep the test fast; convergence not needed
            grad_mode: GradMode::Forward,
            ..Default::default()
        };
        let entries = scan_all_branches(&tree, &aln, &options).unwrap();
        assert_eq!(entries.len(), tree.n_branches());
        // Leaf branches carry their names.
        let named: Vec<_> = entries
            .iter()
            .filter_map(|e| e.child_name.clone())
            .collect();
        assert!(named.contains(&"A".to_string()));
        for e in &entries {
            assert!(e.result.h1.lnl.is_finite());
            assert!(e.result.lrt.p_value > 0.0);
        }
    }
}
