//! Standard errors for the model parameters (CodeML's `getSE = 1`).
//!
//! Approximate SEs come from the observed information matrix: the
//! numerical Hessian of −lnL at the MLE, inverted. Branch lengths are
//! held at their estimates and only the five mixture parameters
//! (κ, ω0, ω2, p0, p1) enter the Hessian — the quantity practitioners
//! report. The Hessian is computed by central second differences on the
//! *constrained* scale, so the SEs are directly interpretable; boundary
//! cases (e.g. ω2 → 1 under H1) yield `None` for the affected parameter
//! rather than a misleading number.

use crate::{Analysis, CoreError, Fit};
use slim_linalg::{Cholesky, Mat};
use slim_model::{BranchSiteModel, Hypothesis};

/// Standard errors for the five branch-site parameters; `None` where the
/// information matrix is not positive definite in that direction (typical
/// at parameter-space boundaries).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StandardErrors {
    /// SE of κ.
    pub kappa: Option<f64>,
    /// SE of ω0.
    pub omega0: Option<f64>,
    /// SE of ω2 (`None` under H0, where ω2 is fixed).
    pub omega2: Option<f64>,
    /// SE of p0.
    pub p0: Option<f64>,
    /// SE of p1.
    pub p1: Option<f64>,
}

fn pack(model: &BranchSiteModel) -> [f64; 5] {
    [model.kappa, model.omega0, model.omega2, model.p0, model.p1]
}

fn unpack(x: &[f64; 5]) -> BranchSiteModel {
    BranchSiteModel {
        kappa: x[0],
        omega0: x[1],
        omega2: x[2],
        p0: x[3],
        p1: x[4],
    }
}

impl Analysis {
    /// Standard errors at a fitted maximum, from the observed information
    /// matrix over the free mixture parameters.
    ///
    /// # Errors
    /// Propagates likelihood-evaluation failures.
    pub fn standard_errors(&self, fit: &Fit) -> Result<StandardErrors, CoreError> {
        let free: Vec<usize> = match fit.hypothesis {
            Hypothesis::H0 => vec![0, 1, 3, 4],
            Hypothesis::H1 => vec![0, 1, 2, 3, 4],
        };
        let center = pack(&fit.model);
        let bl = &fit.branch_lengths;

        let nll = |x: &[f64; 5]| -> Result<f64, CoreError> {
            let m = unpack(x);
            // Guard the domain: step sizes are small, but clamp anyway.
            if m.kappa <= 0.0
                || m.omega0 <= 0.0
                || m.omega0 >= 1.0
                || m.omega2 < 1.0 - 1e-9
                || m.p0 <= 0.0
                || m.p1 < 0.0
                || m.p0 + m.p1 >= 1.0
            {
                return Ok(f64::INFINITY);
            }
            Ok(-self.log_likelihood(&m, bl)?)
        };

        let k = free.len();
        let f0 = nll(&center)?;
        let h: Vec<f64> = free
            .iter()
            .map(|&i| 1e-4 * center[i].abs().max(1e-2))
            .collect();

        // Central-difference Hessian over the free coordinates.
        let mut hess = Mat::zeros(k, k);
        for a in 0..k {
            for b in a..k {
                let (ia, ib) = (free[a], free[b]);
                let value = if a == b {
                    let mut xp = center;
                    xp[ia] += h[a];
                    let mut xm = center;
                    xm[ia] -= h[a];
                    (nll(&xp)? - 2.0 * f0 + nll(&xm)?) / (h[a] * h[a])
                } else {
                    let mut xpp = center;
                    xpp[ia] += h[a];
                    xpp[ib] += h[b];
                    let mut xpm = center;
                    xpm[ia] += h[a];
                    xpm[ib] -= h[b];
                    let mut xmp = center;
                    xmp[ia] -= h[a];
                    xmp[ib] += h[b];
                    let mut xmm = center;
                    xmm[ia] -= h[a];
                    xmm[ib] -= h[b];
                    (nll(&xpp)? - nll(&xpm)? - nll(&xmp)? + nll(&xmm)?) / (4.0 * h[a] * h[b])
                };
                hess[(a, b)] = value;
                hess[(b, a)] = value;
            }
        }

        // Invert via Cholesky when positive definite; otherwise report
        // per-parameter diagonal fallbacks where curvature is positive.
        let mut se = [None; 5];
        if hess.as_slice().iter().all(|v| v.is_finite()) {
            if let Ok(ch) = Cholesky::new(&hess) {
                for (a, &ia) in free.iter().enumerate() {
                    let mut e = vec![0.0; k];
                    e[a] = 1.0;
                    let col = ch.solve(&e);
                    if col[a] > 0.0 {
                        se[ia] = Some(col[a].sqrt());
                    }
                }
            } else {
                for (a, &ia) in free.iter().enumerate() {
                    if hess[(a, a)] > 0.0 {
                        se[ia] = Some((1.0 / hess[(a, a)]).sqrt());
                    }
                }
            }
        }

        Ok(StandardErrors {
            kappa: se[0],
            omega0: se[1],
            omega2: se[2],
            p0: se[3],
            p1: se[4],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalysisOptions, Backend};
    use slim_bio::{parse_newick, CodonAlignment};
    use slim_opt::GradMode;

    fn fitted() -> (Analysis, Fit) {
        let tree = parse_newick("((A:0.2,B:0.2)#1:0.1,C:0.3);").unwrap();
        let aln = CodonAlignment::from_fasta(
            ">A\nATGCCCAAATTTGGGCGA\n>B\nATGCCAAAATTTGGACGA\n>C\nATGCCCAAGTTCGGGCGT\n",
        )
        .unwrap();
        let analysis = Analysis::new(
            &tree,
            &aln,
            AnalysisOptions {
                backend: Backend::SlimPlus,
                max_iterations: 40,
                grad_mode: GradMode::Forward,
                ..Default::default()
            },
        )
        .unwrap();
        let fit = analysis.fit(Hypothesis::H0).unwrap();
        (analysis, fit)
    }

    #[test]
    fn standard_errors_finite_and_positive() {
        let (analysis, fit) = fitted();
        let se = analysis.standard_errors(&fit).unwrap();
        // H0: omega2 fixed → no SE.
        assert!(se.omega2.is_none());
        // Kappa is well identified on any data with transitions.
        if let Some(s) = se.kappa {
            assert!(s > 0.0 && s.is_finite());
            // On 6 codons the SE should be large but not absurd.
            assert!(s < 100.0, "kappa SE {s}");
        }
    }

    #[test]
    fn more_data_shrinks_kappa_se() {
        // Duplicate the alignment content 4x: information quadruples, SE
        // halves (approximately).
        let tree = parse_newick("((A:0.2,B:0.2)#1:0.1,C:0.3);").unwrap();
        let short = ">A\nATGCCCAAATTTGGGCGA\n>B\nATGCCAAAATTTGGACGA\n>C\nATGCCCAAGTTCGGGCGT\n";
        let long = format!(
            ">A\n{a}{a}{a}{a}\n>B\n{b}{b}{b}{b}\n>C\n{c}{c}{c}{c}\n",
            a = "ATGCCCAAATTTGGGCGA",
            b = "ATGCCAAAATTTGGACGA",
            c = "ATGCCCAAGTTCGGGCGT"
        );
        let options = AnalysisOptions {
            backend: Backend::SlimPlus,
            max_iterations: 40,
            grad_mode: GradMode::Forward,
            ..Default::default()
        };
        let se_of = |text: &str| {
            let aln = CodonAlignment::from_fasta(text).unwrap();
            let analysis = Analysis::new(&tree, &aln, options.clone()).unwrap();
            let fit = analysis.fit(Hypothesis::H0).unwrap();
            analysis.standard_errors(&fit).unwrap().kappa
        };
        let (s_short, s_long) = (se_of(short), se_of(&long));
        if let (Some(a), Some(b)) = (s_short, s_long) {
            assert!(b < a, "SE should shrink with data: {a} vs {b}");
        }
    }
}
