use std::fmt;

/// Errors surfaced by the analysis driver.
#[derive(Debug)]
pub enum CoreError {
    /// Input-data problem (tree/alignment mismatch, missing foreground…).
    Bio(slim_bio::BioError),
    /// Numerical failure in the linear-algebra substrate.
    Linalg(slim_linalg::LinalgError),
    /// The optimizer could not produce a finite likelihood.
    Optimization(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Bio(e) => write!(f, "input error: {e}"),
            CoreError::Linalg(e) => write!(f, "numerical error: {e}"),
            CoreError::Optimization(s) => write!(f, "optimization error: {s}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Bio(e) => Some(e),
            CoreError::Linalg(e) => Some(e),
            CoreError::Optimization(_) => None,
        }
    }
}

impl From<slim_bio::BioError> for CoreError {
    fn from(e: slim_bio::BioError) -> Self {
        CoreError::Bio(e)
    }
}

impl From<slim_linalg::LinalgError> for CoreError {
    fn from(e: slim_linalg::LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: CoreError = slim_bio::BioError::InvalidTree("no foreground".into()).into();
        assert!(e.to_string().contains("no foreground"));
        assert!(std::error::Error::source(&e).is_some());

        let e = CoreError::Optimization("bad start".into());
        assert!(e.to_string().contains("bad start"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
