//! # slim-core
//!
//! The public SlimCodeML API: positive-selection tests under the
//! branch-site model, with selectable computational backends.
//!
//! ```no_run
//! use slim_core::{Analysis, AnalysisOptions, Backend};
//! use slim_bio::{parse_newick, CodonAlignment};
//!
//! let tree = parse_newick("((A:0.1,B:0.2)#1:0.05,C:0.3);").unwrap();
//! let aln = CodonAlignment::from_fasta(">A\nATGCCC\n>B\nATGCCA\n>C\nATGCCC\n").unwrap();
//! let analysis = Analysis::new(&tree, &aln, AnalysisOptions::default()).unwrap();
//! let result = analysis.test_positive_selection().unwrap();
//! println!("lnL0 = {}, lnL1 = {}, p = {}", result.h0.lnl, result.h1.lnl, result.lrt.p_value);
//! ```
//!
//! The [`Backend`] enum selects the numerics: [`Backend::CodeMlStyle`]
//! reproduces CodeML v4.4c's computational profile (the paper's baseline),
//! [`Backend::Slim`] the optimized SlimCodeML profile, and
//! [`Backend::SlimPlus`]/[`Backend::SlimSymmetric`] the further
//! improvements the paper describes but did not measure.

mod analysis;
mod backend;
mod beb;
mod bootstrap;
mod error;
mod fit;
mod scan;
mod sites;
mod stderr;

pub use analysis::{Analysis, AnalysisOptions, Optimizer, TestResult};
pub use backend::Backend;
pub use beb::BebOptions;
pub use bootstrap::{parametric_bootstrap_lrt, BootstrapOptions, BootstrapResult};
pub use error::CoreError;
pub use fit::Fit;
pub use scan::{scan_all_branches, BranchScanEntry};
pub use sites::{sites_test, SitesFit, SitesTestResult};
pub use stderr::StandardErrors;

// Re-exports so downstream users need only slim-core for common flows.
pub use slim_model::{BranchSiteModel, Hypothesis, SiteModel, SitesHypothesis};
pub use slim_opt::GradMode;
pub use slim_stat::LrtResult;
