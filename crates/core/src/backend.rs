//! Selectable computational backends.

use slim_lik::EngineConfig;

/// Which numerical engine computes the likelihood. All backends compute
/// the *same* function — the paper's accuracy experiment (§IV-1) checks
/// exactly this — but with very different cost profiles.
///
/// # Interaction with batch runs
///
/// `slim-batch` parallelizes at the *job* level: each H0/H1 test runs on
/// one worker thread. Backends are orthogonal to that and every backend
/// is safe to use in a batch, but note the interplay for
/// [`Backend::SlimParallel`]: it additionally runs the `slim-par`
/// intra-gene engine *inside* each likelihood evaluation, by default
/// auto-sized to every available core — so a batch with `workers = N`
/// can oversubscribe the machine N-fold. On a machine sized for `N`
/// workers, prefer [`Backend::Slim`] or [`Backend::SlimPlus`] in
/// manifests and let the batch pool own all cores; reserve
/// `SlimParallel` for `workers` well below the core count (or cap it
/// via `AnalysisOptions::threads`). Results are **bit-identical** either
/// way — the engine's deterministic reduction guarantees it — only the
/// thread budget differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// CodeML v4.4c profile: Eq. 9 expm through naive kernels, per-site
    /// naive matrix×vector CPV products.
    CodeMlStyle,
    /// SlimCodeML as measured in the paper: Eq. 10 `dsyrk` expm, blocked
    /// kernels, per-site `dgemv`.
    #[default]
    Slim,
    /// SlimCodeML plus bundled BLAS-3 site products (§III-B) and a
    /// cross-evaluation eigendecomposition cache.
    SlimPlus,
    /// SlimCodeML with the Eq. 12 symmetric CPV application.
    SlimSymmetric,
    /// SlimCodeML on the `slim-par` intra-gene parallel engine — the
    /// paper's FastCodeML direction (§V-B): eigendecompositions and
    /// per-branch expm fanned across branches × ω-classes, pruning fanned
    /// across site-class × pattern-block units, with a deterministic
    /// fixed-order reduction. Auto-sizes to `available_parallelism`.
    SlimParallel,
}

impl Backend {
    /// All backends, for sweeps.
    pub const ALL: [Backend; 5] = [
        Backend::CodeMlStyle,
        Backend::Slim,
        Backend::SlimPlus,
        Backend::SlimSymmetric,
        Backend::SlimParallel,
    ];

    /// Materialize the engine configuration.
    pub fn config(self) -> EngineConfig {
        match self {
            Backend::CodeMlStyle => EngineConfig::codeml_style(),
            Backend::Slim => EngineConfig::slim(),
            Backend::SlimPlus => EngineConfig::slim_plus(),
            Backend::SlimSymmetric => EngineConfig::slim_symmetric(),
            Backend::SlimParallel => EngineConfig::slim_parallel(),
        }
    }

    /// Display label matching the paper's terminology.
    pub fn label(self) -> &'static str {
        self.config().label
    }

    /// Parse from a CLI-style string.
    pub fn from_str_opt(s: &str) -> Option<Backend> {
        match s.to_ascii_lowercase().as_str() {
            "codeml" | "codeml-style" | "baseline" => Some(Backend::CodeMlStyle),
            "slim" | "slimcodeml" => Some(Backend::Slim),
            "slim+" | "slimplus" | "slim-plus" => Some(Backend::SlimPlus),
            "slim-sym" | "slimsymmetric" | "eq12" => Some(Backend::SlimSymmetric),
            "slim-par" | "parallel" | "fastcodeml" => Some(Backend::SlimParallel),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Backend::CodeMlStyle.label(), "CodeML");
        assert_eq!(Backend::Slim.label(), "SlimCodeML");
    }

    #[test]
    fn parsing() {
        assert_eq!(Backend::from_str_opt("codeml"), Some(Backend::CodeMlStyle));
        assert_eq!(Backend::from_str_opt("SLIM"), Some(Backend::Slim));
        assert_eq!(Backend::from_str_opt("slim+"), Some(Backend::SlimPlus));
        assert_eq!(Backend::from_str_opt("eq12"), Some(Backend::SlimSymmetric));
        assert_eq!(Backend::from_str_opt("nope"), None);
    }

    #[test]
    fn default_is_slim() {
        assert_eq!(Backend::default(), Backend::Slim);
    }
}
