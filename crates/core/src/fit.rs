//! The result of maximizing one hypothesis.

use slim_model::{BranchSiteModel, Hypothesis};
use slim_opt::TerminationReason;
use std::time::Duration;

/// A maximized branch-site model fit.
#[derive(Debug, Clone)]
pub struct Fit {
    /// Which hypothesis was fitted.
    pub hypothesis: Hypothesis,
    /// Maximized log-likelihood.
    pub lnl: f64,
    /// Parameter estimates at the maximum.
    pub model: BranchSiteModel,
    /// Branch-length estimates (problem branch order).
    pub branch_lengths: Vec<f64>,
    /// Optimizer iterations (the paper's Table III "Iterations" column).
    pub iterations: usize,
    /// Total likelihood evaluations, including finite differences.
    pub f_evals: usize,
    /// Wall-clock time of the fit.
    pub wall_time: Duration,
    /// Why the optimizer stopped.
    pub termination: TerminationReason,
}

impl Fit {
    /// Wall-time per optimizer iteration (used for the paper's
    /// per-iteration speedups, Table IV).
    pub fn seconds_per_iteration(&self) -> f64 {
        if self.iterations == 0 {
            self.wall_time.as_secs_f64()
        } else {
            self.wall_time.as_secs_f64() / self.iterations as f64
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: lnL = {:.6}, kappa = {:.4}, w0 = {:.4}, w2 = {:.4}, p0 = {:.4}, p1 = {:.4}, {} iterations, {:.3}s",
            self.hypothesis.name(),
            self.lnl,
            self.model.kappa,
            self.model.omega0,
            self.model.omega2,
            self.model.p0,
            self.model.p1,
            self.iterations,
            self.wall_time.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_fit(iterations: usize, secs: f64) -> Fit {
        Fit {
            hypothesis: Hypothesis::H1,
            lnl: -1234.5,
            model: BranchSiteModel::default_start(Hypothesis::H1),
            branch_lengths: vec![0.1, 0.2],
            iterations,
            f_evals: 100,
            wall_time: Duration::from_secs_f64(secs),
            termination: TerminationReason::FunctionConverged,
        }
    }

    #[test]
    fn per_iteration_time() {
        let f = dummy_fit(10, 5.0);
        assert!((f.seconds_per_iteration() - 0.5).abs() < 1e-12);
        // Zero iterations falls back to total time rather than dividing by 0.
        let f0 = dummy_fit(0, 5.0);
        assert_eq!(f0.seconds_per_iteration(), 5.0);
    }

    #[test]
    fn summary_contains_fields() {
        let s = dummy_fit(10, 1.0).summary();
        assert!(s.contains("H1"));
        assert!(s.contains("lnL"));
        assert!(s.contains("10 iterations"));
    }
}
