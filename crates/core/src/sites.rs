//! The M1a-vs-M2a *sites* test driver: positive selection affecting sites
//! across the whole tree (no foreground branch).

use crate::{AnalysisOptions, CoreError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slim_bio::{CodonAlignment, Tree};
use slim_lik::site_models::site_model_log_likelihood;
use slim_lik::LikelihoodProblem;
use slim_model::{SiteModel, SitesHypothesis};
use slim_opt::{minimize, BfgsOptions, Block, BlockTransform, TerminationReason};
use slim_stat::{chi2_sf, class_posteriors};
use std::time::{Duration, Instant};

/// One maximized site-model fit.
#[derive(Debug, Clone)]
pub struct SitesFit {
    /// Which hypothesis.
    pub hypothesis: SitesHypothesis,
    /// Maximized log-likelihood.
    pub lnl: f64,
    /// Parameter estimates.
    pub model: SiteModel,
    /// Branch-length estimates.
    pub branch_lengths: Vec<f64>,
    /// BFGS iterations.
    pub iterations: usize,
    /// Objective evaluations.
    pub f_evals: usize,
    /// Wall time.
    pub wall_time: Duration,
    /// Stop reason.
    pub termination: TerminationReason,
}

/// Outcome of the M1a/M2a likelihood-ratio test.
#[derive(Debug, Clone)]
pub struct SitesTestResult {
    /// Null (M1a) fit.
    pub m1a: SitesFit,
    /// Alternative (M2a) fit.
    pub m2a: SitesFit,
    /// `2(lnL₂ − lnL₁)`, clamped at 0.
    pub statistic: f64,
    /// χ²₂ p-value (the conventional reference for this test).
    pub p_value: f64,
    /// NEB posterior per alignment site of the ω2 class, at the M2a MLE.
    pub site_posteriors: Vec<f64>,
}

/// Run the sites test on an alignment and (unmarked) tree.
///
/// # Errors
/// Propagates input and numerical errors.
pub fn sites_test(
    tree: &Tree,
    aln: &CodonAlignment,
    options: &AnalysisOptions,
) -> Result<SitesTestResult, CoreError> {
    let problem =
        LikelihoodProblem::new_unmarked(tree, aln, &options.genetic_code, options.freq_model)?;
    let init_bl: Vec<f64> = tree
        .branch_lengths()
        .into_iter()
        .map(|v| v.clamp(1e-5, 5.0))
        .collect();

    let m1a = fit_sites(&problem, options, SitesHypothesis::M1a, &init_bl)?;
    let m2a = fit_sites(&problem, options, SitesHypothesis::M2a, &init_bl)?;

    let statistic = (2.0 * (m2a.lnl - m1a.lnl)).max(0.0);
    let p_value = chi2_sf(statistic, 2);

    // NEB site posteriors for the ω2 class at the M2a optimum.
    let value = site_model_log_likelihood(
        &problem,
        &options.engine_config(),
        &m2a.model,
        SitesHypothesis::M2a,
        &m2a.branch_lengths,
    )?;
    let post = class_posteriors(&value.per_class, &value.proportions);
    let per_pattern: Vec<f64> = post.iter().map(|row| row[2]).collect();
    let site_posteriors = (0..problem.n_sites())
        .map(|s| per_pattern[problem.patterns.pattern_of_site(s)])
        .collect();

    Ok(SitesTestResult {
        m1a,
        m2a,
        statistic,
        p_value,
        site_posteriors,
    })
}

fn transform(hypothesis: SitesHypothesis, n_branches: usize) -> BlockTransform {
    let mut blocks = vec![
        Block::LowerBounded { lo: 1e-3 }, // κ
        Block::BoxBounded {
            lo: 1e-6,
            hi: 1.0 - 1e-6,
        }, // ω0
    ];
    match hypothesis {
        SitesHypothesis::M1a => {
            blocks.push(Block::Fixed { value: 1.0 }); // ω2 unused
            blocks.push(Block::BoxBounded {
                lo: 1e-6,
                hi: 1.0 - 1e-6,
            }); // p0
            blocks.push(Block::Fixed { value: 0.0 }); // p1 implied
        }
        SitesHypothesis::M2a => {
            blocks.push(Block::LowerBounded { lo: 1.0 }); // ω2
            blocks.push(Block::SimplexWithRest { dim: 2 }); // (p0, p1)
        }
    }
    blocks.push(Block::BoxBoundedVec {
        lo: 1e-6,
        hi: 50.0,
        count: n_branches,
    });
    BlockTransform::new(blocks)
}

fn fit_sites(
    problem: &LikelihoodProblem,
    options: &AnalysisOptions,
    hypothesis: SitesHypothesis,
    init_bl: &[f64],
) -> Result<SitesFit, CoreError> {
    let config = options.engine_config();
    let t = transform(hypothesis, problem.n_branches());

    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut jitter = |v: f64| v * (1.0 + options.jitter * (rng.gen::<f64>() - 0.5) * 2.0);
    let start_model = SiteModel::default_start(hypothesis);
    let mut x0 = vec![
        jitter(start_model.kappa),
        jitter(start_model.omega0).clamp(1e-3, 0.9),
        match hypothesis {
            SitesHypothesis::M1a => 1.0,
            SitesHypothesis::M2a => 1.0 + jitter(start_model.omega2 - 1.0).max(1e-3),
        },
        jitter(start_model.p0).clamp(0.05, 0.9),
        match hypothesis {
            SitesHypothesis::M1a => 0.0,
            SitesHypothesis::M2a => jitter(start_model.p1).clamp(0.05, 0.9),
        },
    ];
    if x0[3] + x0[4] > 0.95 {
        let s = x0[3] + x0[4];
        x0[3] *= 0.9 / s;
        x0[4] *= 0.9 / s;
    }
    for &b in init_bl {
        x0.push(jitter(b).clamp(2e-6, 25.0));
    }
    let z0 = t.to_unconstrained(&x0);

    let unpack = |x: &[f64]| -> (SiteModel, Vec<f64>) {
        (
            SiteModel {
                kappa: x[0],
                omega0: x[1],
                omega2: x[2],
                p0: x[3],
                p1: x[4],
            },
            x[5..].to_vec(),
        )
    };

    let objective = |z: &[f64]| -> f64 {
        let x = t.to_constrained(z);
        let (model, bl) = unpack(&x);
        match site_model_log_likelihood(problem, &config, &model, hypothesis, &bl) {
            Ok(v) if v.lnl.is_finite() => -v.lnl,
            _ => f64::INFINITY,
        }
    };
    if !objective(&z0).is_finite() {
        return Err(CoreError::Optimization(
            "sites model not finite at start".into(),
        ));
    }

    let opts = BfgsOptions {
        max_iterations: options.max_iterations,
        grad_mode: options.grad_mode,
        grad_tol: 1e-6,
        f_tol: 1e-10,
        ..Default::default()
    };
    // check: allow(det-wallclock) feeds the report wall_time field only
    let started = Instant::now();
    let result = minimize(objective, &z0, &opts);
    let wall_time = started.elapsed();
    let x = t.to_constrained(&result.x);
    let (model, branch_lengths) = unpack(&x);
    Ok(SitesFit {
        hypothesis,
        lnl: -result.f,
        model,
        branch_lengths,
        iterations: result.iterations,
        f_evals: result.f_evals,
        wall_time,
        termination: result.reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;
    use slim_bio::parse_newick;
    use slim_opt::GradMode;

    fn options() -> AnalysisOptions {
        AnalysisOptions {
            backend: Backend::SlimPlus,
            max_iterations: 25,
            grad_mode: GradMode::Forward,
            ..Default::default()
        }
    }

    #[test]
    fn sites_test_runs_end_to_end() {
        let tree = parse_newick("((A:0.2,B:0.2):0.1,C:0.3);").unwrap();
        let aln = CodonAlignment::from_fasta(
            ">A\nATGCCCAAATTTGGG\n>B\nATGCCAAAATTTGGA\n>C\nATGCCCAAGTTCGGG\n",
        )
        .unwrap();
        let r = sites_test(&tree, &aln, &options()).unwrap();
        assert!(
            r.m2a.lnl >= r.m1a.lnl - 0.05,
            "m2a {} vs m1a {}",
            r.m2a.lnl,
            r.m1a.lnl
        );
        assert!(r.p_value > 0.0 && r.p_value <= 1.0);
        assert_eq!(r.site_posteriors.len(), 5);
        assert!(r.m1a.model.is_valid(SitesHypothesis::M1a));
        assert!(r.m2a.model.is_valid(SitesHypothesis::M2a));
    }

    #[test]
    fn works_without_foreground_mark() {
        // The whole point: no #1 in the tree.
        let tree = parse_newick("(A:0.2,B:0.2,C:0.3);").unwrap();
        let aln = CodonAlignment::from_fasta(">A\nATGCCC\n>B\nATGCCA\n>C\nATGCCC\n").unwrap();
        assert!(sites_test(&tree, &aln, &options()).is_ok());
    }
}
