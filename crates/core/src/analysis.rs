//! The analysis driver: wiring model, likelihood engine, transforms and
//! optimizer into the H0/H1 fits and the LRT.

use crate::{Backend, CoreError, Fit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slim_bio::{CodonAlignment, FreqModel, GeneticCode, Tree};
use slim_expm::EigenCache;
use slim_lik::{
    log_likelihood, site_class_log_likelihoods, LikelihoodProblem, ReuseEvaluator, ReuseHint,
    SimdMode,
};
use slim_model::{BranchSiteModel, Hypothesis};
use slim_opt::{
    minimize_delta, minimize_lbfgs_delta, BfgsOptions, Block, BlockTransform, GradMode, ParamDelta,
};
use slim_stat::{lrt_pvalue, positive_selection_posteriors, LrtResult};
use std::time::Instant;

/// Which quasi-Newton maximizer drives the fits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Optimizer {
    /// Dense-inverse-Hessian BFGS (§II-B of the paper; default).
    #[default]
    DenseBfgs,
    /// Limited-memory BFGS: linear-cost iterations for very large trees
    /// (the FastCodeML scale).
    LBfgs,
}

/// Options controlling an analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Computational backend (CodeML-style vs Slim flavors).
    pub backend: Backend,
    /// Codon frequency estimator (CodeML `CodonFreq`).
    pub freq_model: FreqModel,
    /// RNG seed for initial-value jitter. The paper fixes this so both
    /// engines start identically (§IV).
    pub seed: u64,
    /// BFGS iteration cap per hypothesis.
    pub max_iterations: usize,
    /// Finite-difference flavor for gradients.
    pub grad_mode: GradMode,
    /// Override the tree's branch lengths with this value at the start of
    /// optimization (CodeML-style fixed starting lengths). `None` keeps
    /// the input tree's lengths.
    pub initial_branch_length: Option<f64>,
    /// Relative jitter applied to the default parameter starting point.
    pub jitter: f64,
    /// Quasi-Newton flavor.
    pub optimizer: Optimizer,
    /// Genetic code (CodeML `icode`): universal by default; the
    /// vertebrate mitochondrial code is also supported (60 sense codons).
    pub genetic_code: GeneticCode,
    /// Worker threads per likelihood evaluation (the `slim-par` intra-gene
    /// engine). `None` keeps the backend's own default (serial for every
    /// backend except [`Backend::SlimParallel`], which auto-sizes);
    /// `Some(n)` overrides it, with `0` meaning auto. Results are
    /// bit-identical for every setting. Defaults from the
    /// `SLIMCODEML_THREADS` environment variable when set (how CI runs
    /// the whole suite at 4 threads).
    pub threads: Option<usize>,
    /// SIMD kernel dispatch ([`SimdMode::Auto`] honors `SLIMCODEML_SIMD`,
    /// else CPU detection). Every mode computes bit-identical likelihoods.
    pub simd: SimdMode,
    /// Cross-evaluation partial-likelihood reuse during fits (the
    /// dirty-path engine in `slim-lik`). `None` = auto: on for the Slim
    /// backends, off for [`Backend::CodeMlStyle`] so the paper-comparison
    /// profile keeps its measured cost model; overridable via the
    /// `SLIMCODEML_REUSE` environment variable and the `--reuse` /
    /// `--no-reuse` CLI flags. Reuse-on and reuse-off fits are
    /// bit-identical by the invalidation contract.
    pub reuse: Option<bool>,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            backend: Backend::Slim,
            freq_model: FreqModel::F3x4,
            seed: 1,
            max_iterations: 500,
            grad_mode: GradMode::Central,
            initial_branch_length: None,
            jitter: 0.05,
            optimizer: Optimizer::default(),
            genetic_code: GeneticCode::universal(),
            threads: threads_from_env(),
            simd: SimdMode::Auto,
            reuse: None,
        }
    }
}

/// The `SLIMCODEML_THREADS` default: unset, empty, or unparsable means
/// "no override".
fn threads_from_env() -> Option<usize> {
    std::env::var("SLIMCODEML_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
}

impl AnalysisOptions {
    /// The engine configuration for this run: the backend's numerical
    /// profile with the thread override applied.
    pub fn engine_config(&self) -> slim_lik::EngineConfig {
        let mut config = self.backend.config();
        if let Some(threads) = self.threads {
            config.threads = threads;
        }
        config.simd = self.simd;
        config
    }

    /// Whether fits run on the dirty-path reuse evaluator. Resolution
    /// order: the explicit [`AnalysisOptions::reuse`] setting, then the
    /// `SLIMCODEML_REUSE` environment variable (`0`/`off`/`false`/`no`
    /// disable, any other non-empty value enables), then the backend
    /// default (every backend except [`Backend::CodeMlStyle`]).
    pub fn reuse_enabled(&self) -> bool {
        if let Some(explicit) = self.reuse {
            return explicit;
        }
        if let Ok(v) = std::env::var("SLIMCODEML_REUSE") {
            let v = v.trim().to_ascii_lowercase();
            if !v.is_empty() {
                return !matches!(v.as_str(), "0" | "off" | "false" | "no");
            }
        }
        !matches!(self.backend, Backend::CodeMlStyle)
    }
}

/// Translate the optimizer's unconstrained-coordinate delta into the
/// engine's invalidation hint: parameter-layout positions `< 5` are the
/// globals (κ, ω0, ω2, p0, p1), the rest are branch lengths in order.
fn hint_for(transform: &BlockTransform, delta: &ParamDelta) -> ReuseHint {
    match delta {
        ParamDelta::Full => ReuseHint::Full,
        ParamDelta::Coords(coords) => {
            let mut globals = false;
            let mut branches = Vec::new();
            for &z in coords {
                for x in transform.touched_constrained(z) {
                    if x < 5 {
                        globals = true;
                    } else {
                        branches.push(x - 5);
                    }
                }
            }
            branches.sort_unstable();
            branches.dedup();
            ReuseHint::Sparse { globals, branches }
        }
    }
}

/// Outcome of the full positive-selection test.
#[derive(Debug, Clone)]
pub struct TestResult {
    /// Null fit (ω2 = 1).
    pub h0: Fit,
    /// Alternative fit (ω2 free).
    pub h1: Fit,
    /// The likelihood-ratio test between them.
    pub lrt: LrtResult,
    /// NEB posterior probability that each alignment *site* (not pattern)
    /// is under positive selection on the foreground branch, computed at
    /// the H1 MLE.
    pub site_posteriors: Vec<f64>,
}

/// A dataset + options, ready to fit.
#[derive(Debug, Clone)]
pub struct Analysis {
    problem: LikelihoodProblem,
    options: AnalysisOptions,
    // Built once, so one eigendecomposition cache spans H0, H1 and the
    // posterior evaluation (cache keys are exact parameter bits — sharing
    // cannot change any value) and its hit/miss statistics describe the
    // whole analysis.
    engine_config: slim_lik::EngineConfig,
    init_branch_lengths: Vec<f64>,
}

/// Bounds shared with CodeML's defaults.
const KAPPA_LO: f64 = 1e-3;
const OMEGA0_LO: f64 = 1e-6;
const OMEGA0_HI: f64 = 1.0 - 1e-6;
const BL_LO: f64 = 1e-6;
const BL_HI: f64 = 50.0;

impl Analysis {
    /// Build an analysis from a foreground-marked tree and an alignment.
    ///
    /// # Errors
    /// [`CoreError::Bio`] if tree and alignment are inconsistent or no
    /// unique foreground branch is marked.
    pub fn new(
        tree: &Tree,
        aln: &CodonAlignment,
        options: AnalysisOptions,
    ) -> Result<Analysis, CoreError> {
        let problem = LikelihoodProblem::new(tree, aln, &options.genetic_code, options.freq_model)?;
        Ok(Self::from_problem(problem, tree, options))
    }

    /// Build an analysis with the foreground branch given explicitly,
    /// ignoring any marks on the tree. Equivalent to cloning the tree,
    /// calling [`Tree::set_foreground`] and [`Analysis::new`], but without
    /// copying the tree arena — the cheap path for branch scans and batch
    /// runs that test many foregrounds on one dataset.
    ///
    /// # Errors
    /// [`CoreError::Bio`] if `foreground` is the root or out of range, or
    /// if tree and alignment are inconsistent.
    pub fn with_foreground(
        tree: &Tree,
        foreground: slim_bio::NodeId,
        aln: &CodonAlignment,
        options: AnalysisOptions,
    ) -> Result<Analysis, CoreError> {
        let problem = LikelihoodProblem::new_with_foreground(
            tree,
            foreground,
            aln,
            &options.genetic_code,
            options.freq_model,
        )?;
        Ok(Self::from_problem(problem, tree, options))
    }

    fn from_problem(problem: LikelihoodProblem, tree: &Tree, options: AnalysisOptions) -> Analysis {
        let mut init = tree.branch_lengths();
        if let Some(l) = options.initial_branch_length {
            init = vec![l; init.len()];
        }
        // Clamp into the optimizer's box.
        for v in &mut init {
            *v = v.clamp(BL_LO * 10.0, BL_HI / 10.0);
        }
        let mut engine_config = options.engine_config();
        // Backends that cache eigendecompositions get a capacity sized to
        // *this* problem: branches × 3 ω-classes covers one full evaluation
        // sweep (see EigenCache::adaptive_capacity) instead of the
        // one-size-fits-all default.
        if engine_config.eigen_cache.is_some() {
            engine_config.eigen_cache = Some(std::sync::Arc::new(EigenCache::new(
                EigenCache::adaptive_capacity(problem.n_branches(), 3),
            )));
        }
        Analysis {
            problem,
            options,
            engine_config,
            init_branch_lengths: init,
        }
    }

    /// The engine configuration this analysis evaluates with.
    pub fn engine_config(&self) -> &slim_lik::EngineConfig {
        &self.engine_config
    }

    /// Cumulative (hits, misses) of the analysis's eigendecomposition
    /// cache, or `None` for backends that run without one.
    pub fn eigen_cache_stats(&self) -> Option<(u64, u64)> {
        self.engine_config.eigen_cache.as_ref().map(|c| c.stats())
    }

    /// The underlying likelihood problem (for advanced use/benches).
    pub fn problem(&self) -> &LikelihoodProblem {
        &self.problem
    }

    /// Options in effect.
    pub fn options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// Evaluate the log-likelihood at explicit parameter values.
    ///
    /// # Errors
    /// [`CoreError::Linalg`] on eigensolver failure.
    pub fn log_likelihood(
        &self,
        model: &BranchSiteModel,
        branch_lengths: &[f64],
    ) -> Result<f64, CoreError> {
        Ok(log_likelihood(
            &self.problem,
            &self.engine_config,
            model,
            branch_lengths,
        )?)
    }

    /// Per-site log-likelihoods at explicit parameter values — CodeML's
    /// `lnf` output, consumed by downstream model-comparison tools (AU/SH
    /// tests and the like).
    ///
    /// # Errors
    /// [`CoreError::Linalg`] on eigensolver failure.
    pub fn site_log_likelihoods(
        &self,
        model: &BranchSiteModel,
        branch_lengths: &[f64],
    ) -> Result<Vec<f64>, CoreError> {
        let value =
            site_class_log_likelihoods(&self.problem, &self.engine_config, model, branch_lengths)?;
        Ok((0..self.problem.n_sites())
            .map(|s| value.per_pattern[self.problem.patterns.pattern_of_site(s)])
            .collect())
    }

    /// Parameter layout: `[κ, ω0, ω2, p0, p1, branch lengths…]`.
    fn transform(&self, hypothesis: Hypothesis) -> BlockTransform {
        BlockTransform::new(vec![
            Block::LowerBounded { lo: KAPPA_LO },
            Block::BoxBounded {
                lo: OMEGA0_LO,
                hi: OMEGA0_HI,
            },
            match hypothesis {
                Hypothesis::H0 => Block::Fixed { value: 1.0 },
                Hypothesis::H1 => Block::LowerBounded { lo: 1.0 },
            },
            Block::SimplexWithRest { dim: 2 },
            Block::BoxBoundedVec {
                lo: BL_LO,
                hi: BL_HI,
                count: self.problem.n_branches(),
            },
        ])
    }

    /// Starting parameter vector with seeded jitter (both engines get the
    /// identical start for a given seed, as in the paper's protocol).
    fn start_vector(&self, hypothesis: Hypothesis) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let mut jitter = |v: f64| -> f64 {
            let factor = 1.0 + self.options.jitter * (rng.gen::<f64>() - 0.5) * 2.0;
            v * factor
        };
        let m = BranchSiteModel::default_start(hypothesis);
        let mut x = vec![
            jitter(m.kappa),
            jitter(m.omega0).clamp(OMEGA0_LO * 2.0, OMEGA0_HI / 2.0),
            match hypothesis {
                Hypothesis::H0 => 1.0,
                Hypothesis::H1 => 1.0 + jitter(m.omega2 - 1.0).max(1e-3),
            },
            (jitter(m.p0)).clamp(0.05, 0.9),
            (jitter(m.p1)).clamp(0.05, 0.9),
        ];
        // Keep (p0, p1) inside the simplex after jitter.
        let s = x[3] + x[4];
        if s > 0.95 {
            x[3] *= 0.9 / s;
            x[4] *= 0.9 / s;
        }
        for &b in &self.init_branch_lengths {
            x.push(jitter(b).clamp(BL_LO * 2.0, BL_HI / 2.0));
        }
        x
    }

    /// Unpack an optimizer vector into model + branch lengths.
    fn unpack(&self, x: &[f64]) -> (BranchSiteModel, Vec<f64>) {
        let model = BranchSiteModel {
            kappa: x[0],
            omega0: x[1],
            omega2: x[2],
            p0: x[3],
            p1: x[4],
        };
        (model, x[5..].to_vec())
    }

    /// Maximize one hypothesis.
    ///
    /// # Errors
    /// [`CoreError::Optimization`] if no finite starting likelihood can be
    /// found; numerical errors propagate as [`CoreError::Linalg`].
    pub fn fit(&self, hypothesis: Hypothesis) -> Result<Fit, CoreError> {
        self.fit_from(hypothesis, self.start_vector(hypothesis))
    }

    /// Maximize one hypothesis from an explicit starting vector (same
    /// layout as [`Analysis::start_vector`]); every coordinate must be
    /// strictly inside the hypothesis' feasible region.
    fn fit_from(&self, hypothesis: Hypothesis, x0: Vec<f64>) -> Result<Fit, CoreError> {
        let config = &self.engine_config;
        let transform = self.transform(hypothesis);
        let z0 = transform.to_unconstrained(&x0);

        let problem = &self.problem;
        // The reuse evaluator keeps the previous evaluation's operators
        // and CPVs; the optimizer's coordinate delta (mapped to a
        // ReuseHint) is advisory — the evaluator diffs parameters bitwise
        // itself, so a stateless evaluation of the same point returns the
        // same bits (see slim-lik's reuse module docs).
        let mut evaluator = self
            .options
            .reuse_enabled()
            .then(|| ReuseEvaluator::new(problem, config.clone()));
        let mut objective = |z: &[f64], delta: &ParamDelta| -> f64 {
            let x = transform.to_constrained(z);
            let (model, bl) = self.unpack(&x);
            match &mut evaluator {
                Some(ev) => {
                    let hint = hint_for(&transform, delta);
                    match ev.evaluate(&model, &bl, &hint, None) {
                        Ok(v) if v.lnl.is_finite() => -v.lnl,
                        _ => f64::INFINITY,
                    }
                }
                None => match log_likelihood(problem, config, &model, &bl) {
                    Ok(lnl) if lnl.is_finite() => -lnl,
                    _ => f64::INFINITY,
                },
            }
        };

        // Sanity: the start must be evaluable.
        if !objective(&z0, &ParamDelta::Full).is_finite() {
            return Err(CoreError::Optimization(
                "likelihood not finite at the starting point".into(),
            ));
        }

        let opts = BfgsOptions {
            max_iterations: self.options.max_iterations,
            grad_mode: self.options.grad_mode,
            grad_tol: 1e-6,
            f_tol: 1e-10,
            ..Default::default()
        };
        // check: allow(det-wallclock) feeds the report wall_time field only
        let started = Instant::now();
        let result = match self.options.optimizer {
            Optimizer::DenseBfgs => minimize_delta(&mut objective, &z0, &opts),
            Optimizer::LBfgs => minimize_lbfgs_delta(&mut objective, &z0, &opts),
        };
        let wall_time = started.elapsed();

        let x = transform.to_constrained(&result.x);
        let (model, branch_lengths) = self.unpack(&x);
        #[cfg(feature = "sanitize")]
        slim_linalg::sanitize::check_finite("fitted lnL", -result.f, || {
            format!(
                "fit({hypothesis:?}) after {} iterations ({} evaluations)",
                result.iterations, result.f_evals
            )
        });
        Ok(Fit {
            hypothesis,
            lnl: -result.f,
            model,
            branch_lengths,
            iterations: result.iterations,
            f_evals: result.f_evals,
            wall_time,
            termination: result.reason,
        })
    }

    /// Run the full positive-selection test: fit H0 and H1, compute the
    /// LRT, and NEB site posteriors at the H1 MLE.
    ///
    /// # Errors
    /// Propagates fit errors.
    pub fn test_positive_selection(&self) -> Result<TestResult, CoreError> {
        let h0 = self.fit(Hypothesis::H0)?;
        let mut h1 = self.fit(Hypothesis::H1)?;
        if h1.lnl < h0.lnl {
            // H0 is a boundary point of H1 (ω2 = 1), so lnL1 ≥ lnL0 at
            // the true optima; landing below means the jittered H1 start
            // found a worse local optimum. Re-polish from the H0
            // solution, with ω2 nudged off the bound so the
            // log-transform stays finite.
            let mut warm = Vec::with_capacity(5 + h0.branch_lengths.len());
            warm.extend([
                h0.model.kappa,
                h0.model.omega0,
                1.0 + 1e-3,
                h0.model.p0,
                h0.model.p1,
            ]);
            warm.extend(h0.branch_lengths.iter().copied());
            let polished = self.fit_from(Hypothesis::H1, warm)?;
            if polished.lnl > h1.lnl {
                h1 = polished;
            }
        }
        let lrt = lrt_pvalue(h0.lnl, h1.lnl);

        let value = site_class_log_likelihoods(
            &self.problem,
            &self.engine_config,
            &h1.model,
            &h1.branch_lengths,
        )?;
        let per_pattern = positive_selection_posteriors(&value.per_class, &value.proportions);
        let site_posteriors = (0..self.problem.n_sites())
            .map(|s| per_pattern[self.problem.patterns.pattern_of_site(s)])
            .collect();

        Ok(TestResult {
            h0,
            h1,
            lrt,
            site_posteriors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_bio::parse_newick;

    fn small_analysis(backend: Backend) -> Analysis {
        let tree = parse_newick("((A:0.2,B:0.2)#1:0.1,(C:0.2,D:0.2):0.1);").unwrap();
        let aln = CodonAlignment::from_fasta(
            ">A\nATGCCCAAATTTGGGCGA\n>B\nATGCCAAAATTTGGACGA\n>C\nATGCCCAAGTTTGGGCGA\n>D\nATGCCCAAATTCGGGCGT\n",
        )
        .unwrap();
        Analysis::new(
            &tree,
            &aln,
            AnalysisOptions {
                backend,
                max_iterations: 60,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn fit_h0_improves_likelihood() {
        let a = small_analysis(Backend::Slim);
        let start_model = BranchSiteModel::default_start(Hypothesis::H0);
        let start_lnl = a
            .log_likelihood(&start_model, &a.init_branch_lengths)
            .unwrap();
        let fit = a.fit(Hypothesis::H0).unwrap();
        assert!(
            fit.lnl >= start_lnl - 1e-9,
            "fit {0} vs start {start_lnl}",
            fit.lnl
        );
        assert!(fit.model.is_valid(Hypothesis::H0));
        assert!(fit.iterations <= 60);
    }

    #[test]
    fn h1_at_least_as_good_as_h0() {
        let a = small_analysis(Backend::Slim);
        let r = a.test_positive_selection().unwrap();
        // H1 nests H0; allow small optimizer noise.
        assert!(
            r.h1.lnl >= r.h0.lnl - 0.05,
            "h1 {} vs h0 {}",
            r.h1.lnl,
            r.h0.lnl
        );
        assert!(r.lrt.p_value > 0.0 && r.lrt.p_value <= 1.0);
        assert_eq!(r.site_posteriors.len(), 6);
        for &p in &r.site_posteriors {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn backends_reach_nearly_identical_likelihoods() {
        // The heart of §IV-1: relative difference D between engine lnLs.
        let base = small_analysis(Backend::CodeMlStyle)
            .fit(Hypothesis::H0)
            .unwrap();
        let slim = small_analysis(Backend::Slim).fit(Hypothesis::H0).unwrap();
        let d = ((base.lnl - slim.lnl) / base.lnl).abs();
        assert!(d < 1e-5, "D = {d}, base {} vs slim {}", base.lnl, slim.lnl);
    }

    #[test]
    fn lbfgs_reaches_comparable_likelihood() {
        let dense = small_analysis(Backend::Slim).fit(Hypothesis::H0).unwrap();
        let tree = parse_newick("((A:0.2,B:0.2)#1:0.1,(C:0.2,D:0.2):0.1);").unwrap();
        let aln = CodonAlignment::from_fasta(
            ">A\nATGCCCAAATTTGGGCGA\n>B\nATGCCAAAATTTGGACGA\n>C\nATGCCCAAGTTTGGGCGA\n>D\nATGCCCAAATTCGGGCGT\n",
        )
        .unwrap();
        let a = Analysis::new(
            &tree,
            &aln,
            AnalysisOptions {
                backend: Backend::Slim,
                max_iterations: 60,
                optimizer: Optimizer::LBfgs,
                ..Default::default()
            },
        )
        .unwrap();
        let limited = a.fit(Hypothesis::H0).unwrap();
        assert!(
            (dense.lnl - limited.lnl).abs() < 0.01,
            "dense {} vs l-bfgs {}",
            dense.lnl,
            limited.lnl
        );
    }

    #[test]
    fn with_foreground_matches_marked_clone() {
        let tree = parse_newick("((A:0.2,B:0.2)#1:0.1,(C:0.2,D:0.2):0.1);").unwrap();
        let aln = CodonAlignment::from_fasta(
            ">A\nATGCCCAAATTTGGGCGA\n>B\nATGCCAAAATTTGGACGA\n>C\nATGCCCAAGTTTGGGCGA\n>D\nATGCCCAAATTCGGGCGT\n",
        )
        .unwrap();
        let options = AnalysisOptions {
            max_iterations: 40,
            ..Default::default()
        };
        let c = tree.leaf_by_name("C").unwrap();
        let direct = Analysis::with_foreground(&tree, c, &aln, options.clone()).unwrap();
        let marked_tree = tree.with_foreground(c).unwrap();
        let cloned = Analysis::new(&marked_tree, &aln, options).unwrap();
        let f1 = direct.fit(Hypothesis::H0).unwrap();
        let f2 = cloned.fit(Hypothesis::H0).unwrap();
        assert_eq!(f1.lnl, f2.lnl);
        assert_eq!(f1.branch_lengths, f2.branch_lengths);
    }

    #[test]
    fn cache_capacity_adapts_to_problem_and_simd_propagates() {
        let a = small_analysis(Backend::SlimPlus);
        let cache = a.engine_config().eigen_cache.as_ref().unwrap();
        assert_eq!(
            cache.capacity(),
            EigenCache::adaptive_capacity(a.problem().n_branches(), 3)
        );

        // The AnalysisOptions knob lands in the engine config.
        let tree = parse_newick("((A:0.2,B:0.2)#1:0.1,C:0.3);").unwrap();
        let aln = CodonAlignment::from_fasta(">A\nATGCCC\n>B\nATGCCA\n>C\nATGCCC\n").unwrap();
        let forced = Analysis::new(
            &tree,
            &aln,
            AnalysisOptions {
                simd: SimdMode::ForceScalar,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(forced.engine_config().simd, SimdMode::ForceScalar);
    }

    #[test]
    fn reuse_on_and_off_fits_are_bit_identical() {
        let run = |reuse: bool| {
            let tree = parse_newick("((A:0.2,B:0.2)#1:0.1,(C:0.2,D:0.2):0.1);").unwrap();
            let aln = CodonAlignment::from_fasta(
                ">A\nATGCCCAAATTTGGGCGA\n>B\nATGCCAAAATTTGGACGA\n>C\nATGCCCAAGTTTGGGCGA\n>D\nATGCCCAAATTCGGGCGT\n",
            )
            .unwrap();
            let a = Analysis::new(
                &tree,
                &aln,
                AnalysisOptions {
                    backend: Backend::Slim,
                    max_iterations: 60,
                    reuse: Some(reuse),
                    ..Default::default()
                },
            )
            .unwrap();
            a.test_positive_selection().unwrap()
        };
        let with = run(true);
        let without = run(false);
        for (a, b, what) in [
            (with.h0.lnl, without.h0.lnl, "H0 lnL"),
            (with.h1.lnl, without.h1.lnl, "H1 lnL"),
        ] {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: reuse {a} vs fresh {b}");
        }
        assert_eq!(with.h0.f_evals, without.h0.f_evals);
        assert_eq!(with.h0.iterations, without.h0.iterations);
        assert_eq!(with.h1.branch_lengths, without.h1.branch_lengths);
        assert_eq!(with.h1.model, without.h1.model);
        for (a, b) in with.site_posteriors.iter().zip(&without.site_posteriors) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn reuse_resolution_order() {
        // Explicit beats backend default.
        let opts = AnalysisOptions {
            backend: Backend::Slim,
            reuse: Some(false),
            ..Default::default()
        };
        assert!(!opts.reuse_enabled());
        let opts = AnalysisOptions {
            backend: Backend::CodeMlStyle,
            reuse: Some(true),
            ..Default::default()
        };
        assert!(opts.reuse_enabled());
        // Backend defaults (environment override is covered by the CLI
        // suite, which controls the process environment).
        if std::env::var("SLIMCODEML_REUSE").is_err() {
            let opts = AnalysisOptions {
                backend: Backend::Slim,
                ..Default::default()
            };
            assert!(opts.reuse_enabled());
            let opts = AnalysisOptions {
                backend: Backend::CodeMlStyle,
                ..Default::default()
            };
            assert!(!opts.reuse_enabled());
        }
    }

    #[test]
    fn seeded_start_is_reproducible() {
        let a = small_analysis(Backend::Slim);
        let x1 = a.start_vector(Hypothesis::H1);
        let x2 = a.start_vector(Hypothesis::H1);
        assert_eq!(x1, x2);
    }

    #[test]
    fn initial_branch_length_override() {
        let tree = parse_newick("((A:0.2,B:0.2)#1:0.1,C:0.3);").unwrap();
        let aln = CodonAlignment::from_fasta(">A\nATGCCC\n>B\nATGCCA\n>C\nATGCCC\n").unwrap();
        let a = Analysis::new(
            &tree,
            &aln,
            AnalysisOptions {
                initial_branch_length: Some(0.5),
                jitter: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        let x = a.start_vector(Hypothesis::H0);
        for &b in &x[5..] {
            assert!((b - 0.5).abs() < 1e-12);
        }
    }
}
