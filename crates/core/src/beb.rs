//! Bayes empirical Bayes (BEB) site identification.
//!
//! The paper's workflow (§I-A, citing Yang, Wong & Nielsen 2005): after a
//! significant LRT, compute the posterior probability that each codon
//! site evolves under positive selection. Naive empirical Bayes (NEB,
//! `slim-stat`) plugs in the MLEs and ignores their uncertainty; BEB
//! integrates over a prior grid on the mixture parameters
//! `(ω0, ω2, p0, p1)` — with branch lengths and κ held at their MLEs —
//! weighting each grid point by the whole-alignment likelihood.
//!
//! This is a faithful (if coarser-grained) implementation of the BEB
//! idea; PAML uses a fixed 10-point discretization, we default to 4–5
//! points per axis and let callers raise it.

use crate::{Analysis, CoreError, Fit};
use slim_lik::site_class_log_likelihoods;
use slim_model::BranchSiteModel;
use slim_stat::class_posteriors;

/// Grid resolution for the BEB integration.
#[derive(Debug, Clone, Copy)]
pub struct BebOptions {
    /// Grid points for ω0 ∈ (0, 1).
    pub n_omega0: usize,
    /// Grid points for ω2 ∈ (1, `omega2_max`).
    pub n_omega2: usize,
    /// Grid points per proportion axis (the (p0, p1) simplex gets
    /// `n_props²` points).
    pub n_props: usize,
    /// Upper bound of the ω2 prior.
    pub omega2_max: f64,
}

impl Default for BebOptions {
    fn default() -> Self {
        BebOptions {
            n_omega0: 4,
            n_omega2: 4,
            n_props: 4,
            omega2_max: 11.0,
        }
    }
}

/// Bin midpoints of (lo, hi) with `n` bins.
fn midpoints(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|k| lo + (hi - lo) * (k as f64 + 0.5) / n as f64)
        .collect()
}

impl Analysis {
    /// BEB posterior probability per alignment **site** of belonging to
    /// the positively-selected classes (2a/2b), integrating mixture
    /// parameters over a uniform prior grid.
    ///
    /// `fit` supplies κ and branch lengths (kept fixed, as in PAML's BEB).
    ///
    /// # Errors
    /// Propagates likelihood-evaluation failures.
    pub fn beb_site_posteriors(&self, fit: &Fit, opts: &BebOptions) -> Result<Vec<f64>, CoreError> {
        let config = self.options().engine_config();
        let problem = self.problem();
        let n_pat = problem.n_patterns();

        let omega0_grid = midpoints(0.0, 1.0, opts.n_omega0);
        let omega2_grid = midpoints(1.0, opts.omega2_max, opts.n_omega2);
        let u_grid = midpoints(0.0, 1.0, opts.n_props);

        // Accumulate per-grid-point: log weight (whole-data lnL, uniform
        // prior) and the per-pattern positive-selection posterior.
        let mut log_weights: Vec<f64> = Vec::new();
        let mut posteriors: Vec<Vec<f64>> = Vec::new();

        for &w0 in &omega0_grid {
            for &w2 in &omega2_grid {
                for &u in &u_grid {
                    for &v in &u_grid {
                        // (p0, p1) from the unit square onto the simplex.
                        let p0 = u;
                        let p1 = (1.0 - u) * v;
                        let model = BranchSiteModel {
                            kappa: fit.model.kappa,
                            omega0: w0,
                            omega2: w2,
                            p0,
                            p1,
                        };
                        let value = site_class_log_likelihoods(
                            problem,
                            &config,
                            &model,
                            &fit.branch_lengths,
                        )?;
                        let post = class_posteriors(&value.per_class, &value.proportions);
                        posteriors.push(post.iter().map(|row| row[2] + row[3]).collect());
                        log_weights.push(value.lnl);
                    }
                }
            }
        }

        // Softmax the whole-data log-likelihood weights.
        let max_lw = log_weights
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = log_weights.iter().map(|&lw| (lw - max_lw).exp()).collect();
        let total: f64 = weights.iter().sum();

        let mut per_pattern = vec![0.0f64; n_pat];
        for (w, post) in weights.iter().zip(&posteriors) {
            for (acc, &p) in per_pattern.iter_mut().zip(post) {
                *acc += w / total * p;
            }
        }

        // Expand patterns back to sites.
        Ok((0..problem.n_sites())
            .map(|s| per_pattern[problem.patterns.pattern_of_site(s)])
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalysisOptions, Backend};
    use slim_bio::{parse_newick, CodonAlignment};
    use slim_model::Hypothesis;

    #[test]
    fn beb_posteriors_are_probabilities() {
        let tree = parse_newick("((A:0.2,B:0.2)#1:0.1,C:0.3);").unwrap();
        let aln =
            CodonAlignment::from_fasta(">A\nATGCCCAAA\n>B\nATGCCAAAA\n>C\nATGCCCAAG\n").unwrap();
        let analysis = Analysis::new(
            &tree,
            &aln,
            AnalysisOptions {
                backend: Backend::SlimPlus,
                max_iterations: 10,
                ..Default::default()
            },
        )
        .unwrap();
        let fit = analysis.fit(Hypothesis::H1).unwrap();
        let opts = BebOptions {
            n_omega0: 2,
            n_omega2: 2,
            n_props: 2,
            omega2_max: 5.0,
        };
        let beb = analysis.beb_site_posteriors(&fit, &opts).unwrap();
        assert_eq!(beb.len(), 3);
        for &p in &beb {
            assert!((0.0..=1.0).contains(&p), "posterior {p} out of range");
        }
    }

    #[test]
    fn beb_shrinks_extreme_neb_calls() {
        // On weak data NEB can be overconfident; BEB averages over the
        // prior and should stay strictly inside (0, 1).
        let tree = parse_newick("((A:0.2,B:0.2)#1:0.1,C:0.3);").unwrap();
        let aln = CodonAlignment::from_fasta(">A\nATGCCC\n>B\nATGCCC\n>C\nATGCCC\n").unwrap();
        let analysis = Analysis::new(
            &tree,
            &aln,
            AnalysisOptions {
                backend: Backend::SlimPlus,
                max_iterations: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let fit = analysis.fit(Hypothesis::H1).unwrap();
        let opts = BebOptions {
            n_omega0: 2,
            n_omega2: 2,
            n_props: 2,
            omega2_max: 5.0,
        };
        let beb = analysis.beb_site_posteriors(&fit, &opts).unwrap();
        for &p in &beb {
            assert!(p > 0.0 && p < 1.0);
        }
    }
}
