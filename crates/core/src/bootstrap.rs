//! Parametric bootstrap for the branch-site LRT.
//!
//! The asymptotic null of the branch-site test (the 50:50 {0, χ²₁}
//! mixture in `slim-stat`) is known to be conservative on small samples;
//! the robust alternative is a parametric bootstrap: simulate replicates
//! under the **H0 MLE**, refit both hypotheses on each, and compare the
//! observed statistic against the simulated null distribution. Expensive
//! — (1 + R)·2 fits — which is precisely why the paper's speedups matter
//! for this workflow.

use crate::{Analysis, AnalysisOptions, CoreError, Fit, Hypothesis};
use slim_bio::{CodonAlignment, Tree};
use slim_sim::simulate_alignment;

/// Bootstrap configuration.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapOptions {
    /// Number of null replicates `R`.
    pub replicates: usize,
    /// Seed for the replicate simulations.
    pub seed: u64,
}

impl Default for BootstrapOptions {
    fn default() -> Self {
        BootstrapOptions {
            replicates: 100,
            seed: 7,
        }
    }
}

/// Outcome of the bootstrap test.
#[derive(Debug, Clone)]
pub struct BootstrapResult {
    /// Fit of H0 on the observed data (the simulation template).
    pub h0: Fit,
    /// Fit of H1 on the observed data.
    pub h1: Fit,
    /// Observed `2ΔlnL` (clamped at 0).
    pub observed_statistic: f64,
    /// The simulated null statistics, one per replicate.
    pub null_statistics: Vec<f64>,
    /// Bootstrap p-value `(1 + #{null ≥ observed}) / (R + 1)`.
    pub p_value: f64,
}

/// Run the parametric-bootstrap branch-site test.
///
/// # Errors
/// Propagates fit errors from the observed data or any replicate.
pub fn parametric_bootstrap_lrt(
    tree: &Tree,
    aln: &CodonAlignment,
    options: &AnalysisOptions,
    boot: &BootstrapOptions,
) -> Result<BootstrapResult, CoreError> {
    let analysis = Analysis::new(tree, aln, options.clone())?;
    let h0 = analysis.fit(Hypothesis::H0)?;
    let h1 = analysis.fit(Hypothesis::H1)?;
    let observed_statistic = (2.0 * (h1.lnl - h0.lnl)).max(0.0);

    // Simulation template: the tree with H0's estimated branch lengths
    // and the H0 parameter estimates.
    let mut template = tree.clone();
    template.set_branch_lengths(&h0.branch_lengths);
    let pi = analysis.problem().pi.clone();

    let mut null_statistics = Vec::with_capacity(boot.replicates);
    for r in 0..boot.replicates {
        let rep_aln = simulate_alignment(
            &template,
            &h0.model,
            &pi,
            aln.n_codons(),
            boot.seed ^ (r as u64).wrapping_mul(0x9E3779B9),
        );
        let rep_analysis = Analysis::new(&template, &rep_aln, options.clone())?;
        let rep_h0 = rep_analysis.fit(Hypothesis::H0)?;
        let rep_h1 = rep_analysis.fit(Hypothesis::H1)?;
        null_statistics.push((2.0 * (rep_h1.lnl - rep_h0.lnl)).max(0.0));
    }

    let exceed = null_statistics
        .iter()
        .filter(|&&s| s >= observed_statistic)
        .count();
    let p_value = (1 + exceed) as f64 / (boot.replicates + 1) as f64;

    Ok(BootstrapResult {
        h0,
        h1,
        observed_statistic,
        null_statistics,
        p_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;
    use slim_bio::parse_newick;
    use slim_opt::GradMode;

    #[test]
    fn bootstrap_runs_and_p_in_range() {
        let tree = parse_newick("((A:0.2,B:0.2)#1:0.1,C:0.3);").unwrap();
        let aln =
            CodonAlignment::from_fasta(">A\nATGCCCAAATTT\n>B\nATGCCAAAATTT\n>C\nATGCCCAAGTTC\n")
                .unwrap();
        let options = AnalysisOptions {
            backend: Backend::SlimPlus,
            max_iterations: 10,
            grad_mode: GradMode::Forward,
            ..Default::default()
        };
        let boot = BootstrapOptions {
            replicates: 2,
            seed: 3,
        };
        let r = parametric_bootstrap_lrt(&tree, &aln, &options, &boot).unwrap();
        assert_eq!(r.null_statistics.len(), 2);
        assert!(r.p_value > 0.0 && r.p_value <= 1.0);
        assert!(r.observed_statistic >= 0.0);
        // With R = 2 the p-value granularity is thirds.
        assert!([1.0 / 3.0, 2.0 / 3.0, 1.0]
            .iter()
            .any(|v| (r.p_value - v).abs() < 1e-12));
    }
}
