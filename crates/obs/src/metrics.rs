//! The metric primitives: monotonic counters, gauges, duration
//! histograms and RAII span guards. All state is relaxed atomics, so
//! concurrent recording from worker threads merges without locks and a
//! snapshot is a plain load of every cell.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of log2 histogram buckets: bucket `i` counts observations
/// shorter than `2^i` nanoseconds (the last bucket is open-ended). 40
/// buckets span 1 ns to ~9 minutes, ample for any phase or fit.
pub const HIST_BUCKETS: usize = 40;

/// A monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub(crate) fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one. No-op while collection is disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. No-op while collection is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub(crate) fn new() -> Gauge {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }

    /// Set the gauge. No-op while collection is disabled.
    #[inline]
    pub fn set(&self, value: f64) {
        if crate::enabled() {
            self.0.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    pub(crate) fn reset(&self) {
        self.0.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// A wall-clock duration histogram: count, sum, min, max and log2
/// buckets, all relaxed atomics so threads merge their observations
/// without coordination.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

/// Bucket index for a duration: the smallest `i` with `ns < 2^i`,
/// clamped to the open-ended last bucket.
fn bucket_index(ns: u64) -> usize {
    ((u64::BITS - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Upper bound of bucket `i` in seconds (`+Inf` conceptually for the
/// last bucket; callers special-case it).
pub(crate) fn bucket_upper_seconds(i: usize) -> f64 {
    (1u64 << i) as f64 * 1e-9
}

impl Histogram {
    pub(crate) fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one duration. No-op while collection is disabled.
    pub fn observe(&self, d: Duration) {
        if !crate::enabled() {
            return;
        }
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Start an RAII span: the guard records the elapsed wall time into
    /// this histogram when dropped. While collection is disabled the
    /// guard is inert — no clock is read.
    #[inline]
    pub fn span(&self) -> SpanGuard<'_> {
        SpanGuard {
            hist: self,
            start: crate::enabled().then(Instant::now),
        }
    }

    /// A point-in-time copy of every cell.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min_ns.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum_seconds: self.sum_ns.load(Ordering::Relaxed) as f64 * 1e-9,
            min_seconds: if count == 0 { 0.0 } else { min as f64 * 1e-9 },
            max_seconds: self.max_ns.load(Ordering::Relaxed) as f64 * 1e-9,
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Frozen histogram state, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Total observed wall time.
    pub sum_seconds: f64,
    /// Shortest observation (0 when empty).
    pub min_seconds: f64,
    /// Longest observation.
    pub max_seconds: f64,
    /// Log2 bucket counts (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean observation in seconds (0 when empty).
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_seconds / self.count as f64
        }
    }
}

/// RAII timer returned by [`Histogram::span`]; records on drop.
#[derive(Debug)]
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.observe(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_clamped() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        let mut prev = 0;
        for ns in [0u64, 1, 5, 999, 1_000_000, 1 << 45, u64::MAX] {
            let i = bucket_index(ns);
            assert!(i >= prev, "bucket index must not decrease with duration");
            prev = i;
        }
    }

    #[test]
    fn bucket_bounds_cover_nanos_to_minutes() {
        assert!(bucket_upper_seconds(0) < 1e-8);
        assert!(bucket_upper_seconds(HIST_BUCKETS - 1) > 300.0);
    }
}
