//! The metric registry and its snapshot/rendering layer.
//!
//! Registration (name → handle) is the cold path, behind a mutex over
//! sorted maps; recording touches only the returned `Arc` handles.
//! Snapshots iterate the maps in name order, so two snapshots of the
//! same registry always list metrics identically — the schema-stability
//! contract the CLI's `--metrics` output relies on.

use crate::metrics::{bucket_upper_seconds, Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A set of named metrics. Most code uses the process-wide [`global`]
/// registry through the free functions; separate instances exist for
/// tests.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter named `name`. Registering is idempotent:
    /// every caller receives a handle to the same cell.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("obs counter map poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("obs gauge map poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// Get or create the duration histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("obs histogram map poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Freeze every registered metric, sorted by name. Derived gauges
    /// (see [`add_derived_gauges`]) are computed here, so they appear in
    /// both the JSON and Prometheus renderings without a recording site.
    pub fn snapshot(&self) -> Snapshot {
        let counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .expect("obs counter map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let mut gauges: Vec<(String, f64)> = self
            .gauges
            .lock()
            .expect("obs gauge map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        add_derived_gauges(&counters, &mut gauges);
        Snapshot {
            counters,
            gauges,
            histograms: self
                .histograms
                .lock()
                .expect("obs histogram map poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Zero every metric, keeping all registrations (names stay in the
    /// snapshot schema).
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .expect("obs counter map poisoned")
            .values()
        {
            c.reset();
        }
        for g in self.gauges.lock().expect("obs gauge map poisoned").values() {
            g.reset();
        }
        for h in self
            .histograms
            .lock()
            .expect("obs histogram map poisoned")
            .values()
        {
            h.reset();
        }
    }
}

/// Compute gauges derived from raw counters at snapshot time, inserting
/// them at their name-sorted position so the schema-stability contract
/// holds. Currently: `expm.cache.hit_rate` = hits / (hits + misses) and
/// `lik.reuse.hit_rate` = units_reused / (units_reused +
/// units_recomputed). Both are defined as 0 when their denominator is 0
/// (no lookups yet) — never NaN — and present whenever their source
/// counters are registered.
fn add_derived_gauges(counters: &[(String, u64)], gauges: &mut Vec<(String, f64)>) {
    let get = |name: &str| counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
    let mut set =
        |name: &str, rate: f64| match gauges.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => gauges[i].1 = rate,
            Err(i) => gauges.insert(i, (name.to_string(), rate)),
        };
    if let (Some(hits), Some(misses)) = (get("expm.cache.hits"), get("expm.cache.misses")) {
        set("expm.cache.hit_rate", ratio(hits, hits + misses));
    }
    if let (Some(reused), Some(recomputed)) = (
        get("lik.reuse.units_reused"),
        get("lik.reuse.units_recomputed"),
    ) {
        set("lik.reuse.hit_rate", ratio(reused, reused + recomputed));
    }
}

/// `num / den` with the 0/0 case pinned to 0.0 (never NaN).
fn ratio(num: u64, den: u64) -> f64 {
    if den > 0 {
        num as f64 / den as f64
    } else {
        0.0
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Get or create a counter in the [`global`] registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Get or create a gauge in the [`global`] registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Get or create a histogram in the [`global`] registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Snapshot the [`global`] registry.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Zero the [`global`] registry (registrations survive).
pub fn reset() {
    global().reset()
}

/// A frozen, name-sorted view of a registry.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// (name, value) for every counter.
    pub counters: Vec<(String, u64)>,
    /// (name, value) for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// (name, state) for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Render as a machine-readable JSON document (the `--metrics
    /// out.json` sink). Keys are sorted, floats render
    /// shortest-roundtrip, non-finite values render as `null` — two
    /// snapshots of identically-registered registries differ only in
    /// values, never in shape.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"slimcodeml.metrics.v1\"");
        out.push_str(",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", json_str(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_str(name), json_f64(*v)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum_seconds\":{},\"min_seconds\":{},\"max_seconds\":{},\"mean_seconds\":{}}}",
                json_str(name),
                h.count,
                json_f64(h.sum_seconds),
                json_f64(h.min_seconds),
                json_f64(h.max_seconds),
                json_f64(h.mean_seconds()),
            ));
        }
        out.push_str("}}\n");
        out
    }

    /// Render as Prometheus text exposition (`--metrics-format prom`):
    /// counters and gauges verbatim, histograms with cumulative
    /// `_bucket{le=...}` series up to the highest occupied bucket plus
    /// `+Inf`, `_sum` and `_count`. Names are prefixed `slimcodeml_`
    /// with dots mapped to underscores.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", prom_f64(*v)));
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let top = h
                .buckets
                .iter()
                .rposition(|&c| c > 0)
                .map_or(0, |i| i + 1)
                .min(h.buckets.len() - 1);
            let mut cumulative = 0u64;
            for (i, &c) in h.buckets.iter().enumerate().take(top) {
                cumulative += c;
                out.push_str(&format!(
                    "{n}_bucket{{le=\"{}\"}} {cumulative}\n",
                    prom_f64(bucket_upper_seconds(i))
                ));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n", prom_f64(h.sum_seconds)));
            out.push_str(&format!("{n}_count {}\n", h.count));
        }
        out
    }
}

/// JSON string literal with the escapes the metric-name charset needs.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Shortest-roundtrip JSON number; non-finite becomes `null`.
fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Prometheus sample value (scientific notation is accepted).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v != 0.0 && v.abs() < 1e-3 {
        format!("{v:e}")
    } else {
        format!("{v}")
    }
}

/// `lik.phase.eigen_seconds` → `slimcodeml_lik_phase_eigen_seconds`.
fn prom_name(name: &str) -> String {
    let mut out = String::from("slimcodeml_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Tests below toggle the process-wide enabled flag; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked_enabled() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(true);
        guard
    }

    #[test]
    fn disabled_recording_is_a_noop() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(false);
        let r = Registry::new();
        let c = r.counter("x.count");
        let g = r.gauge("x.gauge");
        let h = r.histogram("x.hist");
        c.add(5);
        g.set(3.5);
        h.observe(Duration::from_millis(1));
        {
            let _span = h.span();
        }
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn counters_merge_across_threads() {
        let _g = locked_enabled();
        let r = Registry::new();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = r.counter("merge.count");
                s.spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(r.counter("merge.count").get(), threads * per_thread);
        crate::set_enabled(false);
    }

    #[test]
    fn histograms_merge_across_threads() {
        let _g = locked_enabled();
        let r = Registry::new();
        let threads = 4;
        let per_thread = 1_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = r.histogram("merge.hist");
                s.spawn(move || {
                    for _ in 0..per_thread {
                        // Distinct per-thread durations so min/max and the
                        // sum all exercise the merge.
                        h.observe(Duration::from_micros(t + 1));
                    }
                });
            }
        });
        let h = r.histogram("merge.hist").snapshot();
        assert_eq!(h.count, threads * per_thread);
        let expect_sum = (1..=threads).map(|t| t * per_thread).sum::<u64>() as f64 * 1e-6;
        assert!(
            (h.sum_seconds - expect_sum).abs() < 1e-12,
            "{}",
            h.sum_seconds
        );
        assert!((h.min_seconds - 1e-6).abs() < 1e-15);
        assert!((h.max_seconds - 4e-6).abs() < 1e-15);
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
        crate::set_enabled(false);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let _g = locked_enabled();
        let r = Registry::new();
        let h = r.histogram("span.hist");
        {
            let _span = h.span();
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.sum_seconds >= 0.002, "{}", snap.sum_seconds);
        crate::set_enabled(false);
    }

    #[test]
    fn snapshot_is_sorted_and_reset_keeps_schema() {
        let _g = locked_enabled();
        let r = Registry::new();
        r.counter("z.last").inc();
        r.counter("a.first").add(2);
        r.gauge("m.middle").set(1.5);
        r.histogram("k.hist").observe(Duration::from_micros(10));
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.first", "z.last"]);
        assert_eq!(snap.counter("a.first"), Some(2));
        assert_eq!(snap.gauge("m.middle"), Some(1.5));
        assert_eq!(snap.histogram("k.hist").unwrap().count, 1);

        r.reset();
        let after = r.snapshot();
        assert_eq!(after.counter("a.first"), Some(0), "value zeroed");
        assert_eq!(after.counter("z.last"), Some(0));
        assert_eq!(after.gauge("m.middle"), Some(0.0));
        assert_eq!(after.histogram("k.hist").unwrap().count, 0);
        assert_eq!(
            snap.counters.len(),
            after.counters.len(),
            "registrations survive reset"
        );
        crate::set_enabled(false);
    }

    #[test]
    fn registration_is_idempotent() {
        let _g = locked_enabled();
        let r = Registry::new();
        let a = r.counter("same.name");
        let b = r.counter("same.name");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "both handles hit the same cell");
        crate::set_enabled(false);
    }

    #[test]
    fn json_rendering_is_schema_stable() {
        let _g = locked_enabled();
        let r = Registry::new();
        r.counter("c.one").add(7);
        r.gauge("g.one").set(0.25);
        r.histogram("h.one").observe(Duration::from_millis(3));
        let json = r.snapshot().to_json();
        assert!(json.starts_with("{\"schema\":\"slimcodeml.metrics.v1\""));
        assert!(json.contains("\"c.one\":7"), "{json}");
        assert!(json.contains("\"g.one\":0.25"), "{json}");
        assert!(json.contains("\"h.one\":{\"count\":1"), "{json}");
        assert!(json.contains("\"sum_seconds\":"));
        // Zeroed registry: identical shape, zero values.
        r.reset();
        let zero = r.snapshot().to_json();
        assert!(zero.contains("\"c.one\":0"), "{zero}");
        assert!(zero.contains("\"h.one\":{\"count\":0"), "{zero}");
        crate::set_enabled(false);
    }

    #[test]
    fn prometheus_rendering() {
        let _g = locked_enabled();
        let r = Registry::new();
        r.counter("opt.iterations").add(42);
        r.gauge("batch.pool.workers").set(4.0);
        r.histogram("lik.phase.eigen_seconds")
            .observe(Duration::from_micros(100));
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE slimcodeml_opt_iterations counter"));
        assert!(text.contains("slimcodeml_opt_iterations 42"));
        assert!(text.contains("# TYPE slimcodeml_batch_pool_workers gauge"));
        assert!(text.contains("slimcodeml_batch_pool_workers 4"));
        assert!(text.contains("# TYPE slimcodeml_lik_phase_eigen_seconds histogram"));
        assert!(text.contains("slimcodeml_lik_phase_eigen_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("slimcodeml_lik_phase_eigen_seconds_count 1"));
        assert!(text.contains("slimcodeml_lik_phase_eigen_seconds_sum "));
        crate::set_enabled(false);
    }

    #[test]
    fn derived_cache_hit_rate_in_both_sinks() {
        let _g = locked_enabled();
        let r = Registry::new();
        r.counter("expm.cache.hits").add(3);
        r.counter("expm.cache.misses").add(1);
        let snap = r.snapshot();
        assert_eq!(snap.gauge("expm.cache.hit_rate"), Some(0.75));
        let names: Vec<&str> = snap.gauges.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "derived gauge keeps name order");
        assert!(
            snap.to_json().contains("\"expm.cache.hit_rate\":0.75"),
            "{}",
            snap.to_json()
        );
        assert!(
            snap.to_prometheus()
                .contains("# TYPE slimcodeml_expm_cache_hit_rate gauge"),
            "{}",
            snap.to_prometheus()
        );
        // Before any access: defined as 0, not NaN.
        r.reset();
        assert_eq!(r.snapshot().gauge("expm.cache.hit_rate"), Some(0.0));
        // Registries without the cache counters don't grow the gauge.
        let bare = Registry::new();
        assert_eq!(bare.snapshot().gauge("expm.cache.hit_rate"), None);
        crate::set_enabled(false);
    }

    #[test]
    fn derived_reuse_hit_rate_guards_zero_over_zero() {
        let _g = locked_enabled();
        let r = Registry::new();
        // Registered but never bumped — a job that performed no lookups.
        // The derived gauge must be 0.0, never NaN, in both sinks.
        r.counter("lik.reuse.units_reused");
        r.counter("lik.reuse.units_recomputed");
        let snap = r.snapshot();
        assert_eq!(snap.gauge("lik.reuse.hit_rate"), Some(0.0));
        assert!(
            snap.to_json().contains("\"lik.reuse.hit_rate\":0.0"),
            "{}",
            snap.to_json()
        );
        assert!(
            snap.to_prometheus()
                .contains("slimcodeml_lik_reuse_hit_rate 0\n"),
            "{}",
            snap.to_prometheus()
        );
        // With traffic, the usual ratio, name-sorted into the gauge list.
        r.counter("lik.reuse.units_reused").add(6);
        r.counter("lik.reuse.units_recomputed").add(2);
        let snap = r.snapshot();
        assert_eq!(snap.gauge("lik.reuse.hit_rate"), Some(0.75));
        let names: Vec<&str> = snap.gauges.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "derived gauge keeps name order");
        crate::set_enabled(false);
    }

    #[test]
    fn json_f64_edge_cases() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2.0", "integral floats keep a decimal point");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1e-9), "0.000000001");
    }
}
