//! # slim-obs
//!
//! A unified observability substrate for the SlimCodeML reproduction —
//! the measurement layer the paper itself started from (its entire
//! optimization story begins with a gprof profile of CodeML, §II,
//! Table I). The optimizer, the likelihood engine, the
//! eigendecomposition cache and the batch runner all record into one
//! process-wide registry; the CLI renders it as the `--timing` report, a
//! `--metrics out.json` snapshot, or Prometheus text exposition.
//!
//! ## Design constraints
//!
//! * **Dependency-free.** Only `std`; safe to pull into any crate in the
//!   workspace, including the otherwise dependency-free `slim-opt`.
//! * **Near-zero cost when disabled.** Every record operation checks one
//!   static [`enabled`] flag (a relaxed atomic load) and returns. No
//!   allocation happens on any hot path: metric handles are registered
//!   once (cold, behind a mutex) and then touched only through relaxed
//!   atomics.
//! * **Never perturbs numerics.** Instrumentation only *observes* —
//!   log-likelihoods are bit-identical with metrics on and off, which
//!   the `metrics_identity` test layer locks down.
//!
//! ## Naming and hierarchy
//!
//! Metric names are dotted paths (`lik.phase.eigen_seconds`,
//! `expm.cache.hits`): the dots express the span/metric hierarchy, so a
//! sorted snapshot groups each subsystem's metrics together and a
//! Prometheus scrape maps them to `slimcodeml_lik_phase_eigen_seconds`
//! etc. Span guards ([`Histogram::span`]) nest freely — a `lik.phase.*`
//! span running inside an `opt.fit_seconds` span is the intended shape.
//!
//! ## Enabling collection
//!
//! Collection is off by default. It turns on when
//! * the `SLIMCODEML_METRICS` environment variable is set to anything
//!   but `0` / `false` / empty (read once, at first use), or
//! * a front end calls [`set_enabled`]`(true)` — the CLI does this for
//!   `--timing` and `--metrics`.

mod metrics;
mod registry;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, SpanGuard, HIST_BUCKETS};
pub use registry::{counter, gauge, global, histogram, reset, snapshot, Registry, Snapshot};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

/// Fold the `SLIMCODEML_METRICS` environment variable into the flag,
/// exactly once per process; later [`set_enabled`] calls override it.
fn sync_env() {
    ENV_INIT.call_once(|| {
        if let Ok(v) = std::env::var("SLIMCODEML_METRICS") {
            let v = v.trim();
            if !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false") {
                ENABLED.store(true, Ordering::Relaxed);
            }
        }
    });
}

/// Is collection on? One relaxed load — the gate every record operation
/// takes first.
#[inline]
pub fn enabled() -> bool {
    sync_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on or off for the whole process (the library-API
/// mirror of the CLI's `--metrics`/`--timing` flags and the
/// `SLIMCODEML_METRICS` environment variable).
pub fn set_enabled(on: bool) {
    sync_env();
    ENABLED.store(on, Ordering::Relaxed);
}
