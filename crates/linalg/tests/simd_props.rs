//! Property tests for the SIMD dispatch layer: every backend must produce
//! **bit-identical** results, because the vector kernels reorder only
//! across independent outputs, never inside a reduction.
//!
//! Dimensions deliberately straddle the 4-lane boundary (1, 60, 61, 64,
//! 65): 61 is the codon order (one vector tail of 1), 64 the padded
//! width (no tail), 60/65 the neighbors on either side. On hosts without
//! AVX2 the forced-AVX2 backend gracefully resolves to scalar and these
//! tests pin exactly that fallback.

use proptest::prelude::*;
use slim_linalg::simd::{self, SimdBackend, SimdMode};
use slim_linalg::{gemm, gemv, symv, syrk, Mat, Transpose};

/// Widths straddling the 4-lane boundary plus the codon order.
const LANE_DIMS: [usize; 5] = [1, 60, 61, 64, 65];

fn dim_strategy() -> impl Strategy<Value = usize> {
    (0usize..LANE_DIMS.len()).prop_map(|i| LANE_DIMS[i])
}

/// Deterministic pseudo-random vector in (-0.5, 0.5).
fn rng_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect()
}

fn rng_mat(rows: usize, cols: usize, seed: u64) -> Mat {
    let v = rng_vec(rows * cols, seed);
    Mat::from_fn(rows, cols, |i, j| v[i * cols + j])
}

/// The best backend this host resolves a forced-AVX2 request to (AVX2 on
/// x86-64 with the feature, scalar elsewhere — the graceful fallback).
fn fast_backend() -> SimdBackend {
    simd::resolve(SimdMode::ForceAvx2)
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

fn mat_bits(m: &Mat) -> Vec<u64> {
    (0..m.rows())
        .flat_map(|i| m.row(i).iter().map(|v| v.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Every elementwise/reduction microkernel: scalar vs dispatched bits.
    #[test]
    fn microkernels_bit_identical_across_backends(n in dim_strategy(), seed in 0u64..1_000) {
        let be = fast_backend();
        let x = rng_vec(n, seed);
        let y = rng_vec(n, seed ^ 0xABCD);
        let z = rng_vec(n, seed ^ 0x1234);
        let alpha = rng_vec(1, seed ^ 0x77)[0] * 3.0;

        // dot / dot2: same reduction order on every backend.
        let d_s = simd::dot_with(SimdBackend::Scalar, &x, &y);
        let d_f = simd::dot_with(be, &x, &y);
        prop_assert_eq!(d_s.to_bits(), d_f.to_bits());
        let (a_s, b_s) = simd::dot2_with(SimdBackend::Scalar, &x, &z, &y);
        let (a_f, b_f) = simd::dot2_with(be, &x, &z, &y);
        prop_assert_eq!(a_s.to_bits(), a_f.to_bits());
        prop_assert_eq!(b_s.to_bits(), b_f.to_bits());
        // dot2 is exactly two dots sharing the rhs.
        prop_assert_eq!(a_s.to_bits(), d_s.to_bits());

        // fma_row / fma_row2: independent outputs.
        let (mut c_s, mut c_f) = (y.clone(), y.clone());
        simd::fma_row_with(SimdBackend::Scalar, &mut c_s, alpha, &x);
        simd::fma_row_with(be, &mut c_f, alpha, &x);
        prop_assert_eq!(bits(&c_s), bits(&c_f));
        let (mut c2_s, mut c2_f) = (y.clone(), y.clone());
        simd::fma_row2_with(SimdBackend::Scalar, &mut c2_s, alpha, &x, -alpha, &z);
        simd::fma_row2_with(be, &mut c2_f, alpha, &x, -alpha, &z);
        prop_assert_eq!(bits(&c2_s), bits(&c2_f));

        // mul_row / mul_into / scale_row.
        let (mut m_s, mut m_f) = (y.clone(), y.clone());
        simd::mul_row_with(SimdBackend::Scalar, &mut m_s, &x);
        simd::mul_row_with(be, &mut m_f, &x);
        prop_assert_eq!(bits(&m_s), bits(&m_f));
        let (mut z_s, mut z_f) = (vec![0.0; n], vec![0.0; n]);
        simd::mul_into_with(SimdBackend::Scalar, &x, &y, &mut z_s);
        simd::mul_into_with(be, &x, &y, &mut z_f);
        prop_assert_eq!(bits(&z_s), bits(&z_f));
        let (mut s_s, mut s_f) = (x.clone(), x.clone());
        simd::scale_row_with(SimdBackend::Scalar, &mut s_s, alpha);
        simd::scale_row_with(be, &mut s_f, alpha);
        prop_assert_eq!(bits(&s_s), bits(&s_f));
    }

    /// The composite kernels under `with_forced`: gemm, gemv, symv, syrk
    /// all produce the same bits whether dispatch is forced to scalar or
    /// to the best available vector backend.
    #[test]
    fn composite_kernels_bit_identical_under_forced_dispatch(
        n in dim_strategy(),
        seed in 0u64..500,
    ) {
        let a = rng_mat(n, n, seed);
        let b = rng_mat(n, n, seed ^ 0xBEEF);
        let x = rng_vec(n, seed ^ 0xF00D);
        let y0 = rng_vec(n, seed ^ 0xD00F);
        let mut sym = rng_mat(n, n, seed ^ 0x5555);
        sym.symmetrize();

        let run = |mode: SimdMode| {
            simd::with_forced(mode, || {
                let mut c = rng_mat(n, n, seed ^ 0xC0FE);
                gemm(1.25, &a, Transpose::No, &b, Transpose::No, 0.5, &mut c);
                let mut yv = y0.clone();
                gemv(1.25, &a, &x, 0.5, &mut yv);
                let mut ys = y0.clone();
                symv(1.25, &sym, &x, 0.5, &mut ys);
                let mut k = Mat::zeros(n, n);
                syrk(1.25, &a, 0.0, &mut k);
                (mat_bits(&c), bits(&yv), bits(&ys), mat_bits(&k))
            })
        };

        let scalar = run(SimdMode::ForceScalar);
        let fast = run(SimdMode::ForceAvx2);
        prop_assert_eq!(&scalar.0, &fast.0, "gemm bits");
        prop_assert_eq!(&scalar.1, &fast.1, "gemv bits");
        prop_assert_eq!(&scalar.2, &fast.2, "symv bits");
        prop_assert_eq!(&scalar.3, &fast.3, "syrk bits");
    }

    /// Lane padding is logically invisible: gemm/syrk into padded outputs
    /// (and from padded inputs) produce the same logical bits as fully
    /// dense layouts, and pad columns stay zero.
    #[test]
    fn padded_storage_matches_dense_bits(n in dim_strategy(), seed in 0u64..500) {
        let a = rng_mat(n, n, seed);
        let b = rng_mat(n, n, seed ^ 0x1DEA);

        let mut c_dense = Mat::zeros(n, n);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c_dense);
        let mut c_pad = Mat::zeros_padded(n, n);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c_pad);
        prop_assert_eq!(mat_bits(&c_dense), mat_bits(&c_pad));

        let mut k_dense = Mat::zeros(n, n);
        syrk(1.0, &a, 0.0, &mut k_dense);
        let mut k_pad = Mat::zeros_padded(n, n);
        syrk(1.0, &a, 0.0, &mut k_pad);
        prop_assert_eq!(mat_bits(&k_dense), mat_bits(&k_pad));

        // Pads stayed exactly zero, so whole-storage elementwise ops
        // cannot leak them into logical results.
        if c_pad.is_padded() {
            let (stride, cols) = (c_pad.stride(), c_pad.cols());
            for i in 0..c_pad.rows() {
                for j in cols..stride {
                    prop_assert_eq!(c_pad.as_slice()[i * stride + j].to_bits(), 0u64);
                }
            }
        }
    }
}

/// The probe itself: forced modes resolve to a backend the host supports,
/// never to an unsupported one.
#[test]
fn dispatch_probe_falls_back_cleanly() {
    let avx2 = simd::resolve(SimdMode::ForceAvx2);
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            assert_eq!(avx2, SimdBackend::Avx2);
        } else {
            assert_eq!(avx2, SimdBackend::Scalar, "no AVX2 → scalar fallback");
        }
        assert_eq!(
            simd::resolve(SimdMode::ForceNeon),
            SimdBackend::Scalar,
            "NEON is never available on x86-64"
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    assert_eq!(avx2, SimdBackend::Scalar);
    assert_eq!(simd::resolve(SimdMode::ForceScalar), SimdBackend::Scalar);
    // Auto resolves to whatever with_forced(Auto) activates.
    assert_eq!(
        simd::resolve(SimdMode::Auto),
        simd::with_forced(SimdMode::Auto, simd::active)
    );
}

/// `with_forced` scopes the override to the closure: the 61-wide dot
/// computed inside a forced-scalar region matches the dispatched value
/// bit-for-bit (the determinism contract, spot-checked end to end).
#[test]
fn forced_scalar_region_matches_dispatched_bits() {
    let x = rng_vec(61, 7);
    let y = rng_vec(61, 11);
    let scalar = simd::with_forced(SimdMode::ForceScalar, || slim_linalg::vecops::dot(&x, &y));
    let auto = simd::with_forced(SimdMode::Auto, || slim_linalg::vecops::dot(&x, &y));
    assert_eq!(scalar.to_bits(), auto.to_bits());
}
