//! Property tests pinning the tiled kernels to the textbook references.
//!
//! The blocked `gemm`/`syrk` paths reorder the loop nest for cache reuse but
//! must compute the same inner products as `naive::matmul`; any disagreement
//! beyond rounding is a tiling bug. Dimensions are drawn from a set that
//! deliberately straddles the `KC = 64` / `MC = 64` block boundaries
//! (63/64/65, 127/128/129) so every partial-panel edge case in the packing
//! loops is exercised, not just the easy interior.

use proptest::prelude::*;
use slim_linalg::gemm::{gemm, matmul, Transpose};
use slim_linalg::{naive, syrk, Mat};

/// Dimensions that hit both sides of every cache-block boundary plus the
/// degenerate small cases.
const STRADDLE_DIMS: [usize; 9] = [1, 2, 7, 63, 64, 65, 127, 128, 129];

/// Strategy: one dimension from the boundary-straddling set.
fn dim_strategy() -> impl Strategy<Value = usize> {
    (0usize..STRADDLE_DIMS.len()).prop_map(|i| STRADDLE_DIMS[i])
}

/// Deterministic pseudo-random matrix in (-0.5, 0.5).
fn rng_mat(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    Mat::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    })
}

/// Relative Frobenius-style agreement check: |x - y| ≤ tol · max(1, |x|).
fn assert_close(tuned: &Mat, reference: &Mat, tol: f64) -> Result<(), TestCaseError> {
    prop_assert_eq!(tuned.rows(), reference.rows());
    prop_assert_eq!(tuned.cols(), reference.cols());
    for i in 0..tuned.rows() {
        for j in 0..tuned.cols() {
            let x = tuned[(i, j)];
            let y = reference[(i, j)];
            let scale = 1.0f64.max(y.abs());
            prop_assert!(
                (x - y).abs() <= tol * scale,
                "({}, {}): tuned {} vs naive {}",
                i,
                j,
                x,
                y
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Blocked `matmul` equals the textbook triple loop on shapes that
    /// straddle the packing-block boundaries.
    #[test]
    fn tiled_matmul_matches_naive_at_block_boundaries(
        m in dim_strategy(),
        k in dim_strategy(),
        n in dim_strategy(),
        seed in 0u64..1000,
    ) {
        let a = rng_mat(m, k, seed);
        let b = rng_mat(k, n, seed ^ 0xABCD);
        let tuned = matmul(&a, Transpose::No, &b, Transpose::No);
        let reference = naive::matmul(&a, &b);
        assert_close(&tuned, &reference, 1e-12)?;
    }

    /// Every transpose variant of the tiled product agrees with the naive
    /// product of explicitly transposed operands.
    #[test]
    fn tiled_matmul_transpose_variants_match_naive(
        m in dim_strategy(),
        k in dim_strategy(),
        n in dim_strategy(),
        seed in 0u64..1000,
    ) {
        let a = rng_mat(m, k, seed.wrapping_add(1));
        let b = rng_mat(k, n, seed.wrapping_add(2));
        let at = a.transpose();
        let bt = b.transpose();
        let reference = naive::matmul(&a, &b);

        assert_close(&matmul(&at, Transpose::Yes, &b, Transpose::No), &reference, 1e-12)?;
        assert_close(&matmul(&a, Transpose::No, &bt, Transpose::Yes), &reference, 1e-12)?;
        assert_close(&matmul(&at, Transpose::Yes, &bt, Transpose::Yes), &reference, 1e-12)?;
        // A·Xᵀ also has a dedicated naive reference (`matmul_bt`); check the
        // tuned transposed-B path against it directly.
        let x = rng_mat(n, k, seed.wrapping_add(9));
        assert_close(&matmul(&a, Transpose::No, &x, Transpose::Yes), &naive::matmul_bt(&a, &x), 1e-12)?;
    }

    /// General `gemm` with α/β scaling matches the scalar recurrence
    /// `C ← α·A·B + β·C` computed naively.
    #[test]
    fn gemm_alpha_beta_matches_naive(
        m in dim_strategy(),
        k in dim_strategy(),
        n in dim_strategy(),
        seed in 0u64..1000,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
    ) {
        let a = rng_mat(m, k, seed.wrapping_add(3));
        let b = rng_mat(k, n, seed.wrapping_add(4));
        let c0 = rng_mat(m, n, seed.wrapping_add(5));

        let mut tuned = c0.clone();
        gemm(alpha, &a, Transpose::No, &b, Transpose::No, beta, &mut tuned);

        let ab = naive::matmul(&a, &b);
        let reference = Mat::from_fn(m, n, |i, j| alpha * ab[(i, j)] + beta * c0[(i, j)]);
        assert_close(&tuned, &reference, 1e-12)?;
    }

    /// `syrk` equals the naive `A·Aᵀ` on boundary-straddling shapes and
    /// produces an exactly symmetric result.
    #[test]
    fn syrk_matches_naive_aat(
        n in dim_strategy(),
        k in dim_strategy(),
        seed in 0u64..1000,
    ) {
        let a = rng_mat(n, k, seed.wrapping_add(6));
        let mut tuned = Mat::zeros(n, n);
        syrk(1.0, &a, 0.0, &mut tuned);
        let reference = naive::matmul_bt(&a, &a);
        assert_close(&tuned, &reference, 1e-12)?;
        for i in 0..n {
            for j in 0..n {
                prop_assert!(tuned[(i, j)].to_bits() == tuned[(j, i)].to_bits());
            }
        }
    }

    /// `syrk` with α/β against the scalar recurrence, seeded from a
    /// symmetric accumulator (the only meaningful β path for a symmetric
    /// update).
    #[test]
    fn syrk_alpha_beta_matches_naive(
        n in dim_strategy(),
        k in dim_strategy(),
        seed in 0u64..1000,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
    ) {
        let a = rng_mat(n, k, seed.wrapping_add(7));
        let mut c0 = rng_mat(n, n, seed.wrapping_add(8));
        c0.symmetrize();

        let mut tuned = c0.clone();
        syrk(alpha, &a, beta, &mut tuned);

        let aat = naive::matmul_bt(&a, &a);
        let reference = Mat::from_fn(n, n, |i, j| alpha * aat[(i, j)] + beta * c0[(i, j)]);
        assert_close(&tuned, &reference, 1e-12)?;
    }
}
