//! # slim-linalg
//!
//! Dense linear-algebra substrate for the SlimCodeML reproduction.
//!
//! The SlimCodeML paper (Schabauer et al., IPDPSW 2012) attributes its
//! speedup to replacing hand-rolled linear algebra in CodeML with tuned
//! BLAS/LAPACK routines and to exploiting symmetry (`dsyrk` instead of
//! `dgemm`, `dsyevr` instead of a hand-coded eigensolver). Since this
//! reproduction may not link external BLAS/LAPACK, this crate provides both
//! sides of that comparison from scratch:
//!
//! * **Tuned kernels** (`gemm`, `syrk`, `gemv`, `symv`): cache-blocked,
//!   register-tiled implementations standing in for GotoBLAS.
//! * **Naive kernels** (`naive` module): textbook triple loops standing in
//!   for CodeML's hand-rolled C.
//! * **Symmetric eigensolvers**: Householder tridiagonalization + implicit
//!   QL with shifts (the LAPACK `tred2`/`tql2` lineage), a bisection +
//!   inverse-iteration solver (stand-in for `dsyevr`'s MRRR path), and a
//!   cyclic Jacobi solver used for cross-checking.
//!
//! All matrices are dense, row-major, `f64`.
//!
//! ## Quick example
//!
//! ```
//! use slim_linalg::{Mat, gemm, Transpose};
//!
//! let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Mat::identity(2);
//! let mut c = Mat::zeros(2, 2);
//! gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
//! assert_eq!(c, a);
//! ```

// Indexed loops are the natural idiom for the tridiagonal/banded
// recurrences in this crate; suppress the style lint crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod bisect;
mod cholesky;
pub mod eigen;
mod error;
pub mod gemm;
pub mod gemv;
pub mod jacobi;
mod lu;
mod mat;
pub mod naive;
pub mod norms;
pub mod ql;
#[cfg(feature = "sanitize")]
pub mod sanitize;
pub mod simd;
pub mod syrk;
pub mod tridiag;
pub mod vecops;

pub use cholesky::Cholesky;
pub use eigen::{sym_eigen, EigenMethod, SymEigen};
pub use error::LinalgError;
pub use gemm::{gemm, Transpose};
pub use gemv::{gemv, ger, symv};
pub use lu::Lu;
pub use mat::Mat;
pub use simd::{SimdBackend, SimdMode};
pub use syrk::syrk;
pub use vecops::{neumaier_sum, NeumaierSum};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
