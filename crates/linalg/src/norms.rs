//! Matrix norms and error measures used by tests, the expm accuracy oracle,
//! and the experiment harness.

use crate::Mat;

/// Frobenius norm `‖A‖_F`.
pub fn frobenius(a: &Mat) -> f64 {
    crate::vecops::nrm2(a.as_slice())
}

/// Infinity norm `‖A‖_∞` (maximum absolute row sum).
pub fn inf_norm(a: &Mat) -> f64 {
    (0..a.rows())
        .map(|i| a.row(i).iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// One norm `‖A‖_1` (maximum absolute column sum).
pub fn one_norm(a: &Mat) -> f64 {
    let mut sums = vec![0.0f64; a.cols()];
    for i in 0..a.rows() {
        for (s, v) in sums.iter_mut().zip(a.row(i)) {
            *s += v.abs();
        }
    }
    sums.into_iter().fold(0.0, f64::max)
}

/// Maximum absolute element.
pub fn max_abs(a: &Mat) -> f64 {
    a.as_slice().iter().map(|v| v.abs()).fold(0.0, f64::max)
}

/// Relative Frobenius distance `‖A − B‖_F / max(‖A‖_F, ε)`.
pub fn rel_frobenius_diff(a: &Mat, b: &Mat) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    // Subtract row-by-row: `a` and `b` may carry different lane padding.
    let mut diff = Mat::zeros(a.rows(), a.cols());
    for i in 0..a.rows() {
        for ((d, av), bv) in diff.row_mut(i).iter_mut().zip(a.row(i)).zip(b.row(i)) {
            *d = av - bv;
        }
    }
    frobenius(&diff) / frobenius(a).max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_of_known_matrix() {
        let a = Mat::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert!((frobenius(&a) - 30f64.sqrt()).abs() < 1e-14);
        assert_eq!(inf_norm(&a), 7.0);
        assert_eq!(one_norm(&a), 6.0);
        assert_eq!(max_abs(&a), 4.0);
    }

    #[test]
    fn rel_diff_zero_for_equal() {
        let a = Mat::identity(5);
        assert_eq!(rel_frobenius_diff(&a, &a), 0.0);
    }

    #[test]
    fn rel_diff_scales() {
        let a = Mat::identity(2);
        let mut b = a.clone();
        b[(0, 0)] = 1.0 + 1e-8;
        let d = rel_frobenius_diff(&a, &b);
        assert!(d > 0.0 && d < 1e-7);
    }
}
