//! Numeric invariant tripwires — the `sanitize` cargo feature.
//!
//! Each function asserts one algebraic contract the SlimCodeML pipeline
//! relies on (Woodhams et al. show how silently codon-model matrix
//! algebra can drift out of its valid class) and panics with a
//! `sanitize:`-prefixed message carrying the caller's context (branch,
//! ω class, pattern block). Every caller gates the call behind
//! `#[cfg(feature = "sanitize")]`, and this whole module only exists
//! under the feature, so a default build compiles to nothing — the
//! facade's `sanitize_identity` bit test pins that lnL bits are
//! identical with the feature on and off.
//!
//! Context is passed as a closure so the formatting cost is only paid on
//! failure... except that the checks themselves scan their inputs, which
//! is the point: `sanitize` trades throughput for early, located
//! detection of NaN/negativity/stochasticity violations.

use crate::vecops::NeumaierSum;
use crate::Mat;

/// Panic unless `x` is finite.
pub fn check_finite(what: &str, x: f64, ctx: impl FnOnce() -> String) {
    if !x.is_finite() {
        panic!("sanitize: {what} is {x} (not finite) in {}", ctx());
    }
}

/// Panic if `x` is NaN or +∞ (−∞ is tolerated: the log of a zero
/// likelihood is a well-defined degenerate value the optimizer rejects).
pub fn check_log_value(what: &str, x: f64, ctx: impl FnOnce() -> String) {
    if x.is_nan() || x == f64::INFINITY {
        panic!("sanitize: {what} is {x} in {}", ctx());
    }
}

/// Panic unless every entry is finite and `>= 0` (CPVs, scale factors,
/// frequencies).
pub fn check_finite_nonneg(what: &str, xs: &[f64], ctx: impl FnOnce() -> String) {
    for (i, &v) in xs.iter().enumerate() {
        if !v.is_finite() || v < 0.0 {
            panic!(
                "sanitize: {what}[{i}] = {v} (want finite, >= 0) in {}",
                ctx()
            );
        }
    }
}

/// Panic unless `q` is a valid CTMC generator: finite entries,
/// non-negative off-diagonal rates, and each row summing to ~0
/// (relative to the largest magnitude in the row).
pub fn check_generator_rows(q: &Mat, tol: f64, ctx: impl FnOnce() -> String) {
    let n = q.rows();
    for i in 0..n {
        let row = q.row(i);
        let mut sum = NeumaierSum::new();
        let mut scale = 1.0f64;
        for (j, &v) in row.iter().enumerate() {
            if !v.is_finite() {
                panic!("sanitize: Q[{i},{j}] = {v} (not finite) in {}", ctx());
            }
            if i != j && v < 0.0 {
                panic!(
                    "sanitize: off-diagonal rate Q[{i},{j}] = {v} < 0 in {}",
                    ctx()
                );
            }
            sum.add(v);
            scale = scale.max(v.abs());
        }
        let s = sum.total();
        if s.abs() > tol * scale {
            panic!(
                "sanitize: generator row {i} sums to {s:e} (tol {:e}) in {}",
                tol * scale,
                ctx()
            );
        }
    }
}

/// Panic unless `p` is row-stochastic: entries in `[-eps, 1 + eps]` and
/// rows summing to 1 within `row_tol`. An **all-zero row** is tolerated:
/// at extreme line-search parameters the spectral radius of `Q` explodes,
/// the numerically-computed stationary eigenvalue inherits an absolute
/// error proportional to that radius, and `e^{λt}` then underflows for
/// *every* mode — collapsing `P(t)` to exactly zero. The result is a
/// zero likelihood (lnL = −∞) that the optimizer rejects: a degenerate
/// trial point, not broken algebra.
pub fn check_row_stochastic(p: &Mat, eps: f64, row_tol: f64, ctx: impl FnOnce() -> String) {
    let n = p.rows();
    for i in 0..n {
        let mut sum = NeumaierSum::new();
        let mut max_abs = 0.0f64;
        for (j, &v) in p.row(i).iter().enumerate() {
            if !(-eps..=1.0 + eps).contains(&v) {
                panic!(
                    "sanitize: P[{i},{j}] = {v} outside [-{eps}, 1+{eps}] in {}",
                    ctx()
                );
            }
            sum.add(v);
            max_abs = max_abs.max(v.abs());
        }
        let s = sum.total();
        let zero_row = s.abs() <= row_tol && max_abs <= eps;
        if (s - 1.0).abs() > row_tol && !zero_row {
            panic!(
                "sanitize: P row {i} sums to {s} (|Δ| > {row_tol}) in {}",
                ctx()
            );
        }
    }
}

/// Panic unless `values` is a valid spectrum for a reversible
/// generator's symmetrization: all finite, none above `zero_tol`
/// (relative to the spectral radius), and **at least one** within
/// `zero_tol · max|λ|` of zero — the stationary mode; a spectrum with no
/// zero mode means the decomposition is broken.
///
/// The tolerance is *relative*: shared branch-site scaling can shrink a
/// whole class's Q by many orders of magnitude during an optimizer line
/// search, which compresses every eigenvalue toward zero without making
/// the chain any less valid. An all-zero spectrum (the scale underflowed
/// entirely; P(t) = I) is tolerated for the same reason.
///
/// Zero-mode *multiplicity* is deliberately not policed: at the ω → 0
/// boundary — which `build_rate_matrix` documents as well-defined — only
/// synonymous moves survive and the chain legitimately splits into ~21
/// amino-acid classes, each contributing a stationary mode. Reducibility
/// there is a property of degenerate parameters, not broken algebra.
pub fn check_generator_spectrum(values: &[f64], zero_tol: f64, ctx: impl FnOnce() -> String) {
    let mut scale = 0.0f64;
    for (i, &l) in values.iter().enumerate() {
        if !l.is_finite() {
            panic!(
                "sanitize: eigenvalue λ[{i}] = {l} (not finite) in {}",
                ctx()
            );
        }
        scale = scale.max(l.abs());
    }
    // check: allow(det-float-cmp) exact sentinel: a spectrum whose scale underflowed to literal zero means P(t) = I
    if scale == 0.0 {
        return;
    }
    let near = zero_tol * scale;
    let mut near_zero = 0usize;
    for (i, &l) in values.iter().enumerate() {
        if l > near {
            panic!(
                "sanitize: eigenvalue λ[{i}] = {l} > 0 (generator must be negative semidefinite) in {}",
                ctx()
            );
        }
        if l.abs() <= near {
            near_zero += 1;
        }
    }
    if near_zero == 0 {
        panic!(
            "sanitize: no eigenvalue within {near:e} of zero (the stationary mode is \
             missing: broken decomposition) in {}",
            ctx()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator_2x2() -> Mat {
        Mat::from_rows(&[&[-1.0, 1.0], &[2.0, -2.0]])
    }

    #[test]
    fn valid_inputs_pass() {
        check_finite("x", -1234.5, || unreachable!());
        check_log_value("lnL", f64::NEG_INFINITY, || unreachable!());
        check_finite_nonneg("cpv", &[0.0, 1.0, 0.5], || unreachable!());
        check_generator_rows(&generator_2x2(), 1e-12, || unreachable!());
        let p = Mat::from_rows(&[&[0.9, 0.1], &[0.2, 0.8]]);
        check_row_stochastic(&p, 1e-12, 1e-12, || unreachable!());
        check_generator_spectrum(&[-3.0, 0.0], 1e-10, || unreachable!());
    }

    #[test]
    fn nan_trips_with_context() {
        let err = std::panic::catch_unwind(|| {
            check_finite_nonneg("cpv", &[0.1, f64::NAN], || "node 3, block [0, 8)".into())
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("cpv[1]"), "{msg}");
        assert!(msg.contains("node 3, block [0, 8)"), "{msg}");
    }

    #[test]
    fn denormalized_generator_row_trips() {
        let mut q = generator_2x2();
        q[(0, 0)] = -0.5; // row 0 now sums to 0.5
        let err = std::panic::catch_unwind(|| check_generator_rows(&q, 1e-12, || "ctx".into()))
            .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("generator row 0"), "{msg}");
    }

    #[test]
    fn super_stochastic_entry_trips() {
        let p = Mat::from_rows(&[&[1.2, -0.2], &[0.0, 1.0]]);
        let err =
            std::panic::catch_unwind(|| check_row_stochastic(&p, 1e-9, 1e-9, || "ctx".into()))
                .unwrap_err();
        assert!(err.downcast_ref::<String>().unwrap().contains("P[0,0]"));
    }

    #[test]
    fn underflowed_zero_row_tolerated() {
        // e^{Λt} underflowed entirely: P collapsed to zero. Degenerate
        // (lnL = −∞, optimizer rejects) but not a sanitize failure.
        let p = Mat::from_rows(&[&[0.0, 0.0], &[0.2, 0.8]]);
        check_row_stochastic(&p, 1e-9, 1e-9, || unreachable!());
    }

    #[test]
    fn degenerate_spectrum_trips() {
        // No near-zero mode: the stationary eigenvector was lost.
        let err = std::panic::catch_unwind(|| {
            check_generator_spectrum(&[-3.0, -1.0], 1e-10, || "ctx".into())
        })
        .unwrap_err();
        assert!(err
            .downcast_ref::<String>()
            .unwrap()
            .contains("stationary mode is missing"));
        // A positive eigenvalue: not a generator at all.
        let err = std::panic::catch_unwind(|| {
            check_generator_spectrum(&[0.5, 0.0], 1e-10, || "ctx".into())
        })
        .unwrap_err();
        assert!(err.downcast_ref::<String>().unwrap().contains("λ[0]"));
        // Reducible limits (several zero modes, e.g. ω → 0) are legal.
        check_generator_spectrum(&[-1.0, -1e-14, 0.0], 1e-10, || unreachable!());
        // So is a fully underflowed scale (P(t) = I).
        check_generator_spectrum(&[0.0, 0.0], 1e-10, || unreachable!());
    }
}
