//! Cyclic Jacobi eigensolver for symmetric matrices.
//!
//! Slow but exceptionally robust and simple to verify; used as an
//! independent cross-check of the Householder/QL and bisection solvers in
//! tests and as a third [`crate::EigenMethod`].

use crate::{LinalgError, Mat, Result};

/// Maximum number of full sweeps before giving up.
const MAX_SWEEPS: usize = 64;

/// Diagonalize symmetric `a` by cyclic Jacobi rotations.
///
/// Returns `(eigenvalues ascending, eigenvector matrix V)` with `A = V Λ Vᵀ`
/// and eigenvector `j` in column `j`.
///
/// # Errors
/// [`LinalgError::NotSquare`] for rectangular input;
/// [`LinalgError::NoConvergence`] if the off-diagonal mass does not vanish
/// within 64 sweeps.
pub fn jacobi_eigen(a: &Mat) -> Result<(Vec<f64>, Mat)> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            op: "jacobi",
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Mat::identity(n);
    if n <= 1 {
        return Ok((m.diag(), v));
    }

    for _sweep in 0..MAX_SWEEPS {
        // Off-diagonal Frobenius mass.
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        let scale = crate::norms::frobenius(&m).max(f64::MIN_POSITIVE);
        // Rounding floors the achievable off-diagonal mass at ~n·ε·‖A‖.
        if off.sqrt() <= n as f64 * f64::EPSILON * scale {
            let mut d = m.diag();
            crate::ql::sort_eigenpairs(&mut d, &mut v);
            return Ok((d, v));
        }

        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= f64::EPSILON * scale {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Rotation angle from the standard stable formulas.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Update rows/columns p and q of the symmetric matrix.
                for k in 0..n {
                    if k != p && k != q {
                        let akp = m[(k, p)];
                        let akq = m[(k, q)];
                        let new_kp = c * akp - s * akq;
                        let new_kq = s * akp + c * akq;
                        m[(k, p)] = new_kp;
                        m[(p, k)] = new_kp;
                        m[(k, q)] = new_kq;
                        m[(q, k)] = new_kq;
                    }
                }
                m[(p, p)] = app - t * apq;
                m[(q, q)] = aqq + t * apq;
                m[(p, q)] = 0.0;
                m[(q, p)] = 0.0;

                // Accumulate rotation into the eigenvector matrix.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        op: "jacobi",
        iterations: MAX_SWEEPS,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Transpose};

    #[test]
    fn jacobi_2x2_known() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (d, v) = jacobi_eigen(&a).unwrap();
        assert!((d[0] - 1.0).abs() < 1e-12);
        assert!((d[1] - 3.0).abs() < 1e-12);
        let vl = v.mul_diag_right(&d);
        let rec = matmul(&vl, Transpose::No, &v, Transpose::Yes);
        assert!(rec.approx_eq(&a, 1e-12));
    }

    #[test]
    fn jacobi_reconstructs_random() {
        for n in [3usize, 8, 25] {
            let mut state = 3 * n as u64 + 11;
            let mut a = Mat::from_fn(n, n, |_, _| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            });
            a.symmetrize();
            let (d, v) = jacobi_eigen(&a).unwrap();
            let vl = v.mul_diag_right(&d);
            let rec = matmul(&vl, Transpose::No, &v, Transpose::Yes);
            assert!(rec.approx_eq(&a, 1e-10), "n={n}");
            let vtv = matmul(&v, Transpose::Yes, &v, Transpose::No);
            assert!(vtv.approx_eq(&Mat::identity(n), 1e-11), "n={n}");
        }
    }

    #[test]
    fn jacobi_diagonal_input() {
        let a = Mat::from_diag(&[5.0, -2.0, 1.0]);
        let (d, _) = jacobi_eigen(&a).unwrap();
        assert_eq!(d, vec![-2.0, 1.0, 5.0]);
    }

    #[test]
    fn jacobi_rejects_rectangular() {
        assert!(matches!(
            jacobi_eigen(&Mat::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
