//! LU factorization with partial pivoting.
//!
//! Used by tests (solving small systems, determinants) and available to
//! downstream crates; the likelihood hot path never factorizes.

use crate::{LinalgError, Mat, Result};

/// An LU factorization `P·A = L·U` with partial (row) pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Mat,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`), for determinants.
    perm_sign: f64,
}

impl Lu {
    /// Factorize a square matrix.
    ///
    /// # Errors
    /// [`LinalgError::NotSquare`] for rectangular input,
    /// [`LinalgError::Singular`] if a pivot underflows to zero.
    pub fn new(a: &Mat) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                op: "lu",
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Find pivot row.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best == 0.0 {
                return Err(LinalgError::Singular { op: "lu" });
            }
            if p != k {
                let (rp, rk) = lu.two_rows_mut(p, k);
                rp.swap_with_slice(rk);
                perm.swap(p, k);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= m * ukj;
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A·x = b`, returning `x`.
    ///
    /// # Panics
    /// Panics if `b.len()` differs from the matrix order.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.order();
        assert_eq!(b.len(), n, "Lu::solve: rhs length mismatch");
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&pi| b[pi]).collect();
        // Forward substitution with unit lower triangle.
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        // Backward substitution with upper triangle.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        x
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.order() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Inverse of the original matrix (column-by-column solves).
    pub fn inverse(&self) -> Mat {
        let n = self.order();
        let mut inv = Mat::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e);
            e[j] = 0.0;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Transpose};

    #[test]
    fn solve_known_system() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&[3.0, 5.0]);
        // 2x + y = 3, x + 3y = 5 -> x = 4/5, y = 7/5
        assert!((x[0] - 0.8).abs() < 1e-14);
        assert!((x[1] - 1.4).abs() < 1e-14);
    }

    #[test]
    fn det_and_inverse() {
        let a = Mat::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() - (-6.0)).abs() < 1e-12);
        let inv = lu.inverse();
        let prod = matmul(&a, Transpose::No, &inv, Transpose::No);
        assert!(prod.approx_eq(&Mat::identity(2), 1e-12));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-15);
        assert!((x[1] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn singular_detected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rectangular_rejected() {
        let a = Mat::zeros(2, 3);
        assert!(matches!(Lu::new(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn inverse_of_larger_random() {
        let mut state = 99u64;
        let a = Mat::from_fn(8, 8, |i, j| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            r + if i == j { 4.0 } else { 0.0 } // diagonally dominant
        });
        let lu = Lu::new(&a).unwrap();
        let inv = lu.inverse();
        let prod = matmul(&a, Transpose::No, &inv, Transpose::No);
        assert!(prod.approx_eq(&Mat::identity(8), 1e-10));
    }
}
