//! Implicit-shift QL iteration for symmetric tridiagonal eigenproblems.
//!
//! Second phase of the eigensolver pipeline (EISPACK `tql2` lineage; the
//! paper's LAPACK `dsyevr` falls back to "a QR/QL method" when MRRR is not
//! applicable, §III-A step 2). Eigenvectors are accumulated by applying the
//! rotations to the Householder transformation from [`crate::tridiag`].

use crate::{LinalgError, Mat, Result};

/// `sqrt(a² + b²)` without destructive underflow or overflow.
#[inline]
pub fn hypot2(a: f64, b: f64) -> f64 {
    let (aa, ab) = (a.abs(), b.abs());
    if aa > ab {
        let r = ab / aa;
        aa * (1.0 + r * r).sqrt()
    } else if ab > 0.0 {
        let r = aa / ab;
        ab * (1.0 + r * r).sqrt()
    } else {
        0.0
    }
}

/// Maximum QL iterations per eigenvalue before declaring failure.
const MAX_ITER: usize = 50;

/// Diagonalize a symmetric tridiagonal matrix in place.
///
/// On input: `d` is the diagonal, `e` the subdiagonal in `e[1..n]`
/// (as produced by [`crate::tridiag::tred2`]) and `z` an orthogonal matrix
/// (typically the Householder `Q`; pass identity to get tridiagonal
/// eigenvectors). On output `d` holds eigenvalues and column `j` of `z` the
/// corresponding eigenvector of the original dense matrix.
///
/// # Errors
/// [`LinalgError::NoConvergence`] if any eigenvalue needs more than 50
/// iterations (essentially impossible for well-scaled input).
pub fn tql2(d: &mut [f64], e: &mut [f64], z: &mut Mat) -> Result<()> {
    let n = d.len();
    assert_eq!(e.len(), n, "tql2: e length mismatch");
    assert!(z.rows() == n && z.cols() == n, "tql2: z must be n×n");
    if n <= 1 {
        return Ok(());
    }

    // Shift the subdiagonal convention: e[i] becomes the coupling between
    // rows i and i+1.
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Find a negligible subdiagonal element to split the problem.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_ITER {
                return Err(LinalgError::NoConvergence {
                    op: "tql2",
                    iterations: MAX_ITER,
                });
            }

            // Wilkinson-style implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = hypot2(g, 1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;

            let mut i = m; // loop i = m-1 down to l, using i as index+1 guard
            let mut underflow = false;
            while i > l {
                let im1 = i - 1;
                let mut f = s * e[im1];
                let b = c * e[im1];
                r = hypot2(f, g);
                e[i] = r;
                if r == 0.0 {
                    // Recover from underflow: deflate and retry.
                    d[i] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i] - p;
                r = (d[im1] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    f = z[(k, i)];
                    let zk = z[(k, im1)];
                    z[(k, i)] = s * zk + c * f;
                    z[(k, im1)] = c * zk - s * f;
                }
                i -= 1;
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Sort eigenpairs ascending by eigenvalue, permuting the columns of `z` to
/// match.
pub fn sort_eigenpairs(d: &mut [f64], z: &mut Mat) {
    let n = d.len();
    // Selection sort keeps column swaps O(n²) — negligible vs the O(n³)
    // diagonalization, and simple enough to be obviously correct.
    for i in 0..n {
        let mut kmin = i;
        for j in (i + 1)..n {
            if d[j] < d[kmin] {
                kmin = j;
            }
        }
        if kmin != i {
            d.swap(i, kmin);
            for r in 0..z.rows() {
                let tmp = z[(r, i)];
                z[(r, i)] = z[(r, kmin)];
                z[(r, kmin)] = tmp;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Transpose};
    use crate::tridiag::{tred2, tridiag_to_dense};

    #[test]
    fn hypot2_robust() {
        assert_eq!(hypot2(3.0, 4.0), 5.0);
        assert_eq!(hypot2(0.0, 0.0), 0.0);
        let big = 1e300;
        assert!((hypot2(big, big) - big * 2f64.sqrt()).abs() / big < 1e-14);
    }

    #[test]
    fn diagonalizes_2x2() {
        let mut d = vec![2.0, 2.0];
        let mut e = vec![0.0, 1.0]; // tred2 convention: coupling in e[1]
        let mut z = Mat::identity(2);
        tql2(&mut d, &mut e, &mut z).unwrap();
        sort_eigenpairs(&mut d, &mut z);
        assert!((d[0] - 1.0).abs() < 1e-12);
        assert!((d[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn full_pipeline_reconstructs_matrix() {
        for n in [2usize, 3, 5, 10, 61] {
            let mut state = n as u64 * 31 + 5;
            let mut a = Mat::from_fn(n, n, |_, _| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            });
            a.symmetrize();

            let tri = tred2(&a);
            let mut d = tri.d.clone();
            let mut e = tri.e.clone();
            let mut z = tri.q.clone();
            tql2(&mut d, &mut e, &mut z).unwrap();
            sort_eigenpairs(&mut d, &mut z);

            // orthogonality
            let ztz = matmul(&z, Transpose::Yes, &z, Transpose::No);
            assert!(
                ztz.approx_eq(&Mat::identity(n), 1e-9),
                "n={n}: Z not orthogonal"
            );
            // reconstruction A = Z Λ Zᵀ
            let zl = z.mul_diag_right(&d);
            let rec = matmul(&zl, Transpose::No, &z, Transpose::Yes);
            assert!(
                rec.approx_eq(&a, 1e-9),
                "n={n}: reconstruction failed, {}",
                rec.max_abs_diff(&a)
            );
            // ascending order
            for i in 1..n {
                assert!(d[i] >= d[i - 1]);
            }
        }
    }

    #[test]
    fn eigenvalues_of_known_tridiagonal() {
        // T = tridiag(e=1, d=2, e=1) of order n has eigenvalues
        // 2 - 2cos(kπ/(n+1)).
        let n = 8;
        let mut d = vec![2.0; n];
        let mut e = vec![1.0; n];
        e[0] = 0.0;
        let dense = tridiag_to_dense(&d, &e);
        let mut z = Mat::identity(n);
        tql2(&mut d, &mut e, &mut z).unwrap();
        sort_eigenpairs(&mut d, &mut z);
        for (k, &lam) in d.iter().enumerate() {
            let expect =
                2.0 - 2.0 * (std::f64::consts::PI * (k + 1) as f64 / (n as f64 + 1.0)).cos();
            assert!((lam - expect).abs() < 1e-10, "k={k}: {lam} vs {expect}");
        }
        // eigenvectors reconstruct the dense T
        let zl = z.mul_diag_right(&d);
        let rec = matmul(&zl, Transpose::No, &z, Transpose::Yes);
        assert!(rec.approx_eq(&dense, 1e-10));
    }

    #[test]
    fn handles_zero_matrix() {
        let mut d = vec![0.0; 4];
        let mut e = vec![0.0; 4];
        let mut z = Mat::identity(4);
        tql2(&mut d, &mut e, &mut z).unwrap();
        assert!(d.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn repeated_eigenvalues() {
        // Identity ⊕ reflection has eigenvalues {1,1,-1}: degenerate pair.
        let a = Mat::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
        let tri = tred2(&a);
        let mut d = tri.d.clone();
        let mut e = tri.e.clone();
        let mut z = tri.q.clone();
        tql2(&mut d, &mut e, &mut z).unwrap();
        sort_eigenpairs(&mut d, &mut z);
        assert!((d[0] + 1.0).abs() < 1e-12);
        assert!((d[1] - 1.0).abs() < 1e-12);
        assert!((d[2] - 1.0).abs() < 1e-12);
    }
}
