//! BLAS level-3 general matrix–matrix product.
//!
//! The paper's "rules of thumb" (§V-C) recommend bundling work into level-3
//! operations; this module provides the tuned `dgemm` stand-in used by the
//! Slim engine (and, through [`crate::naive`], a deliberately untuned
//! comparator used by the CodeML-style engine).

use crate::Mat;

/// Whether an operand participates transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// Cache-block size over the `k` dimension (rows of B touched per pass).
/// 64×64 f64 panel ≈ 32 KiB, sized to stay within L1/L2 for the panel pair.
const KC: usize = 64;
/// Cache-block size over the `i` dimension.
const MC: usize = 64;

/// General matrix multiply `C ← α·op(A)·op(B) + β·C`.
///
/// `op(X)` is `X` or `Xᵀ` per the corresponding [`Transpose`] flag. The
/// kernel is a cache-blocked `i-k-j` loop: the innermost loop runs over
/// contiguous rows of (possibly pre-transposed) `B` and `C` through the
/// dispatched SIMD row kernels (`j` indexes independent outputs, so
/// vector lanes never change the per-element operation order), streaming
/// memory in row-major order.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm(alpha: f64, a: &Mat, ta: Transpose, b: &Mat, tb: Transpose, beta: f64, c: &mut Mat) {
    // Materialize transposed operands. For the 61×61 codon matrices this
    // copy is ~30 KiB and negligible next to the O(n³) product; it keeps a
    // single highly-tuned NN kernel on the hot path.
    let at;
    let a_eff = match ta {
        Transpose::No => a,
        Transpose::Yes => {
            at = a.transpose();
            &at
        }
    };
    let bt;
    let b_eff = match tb {
        Transpose::No => b,
        Transpose::Yes => {
            bt = b.transpose();
            &bt
        }
    };
    gemm_nn(alpha, a_eff, b_eff, beta, c);
}

/// The no-transpose kernel behind [`gemm`].
// check: allow(panic-free-hot-path) shape contract asserted at entry; all loop indices bounded by rows()/cols() of the asserted shapes
fn gemm_nn(alpha: f64, a: &Mat, b: &Mat, beta: f64, c: &mut Mat) {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    assert_eq!(b.rows(), k, "gemm: inner dimensions differ");
    assert_eq!(c.rows(), m, "gemm: C rows mismatch");
    assert_eq!(c.cols(), n, "gemm: C cols mismatch");

    if beta != 1.0 {
        if beta == 0.0 {
            c.fill_zero();
        } else {
            c.scale(beta);
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    let (lda, ldb, ldc) = (a.stride(), b.stride(), c.stride());
    // When B and C share a row stride the inner j-loop runs over the full
    // (possibly lane-padded) width: no scalar tail, and pad columns stay
    // zero because their B inputs are zero. Logical outputs see the
    // identical per-element operation sequence either way.
    let jw = if ldb == ldc { ldc } else { n };
    let a_s = a.as_slice();
    let b_s = b.as_slice();
    let c_s = c.as_mut_slice();
    let be = crate::simd::active();

    let mut kk = 0;
    while kk < k {
        let k_end = (kk + KC).min(k);
        let mut ii = 0;
        while ii < m {
            let i_end = (ii + MC).min(m);
            for i in ii..i_end {
                let c_row = &mut c_s[i * ldc..i * ldc + jw];
                let a_row = &a_s[i * lda..i * lda + k];
                // Two-way unroll over p keeps two B-row streams live and
                // halves loop overhead.
                let mut p = kk;
                while p + 1 < k_end {
                    let aip0 = alpha * a_row[p];
                    let aip1 = alpha * a_row[p + 1];
                    let b_row0 = &b_s[p * ldb..p * ldb + jw];
                    let b_row1 = &b_s[(p + 1) * ldb..(p + 1) * ldb + jw];
                    crate::simd::fma_row2_with(be, c_row, aip0, b_row0, aip1, b_row1);
                    p += 2;
                }
                if p < k_end {
                    let aip = alpha * a_row[p];
                    let b_row = &b_s[p * ldb..p * ldb + jw];
                    crate::simd::fma_row_with(be, c_row, aip, b_row);
                }
            }
            ii = i_end;
        }
        kk = k_end;
    }
}

/// Convenience: allocate and return `op(A)·op(B)`.
pub fn matmul(a: &Mat, ta: Transpose, b: &Mat, tb: Transpose) -> Mat {
    let m = match ta {
        Transpose::No => a.rows(),
        Transpose::Yes => a.cols(),
    };
    let n = match tb {
        Transpose::No => b.cols(),
        Transpose::Yes => b.rows(),
    };
    let mut c = Mat::zeros(m, n);
    gemm(1.0, a, ta, b, tb, 0.0, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn rng_mat(rows: usize, cols: usize, seed: u64) -> Mat {
        // Small deterministic LCG; avoids a rand dependency here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Mat::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
    }

    #[test]
    fn gemm_matches_naive_square() {
        for n in [1, 2, 7, 61, 65] {
            let a = rng_mat(n, n, 1);
            let b = rng_mat(n, n, 2);
            let tuned = matmul(&a, Transpose::No, &b, Transpose::No);
            let reference = naive::matmul(&a, &b);
            assert!(tuned.approx_eq(&reference, 1e-10), "n = {n}");
        }
    }

    #[test]
    fn gemm_rectangular() {
        let a = rng_mat(5, 9, 3);
        let b = rng_mat(9, 4, 4);
        let tuned = matmul(&a, Transpose::No, &b, Transpose::No);
        let reference = naive::matmul(&a, &b);
        assert!(tuned.approx_eq(&reference, 1e-12));
    }

    #[test]
    fn gemm_transpose_flags() {
        let a = rng_mat(6, 3, 5);
        let b = rng_mat(6, 4, 6);
        // AᵀB
        let t1 = matmul(&a, Transpose::Yes, &b, Transpose::No);
        let r1 = naive::matmul(&a.transpose(), &b);
        assert!(t1.approx_eq(&r1, 1e-12));
        // BᵀA
        let t2 = matmul(&b, Transpose::Yes, &a, Transpose::No);
        let r2 = naive::matmul(&b.transpose(), &a);
        assert!(t2.approx_eq(&r2, 1e-12));
        // A·(Aᵀ) via flags
        let t3 = matmul(&a, Transpose::No, &a, Transpose::Yes);
        let r3 = naive::matmul(&a, &a.transpose());
        assert!(t3.approx_eq(&r3, 1e-12));
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = rng_mat(4, 4, 7);
        let b = rng_mat(4, 4, 8);
        let c0 = rng_mat(4, 4, 9);

        let mut c = c0.clone();
        gemm(2.0, &a, Transpose::No, &b, Transpose::No, 0.5, &mut c);

        let mut expect = naive::matmul(&a, &b);
        expect.scale(2.0);
        for i in 0..4 {
            for j in 0..4 {
                expect[(i, j)] += 0.5 * c0[(i, j)];
            }
        }
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn gemm_alpha_zero_only_scales_c() {
        let a = rng_mat(3, 3, 10);
        let b = rng_mat(3, 3, 11);
        let mut c = Mat::filled(3, 3, 2.0);
        gemm(0.0, &a, Transpose::No, &b, Transpose::No, 3.0, &mut c);
        assert!(c.approx_eq(&Mat::filled(3, 3, 6.0), 1e-15));
    }

    #[test]
    fn identity_is_neutral() {
        let a = rng_mat(8, 8, 12);
        let i = Mat::identity(8);
        assert!(matmul(&a, Transpose::No, &i, Transpose::No).approx_eq(&a, 1e-15));
        assert!(matmul(&i, Transpose::No, &a, Transpose::No).approx_eq(&a, 1e-15));
    }

    #[test]
    fn block_boundaries_exercised() {
        // Dimensions straddling KC/MC test the blocking edges.
        let n = KC + 3;
        let a = rng_mat(n, n, 13);
        let b = rng_mat(n, n, 14);
        let tuned = matmul(&a, Transpose::No, &b, Transpose::No);
        let reference = naive::matmul(&a, &b);
        assert!(tuned.approx_eq(&reference, 1e-9));
    }
}
