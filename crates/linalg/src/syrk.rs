//! Symmetric rank-k update — the paper's headline kernel.
//!
//! Eq. 10 of the paper replaces the general product `Z = Ỹ·Xᵀ` (Eq. 9,
//! ≈ 2n³ flops via `dgemm`) with `Z = Y·Yᵀ` (≈ n³ flops via `dsyrk`),
//! "saving about half of the flops" when reconstructing the matrix
//! exponential from the symmetric eigendecomposition.

use crate::simd;
use crate::Mat;

/// Symmetric rank-k update `C ← α·A·Aᵀ + β·C` (`dsyrk` equivalent,
/// full-storage output).
///
/// Only the lower triangle (including diagonal) is computed — ~n·k·(n+1)/2
/// multiply-adds — and the strict upper triangle is mirrored afterwards, so
/// arithmetic cost is half of a general product. In row-major storage each
/// dot product runs over two contiguous rows of `A`, which streams
/// perfectly. Within a row of `C`, the `j` outputs are computed in pairs
/// through the dispatched two-output dot kernel: each dot still
/// accumulates in the canonical scalar order (bit-identical on every
/// backend); pairing only doubles the number of independent FP chains.
///
/// # Panics
/// Panics if `C` is not square of order `A.rows()`.
// check: allow(panic-free-hot-path) square-shape assert is the documented contract; i,j,l bounded by n and a.cols()
pub fn syrk(alpha: f64, a: &Mat, beta: f64, c: &mut Mat) {
    let n = a.rows();
    assert!(
        c.is_square() && c.rows() == n,
        "syrk: C must be n×n with n = A.rows()"
    );

    let be = simd::active();
    for i in 0..n {
        let a_i = a.row(i);
        let mut j = 0;
        while j < i {
            let (d0, d1) = simd::dot2_with(be, a.row(j), a.row(j + 1), a_i);
            let s0 = alpha * d0;
            let cij = &mut c[(i, j)];
            *cij = s0 + beta * *cij;
            let s1 = alpha * d1;
            let cij = &mut c[(i, j + 1)];
            *cij = s1 + beta * *cij;
            j += 2;
        }
        if j <= i {
            let s = alpha * simd::dot_with(be, a_i, a.row(j));
            let cij = &mut c[(i, j)];
            *cij = s + beta * *cij;
        }
    }
    // Mirror the lower triangle into the upper.
    for i in 0..n {
        for j in (i + 1)..n {
            c[(i, j)] = c[(j, i)];
        }
    }
}

/// Convenience: allocate and return `A·Aᵀ`.
pub fn aat(a: &Mat) -> Mat {
    let mut c = Mat::zeros(a.rows(), a.rows());
    syrk(1.0, a, 0.0, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Transpose};

    fn rng_mat(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Mat::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
    }

    #[test]
    fn syrk_matches_gemm_aat() {
        for (n, k) in [(1, 1), (3, 5), (61, 61), (17, 4)] {
            let a = rng_mat(n, k, n as u64);
            let via_syrk = aat(&a);
            let via_gemm = matmul(&a, Transpose::No, &a, Transpose::Yes);
            assert!(via_syrk.approx_eq(&via_gemm, 1e-12), "n={n} k={k}");
        }
    }

    #[test]
    fn syrk_output_is_symmetric() {
        let a = rng_mat(10, 7, 42);
        let c = aat(&a);
        assert_eq!(c.asymmetry(), 0.0); // mirrored exactly, not recomputed
    }

    #[test]
    fn syrk_alpha_beta() {
        let a = rng_mat(4, 4, 3);
        let c0 = {
            // beta path needs a symmetric C to stay meaningful
            let m = rng_mat(4, 4, 9);
            let mut s = m.clone();
            s.symmetrize();
            s
        };
        let mut c = c0.clone();
        syrk(2.0, &a, 0.5, &mut c);
        let mut expect = matmul(&a, Transpose::No, &a, Transpose::Yes);
        expect.scale(2.0);
        for i in 0..4 {
            for j in 0..4 {
                expect[(i, j)] += 0.5 * c0[(i, j)];
            }
        }
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn syrk_positive_semidefinite_diagonal() {
        // Diagonal of A·Aᵀ is a sum of squares — must be non-negative.
        let a = rng_mat(9, 5, 77);
        let c = aat(&a);
        for i in 0..9 {
            assert!(c[(i, i)] >= 0.0);
        }
    }
}
