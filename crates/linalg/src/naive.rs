//! Deliberately untuned "textbook" kernels.
//!
//! These stand in for CodeML v4.4c's hand-rolled C loops: the paper's
//! baseline. They are *correct* but ignore every performance rule the paper
//! recommends (§V-C): the inner product in [`matmul`] strides down a column
//! of `B` (cache-hostile in row-major storage), nothing is blocked or
//! unrolled, and no symmetry is exploited. The CodeML-style likelihood
//! engine routes all of its linear algebra through this module so that the
//! CodeML-vs-SlimCodeML comparison measures exactly the optimizations the
//! paper describes.

use crate::Mat;

/// Textbook `i-j-k` matrix product `C = A·B` (≈ 2·m·n·k flops, strided
/// access to `B`).
pub fn matmul(a: &Mat, b: &Mat) -> Mat {
    assert_eq!(a.cols(), b.rows(), "naive::matmul: inner dimensions differ");
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    let mut c = Mat::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for p in 0..k {
                s += a[(i, p)] * b[(p, j)];
            }
            c[(i, j)] = s;
        }
    }
    c
}

/// Textbook matrix–transpose product `C = A·Bᵀ` computed by materializing
/// nothing and striding as CodeML's `matby`-style loops do.
pub fn matmul_bt(a: &Mat, b: &Mat) -> Mat {
    assert_eq!(
        a.cols(),
        b.cols(),
        "naive::matmul_bt: inner dimensions differ"
    );
    let m = a.rows();
    let k = a.cols();
    let n = b.rows();
    let mut c = Mat::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for p in 0..k {
                s += a[(i, p)] * b[(j, p)];
            }
            c[(i, j)] = s;
        }
    }
    c
}

/// Textbook matrix–vector product `y = A·x` with no unrolling.
// check: allow(panic-free-hot-path) shape asserts are the documented contract; indices bounded by the asserted dims
pub fn matvec(a: &Mat, x: &[f64], y: &mut [f64]) {
    assert_eq!(a.cols(), x.len(), "naive::matvec: dimension mismatch");
    assert_eq!(a.rows(), y.len(), "naive::matvec: dimension mismatch");
    for i in 0..a.rows() {
        let mut s = 0.0;
        for j in 0..a.cols() {
            s += a[(i, j)] * x[j];
        }
        y[i] = s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_bt_equals_matmul_of_transpose() {
        let a = Mat::from_fn(3, 4, |i, j| (i + 2 * j) as f64);
        let b = Mat::from_fn(5, 4, |i, j| (3 * i + j) as f64);
        assert_eq!(matmul_bt(&a, &b), matmul(&a, &b.transpose()));
    }

    #[test]
    fn matvec_identity() {
        let a = Mat::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 4];
        matvec(&a, &x, &mut y);
        assert_eq!(y, x);
    }
}
