//! AVX2 kernels (4 × f64 lanes).
//!
//! Bit-identity with [`super::scalar`] holds because:
//!
//! * Reductions keep one vector accumulator whose lane `k` is exactly the
//!   scalar partial sum `s_k`, and the horizontal combine reproduces the
//!   scalar tree `(s0+s1)+(s2+s3)` (two `hadd`s), followed by the same
//!   scalar tail loop.
//! * Output-parallel loops perform the per-element operations in the same
//!   order and association as the scalar code — vector `mul`/`add` are
//!   lane-wise IEEE-754 double ops with identical rounding.
//! * **No FMA instructions**: a fused multiply-add rounds once where the
//!   scalar code rounds twice, so every product is a separate
//!   `_mm256_mul_pd` followed by `_mm256_add_pd`.
//!
//! Every function here requires AVX2; the dispatcher only selects this
//! module after `is_x86_feature_detected!("avx2")` succeeds.

use std::arch::x86_64::{
    _mm256_add_pd, _mm256_castpd256_pd128, _mm256_extractf128_pd, _mm256_loadu_pd, _mm256_mul_pd,
    _mm256_set1_pd, _mm256_setzero_pd, _mm256_storeu_pd, _mm_cvtsd_f64, _mm_hadd_pd,
};

/// Dot product, bit-identical to the canonical scalar order.
// SAFETY: callers must have AVX2 available; the dispatcher only selects
// this backend after `is_x86_feature_detected!("avx2")` succeeds.
#[target_feature(enable = "avx2")]
pub unsafe fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let chunks = n / 4;
    // SAFETY: every `loadu` below reads 4 f64s starting at offset `4k`
    // with `4k + 3 < 4*chunks <= n <= min(x.len(), y.len())`; unaligned
    // loads carry no alignment requirement.
    unsafe {
        let mut acc = _mm256_setzero_pd();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        for k in 0..chunks {
            let i = 4 * k;
            let vx = _mm256_loadu_pd(xp.add(i));
            let vy = _mm256_loadu_pd(yp.add(i));
            // Lane k accumulates exactly the scalar partial sum s_k.
            acc = _mm256_add_pd(acc, _mm256_mul_pd(vx, vy));
        }
        let lo = _mm256_castpd256_pd128(acc); // [s0, s1]
        let hi = _mm256_extractf128_pd::<1>(acc); // [s2, s3]
        let pair = _mm_hadd_pd(lo, hi); // [s0+s1, s2+s3]
        let mut s = _mm_cvtsd_f64(_mm_hadd_pd(pair, pair)); // (s0+s1)+(s2+s3)
        for i in 4 * chunks..n {
            s += x[i] * y[i];
        }
        s
    }
}

/// Two dot products against a shared `y`; each output is bit-identical to
/// [`dot`]. Two independent accumulator chains double the throughput of
/// the latency-bound single-accumulator loop.
// SAFETY: callers must have AVX2 available; the dispatcher only selects
// this backend after `is_x86_feature_detected!("avx2")` succeeds.
#[target_feature(enable = "avx2")]
pub unsafe fn dot2(x0: &[f64], x1: &[f64], y: &[f64]) -> (f64, f64) {
    debug_assert_eq!(x0.len(), y.len());
    debug_assert_eq!(x1.len(), y.len());
    let n = x0.len().min(x1.len()).min(y.len());
    let chunks = n / 4;
    // SAFETY: loads read 4 f64s at offset 4k, in bounds for all three
    // slices by the `min` above; unaligned loads need no alignment.
    unsafe {
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let p0 = x0.as_ptr();
        let p1 = x1.as_ptr();
        let yp = y.as_ptr();
        for k in 0..chunks {
            let i = 4 * k;
            let vy = _mm256_loadu_pd(yp.add(i));
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(_mm256_loadu_pd(p0.add(i)), vy));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_loadu_pd(p1.add(i)), vy));
        }
        let lo0 = _mm256_castpd256_pd128(acc0);
        let hi0 = _mm256_extractf128_pd::<1>(acc0);
        let pair0 = _mm_hadd_pd(lo0, hi0);
        let mut s0 = _mm_cvtsd_f64(_mm_hadd_pd(pair0, pair0));
        let lo1 = _mm256_castpd256_pd128(acc1);
        let hi1 = _mm256_extractf128_pd::<1>(acc1);
        let pair1 = _mm_hadd_pd(lo1, hi1);
        let mut s1 = _mm_cvtsd_f64(_mm_hadd_pd(pair1, pair1));
        for i in 4 * chunks..n {
            s0 += x0[i] * y[i];
            s1 += x1[i] * y[i];
        }
        (s0, s1)
    }
}

/// `c[j] += a · b[j]` across independent outputs.
// SAFETY: callers must have AVX2 available; the dispatcher only selects
// this backend after `is_x86_feature_detected!("avx2")` succeeds.
#[target_feature(enable = "avx2")]
pub unsafe fn fma_row(c: &mut [f64], a: f64, b: &[f64]) {
    debug_assert_eq!(c.len(), b.len());
    let n = c.len().min(b.len());
    let chunks = n / 4;
    // SAFETY: loads/stores touch 4 f64s at offset 4k < n for both slices;
    // `c` and `b` cannot alias (`&mut` vs `&`); unaligned ops.
    unsafe {
        let va = _mm256_set1_pd(a);
        let cp = c.as_mut_ptr();
        let bp = b.as_ptr();
        for k in 0..chunks {
            let i = 4 * k;
            let vb = _mm256_loadu_pd(bp.add(i));
            let vc = _mm256_loadu_pd(cp.add(i));
            // c[j] + (a·b[j]): same association as the scalar kernel.
            _mm256_storeu_pd(cp.add(i), _mm256_add_pd(vc, _mm256_mul_pd(va, vb)));
        }
    }
    for i in 4 * chunks..n {
        c[i] += a * b[i];
    }
}

/// `c[j] += a0·b0[j] + a1·b1[j]` — the 2-way-unrolled gemm inner loop.
// SAFETY: callers must have AVX2 available; the dispatcher only selects
// this backend after `is_x86_feature_detected!("avx2")` succeeds.
#[target_feature(enable = "avx2")]
pub unsafe fn fma_row2(c: &mut [f64], a0: f64, b0: &[f64], a1: f64, b1: &[f64]) {
    debug_assert_eq!(c.len(), b0.len());
    debug_assert_eq!(c.len(), b1.len());
    let n = c.len().min(b0.len()).min(b1.len());
    let chunks = n / 4;
    // SAFETY: loads/stores touch 4 f64s at offset 4k < n, in bounds for
    // all three slices; `c` cannot alias `b0`/`b1`; unaligned ops.
    unsafe {
        let va0 = _mm256_set1_pd(a0);
        let va1 = _mm256_set1_pd(a1);
        let cp = c.as_mut_ptr();
        let p0 = b0.as_ptr();
        let p1 = b1.as_ptr();
        for k in 0..chunks {
            let i = 4 * k;
            let t0 = _mm256_mul_pd(va0, _mm256_loadu_pd(p0.add(i)));
            let t1 = _mm256_mul_pd(va1, _mm256_loadu_pd(p1.add(i)));
            let vc = _mm256_loadu_pd(cp.add(i));
            // c[j] + ((a0·b0[j]) + (a1·b1[j])): scalar association.
            _mm256_storeu_pd(cp.add(i), _mm256_add_pd(vc, _mm256_add_pd(t0, t1)));
        }
    }
    for i in 4 * chunks..n {
        c[i] += a0 * b0[i] + a1 * b1[i];
    }
}

/// `y[j] *= x[j]`.
// SAFETY: callers must have AVX2 available; the dispatcher only selects
// this backend after `is_x86_feature_detected!("avx2")` succeeds.
#[target_feature(enable = "avx2")]
pub unsafe fn mul_row(y: &mut [f64], x: &[f64]) {
    debug_assert_eq!(y.len(), x.len());
    let n = y.len().min(x.len());
    let chunks = n / 4;
    // SAFETY: loads/stores touch 4 f64s at offset 4k < n for both slices;
    // no aliasing (`&mut` vs `&`); unaligned ops.
    unsafe {
        let yp = y.as_mut_ptr();
        let xp = x.as_ptr();
        for k in 0..chunks {
            let i = 4 * k;
            let vy = _mm256_loadu_pd(yp.add(i));
            let vx = _mm256_loadu_pd(xp.add(i));
            _mm256_storeu_pd(yp.add(i), _mm256_mul_pd(vy, vx));
        }
    }
    for i in 4 * chunks..n {
        y[i] *= x[i];
    }
}

/// `z[j] = x[j] · y[j]`.
// SAFETY: callers must have AVX2 available; the dispatcher only selects
// this backend after `is_x86_feature_detected!("avx2")` succeeds.
#[target_feature(enable = "avx2")]
pub unsafe fn mul_into(x: &[f64], y: &[f64], z: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), z.len());
    let n = x.len().min(y.len()).min(z.len());
    let chunks = n / 4;
    // SAFETY: loads/stores touch 4 f64s at offset 4k < n for all three
    // slices; `z` cannot alias `x`/`y`; unaligned ops.
    unsafe {
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let zp = z.as_mut_ptr();
        for k in 0..chunks {
            let i = 4 * k;
            let vx = _mm256_loadu_pd(xp.add(i));
            let vy = _mm256_loadu_pd(yp.add(i));
            _mm256_storeu_pd(zp.add(i), _mm256_mul_pd(vx, vy));
        }
    }
    for i in 4 * chunks..n {
        z[i] = x[i] * y[i];
    }
}

/// `x[j] *= alpha`.
// SAFETY: callers must have AVX2 available; the dispatcher only selects
// this backend after `is_x86_feature_detected!("avx2")` succeeds.
#[target_feature(enable = "avx2")]
pub unsafe fn scale_row(x: &mut [f64], alpha: f64) {
    let n = x.len();
    let chunks = n / 4;
    // SAFETY: loads/stores touch 4 f64s at offset 4k < n; unaligned ops.
    unsafe {
        let va = _mm256_set1_pd(alpha);
        let xp = x.as_mut_ptr();
        for k in 0..chunks {
            let i = 4 * k;
            let vx = _mm256_loadu_pd(xp.add(i));
            _mm256_storeu_pd(xp.add(i), _mm256_mul_pd(vx, va));
        }
    }
    for i in 4 * chunks..n {
        x[i] *= alpha;
    }
}
