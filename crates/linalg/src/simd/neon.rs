//! NEON kernels (2 × f64 lanes) for aarch64.
//!
//! Same determinism contract as the AVX2 module: the scalar dot's four
//! partial sums map onto two 2-lane accumulators `[s0, s1]` / `[s2, s3]`
//! and the horizontal combine reproduces `(s0+s1)+(s2+s3)` exactly; all
//! output-parallel loops keep the scalar per-element operation order, and
//! no fused multiply-add instructions are used (`vfmaq_f64` rounds once,
//! the scalar code rounds twice).
//!
//! NEON is architecturally mandatory on aarch64, so dispatch to this
//! module is always valid there.

use std::arch::aarch64::{vaddq_f64, vdupq_n_f64, vgetq_lane_f64, vld1q_f64, vmulq_f64, vst1q_f64};

/// Dot product, bit-identical to the canonical scalar order.
// SAFETY: callers need NEON, which is architecturally mandatory on
// aarch64 — the only target this module compiles for.
#[target_feature(enable = "neon")]
pub unsafe fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let chunks = n / 4;
    // SAFETY: every load reads 2 f64s at offsets 4k / 4k+2 with
    // 4k + 3 < n ≤ min(x.len(), y.len()).
    unsafe {
        let mut acc01 = vdupq_n_f64(0.0); // [s0, s1]
        let mut acc23 = vdupq_n_f64(0.0); // [s2, s3]
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        for k in 0..chunks {
            let i = 4 * k;
            acc01 = vaddq_f64(acc01, vmulq_f64(vld1q_f64(xp.add(i)), vld1q_f64(yp.add(i))));
            acc23 = vaddq_f64(
                acc23,
                vmulq_f64(vld1q_f64(xp.add(i + 2)), vld1q_f64(yp.add(i + 2))),
            );
        }
        let s01 = vgetq_lane_f64::<0>(acc01) + vgetq_lane_f64::<1>(acc01);
        let s23 = vgetq_lane_f64::<0>(acc23) + vgetq_lane_f64::<1>(acc23);
        let mut s = s01 + s23; // (s0+s1)+(s2+s3)
        for i in 4 * chunks..n {
            s += x[i] * y[i];
        }
        s
    }
}

/// Two dot products against a shared `y`; each bit-identical to [`dot`].
// SAFETY: callers need NEON, which is architecturally mandatory on
// aarch64 — the only target this module compiles for.
#[target_feature(enable = "neon")]
pub unsafe fn dot2(x0: &[f64], x1: &[f64], y: &[f64]) -> (f64, f64) {
    // SAFETY: delegates to `dot`, whose bounds contract covers each call.
    unsafe { (dot(x0, y), dot(x1, y)) }
}

/// `c[j] += a · b[j]`.
// SAFETY: callers need NEON, which is architecturally mandatory on
// aarch64 — the only target this module compiles for.
#[target_feature(enable = "neon")]
pub unsafe fn fma_row(c: &mut [f64], a: f64, b: &[f64]) {
    debug_assert_eq!(c.len(), b.len());
    let n = c.len().min(b.len());
    let pairs = n / 2;
    // SAFETY: loads/stores touch 2 f64s at offset 2k < n for both slices;
    // `c` and `b` cannot alias (`&mut` vs `&`).
    unsafe {
        let va = vdupq_n_f64(a);
        let cp = c.as_mut_ptr();
        let bp = b.as_ptr();
        for k in 0..pairs {
            let i = 2 * k;
            let t = vmulq_f64(va, vld1q_f64(bp.add(i)));
            vst1q_f64(cp.add(i), vaddq_f64(vld1q_f64(cp.add(i)), t));
        }
    }
    for i in 2 * pairs..n {
        c[i] += a * b[i];
    }
}

/// `c[j] += a0·b0[j] + a1·b1[j]`.
// SAFETY: callers need NEON, which is architecturally mandatory on
// aarch64 — the only target this module compiles for.
#[target_feature(enable = "neon")]
pub unsafe fn fma_row2(c: &mut [f64], a0: f64, b0: &[f64], a1: f64, b1: &[f64]) {
    debug_assert_eq!(c.len(), b0.len());
    debug_assert_eq!(c.len(), b1.len());
    let n = c.len().min(b0.len()).min(b1.len());
    let pairs = n / 2;
    // SAFETY: loads/stores touch 2 f64s at offset 2k < n for all three
    // slices; `c` cannot alias `b0`/`b1`.
    unsafe {
        let va0 = vdupq_n_f64(a0);
        let va1 = vdupq_n_f64(a1);
        let cp = c.as_mut_ptr();
        let p0 = b0.as_ptr();
        let p1 = b1.as_ptr();
        for k in 0..pairs {
            let i = 2 * k;
            let t0 = vmulq_f64(va0, vld1q_f64(p0.add(i)));
            let t1 = vmulq_f64(va1, vld1q_f64(p1.add(i)));
            vst1q_f64(
                cp.add(i),
                vaddq_f64(vld1q_f64(cp.add(i)), vaddq_f64(t0, t1)),
            );
        }
    }
    for i in 2 * pairs..n {
        c[i] += a0 * b0[i] + a1 * b1[i];
    }
}

/// `y[j] *= x[j]`.
// SAFETY: callers need NEON, which is architecturally mandatory on
// aarch64 — the only target this module compiles for.
#[target_feature(enable = "neon")]
pub unsafe fn mul_row(y: &mut [f64], x: &[f64]) {
    debug_assert_eq!(y.len(), x.len());
    let n = y.len().min(x.len());
    let pairs = n / 2;
    // SAFETY: loads/stores touch 2 f64s at offset 2k < n for both slices;
    // no aliasing.
    unsafe {
        let yp = y.as_mut_ptr();
        let xp = x.as_ptr();
        for k in 0..pairs {
            let i = 2 * k;
            vst1q_f64(
                yp.add(i),
                vmulq_f64(vld1q_f64(yp.add(i)), vld1q_f64(xp.add(i))),
            );
        }
    }
    for i in 2 * pairs..n {
        y[i] *= x[i];
    }
}

/// `z[j] = x[j] · y[j]`.
// SAFETY: callers need NEON, which is architecturally mandatory on
// aarch64 — the only target this module compiles for.
#[target_feature(enable = "neon")]
pub unsafe fn mul_into(x: &[f64], y: &[f64], z: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), z.len());
    let n = x.len().min(y.len()).min(z.len());
    let pairs = n / 2;
    // SAFETY: loads/stores touch 2 f64s at offset 2k < n for all three
    // slices; `z` cannot alias `x`/`y`.
    unsafe {
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let zp = z.as_mut_ptr();
        for k in 0..pairs {
            let i = 2 * k;
            vst1q_f64(
                zp.add(i),
                vmulq_f64(vld1q_f64(xp.add(i)), vld1q_f64(yp.add(i))),
            );
        }
    }
    for i in 2 * pairs..n {
        z[i] = x[i] * y[i];
    }
}

/// `x[j] *= alpha`.
// SAFETY: callers need NEON, which is architecturally mandatory on
// aarch64 — the only target this module compiles for.
#[target_feature(enable = "neon")]
pub unsafe fn scale_row(x: &mut [f64], alpha: f64) {
    let n = x.len();
    let pairs = n / 2;
    // SAFETY: loads/stores touch 2 f64s at offset 2k < n.
    unsafe {
        let va = vdupq_n_f64(alpha);
        let xp = x.as_mut_ptr();
        for k in 0..pairs {
            let i = 2 * k;
            vst1q_f64(xp.add(i), vmulq_f64(vld1q_f64(xp.add(i)), va));
        }
    }
    for i in 2 * pairs..n {
        x[i] *= alpha;
    }
}
