//! Portable scalar kernels — the canonical operation order.
//!
//! Every vector backend in this module tree must reproduce these loops
//! bit-for-bit (see the module docs for the contract). The scalar `dot`
//! here is deliberately identical to [`crate::vecops::dot`]: four
//! interleaved accumulators combined as `(s0+s1)+(s2+s3)` plus a plain
//! running-sum tail.

/// Dot product in the canonical 4-accumulator order.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for k in 0..chunks {
        let i = 4 * k;
        s0 += x[i] * y[i];
        s1 += x[i + 1] * y[i + 1];
        s2 += x[i + 2] * y[i + 2];
        s3 += x[i + 3] * y[i + 3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for i in 4 * chunks..n {
        s += x[i] * y[i];
    }
    s
}

/// Two dots against a shared right-hand side; each output accumulates in
/// exactly the order of [`dot`], so `dot2(x0, x1, y) == (dot(x0, y),
/// dot(x1, y))` bit-for-bit. The interleaving exists only so wide backends
/// can keep two independent accumulator chains in flight.
#[inline]
pub fn dot2(x0: &[f64], x1: &[f64], y: &[f64]) -> (f64, f64) {
    (dot(x0, y), dot(x1, y))
}

/// `c[j] += a · b[j]`.
#[inline]
pub fn fma_row(c: &mut [f64], a: f64, b: &[f64]) {
    debug_assert_eq!(c.len(), b.len());
    for (cj, bj) in c.iter_mut().zip(b) {
        *cj += a * bj;
    }
}

/// `c[j] += a0·b0[j] + a1·b1[j]` — note the fixed association: the two
/// products are added to each other first, then into `c`.
#[inline]
pub fn fma_row2(c: &mut [f64], a0: f64, b0: &[f64], a1: f64, b1: &[f64]) {
    debug_assert_eq!(c.len(), b0.len());
    debug_assert_eq!(c.len(), b1.len());
    for ((cj, b0j), b1j) in c.iter_mut().zip(b0).zip(b1) {
        *cj += a0 * b0j + a1 * b1j;
    }
}

/// `y[j] *= x[j]`.
#[inline]
pub fn mul_row(y: &mut [f64], x: &[f64]) {
    debug_assert_eq!(y.len(), x.len());
    for (yj, xj) in y.iter_mut().zip(x) {
        *yj *= xj;
    }
}

/// `z[j] = x[j] · y[j]`.
#[inline]
pub fn mul_into(x: &[f64], y: &[f64], z: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), z.len());
    for ((zj, xj), yj) in z.iter_mut().zip(x).zip(y) {
        *zj = xj * yj;
    }
}

/// `x[j] *= alpha`.
#[inline]
pub fn scale_row(x: &mut [f64], alpha: f64) {
    for v in x {
        *v *= alpha;
    }
}
