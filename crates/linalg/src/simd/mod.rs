//! Explicit SIMD microkernels with runtime dispatch.
//!
//! The paper attributes SlimCodeML's wins to dense-kernel reorganization;
//! this module takes the remaining hardware headroom the ROADMAP flags
//! ("SIMD kernels"): hand-written AVX2 (and NEON) inner loops for `gemm`,
//! `gemv`, `symv`, `syrk` and the vecops, selected at runtime behind
//! [`is_x86_feature_detected!`], with a portable scalar fallback.
//!
//! ## The determinism contract: vectorize outputs, never reductions
//!
//! Every kernel here is **bit-identical** across backends, which is what
//! lets the golden snapshots, the thread-determinism layer, and the
//! `sanitize_identity` bit-pins pass with dispatch forced either way:
//!
//! * **Independent outputs** (the `j`/column dimension of `C` in `gemm`,
//!   distinct CPV sites, the `y[j]` updates of `symv`) are computed one
//!   output per lane. Each output element sees exactly the scalar
//!   sequence of operations, so lanes change nothing.
//! * **Reductions** (dot products) are *never* re-associated across the
//!   reduction dimension. The scalar [`dot`] accumulates into four fixed
//!   interleaved partial sums combined as `(s0+s1)+(s2+s3)`; the AVX2
//!   kernel maps those four accumulators onto the four lanes of one
//!   vector register and performs the identical combine tree, so every
//!   intermediate rounding is reproduced bit-for-bit. NEON emulates the
//!   same layout with two 2-lane registers.
//! * **No FMA.** Fused multiply-add rounds once where `mul` + `add`
//!   round twice; the vector kernels therefore use separate multiply and
//!   add instructions even on FMA-capable hosts.
//!
//! ## Dispatch
//!
//! The active backend resolves as: thread-scoped override (set by
//! [`with_forced`], used by the engine's `EngineConfig::simd` knob and by
//! the bit-identity tests) → the `SLIMCODEML_SIMD` environment variable
//! (`auto` | `avx2` | `neon` | `scalar`) → CPU feature detection. Forcing
//! a backend the host cannot run falls back to scalar instead of
//! faulting.

use std::cell::Cell;
use std::sync::OnceLock;

mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;

#[cfg(target_arch = "aarch64")]
mod neon;

/// Lane width (in `f64`s) of the widest vector unit this module targets.
/// [`crate::Mat::zeros_padded`] pads row strides to a multiple of this, so
/// a 61-wide codon row occupies 64 slots and the `j`-loops of the level-3
/// kernels run tail-free.
pub const LANE: usize = 4;

/// A resolved, runnable kernel backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdBackend {
    /// Portable scalar kernels — the reference order.
    Scalar,
    /// 256-bit AVX2 kernels (4 × f64 lanes), x86-64 only.
    Avx2,
    /// 128-bit NEON kernels (2 × f64 lanes), aarch64 only.
    Neon,
}

impl SimdBackend {
    /// How many `f64` elements one vector register of this backend holds.
    pub fn lanes(self) -> usize {
        match self {
            SimdBackend::Scalar => 1,
            SimdBackend::Avx2 => 4,
            SimdBackend::Neon => 2,
        }
    }

    /// Lower-case name, as accepted by `SLIMCODEML_SIMD`.
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Scalar => "scalar",
            SimdBackend::Avx2 => "avx2",
            SimdBackend::Neon => "neon",
        }
    }
}

/// A *requested* dispatch policy (what the env var / config knob holds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdMode {
    /// Use the best backend the CPU supports (honoring `SLIMCODEML_SIMD`).
    #[default]
    Auto,
    /// Force the portable scalar kernels.
    ForceScalar,
    /// Request AVX2; falls back to scalar on hosts without it.
    ForceAvx2,
    /// Request NEON; falls back to scalar on non-aarch64 hosts.
    ForceNeon,
}

impl SimdMode {
    /// Parse an `SLIMCODEML_SIMD`-style value. Unknown strings are `None`.
    pub fn parse(s: &str) -> Option<SimdMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => Some(SimdMode::Auto),
            "scalar" | "off" => Some(SimdMode::ForceScalar),
            "avx2" => Some(SimdMode::ForceAvx2),
            "neon" => Some(SimdMode::ForceNeon),
            _ => None,
        }
    }
}

/// What the hardware supports, probed once.
fn detected() -> SimdBackend {
    static DETECTED: OnceLock<SimdBackend> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdBackend::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            // NEON is architecturally mandatory on aarch64.
            return SimdBackend::Neon;
        }
        #[allow(unreachable_code)]
        SimdBackend::Scalar
    })
}

/// The `SLIMCODEML_SIMD` environment policy, read once per process.
fn env_mode() -> SimdMode {
    static ENV: OnceLock<SimdMode> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("SLIMCODEML_SIMD")
            .ok()
            .and_then(|v| SimdMode::parse(&v))
            .unwrap_or(SimdMode::Auto)
    })
}

/// Resolve a requested mode against what this host can actually run.
/// Unsupported forces degrade to [`SimdBackend::Scalar`] — never a fault.
pub fn resolve(mode: SimdMode) -> SimdBackend {
    match mode {
        SimdMode::ForceScalar => SimdBackend::Scalar,
        SimdMode::ForceAvx2 => {
            if detected() == SimdBackend::Avx2 {
                SimdBackend::Avx2
            } else {
                SimdBackend::Scalar
            }
        }
        SimdMode::ForceNeon => {
            if detected() == SimdBackend::Neon {
                SimdBackend::Neon
            } else {
                SimdBackend::Scalar
            }
        }
        SimdMode::Auto => match env_mode() {
            SimdMode::Auto => detected(),
            forced => resolve(forced),
        },
    }
}

thread_local! {
    /// Thread-scoped override installed by [`with_forced`]; workers of the
    /// parallel engine re-install it so an `EngineConfig` knob propagates.
    static OVERRIDE: Cell<Option<SimdBackend>> = const { Cell::new(None) };
}

/// The backend the dispatched kernels will use right now on this thread.
pub fn active() -> SimdBackend {
    OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(|| resolve(SimdMode::Auto))
}

/// Run `f` with dispatch forced to `mode` on the current thread (restored
/// afterwards, panic-safe). `SimdMode::Auto` clears any override so the
/// environment policy applies again. Results are bit-identical for every
/// mode by the determinism contract; this exists for the engine knob and
/// for the tests that prove that contract.
pub fn with_forced<R>(mode: SimdMode, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<SimdBackend>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let value = match mode {
        SimdMode::Auto => None,
        forced => Some(resolve(forced)),
    };
    let _restore = Restore(OVERRIDE.with(|c| c.replace(value)));
    f()
}

macro_rules! dispatch {
    ($be:expr, $name:ident ( $($arg:expr),* )) => {
        match $be {
            SimdBackend::Scalar => scalar::$name($($arg),*),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `SimdBackend::Avx2` is only ever produced by
            // `resolve()` after a successful runtime
            // `is_x86_feature_detected!("avx2")` probe on this process.
            SimdBackend::Avx2 => unsafe { avx2::$name($($arg),*) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: `SimdBackend::Neon` is only produced on aarch64,
            // where NEON is architecturally mandatory.
            SimdBackend::Neon => unsafe { neon::$name($($arg),*) },
            #[allow(unreachable_patterns)] // force of a cross-arch backend resolved to scalar
            _ => scalar::$name($($arg),*),
        }
    };
}

/// Dot product `xᵀy` in the canonical fixed order (see module docs).
/// Bit-identical to [`crate::vecops::dot`] on every backend.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    dot_with(active(), x, y)
}

/// [`dot`] with the backend chosen by the caller (hoists dispatch out of
/// kernel loops).
#[inline]
// check: hot SIMD kernel entry
pub fn dot_with(be: SimdBackend, x: &[f64], y: &[f64]) -> f64 {
    dispatch!(be, dot(x, y))
}

/// Two dot products sharing the right-hand side: `(x0ᵀy, x1ᵀy)`.
/// Each output is bit-identical to the corresponding [`dot`]; pairing
/// exists purely to double instruction-level parallelism in `gemv`/`syrk`.
#[inline]
// check: hot SIMD kernel entry
pub fn dot2_with(be: SimdBackend, x0: &[f64], x1: &[f64], y: &[f64]) -> (f64, f64) {
    dispatch!(be, dot2(x0, x1, y))
}

/// `c[j] += a · b[j]` — one axpy row update (independent outputs).
#[inline]
// check: hot SIMD kernel entry
pub fn fma_row_with(be: SimdBackend, c: &mut [f64], a: f64, b: &[f64]) {
    dispatch!(be, fma_row(c, a, b))
}

/// `c[j] += a0·b0[j] + a1·b1[j]` — the two-way-unrolled `gemm` inner loop.
#[inline]
// check: hot SIMD kernel entry
pub fn fma_row2_with(be: SimdBackend, c: &mut [f64], a0: f64, b0: &[f64], a1: f64, b1: &[f64]) {
    dispatch!(be, fma_row2(c, a0, b0, a1, b1))
}

/// `y[j] *= x[j]` — the pruning combine step (independent outputs).
#[inline]
// check: hot SIMD kernel entry
pub fn mul_row_with(be: SimdBackend, y: &mut [f64], x: &[f64]) {
    dispatch!(be, mul_row(y, x))
}

/// `z[j] = x[j] · y[j]`.
#[inline]
// check: hot SIMD kernel entry
pub fn mul_into_with(be: SimdBackend, x: &[f64], y: &[f64], z: &mut [f64]) {
    dispatch!(be, mul_into(x, y, z))
}

/// `x[j] *= alpha`.
#[inline]
// check: hot SIMD kernel entry
pub fn scale_row_with(be: SimdBackend, x: &mut [f64], alpha: f64) {
    dispatch!(be, scale_row(x, alpha))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_documented_values() {
        assert_eq!(SimdMode::parse("auto"), Some(SimdMode::Auto));
        assert_eq!(SimdMode::parse(""), Some(SimdMode::Auto));
        assert_eq!(SimdMode::parse("Scalar"), Some(SimdMode::ForceScalar));
        assert_eq!(SimdMode::parse("off"), Some(SimdMode::ForceScalar));
        assert_eq!(SimdMode::parse("AVX2"), Some(SimdMode::ForceAvx2));
        assert_eq!(SimdMode::parse("neon"), Some(SimdMode::ForceNeon));
        assert_eq!(SimdMode::parse("sse9"), None);
    }

    #[test]
    fn resolve_never_yields_unsupported_backend() {
        // The dispatch-probe contract: forcing a backend the host lacks
        // degrades to scalar instead of faulting.
        for mode in [
            SimdMode::Auto,
            SimdMode::ForceScalar,
            SimdMode::ForceAvx2,
            SimdMode::ForceNeon,
        ] {
            let be = resolve(mode);
            assert_eq!(be, resolve(mode), "resolution must be stable");
            match be {
                SimdBackend::Scalar => {}
                SimdBackend::Avx2 => assert_eq!(detected(), SimdBackend::Avx2),
                SimdBackend::Neon => assert_eq!(detected(), SimdBackend::Neon),
            }
        }
        assert_eq!(resolve(SimdMode::ForceScalar), SimdBackend::Scalar);
        // A cross-architecture force always lands on scalar.
        #[cfg(target_arch = "x86_64")]
        assert_eq!(resolve(SimdMode::ForceNeon), SimdBackend::Scalar);
        #[cfg(target_arch = "aarch64")]
        assert_eq!(resolve(SimdMode::ForceAvx2), SimdBackend::Scalar);
    }

    #[test]
    fn with_forced_is_scoped_and_nestable() {
        let ambient = active();
        with_forced(SimdMode::ForceScalar, || {
            assert_eq!(active(), SimdBackend::Scalar);
            with_forced(SimdMode::ForceAvx2, || {
                assert!(matches!(active(), SimdBackend::Avx2 | SimdBackend::Scalar));
            });
            assert_eq!(active(), SimdBackend::Scalar);
        });
        assert_eq!(active(), ambient);
    }

    #[test]
    fn with_forced_restores_after_panic() {
        let ambient = active();
        let caught = std::panic::catch_unwind(|| {
            with_forced(SimdMode::ForceScalar, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(active(), ambient);
    }

    #[test]
    fn lanes_are_declared() {
        assert_eq!(SimdBackend::Scalar.lanes(), 1);
        assert_eq!(SimdBackend::Avx2.lanes(), 4);
        assert_eq!(SimdBackend::Neon.lanes(), 2);
        assert!(active().lanes() <= LANE);
    }
}
