//! Unified front-end over the symmetric eigensolvers.

use crate::bisect::sym_eigen_bisect;
use crate::jacobi::jacobi_eigen;
use crate::ql::{sort_eigenpairs, tql2};
use crate::tridiag::tred2;
use crate::{LinalgError, Mat, Result};

/// Which algorithm to use for a symmetric eigendecomposition.
///
/// Mirrors the paper's description of LAPACK `dsyevr`: "whenever possible,
/// the eigenspectrum is computed using multiple relatively robust
/// representations (MRRR) or a QR/QL method otherwise" — here
/// [`EigenMethod::BisectionInverse`] plays the MRRR role and
/// [`EigenMethod::HouseholderQl`] the QL role. [`EigenMethod::Jacobi`] is a
/// slow independent cross-check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EigenMethod {
    /// Householder tridiagonalization + implicit-shift QL (default).
    #[default]
    HouseholderQl,
    /// Householder tridiagonalization + bisection eigenvalues + inverse
    /// iteration eigenvectors (`dsyevr`/MRRR stand-in).
    BisectionInverse,
    /// Cyclic Jacobi rotations.
    Jacobi,
}

/// A symmetric eigendecomposition `A = X · diag(λ) · Xᵀ`.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthogonal matrix whose column `j` is the eigenvector for
    /// `values[j]`.
    pub vectors: Mat,
}

impl SymEigen {
    /// Reconstruct the original matrix `X Λ Xᵀ` (test/diagnostic helper).
    pub fn reconstruct(&self) -> Mat {
        let xl = self.vectors.mul_diag_right(&self.values);
        crate::gemm::matmul(
            &xl,
            crate::Transpose::No,
            &self.vectors,
            crate::Transpose::Yes,
        )
    }

    /// Largest absolute eigenvalue.
    pub fn spectral_radius(&self) -> f64 {
        self.values.iter().map(|v| v.abs()).fold(0.0, f64::max)
    }
}

/// Compute the eigendecomposition of a symmetric matrix.
///
/// Only symmetry up to rounding is assumed; the input is symmetrized
/// defensively (averaging `a_ij` and `a_ji`) before factorization, matching
/// what `dsyevr` effectively does by referencing one triangle.
///
/// # Errors
/// Propagates [`LinalgError`] from the selected backend (non-square input,
/// iteration-cap exhaustion).
pub fn sym_eigen(a: &Mat, method: EigenMethod) -> Result<SymEigen> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            op: "sym_eigen",
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let mut work = a.clone();
    work.symmetrize();
    match method {
        EigenMethod::HouseholderQl => {
            let tri = tred2(&work);
            let mut d = tri.d;
            let mut e = tri.e;
            let mut z = tri.q;
            tql2(&mut d, &mut e, &mut z)?;
            sort_eigenpairs(&mut d, &mut z);
            Ok(SymEigen {
                values: d,
                vectors: z,
            })
        }
        EigenMethod::BisectionInverse => {
            let tri = tred2(&work);
            let (values, vectors) = sym_eigen_bisect(&tri)?;
            Ok(SymEigen { values, vectors })
        }
        EigenMethod::Jacobi => {
            let (values, vectors) = jacobi_eigen(&work)?;
            Ok(SymEigen { values, vectors })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Transpose};

    fn random_symmetric(n: usize, seed: u64) -> Mat {
        let mut state = seed;
        let mut m = Mat::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        m.symmetrize();
        m
    }

    #[test]
    fn all_methods_agree_on_eigenvalues() {
        let a = random_symmetric(15, 42);
        let ql = sym_eigen(&a, EigenMethod::HouseholderQl).unwrap();
        let bi = sym_eigen(&a, EigenMethod::BisectionInverse).unwrap();
        let ja = sym_eigen(&a, EigenMethod::Jacobi).unwrap();
        for i in 0..15 {
            assert!(
                (ql.values[i] - bi.values[i]).abs() < 1e-9,
                "i={i} ql-vs-bisect"
            );
            assert!(
                (ql.values[i] - ja.values[i]).abs() < 1e-9,
                "i={i} ql-vs-jacobi"
            );
        }
    }

    #[test]
    fn reconstruct_and_orthogonality_each_method() {
        let a = random_symmetric(12, 7);
        for method in [
            EigenMethod::HouseholderQl,
            EigenMethod::BisectionInverse,
            EigenMethod::Jacobi,
        ] {
            let eig = sym_eigen(&a, method).unwrap();
            assert!(
                eig.reconstruct().approx_eq(&a, 1e-8),
                "{method:?} reconstruction"
            );
            let xtx = matmul(&eig.vectors, Transpose::Yes, &eig.vectors, Transpose::No);
            assert!(
                xtx.approx_eq(&Mat::identity(12), 1e-8),
                "{method:?} orthogonality"
            );
        }
    }

    #[test]
    fn eigenvalues_sorted_ascending() {
        let a = random_symmetric(20, 99);
        for method in [
            EigenMethod::HouseholderQl,
            EigenMethod::BisectionInverse,
            EigenMethod::Jacobi,
        ] {
            let eig = sym_eigen(&a, method).unwrap();
            for w in eig.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-12, "{method:?} not sorted");
            }
        }
    }

    #[test]
    fn trace_preserved() {
        let a = random_symmetric(10, 5);
        let trace: f64 = a.diag().iter().sum();
        let eig = sym_eigen(&a, EigenMethod::HouseholderQl).unwrap();
        let sum: f64 = eig.values.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn rejects_rectangular() {
        assert!(sym_eigen(&Mat::zeros(3, 4), EigenMethod::HouseholderQl).is_err());
    }

    #[test]
    fn spectral_radius() {
        let a = Mat::from_diag(&[-5.0, 2.0, 3.0]);
        let eig = sym_eigen(&a, EigenMethod::Jacobi).unwrap();
        assert!((eig.spectral_radius() - 5.0).abs() < 1e-12);
    }
}
