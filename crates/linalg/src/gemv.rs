//! BLAS level-2 kernels: general and symmetric matrix × vector products.

use crate::simd;
use crate::Mat;

/// General matrix–vector product `y ← α·A·x + β·y` (row-major `dgemv`,
/// no-transpose case).
///
/// This is the per-site conditional-probability-vector update of §III-B in
/// the paper: `w' = P_t w` applied at every alignment site.
///
/// Rows are processed in pairs through the dispatched two-output dot
/// kernel: each output still accumulates in the canonical scalar order
/// (so results are bit-identical to the one-row-at-a-time loop on every
/// backend), but two independent accumulator chains hide FP add latency.
///
/// # Panics
/// Panics on dimension mismatch.
// check: allow(panic-free-hot-path) shape asserts are the documented contract; row/x indices bounded by the asserted dims
pub fn gemv(alpha: f64, a: &Mat, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(a.cols(), x.len(), "gemv: A.cols != x.len");
    assert_eq!(a.rows(), y.len(), "gemv: A.rows != y.len");
    let be = simd::active();
    let m = a.rows();
    let pairs = m / 2;
    for p in 0..pairs {
        let i = 2 * p;
        let (s0, s1) = simd::dot2_with(be, a.row(i), a.row(i + 1), x);
        y[i] = alpha * s0 + beta * y[i];
        y[i + 1] = alpha * s1 + beta * y[i + 1];
    }
    if m % 2 == 1 {
        let i = m - 1;
        let s = simd::dot_with(be, a.row(i), x);
        y[i] = alpha * s + beta * y[i];
    }
}

/// Symmetric matrix–vector product `y ← α·A·x + β·y` where only the values
/// of `A` are used under the assumption `A = Aᵀ` (`dsymv` equivalent).
///
/// Reads each off-diagonal element of `A` **once** and uses it for both the
/// `(i,j)` and `(j,i)` contributions — halving memory traffic relative to
/// [`gemv`]. This is exactly the benefit of the paper's Eq. 12 improvement
/// ("saves about half of the memory accesses").
///
/// Row `i` splits into a canonical-order dot over the strict upper
/// triangle (the `y[i]` contribution — a reduction, never re-associated)
/// and a vectorized rank-1 row update of `y[i+1..]` (independent outputs),
/// so the result is bit-identical across SIMD backends.
///
/// # Panics
/// Panics if `A` is not square or dimensions mismatch.
// check: allow(panic-free-hot-path) square-shape asserts are the documented contract; i bounded by n, slices end at row length
pub fn symv(alpha: f64, a: &Mat, x: &[f64], beta: f64, y: &mut [f64]) {
    assert!(a.is_square(), "symv: square matrix required");
    let n = a.rows();
    assert_eq!(n, x.len(), "symv: A.rows != x.len");
    assert_eq!(n, y.len(), "symv: A.rows != y.len");

    let be = simd::active();
    for v in y.iter_mut() {
        *v *= beta;
    }
    for i in 0..n {
        let row = a.row(i);
        let xi = x[i];
        // Diagonal term plus the strict upper triangle of row i: element
        // a[i][j] contributes to y[i] (via a_ij x_j, accumulated in dot
        // order) ...
        let acc = row[i] * xi + simd::dot_with(be, &row[i + 1..], &x[i + 1..]);
        // ... and to y[j] (via a_ji x_i = a_ij x_i), one independent
        // output per lane.
        simd::fma_row_with(be, &mut y[i + 1..], alpha * xi, &row[i + 1..]);
        y[i] += alpha * acc;
    }
}

/// Rank-1 update `A ← α·x·yᵀ + A` (`dger` equivalent).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn ger(alpha: f64, x: &[f64], y: &[f64], a: &mut Mat) {
    assert_eq!(a.rows(), x.len(), "ger: A.rows != x.len");
    assert_eq!(a.cols(), y.len(), "ger: A.cols != y.len");
    let be = simd::active();
    for (i, &xi) in x.iter().enumerate() {
        let axi = alpha * xi;
        simd::fma_row_with(be, a.row_mut(i), axi, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym_test_matrix(n: usize) -> Mat {
        Mat::from_fn(n, n, |i, j| {
            1.0 / (1.0 + (i + j) as f64) + if i == j { 2.0 } else { 0.0 }
        })
    }

    #[test]
    fn gemv_matches_mul_vec() {
        let a = Mat::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let x = [1.0, -1.0, 2.0];
        let mut y = vec![1.0; 4];
        gemv(2.0, &a, &x, 3.0, &mut y);
        let manual = a.mul_vec(&x);
        for i in 0..4 {
            assert!((y[i] - (2.0 * manual[i] + 3.0)).abs() < 1e-14);
        }
    }

    #[test]
    fn symv_matches_gemv_on_symmetric() {
        let n = 7;
        let a = sym_test_matrix(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 0.5).collect();
        let mut y1 = vec![0.25; n];
        let mut y2 = y1.clone();
        gemv(1.5, &a, &x, -0.5, &mut y1);
        symv(1.5, &a, &x, -0.5, &mut y2);
        for i in 0..n {
            assert!(
                (y1[i] - y2[i]).abs() < 1e-13,
                "row {i}: {} vs {}",
                y1[i],
                y2[i]
            );
        }
    }

    #[test]
    fn symv_beta_zero_ignores_initial_y() {
        let a = Mat::identity(3);
        let x = [1.0, 2.0, 3.0];
        let mut y = [f64::MAX, f64::MAX, f64::MAX];
        // beta = 0 must scale y to 0 (times MAX is fine since finite)
        symv(1.0, &a, &x, 0.0, &mut y);
        // y started at MAX; MAX*0 = 0 so result is exactly x
        assert_eq!(y, x);
    }

    #[test]
    fn gemv_odd_and_even_row_counts_agree_with_reference() {
        // Pair-processed rows must equal the one-row-at-a-time reference
        // bit-for-bit, for both parities of the row count.
        for m in [1usize, 2, 5, 8, 61] {
            let a = Mat::from_fn(m, 61, |i, j| ((i * 61 + j * 7) % 13) as f64 / 13.0 - 0.4);
            let x: Vec<f64> = (0..61)
                .map(|j| ((j * 11) % 17) as f64 / 17.0 - 0.5)
                .collect();
            let mut y = vec![0.125; m];
            gemv(1.5, &a, &x, -0.5, &mut y);
            for i in 0..m {
                let s = crate::vecops::dot(a.row(i), &x);
                let expect = 1.5 * s + -0.5 * 0.125;
                assert_eq!(y[i].to_bits(), expect.to_bits(), "m={m} row {i}");
            }
        }
    }

    #[test]
    fn ger_rank1() {
        let mut a = Mat::zeros(2, 3);
        ger(2.0, &[1.0, 3.0], &[1.0, 2.0, 3.0], &mut a);
        assert_eq!(a, Mat::from_rows(&[&[2.0, 4.0, 6.0], &[6.0, 12.0, 18.0]]));
    }

    #[test]
    #[should_panic(expected = "gemv")]
    fn gemv_shape_panics() {
        let a = Mat::zeros(2, 2);
        let mut y = [0.0; 2];
        gemv(1.0, &a, &[1.0], 0.0, &mut y);
    }
}
