//! BLAS level-2 kernels: general and symmetric matrix × vector products.

use crate::vecops::dot;
use crate::Mat;

/// General matrix–vector product `y ← α·A·x + β·y` (row-major `dgemv`,
/// no-transpose case).
///
/// This is the per-site conditional-probability-vector update of §III-B in
/// the paper: `w' = P_t w` applied at every alignment site.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemv(alpha: f64, a: &Mat, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(a.cols(), x.len(), "gemv: A.cols != x.len");
    assert_eq!(a.rows(), y.len(), "gemv: A.rows != y.len");
    for (i, yi) in y.iter_mut().enumerate() {
        let s = dot(a.row(i), x);
        *yi = alpha * s + beta * *yi;
    }
}

/// Symmetric matrix–vector product `y ← α·A·x + β·y` where only the values
/// of `A` are used under the assumption `A = Aᵀ` (`dsymv` equivalent).
///
/// Reads each off-diagonal element of `A` **once** and uses it for both the
/// `(i,j)` and `(j,i)` contributions — halving memory traffic relative to
/// [`gemv`]. This is exactly the benefit of the paper's Eq. 12 improvement
/// ("saves about half of the memory accesses").
///
/// # Panics
/// Panics if `A` is not square or dimensions mismatch.
pub fn symv(alpha: f64, a: &Mat, x: &[f64], beta: f64, y: &mut [f64]) {
    assert!(a.is_square(), "symv: square matrix required");
    let n = a.rows();
    assert_eq!(n, x.len(), "symv: A.rows != x.len");
    assert_eq!(n, y.len(), "symv: A.rows != y.len");

    for v in y.iter_mut() {
        *v *= beta;
    }
    for i in 0..n {
        let row = a.row(i);
        let xi = x[i];
        // Diagonal term.
        let mut acc = row[i] * xi;
        // Strict upper triangle: element a[i][j] contributes to y[i] (via
        // a_ij x_j) and to y[j] (via a_ji x_i = a_ij x_i).
        for j in (i + 1)..n {
            let aij = row[j];
            acc += aij * x[j];
            y[j] += alpha * aij * xi;
        }
        y[i] += alpha * acc;
    }
}

/// Rank-1 update `A ← α·x·yᵀ + A` (`dger` equivalent).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn ger(alpha: f64, x: &[f64], y: &[f64], a: &mut Mat) {
    assert_eq!(a.rows(), x.len(), "ger: A.rows != x.len");
    assert_eq!(a.cols(), y.len(), "ger: A.cols != y.len");
    for (i, &xi) in x.iter().enumerate() {
        let axi = alpha * xi;
        for (aij, &yj) in a.row_mut(i).iter_mut().zip(y) {
            *aij += axi * yj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym_test_matrix(n: usize) -> Mat {
        Mat::from_fn(n, n, |i, j| {
            1.0 / (1.0 + (i + j) as f64) + if i == j { 2.0 } else { 0.0 }
        })
    }

    #[test]
    fn gemv_matches_mul_vec() {
        let a = Mat::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let x = [1.0, -1.0, 2.0];
        let mut y = vec![1.0; 4];
        gemv(2.0, &a, &x, 3.0, &mut y);
        let manual = a.mul_vec(&x);
        for i in 0..4 {
            assert!((y[i] - (2.0 * manual[i] + 3.0)).abs() < 1e-14);
        }
    }

    #[test]
    fn symv_matches_gemv_on_symmetric() {
        let n = 7;
        let a = sym_test_matrix(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 0.5).collect();
        let mut y1 = vec![0.25; n];
        let mut y2 = y1.clone();
        gemv(1.5, &a, &x, -0.5, &mut y1);
        symv(1.5, &a, &x, -0.5, &mut y2);
        for i in 0..n {
            assert!(
                (y1[i] - y2[i]).abs() < 1e-13,
                "row {i}: {} vs {}",
                y1[i],
                y2[i]
            );
        }
    }

    #[test]
    fn symv_beta_zero_ignores_initial_y() {
        let a = Mat::identity(3);
        let x = [1.0, 2.0, 3.0];
        let mut y = [f64::MAX, f64::MAX, f64::MAX];
        // beta = 0 must scale y to 0 (times MAX is fine since finite)
        symv(1.0, &a, &x, 0.0, &mut y);
        // y started at MAX; MAX*0 = 0 so result is exactly x
        assert_eq!(y, x);
    }

    #[test]
    fn ger_rank1() {
        let mut a = Mat::zeros(2, 3);
        ger(2.0, &[1.0, 3.0], &[1.0, 2.0, 3.0], &mut a);
        assert_eq!(a, Mat::from_rows(&[&[2.0, 4.0, 6.0], &[6.0, 12.0, 18.0]]));
    }

    #[test]
    #[should_panic(expected = "gemv")]
    fn gemv_shape_panics() {
        let a = Mat::zeros(2, 2);
        let mut y = [0.0; 2];
        gemv(1.0, &a, &[1.0], 0.0, &mut y);
    }
}
