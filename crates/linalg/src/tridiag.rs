//! Householder reduction of a symmetric matrix to tridiagonal form.
//!
//! This is the first phase of LAPACK's `dsyevr` (and of EISPACK `tred2`),
//! which the paper uses via LAPACK: "the eigenvalue problem solver routine
//! dsyevr first reduces the symmetric matrix A to tridiagonal form via
//! Householder transformations" (§III-A step 2).

use crate::Mat;

/// Result of Householder tridiagonalization: `A = Q · T · Qᵀ` where `T` is
/// symmetric tridiagonal with diagonal `d` and subdiagonal `e`.
#[derive(Debug, Clone)]
pub struct Tridiag {
    /// Diagonal of `T` (length n).
    pub d: Vec<f64>,
    /// Subdiagonal of `T` in positions `1..n`; `e[0]` is 0.
    pub e: Vec<f64>,
    /// Accumulated orthogonal transformation `Q` (columns ordered to match
    /// `d`/`e`).
    pub q: Mat,
}

/// Reduce symmetric `a` to tridiagonal form, accumulating the orthogonal
/// transformation (EISPACK `tred2` lineage).
///
/// Only the lower triangle of `a` is referenced; symmetry is assumed, not
/// checked (callers produce `A = Π^{1/2} S Π^{1/2}` which is symmetric by
/// construction).
///
/// # Panics
/// Panics if `a` is not square.
pub fn tred2(a: &Mat) -> Tridiag {
    assert!(a.is_square(), "tred2: square matrix required");
    let n = a.rows();
    let mut z = a.clone();
    let mut d = vec![0.0f64; n];
    let mut e = vec![0.0f64; n];
    if n == 0 {
        return Tridiag { d, e, q: z };
    }
    if n == 1 {
        d[0] = z[(0, 0)];
        z[(0, 0)] = 1.0;
        return Tridiag { d, e, q: z };
    }

    // Phase 1: reduce, storing Householder vectors in z.
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0f64;
        if l > 0 {
            let mut scale = 0.0f64;
            for k in 0..=l {
                scale += z[(i, k)].abs();
            }
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                let mut fsum = 0.0f64;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0f64;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    fsum += e[j] * z[(i, j)];
                }
                let hh = fsum / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let gj = e[j] - hh * f;
                    e[j] = gj;
                    for k in 0..=j {
                        let ek = e[k];
                        let zik = z[(i, k)];
                        z[(j, k)] -= f * ek + gj * zik;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;

    // Phase 2: accumulate the transformation matrix.
    for i in 0..n {
        if d[i] != 0.0 {
            // i >= 1 guaranteed here because d[0] == 0.
            for j in 0..i {
                let mut g = 0.0f64;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let zki = z[(k, i)];
                    z[(k, j)] -= g * zki;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }

    Tridiag { d, e, q: z }
}

/// Rebuild the dense tridiagonal matrix `T` from `d`/`e` (test helper).
pub fn tridiag_to_dense(d: &[f64], e: &[f64]) -> Mat {
    let n = d.len();
    let mut t = Mat::zeros(n, n);
    for i in 0..n {
        t[(i, i)] = d[i];
        if i > 0 {
            t[(i, i - 1)] = e[i];
            t[(i - 1, i)] = e[i];
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Transpose};

    fn random_symmetric(n: usize, seed: u64) -> Mat {
        let mut state = seed;
        let mut m = Mat::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        m.symmetrize();
        m
    }

    fn check_reduction(a: &Mat) {
        let n = a.rows();
        let tri = tred2(a);
        // Q orthogonal: QᵀQ = I
        let qtq = matmul(&tri.q, Transpose::Yes, &tri.q, Transpose::No);
        assert!(qtq.approx_eq(&Mat::identity(n), 1e-10), "Q not orthogonal");
        // Q T Qᵀ = A
        let t = tridiag_to_dense(&tri.d, &tri.e);
        let qt = matmul(&tri.q, Transpose::No, &t, Transpose::No);
        let rec = matmul(&qt, Transpose::No, &tri.q, Transpose::Yes);
        assert!(
            rec.approx_eq(a, 1e-9),
            "Q T Qᵀ != A (max diff {})",
            rec.max_abs_diff(a)
        );
    }

    #[test]
    fn reduces_small_matrices() {
        for n in [1, 2, 3, 4, 5, 8] {
            check_reduction(&random_symmetric(n, n as u64 + 7));
        }
    }

    #[test]
    fn reduces_codon_sized_matrix() {
        check_reduction(&random_symmetric(61, 1234));
    }

    #[test]
    fn already_tridiagonal_is_fixed_point_shape() {
        // A tridiagonal input must reduce with T equal to itself (up to sign
        // conventions on e, which tred2 may flip).
        let a = tridiag_to_dense(&[1.0, 2.0, 3.0], &[0.0, 0.5, -0.25]);
        let tri = tred2(&a);
        let t = tridiag_to_dense(&tri.d, &tri.e);
        let qt = matmul(&tri.q, Transpose::No, &t, Transpose::No);
        let rec = matmul(&qt, Transpose::No, &tri.q, Transpose::Yes);
        assert!(rec.approx_eq(&a, 1e-12));
    }

    #[test]
    fn diagonal_input() {
        let a = Mat::from_diag(&[3.0, -1.0, 4.0, 1.5]);
        let tri = tred2(&a);
        let t = tridiag_to_dense(&tri.d, &tri.e);
        let qt = matmul(&tri.q, Transpose::No, &t, Transpose::No);
        let rec = matmul(&qt, Transpose::No, &tri.q, Transpose::Yes);
        assert!(rec.approx_eq(&a, 1e-12));
    }
}
