use std::fmt;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Short name of the operation that failed.
        op: &'static str,
        /// Human-readable description of the offending shapes.
        detail: String,
    },
    /// An iterative algorithm failed to converge within its iteration cap.
    NoConvergence {
        /// Short name of the algorithm.
        op: &'static str,
        /// Iteration cap that was exhausted.
        iterations: usize,
    },
    /// The matrix is singular (or numerically singular) where a
    /// factorization or solve requires otherwise.
    Singular {
        /// Short name of the operation.
        op: &'static str,
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Short name of the operation.
        op: &'static str,
        /// Observed (rows, cols).
        rows: usize,
        /// Observed (rows, cols).
        cols: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, detail } => {
                write!(f, "{op}: shape mismatch ({detail})")
            }
            LinalgError::NoConvergence { op, iterations } => {
                write!(f, "{op}: no convergence after {iterations} iterations")
            }
            LinalgError::Singular { op } => write!(f, "{op}: singular matrix"),
            LinalgError::NotSquare { op, rows, cols } => {
                write!(f, "{op}: expected square matrix, got {rows}x{cols}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = LinalgError::ShapeMismatch {
            op: "gemm",
            detail: "2x3 * 4x5".into(),
        };
        assert!(e.to_string().contains("gemm"));
        let e = LinalgError::NoConvergence {
            op: "tql2",
            iterations: 30,
        };
        assert!(e.to_string().contains("30"));
        let e = LinalgError::Singular { op: "lu" };
        assert!(e.to_string().contains("singular"));
        let e = LinalgError::NotSquare {
            op: "eigen",
            rows: 2,
            cols: 3,
        };
        assert!(e.to_string().contains("2x3"));
    }
}
