//! Bisection eigenvalues + inverse-iteration eigenvectors for symmetric
//! tridiagonal matrices.
//!
//! Stand-in for the MRRR ("multiple relatively robust representations")
//! path of LAPACK `dsyevr` that the paper names in §III-A step 2: like
//! MRRR, this computes each eigenvalue independently by bisection on the
//! Sturm sequence and each eigenvector by a shifted tridiagonal solve,
//! rather than by accumulating O(n³) rotations as QL does.

use crate::tridiag::Tridiag;
use crate::{gemm, LinalgError, Mat, Result, Transpose};

/// Number of eigenvalues of the tridiagonal matrix strictly less than `x`,
/// via the Sturm sequence of leading principal minors.
///
/// `d` is the diagonal, `off[i]` couples rows `i` and `i+1`.
pub fn sturm_count(d: &[f64], off: &[f64], x: f64) -> usize {
    let n = d.len();
    let mut count = 0usize;
    let mut q = 1.0f64;
    for i in 0..n {
        let off2 = if i == 0 { 0.0 } else { off[i - 1] * off[i - 1] };
        q = d[i]
            - x
            - if q != 0.0 {
                off2 / q
            } else {
                off2 / f64::MIN_POSITIVE.sqrt()
            };
        if q < 0.0 {
            count += 1;
        } else if q == 0.0 {
            // Treat exact zero as a tiny negative perturbation for robustness.
            q = -f64::EPSILON * (d[i].abs() + off2.sqrt() + 1.0);
            count += 1;
        }
    }
    count
}

/// All eigenvalues of the symmetric tridiagonal matrix `(d, off)` by
/// bisection, ascending, each to absolute tolerance ~`eps·‖T‖`.
pub fn tridiag_eigenvalues(d: &[f64], off: &[f64]) -> Vec<f64> {
    let n = d.len();
    if n == 0 {
        return vec![];
    }
    // Gershgorin bounds.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let r = (if i > 0 { off[i - 1].abs() } else { 0.0 })
            + (if i + 1 < n { off[i].abs() } else { 0.0 });
        lo = lo.min(d[i] - r);
        hi = hi.max(d[i] + r);
    }
    let norm = hi.abs().max(lo.abs()).max(f64::MIN_POSITIVE);
    let tol = 2.0 * f64::EPSILON * norm;
    let mut lambdas = Vec::with_capacity(n);
    for k in 0..n {
        // Eigenvalue k (0-based ascending) is bracketed where the Sturm
        // count crosses from <=k to >k.
        let mut a = lo - tol;
        let mut b = hi + tol;
        while b - a > tol.max(f64::EPSILON * (a.abs() + b.abs())) {
            let mid = 0.5 * (a + b);
            if sturm_count(d, off, mid) > k {
                b = mid;
            } else {
                a = mid;
            }
        }
        lambdas.push(0.5 * (a + b));
    }
    lambdas
}

/// Solve `(T − λI)·x = b` for tridiagonal `T` using LU with partial
/// pivoting (fill-in creates one extra superdiagonal). Overwrites `b` with
/// the solution. The shifted matrix is near-singular by design (λ is an
/// eigenvalue); zero pivots are replaced by a tiny value, which is the
/// standard inverse-iteration trick.
fn solve_shifted_tridiag(d: &[f64], off: &[f64], lambda: f64, b: &mut [f64]) {
    let n = d.len();
    if n == 1 {
        let p = d[0] - lambda;
        b[0] /= if p.abs() > f64::MIN_POSITIVE {
            p
        } else {
            f64::EPSILON
        };
        return;
    }
    // Band storage: diag, upper1, upper2 after elimination.
    let mut diag: Vec<f64> = d.iter().map(|&v| v - lambda).collect();
    let mut up1: Vec<f64> = off.to_vec(); // coupling i..i+1
    let mut up2 = vec![0.0f64; n];
    let mut low: Vec<f64> = off.to_vec(); // subdiagonal copy (mutated)

    let tiny = f64::EPSILON * d.iter().map(|v| v.abs()).fold(1.0, f64::max);

    for i in 0..n - 1 {
        if low[i].abs() > diag[i].abs() {
            // Pivot: swap row i and i+1.
            b.swap(i, i + 1);
            std::mem::swap(&mut diag[i], &mut low[i]);
            // After swap: row i gets (old row i+1): diag entry low[i] (done),
            // up1 entry diag[i+1], up2 entry up1[i+1].
            let new_up1 = diag[i + 1];
            let new_up2 = if i + 1 < n - 1 { up1[i + 1] } else { 0.0 };
            // Row i+1 keeps old row i entries shifted.
            diag[i + 1] = up1[i];
            up1[i] = new_up1;
            if i + 1 < n - 1 {
                up1[i + 1] = 0.0;
            }
            up2[i] = new_up2;
        }
        if diag[i].abs() < tiny {
            diag[i] = tiny.copysign(diag[i]);
        }
        let m = low[i] / diag[i];
        diag[i + 1] -= m * up1[i];
        if i + 1 < n - 1 {
            up1[i + 1] -= m * up2[i];
        }
        b[i + 1] -= m * b[i];
    }
    if diag[n - 1].abs() < tiny {
        diag[n - 1] = tiny.copysign(diag[n - 1]);
    }
    // Back substitution.
    b[n - 1] /= diag[n - 1];
    if n >= 2 {
        b[n - 2] = (b[n - 2] - up1[n - 2] * b[n - 1]) / diag[n - 2];
    }
    for i in (0..n.saturating_sub(2)).rev() {
        b[i] = (b[i] - up1[i] * b[i + 1] - up2[i] * b[i + 2]) / diag[i];
    }
}

/// Relative gap below which neighbouring eigenvalues are treated as a
/// cluster whose eigenvectors must be re-orthogonalized.
const CLUSTER_REL_GAP: f64 = 1e-10;

/// Eigenvectors of the tridiagonal matrix by inverse iteration (LAPACK
/// `dstein` lineage). Returns an `n×n` matrix whose column `j` is the unit
/// eigenvector for `lambdas[j]`; clustered eigenvalues are orthogonalized
/// against each other by modified Gram–Schmidt.
pub fn tridiag_eigenvectors(d: &[f64], off: &[f64], lambdas: &[f64]) -> Mat {
    let n = d.len();
    let mut v = Mat::zeros(n, n);
    let norm = lambdas.iter().map(|v| v.abs()).fold(1.0, f64::max);
    let mut cluster_start = 0usize;
    // Deterministic pseudo-random start vector generator.
    let mut state = 0x853C49E6748FEA9Bu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };

    for j in 0..n {
        if j > 0 && (lambdas[j] - lambdas[j - 1]).abs() > CLUSTER_REL_GAP * norm {
            cluster_start = j;
        }
        let mut x: Vec<f64> = (0..n).map(|_| next()).collect();
        // Two inverse-iteration sweeps are enough at bisection accuracy.
        for _ in 0..3 {
            // Orthogonalize within cluster before the solve to steer the
            // iteration toward an unused direction.
            for p in cluster_start..j {
                let dotp = crate::vecops::dot(&x, &v.col(p));
                for (xi, vpi) in x.iter_mut().zip(v.col(p)) {
                    *xi -= dotp * vpi;
                }
            }
            let nr = crate::vecops::nrm2(&x);
            if nr > 0.0 {
                crate::vecops::scal(1.0 / nr, &mut x);
            }
            solve_shifted_tridiag(d, off, lambdas[j], &mut x);
            let nr = crate::vecops::nrm2(&x);
            if nr > 0.0 {
                crate::vecops::scal(1.0 / nr, &mut x);
            }
        }
        // Final in-cluster orthogonalization + renormalize.
        for p in cluster_start..j {
            let dotp = crate::vecops::dot(&x, &v.col(p));
            for (xi, vpi) in x.iter_mut().zip(v.col(p)) {
                *xi -= dotp * vpi;
            }
        }
        let nr = crate::vecops::nrm2(&x);
        if nr > 0.0 {
            crate::vecops::scal(1.0 / nr, &mut x);
        }
        v.as_mut_slice()
            .chunks_mut(n)
            .zip(&x)
            .for_each(|(row, &xi)| row[j] = xi);
    }
    v
}

/// Full symmetric eigensolve via bisection + inverse iteration, starting
/// from a Householder tridiagonalization. Returns `(eigenvalues ascending,
/// eigenvector matrix with matching columns)`.
///
/// # Errors
/// Currently infallible in practice; the `Result` mirrors the QL path so
/// callers can treat solvers uniformly.
pub fn sym_eigen_bisect(tri: &Tridiag) -> Result<(Vec<f64>, Mat)> {
    let n = tri.d.len();
    if n == 0 {
        return Ok((vec![], Mat::zeros(0, 0)));
    }
    // Convert tred2's `e[1..]` convention into `off[i] = coupling(i, i+1)`.
    let off: Vec<f64> = (0..n.saturating_sub(1)).map(|i| tri.e[i + 1]).collect();
    let lambdas = tridiag_eigenvalues(&tri.d, &off);
    for w in lambdas.windows(2) {
        // NaN-aware ordering check (a plain `<=` hides the NaN case).
        if w[0].partial_cmp(&w[1]) == Some(std::cmp::Ordering::Greater)
            || w[0].is_nan()
            || w[1].is_nan()
        {
            return Err(LinalgError::NoConvergence {
                op: "bisect",
                iterations: 0,
            });
        }
    }
    let v = tridiag_eigenvectors(&tri.d, &off, &lambdas);
    // Back-transform to the dense basis: Z = Q · V.
    let z = gemm::matmul(&tri.q, Transpose::No, &v, Transpose::No);
    Ok((lambdas, z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::tridiag::{tred2, tridiag_to_dense};

    #[test]
    fn sturm_count_simple() {
        // T = diag(1, 2, 3): counts are a step function.
        let d = [1.0, 2.0, 3.0];
        let off = [0.0, 0.0];
        assert_eq!(sturm_count(&d, &off, 0.0), 0);
        assert_eq!(sturm_count(&d, &off, 1.5), 1);
        assert_eq!(sturm_count(&d, &off, 2.5), 2);
        assert_eq!(sturm_count(&d, &off, 10.0), 3);
    }

    #[test]
    fn bisect_matches_analytic() {
        // Same analytic case as the QL test.
        let n = 8;
        let d = vec![2.0; n];
        let off = vec![1.0; n - 1];
        let lam = tridiag_eigenvalues(&d, &off);
        for (k, &l) in lam.iter().enumerate() {
            let expect =
                2.0 - 2.0 * (std::f64::consts::PI * (k + 1) as f64 / (n as f64 + 1.0)).cos();
            assert!((l - expect).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn inverse_iteration_eigenvectors() {
        let n = 6;
        let d = vec![2.0; n];
        let off = vec![1.0; n - 1];
        let lam = tridiag_eigenvalues(&d, &off);
        let v = tridiag_eigenvectors(&d, &off, &lam);
        let dense = {
            let mut e = vec![0.0; n];
            e[1..n].copy_from_slice(&off[..n - 1]);
            tridiag_to_dense(&d, &e)
        };
        // T v_j = λ_j v_j
        for j in 0..n {
            let vj = v.col(j);
            let tv = dense.mul_vec(&vj);
            for i in 0..n {
                assert!((tv[i] - lam[j] * vj[i]).abs() < 1e-8, "j={j} i={i}");
            }
        }
        // Orthogonality
        let vtv = matmul(&v, Transpose::Yes, &v, Transpose::No);
        assert!(vtv.approx_eq(&Mat::identity(n), 1e-8));
    }

    #[test]
    fn full_dense_pipeline() {
        for n in [3usize, 7, 20, 61] {
            let mut state = 17 + n as u64;
            let mut a = Mat::from_fn(n, n, |_, _| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            });
            a.symmetrize();
            let tri = tred2(&a);
            let (lam, z) = sym_eigen_bisect(&tri).unwrap();
            // reconstruction
            let zl = z.mul_diag_right(&lam);
            let rec = matmul(&zl, Transpose::No, &z, Transpose::Yes);
            assert!(
                rec.approx_eq(&a, 1e-7),
                "n={n}: reconstruction error {}",
                rec.max_abs_diff(&a)
            );
            let ztz = matmul(&z, Transpose::Yes, &z, Transpose::No);
            assert!(
                ztz.approx_eq(&Mat::identity(n), 1e-7),
                "n={n}: not orthogonal"
            );
        }
    }

    #[test]
    fn degenerate_cluster() {
        // diag(1,1,1) with zero coupling: triple eigenvalue.
        let d = vec![1.0; 3];
        let off = vec![0.0; 2];
        let lam = tridiag_eigenvalues(&d, &off);
        assert!(lam.iter().all(|&l| (l - 1.0).abs() < 1e-12));
        let v = tridiag_eigenvectors(&d, &off, &lam);
        let vtv = matmul(&v, Transpose::Yes, &v, Transpose::No);
        assert!(vtv.approx_eq(&Mat::identity(3), 1e-8));
    }
}
