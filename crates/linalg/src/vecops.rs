//! BLAS level-1 style vector kernels.
//!
//! These are the building blocks of the likelihood hot loops: dot products
//! (root likelihood), axpy/scal (optimizer updates), and elementwise
//! products (combining child conditional probability vectors at internal
//! tree nodes).

/// Neumaier (improved Kahan–Babuška) compensated summation.
///
/// The parallel likelihood engine reduces per-pattern log-likelihoods in a
/// *fixed* order with this accumulator, so the total is bit-identical for
/// any thread count or pattern-block size — and carries an error bound
/// independent of the number of terms, unlike the naive running sum.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeumaierSum {
    sum: f64,
    compensation: f64,
}

impl NeumaierSum {
    /// A fresh accumulator at zero.
    pub fn new() -> NeumaierSum {
        NeumaierSum::default()
    }

    /// Add one term.
    #[inline]
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if t.is_finite() {
            if self.sum.abs() >= value.abs() {
                self.compensation += (self.sum - t) + value;
            } else {
                self.compensation += (value - t) + self.sum;
            }
        }
        // An infinite term (e.g. a −∞ per-pattern log-likelihood) must
        // propagate as ±∞, not poison the compensation with ∞−∞ = NaN.
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn total(&self) -> f64 {
        self.sum + self.compensation
    }
}

/// Compensated sum of a slice (fixed left-to-right order).
pub fn neumaier_sum(values: &[f64]) -> f64 {
    let mut acc = NeumaierSum::new();
    for &v in values {
        acc.add(v);
    }
    acc.total()
}

/// Dot product `xᵀy` in the canonical 4-accumulator order, dispatched to
/// the active SIMD backend. All backends reproduce the scalar reference
/// order — four interleaved partial sums combined as `(s0+s1)+(s2+s3)`
/// plus a running-sum tail — so the result is bit-identical regardless of
/// dispatch (see [`crate::simd`]).
///
/// # Panics
/// Panics if lengths differ (debug builds only; release relies on `min`).
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    crate::simd::dot(x, y)
}

/// `y ← αx + y` (dispatched; independent outputs, bit-identical across
/// backends).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    crate::simd::fma_row_with(crate::simd::active(), y, alpha, x);
}

/// `x ← αx` (dispatched).
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    crate::simd::scale_row_with(crate::simd::active(), x, alpha);
}

/// Euclidean norm with scaling to avoid overflow/underflow (like `dnrm2`).
pub fn nrm2(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &v in x {
        if v != 0.0 {
            let a = v.abs();
            if scale < a {
                ssq = 1.0 + ssq * (scale / a).powi(2);
                scale = a;
            } else {
                ssq += (a / scale).powi(2);
            }
        }
    }
    scale * ssq.sqrt()
}

/// Index of the element with the largest absolute value (like `idamax`).
/// Returns `None` for an empty slice.
pub fn iamax(x: &[f64]) -> Option<usize> {
    x.iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.abs().partial_cmp(&b.abs()).expect("NaN in iamax"))
        .map(|(i, _)| i)
}

/// Elementwise product `z_i = x_i · y_i` — the internal-node combine step of
/// Felsenstein pruning (Fig. 2 of the paper). Dispatched; independent
/// outputs, bit-identical across backends.
#[inline]
pub fn hadamard(x: &[f64], y: &[f64], z: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), z.len());
    crate::simd::mul_into_with(crate::simd::active(), x, y, z);
}

/// In-place elementwise product `y_i ← y_i · x_i` (dispatched).
#[inline]
pub fn hadamard_in_place(x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    crate::simd::mul_row_with(crate::simd::active(), y, x);
}

/// Sum of all elements.
#[inline]
pub fn asum_signed(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Maximum element (assumes non-empty, no NaN).
#[inline]
pub fn max_elem(x: &[f64]) -> f64 {
    x.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(dot(&x, &y), 35.0);
        assert_eq!(dot(&[], &[]), 0.0);
        // lengths that are not multiples of 4 exercise the tail loop
        assert_eq!(dot(&x[..3], &y[..3]), 22.0);
    }

    #[test]
    fn axpy_scal() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        scal(0.5, &mut y);
        assert_eq!(y, [6.0, 12.0]);
    }

    #[test]
    fn nrm2_robust() {
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        // values whose squares would overflow naive summation
        let big = 1e200;
        assert!((nrm2(&[big, big]) - big * 2f64.sqrt()).abs() / big < 1e-14);
        // values whose squares would underflow to zero naively
        let tiny = 1e-200;
        assert!((nrm2(&[tiny, tiny]) - tiny * 2f64.sqrt()).abs() / tiny < 1e-14);
        assert_eq!(nrm2(&[]), 0.0);
        assert_eq!(nrm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn iamax_cases() {
        assert_eq!(iamax(&[1.0, -5.0, 3.0]), Some(1));
        assert_eq!(iamax(&[]), None);
        assert_eq!(iamax(&[0.0]), Some(0));
    }

    #[test]
    fn hadamard_variants() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 5.0, 6.0];
        let mut z = [0.0; 3];
        hadamard(&x, &y, &mut z);
        assert_eq!(z, [4.0, 10.0, 18.0]);
        let mut w = y;
        hadamard_in_place(&x, &mut w);
        assert_eq!(w, [4.0, 10.0, 18.0]);
    }

    #[test]
    fn reductions() {
        assert_eq!(asum_signed(&[1.0, -2.0, 4.0]), 3.0);
        assert_eq!(max_elem(&[1.0, 7.0, -3.0]), 7.0);
    }

    #[test]
    fn neumaier_exact_on_classic_cancellation() {
        // 1 + 1e100 + 1 - 1e100 = 2; a naive sum returns 0.
        assert_eq!(neumaier_sum(&[1.0, 1e100, 1.0, -1e100]), 2.0);
    }

    #[test]
    fn neumaier_matches_naive_on_benign_input() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        let naive: f64 = xs.iter().sum();
        assert!((neumaier_sum(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn neumaier_propagates_negative_infinity() {
        // A −∞ term (zero-likelihood pattern) must yield −∞, not NaN.
        assert_eq!(
            neumaier_sum(&[-1.5, f64::NEG_INFINITY, -2.5]),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn neumaier_deterministic_across_restarts() {
        let xs: Vec<f64> = (0..257).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let a = neumaier_sum(&xs);
        let b = neumaier_sum(&xs);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
