use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense, row-major, heap-allocated `f64` matrix.
///
/// The storage layout matches C convention (row-major), which the paper's
/// "rules of thumb" (§V-C) call out as something an implementation must
/// respect for performance: all kernels in this crate walk memory in
/// row-major order.
///
/// ## Lane-aligned storage
///
/// Rows are `stride` elements apart, where `stride >= cols`. Plain
/// constructors produce `stride == cols` (dense, the historical layout);
/// [`Mat::zeros_padded`] rounds the stride up to the SIMD lane width
/// ([`crate::simd::LANE`]), so a 61-wide codon row occupies 64 slots and
/// the output-parallel kernel loops run without a scalar tail. Padding is
/// invisible to the logical API: indexing, [`Mat::row`], equality, and
/// every shape query speak `rows × cols`. Pad elements are kept at zero
/// by construction and never contribute to logical results (reductions
/// always run over the logical width).
pub struct Mat {
    rows: usize,
    cols: usize,
    /// Distance in elements between consecutive rows (`>= cols`).
    stride: usize,
    data: Vec<f64>,
}

impl Clone for Mat {
    fn clone(&self) -> Self {
        Mat {
            rows: self.rows,
            cols: self.cols,
            stride: self.stride,
            data: self.data.clone(),
        }
    }
}

/// Logical equality: shapes and the `rows × cols` elements, ignoring any
/// difference in row stride / padding.
impl PartialEq for Mat {
    fn eq(&self, other: &Mat) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && (0..self.rows).all(|i| self.row(i) == other.row(i))
    }
}

impl Mat {
    /// Create a `rows × cols` matrix of zeros (dense, `stride == cols`).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            stride: cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a `rows × cols` zero matrix whose row stride is rounded up
    /// to the SIMD lane width (61 → 64), so the column dimension of the
    /// level-3 kernels is tail-free. Logically identical to
    /// [`Mat::zeros`]; only the memory layout differs.
    pub fn zeros_padded(rows: usize, cols: usize) -> Self {
        let stride = if cols == 0 {
            0
        } else {
            cols.div_ceil(crate::simd::LANE) * crate::simd::LANE
        };
        Mat {
            rows,
            cols,
            stride,
            data: vec![0.0; rows * stride],
        }
    }

    /// Create a `rows × cols` matrix with every element equal to `v`.
    pub fn filled(rows: usize, cols: usize, v: f64) -> Self {
        Mat {
            rows,
            cols,
            stride: cols,
            data: vec![v; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Mat::from_vec: data length mismatch"
        );
        Mat {
            rows,
            cols,
            stride: cols,
            data,
        }
    }

    /// Build from explicit rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Mat::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Mat {
            rows: r,
            cols: c,
            stride: c,
            data,
        }
    }

    /// Build a diagonal matrix from a slice of diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Mat::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Build an `n × n` matrix from a function of the index pair.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Distance in elements between consecutive rows (`>= cols`; equal for
    /// dense matrices, a multiple of the lane width for padded ones).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// True if rows carry lane padding (`stride > cols`).
    #[inline]
    pub fn is_padded(&self) -> bool {
        self.stride > self.cols
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major storage **including any lane
    /// padding** (pad elements are zero). Whole-storage elementwise
    /// operations (zeroing, clamping, finiteness checks, Frobenius-style
    /// accumulations) remain correct because the pads are zero; positional
    /// interpretation must use [`Mat::stride`], or [`Mat::row`] instead.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage (see
    /// [`Mat::as_slice`] for the padding caveat).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice (logical width — excludes padding).
    #[inline]
    // check: allow(panic-free-hot-path) slice window arithmetic bounded by stride*rows, checked in debug builds
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.stride..i * self.stride + self.cols]
    }

    /// Mutably borrow row `i` as a slice (logical width).
    #[inline]
    // check: allow(panic-free-hot-path) slice window arithmetic bounded by stride*rows, checked in debug builds
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        let s = self.stride;
        &mut self.data[i * s..i * s + self.cols]
    }

    /// Mutably borrow two distinct rows at once (logical width).
    ///
    /// # Panics
    /// Panics if `i == j` or either index is out of bounds.
    pub fn two_rows_mut(&mut self, i: usize, j: usize) -> (&mut [f64], &mut [f64]) {
        assert!(i != j && i < self.rows && j < self.rows);
        let (s, c) = (self.stride, self.cols);
        if i < j {
            let (a, b) = self.data.split_at_mut(j * s);
            (&mut a[i * s..i * s + c], &mut b[..c])
        } else {
            let (a, b) = self.data.split_at_mut(i * s);
            let (rj, ri) = (&mut a[j * s..j * s + c], &mut b[..c]);
            (ri, rj)
        }
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows)
            .map(|i| self.data[i * self.stride + j])
            .collect()
    }

    /// Extract the diagonal (of a square or rectangular matrix).
    pub fn diag(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.data[i * self.stride + i]).collect()
    }

    /// Return the transpose as a new (dense) matrix.
    // check: allow(panic-free-hot-path) i,j iterate exactly 0..rows x 0..cols of both matrices
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.stride + j];
            }
        }
        t
    }

    /// Elementwise in-place scaling. (Applied to the whole storage; pads
    /// stay at ±0, which never reaches a logical result.)
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Fill with zeros, keeping the allocation (and layout).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Matrix × vector convenience (allocating). Prefer [`crate::gemv::gemv`] in
    /// hot paths.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "Mat::mul_vec: dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut s = 0.0;
            for (a, b) in row.iter().zip(x) {
                s += a * b;
            }
            y[i] = s;
        }
        y
    }

    /// Multiply this matrix by a diagonal matrix from the **right**:
    /// `self · diag(d)` — scales column `j` by `d[j]`. O(n²).
    ///
    /// This is step 3 of the paper's expm pipeline (`Y := X e^{Λt/2}`).
    // check: allow(panic-free-hot-path) length assert is the documented contract for diagonal scaling
    pub fn mul_diag_right(&self, d: &[f64]) -> Mat {
        assert_eq!(self.cols, d.len(), "mul_diag_right: dimension mismatch");
        let mut out = self.clone();
        for i in 0..out.rows {
            let row = out.row_mut(i);
            for (v, &s) in row.iter_mut().zip(d) {
                *v *= s;
            }
        }
        out
    }

    /// Multiply this matrix by a diagonal matrix from the **left**:
    /// `diag(d) · self` — scales row `i` by `d[i]`. O(n²).
    // check: allow(panic-free-hot-path) length assert is the documented contract for diagonal scaling
    pub fn mul_diag_left(&self, d: &[f64]) -> Mat {
        assert_eq!(self.rows, d.len(), "mul_diag_left: dimension mismatch");
        let mut out = self.clone();
        for (i, &s) in d.iter().enumerate() {
            for v in out.row_mut(i) {
                *v *= s;
            }
        }
        out
    }

    /// `true` if `|self - other|` is elementwise within `tol` (logical
    /// elements only).
    pub fn approx_eq(&self, other: &Mat, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && (0..self.rows).all(|i| {
                self.row(i)
                    .iter()
                    .zip(other.row(i))
                    .all(|(a, b)| (a - b).abs() <= tol)
            })
    }

    /// Maximum absolute elementwise difference to `other` (logical
    /// elements only).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for (a, b) in self.row(i).iter().zip(other.row(i)) {
                worst = worst.max((a - b).abs());
            }
        }
        worst
    }

    /// Symmetrize in place: `self = (self + selfᵀ) / 2`. Useful to clean up
    /// rounding noise on theoretically symmetric matrices.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize: square matrix required");
        let n = self.rows;
        let s = self.stride;
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = 0.5 * (self.data[i * s + j] + self.data[j * s + i]);
                self.data[i * s + j] = avg;
                self.data[j * s + i] = avg;
            }
        }
    }

    /// Maximum absolute asymmetry `max |a_ij - a_ji|`.
    pub fn asymmetry(&self) -> f64 {
        assert!(self.is_square());
        let n = self.rows;
        let s = self.stride;
        let mut worst = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                worst = worst.max((self.data[i * s + j] - self.data[j * s + i]).abs());
            }
        }
        worst
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.stride + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.stride + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                write!(f, "{:>12.6}", self[(i, j)])?;
                if j + 1 < show_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Mat::zeros(3, 4);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 4);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Mat::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        let _ = Mat::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Mat::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.transpose(), m);
        assert_eq!(t[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn diag_ops() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let d = [10.0, 100.0];
        let r = m.mul_diag_right(&d);
        assert_eq!(r, Mat::from_rows(&[&[10.0, 200.0], &[30.0, 400.0]]));
        let l = m.mul_diag_left(&d);
        assert_eq!(l, Mat::from_rows(&[&[10.0, 20.0], &[300.0, 400.0]]));
        assert_eq!(Mat::from_diag(&d).diag(), vec![10.0, 100.0]);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn symmetrize_and_asymmetry() {
        let mut m = Mat::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]);
        assert_eq!(m.asymmetry(), 2.0);
        m.symmetrize();
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.asymmetry(), 0.0);
    }

    #[test]
    fn two_rows_mut_disjoint() {
        let mut m = Mat::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let (a, b) = m.two_rows_mut(3, 1);
        assert_eq!(a, &[9.0, 10.0, 11.0]);
        assert_eq!(b, &[3.0, 4.0, 5.0]);
        a[0] = -1.0;
        b[2] = -2.0;
        assert_eq!(m[(3, 0)], -1.0);
        assert_eq!(m[(1, 2)], -2.0);
    }

    #[test]
    fn approx_and_diff() {
        let a = Mat::filled(2, 2, 1.0);
        let mut b = a.clone();
        b[(1, 1)] = 1.0 + 1e-12;
        assert!(a.approx_eq(&b, 1e-10));
        assert!(!a.approx_eq(&b, 1e-14));
        assert!((a.max_abs_diff(&b) - 1e-12).abs() < 1e-15);
    }

    #[test]
    fn padded_layout_is_logically_invisible() {
        let mut p = Mat::zeros_padded(5, 61);
        assert_eq!(p.stride(), 64);
        assert!(p.is_padded());
        assert_eq!(p.row(0).len(), 61);
        for i in 0..5 {
            for j in 0..61 {
                p[(i, j)] = (i * 61 + j) as f64;
            }
        }
        let d = Mat::from_fn(5, 61, |i, j| (i * 61 + j) as f64);
        assert_eq!(p, d);
        assert_eq!(d, p);
        assert!(p.approx_eq(&d, 0.0));
        assert_eq!(p.max_abs_diff(&d), 0.0);
        assert_eq!(p.col(60), d.col(60));
        assert_eq!(p.transpose(), d.transpose());
        // pads stay zero
        assert!(p.as_slice().chunks(64).all(|r| r[61..] == [0.0; 3]));
    }

    #[test]
    fn padded_row_ops_and_two_rows() {
        let mut p = Mat::zeros_padded(4, 6);
        assert_eq!(p.stride(), 8);
        for i in 0..4 {
            for (j, v) in p.row_mut(i).iter_mut().enumerate() {
                *v = (10 * i + j) as f64;
            }
        }
        let (a, b) = p.two_rows_mut(3, 1);
        assert_eq!(a, &[30.0, 31.0, 32.0, 33.0, 34.0, 35.0]);
        assert_eq!(b, &[10.0, 11.0, 12.0, 13.0, 14.0, 15.0]);

        let mut q = Mat::zeros_padded(6, 6);
        for i in 0..6 {
            for j in 0..6 {
                q[(i, j)] = (i * 7 + j * 3) as f64;
            }
        }
        q.symmetrize();
        assert_eq!(q.asymmetry(), 0.0);
        let d = q.diag();
        assert_eq!(d.len(), 6);
        assert_eq!(d[2], (2 * 7 + 2 * 3) as f64);
    }

    #[test]
    fn lane_exact_width_gets_no_padding() {
        let p = Mat::zeros_padded(3, 64);
        assert_eq!(p.stride(), 64);
        assert!(!p.is_padded());
        let e = Mat::zeros_padded(0, 0);
        assert_eq!(e.stride(), 0);
    }
}
