//! Cholesky factorization for symmetric positive-definite matrices.
//!
//! Used for covariance-style computations downstream of fitting (e.g.
//! observed-information standard errors) and as another independently
//! verifiable factorization for the test suite.

use crate::{LinalgError, Mat, Result};

/// Lower-triangular Cholesky factor: `A = L·Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Mat,
}

impl Cholesky {
    /// Factorize a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read.
    ///
    /// # Errors
    /// [`LinalgError::NotSquare`] for rectangular input;
    /// [`LinalgError::Singular`] if a pivot is not strictly positive
    /// (matrix not positive definite).
    pub fn new(a: &Mat) -> Result<Cholesky> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                op: "cholesky",
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::Singular { op: "cholesky" });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor.
    pub fn factor(&self) -> &Mat {
        &self.l
    }

    /// Solve `A·x = b` by forward/back substitution.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "Cholesky::solve: rhs length mismatch");
        // L·y = b
        let mut y = b.to_vec();
        for i in 0..n {
            let mut s = y[i];
            for j in 0..i {
                s -= self.l[(i, j)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Lᵀ·x = y
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        y
    }

    /// log(det A) = 2 Σ log L_ii (numerically safe for tiny/huge
    /// determinants).
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Transpose};

    fn spd(n: usize, seed: u64) -> Mat {
        // A = B·Bᵀ + n·I is SPD.
        let mut state = seed | 1;
        let b = Mat::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        let mut a = matmul(&b, Transpose::No, &b, Transpose::Yes);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn reconstructs() {
        for n in [1usize, 3, 10] {
            let a = spd(n, n as u64);
            let ch = Cholesky::new(&a).unwrap();
            let rec = matmul(ch.factor(), Transpose::No, ch.factor(), Transpose::Yes);
            assert!(rec.approx_eq(&a, 1e-10), "n={n}");
        }
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd(6, 9);
        let b: Vec<f64> = (0..6).map(|i| (i as f64).cos()).collect();
        let ch = Cholesky::new(&a).unwrap();
        let lu = crate::Lu::new(&a).unwrap();
        let x1 = ch.solve(&b);
        let x2 = lu.solve(&b);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn log_det_matches_lu() {
        let a = spd(5, 4);
        let ch = Cholesky::new(&a).unwrap();
        let lu = crate::Lu::new(&a).unwrap();
        assert!((ch.log_det() - lu.det().ln()).abs() < 1e-10);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            Cholesky::new(&Mat::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
