//! Property-based tests for the parameter transforms: the bijection and
//! domain guarantees BFGS relies on must hold for arbitrary inputs.

use proptest::prelude::*;
use slim_opt::{Block, BlockTransform};

fn h1_layout(n_branches: usize) -> BlockTransform {
    BlockTransform::new(vec![
        Block::LowerBounded { lo: 1e-3 },
        Block::BoxBounded {
            lo: 1e-6,
            hi: 1.0 - 1e-6,
        },
        Block::LowerBounded { lo: 1.0 },
        Block::SimplexWithRest { dim: 2 },
        Block::BoxBoundedVec {
            lo: 1e-6,
            hi: 50.0,
            count: n_branches,
        },
    ])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// Any unconstrained vector maps into the valid parameter domain.
    #[test]
    fn constrained_image_respects_domains(
        z in proptest::collection::vec(-30.0f64..30.0, 9),
    ) {
        let t = h1_layout(4);
        let x = t.to_constrained(&z);
        prop_assert!(x[0] > 1e-3);                      // κ
        prop_assert!(x[1] > 0.0 && x[1] < 1.0);         // ω0
        prop_assert!(x[2] >= 1.0);                      // ω2
        prop_assert!(x[3] > 0.0 && x[4] > 0.0);         // p0, p1
        prop_assert!(x[3] + x[4] < 1.0 + 1e-12);
        for &b in &x[5..] {
            prop_assert!(b > 1e-6 && b < 50.0);
        }
    }

    /// Round trip constrained → unconstrained → constrained is identity
    /// (within float tolerance) on interior points.
    #[test]
    fn roundtrip_interior(
        kappa in 0.1f64..20.0,
        omega0 in 0.01f64..0.95,
        omega2 in 1.01f64..15.0,
        p0 in 0.05f64..0.7,
        p1 in 0.05f64..0.25,
        bl in proptest::collection::vec(0.001f64..10.0, 4),
    ) {
        let t = h1_layout(4);
        let mut x = vec![kappa, omega0, omega2, p0, p1];
        x.extend(bl);
        let z = t.to_unconstrained(&x);
        let back = t.to_constrained(&z);
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-8 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    /// The map is continuous-ish: small z perturbations make small x
    /// perturbations (no jumps from clamping in the working range).
    #[test]
    fn locally_smooth(
        z in proptest::collection::vec(-5.0f64..5.0, 9),
        idx in 0usize..9,
        eps in 1e-7f64..1e-5,
    ) {
        let t = h1_layout(4);
        let x1 = t.to_constrained(&z);
        let mut z2 = z.clone();
        z2[idx] += eps;
        let x2 = t.to_constrained(&z2);
        for (a, b) in x1.iter().zip(&x2) {
            // Lipschitz-ish bound: transforms have derivative O(scale).
            prop_assert!((a - b).abs() < 100.0 * eps * (1.0 + a.abs()), "{a} -> {b}");
        }
    }
}
