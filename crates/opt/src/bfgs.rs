//! Dense BFGS quasi-Newton minimization.
//!
//! The paper (§II-B) names BFGS as CodeML's maximizer. This implementation
//! minimizes (callers pass the *negative* log-likelihood) with:
//!
//! * finite-difference gradients ([`crate::numgrad`]) — the objective is a
//!   tree likelihood with no cheap analytic gradient;
//! * an Armijo backtracking line search with quadratic interpolation
//!   (full strong-Wolfe would double the already-dominant gradient cost);
//! * the standard inverse-Hessian BFGS update, skipped when curvature
//!   `sᵀy` is too small to be trustworthy;
//! * iteration and function-evaluation accounting, because Table III of
//!   the paper reports iteration counts and both engines must report them
//!   identically.

use crate::numgrad::{central_gradient_delta, forward_gradient_delta, GradMode, ParamDelta};

/// Knobs for [`minimize`].
#[derive(Debug, Clone)]
pub struct BfgsOptions {
    /// Maximum BFGS iterations (default 500).
    pub max_iterations: usize,
    /// Infinity-norm gradient tolerance, relative to `1 + |f|`.
    pub grad_tol: f64,
    /// Relative function-change tolerance between accepted steps.
    pub f_tol: f64,
    /// Finite-difference flavor for gradients.
    pub grad_mode: GradMode,
    /// Maximum backtracking halvings per line search.
    pub max_backtracks: usize,
}

impl Default for BfgsOptions {
    fn default() -> Self {
        BfgsOptions {
            max_iterations: 500,
            grad_tol: 1e-4,
            f_tol: 1e-9,
            grad_mode: GradMode::Central,
            max_backtracks: 40,
        }
    }
}

/// Why the optimizer stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminationReason {
    /// Gradient infinity-norm below tolerance.
    GradientConverged,
    /// Function change between accepted iterates below tolerance.
    FunctionConverged,
    /// Iteration budget exhausted.
    MaxIterations,
    /// No acceptable step found along the search direction (typically
    /// means the solution is at finite-difference noise level).
    LineSearchFailed,
}

/// Result of a minimization run.
#[derive(Debug, Clone)]
pub struct BfgsResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub f: f64,
    /// Gradient at `x` (from the last evaluation).
    pub grad: Vec<f64>,
    /// Number of BFGS iterations performed (the paper's "Iterations").
    pub iterations: usize,
    /// Total objective evaluations, including finite differences.
    pub f_evals: usize,
    /// Why the run stopped.
    pub reason: TerminationReason,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn inf_norm(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).fold(0.0, f64::max)
}

/// Minimize `f` starting from `x0`.
///
/// The objective must return a finite value for any input reachable from
/// `x0` (callers use [`crate::transform`] to keep model parameters in
/// their domains); non-finite values are treated as +∞ by the line search.
pub fn minimize(mut f: impl FnMut(&[f64]) -> f64, x0: &[f64], opts: &BfgsOptions) -> BfgsResult {
    minimize_delta(move |x, _| f(x), x0, opts)
}

/// [`minimize`] with change reporting: every objective evaluation receives
/// a [`ParamDelta`] naming the coordinates that may differ from the point
/// of the immediately preceding evaluation, letting a caching evaluator
/// (the likelihood engine's dirty-path reuse layer) skip clean work. The
/// delta is an upper bound and carries no numeric content — the iterate
/// sequence is identical to [`minimize`]'s.
pub fn minimize_delta(
    f: impl FnMut(&[f64], &ParamDelta) -> f64,
    x0: &[f64],
    opts: &BfgsOptions,
) -> BfgsResult {
    // check: allow(det-wallclock) feeds the obs fit-duration histogram only
    let fit_start = std::time::Instant::now();
    let mut fit_span = slim_trace::span("opt.fit", "opt");
    fit_span.arg_str("algo", "bfgs");
    let n = x0.len();
    let f_cell = std::cell::RefCell::new(f);
    let evals_cell = std::cell::Cell::new(0usize);
    let grads_cell = std::cell::Cell::new(0usize);
    let ls_cell = std::cell::Cell::new(0usize);
    let eval = |x: &[f64], delta: &ParamDelta| -> f64 {
        evals_cell.set(evals_cell.get() + 1);
        let v = (f_cell.borrow_mut())(x, delta);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    };
    // `base_delta` = coordinates where `x` may differ from the point the
    // objective saw immediately before this gradient call.
    let gradient = |x: &[f64], fx: f64, base_delta: &[usize]| -> Vec<f64> {
        grads_cell.set(grads_cell.get() + 1);
        match opts.grad_mode {
            GradMode::Central => central_gradient_delta(|p, d| eval(p, d), x, base_delta),
            GradMode::Forward => forward_gradient_delta(|p, d| eval(p, d), x, fx, base_delta),
        }
    };

    let mut x = x0.to_vec();
    let mut fx = eval(&x, &ParamDelta::Full);
    assert!(fx.is_finite(), "objective not finite at the starting point");

    let mut g = gradient(&x, fx, &[]);
    // Coordinates where the objective's most recent evaluation point may
    // still differ from the current iterate `x`: the gradient's trailing
    // probe perturbs the last coordinate and restores it unobserved.
    let mut divergence: Vec<usize> = if n > 0 { vec![n - 1] } else { Vec::new() };

    // Inverse Hessian approximation, row-major n×n, initialized to I.
    let mut h = vec![0.0f64; n * n];
    for i in 0..n {
        h[i * n + i] = 1.0;
    }

    let mut iterations = 0usize;
    let mut reason = TerminationReason::MaxIterations;

    while iterations < opts.max_iterations {
        if inf_norm(&g) <= opts.grad_tol * (1.0 + fx.abs()) {
            reason = TerminationReason::GradientConverged;
            break;
        }
        iterations += 1;
        // One span per iteration: the machine-readable convergence
        // trace (lnL, gradient norm, step size, line-search evals ride
        // on the end event).
        let mut it_span = slim_trace::span("opt.iteration", "opt");
        it_span.arg_u64("iter", iterations as u64);
        let ls_before = ls_cell.get();

        // Search direction d = -H g.
        let mut d = vec![0.0f64; n];
        for i in 0..n {
            let row = &h[i * n..(i + 1) * n];
            d[i] = -dot(row, &g);
        }
        let mut dg = dot(&d, &g);
        if dg >= 0.0 {
            // H lost positive definiteness (rounding): reset to steepest
            // descent.
            for i in 0..n {
                for j in 0..n {
                    h[i * n + j] = if i == j { 1.0 } else { 0.0 };
                }
            }
            for i in 0..n {
                d[i] = -g[i];
            }
            dg = dot(&d, &g);
            if dg >= 0.0 {
                reason = TerminationReason::GradientConverged;
                break;
            }
        }

        // Backtracking Armijo line search with quadratic interpolation.
        // Every trial moves x along the support of d; the first trial
        // additionally carries whatever divergence the last gradient left.
        // check: allow(det-float-cmp) exact-zero support test — any nonzero direction component may move its coordinate
        let supp: Vec<usize> = (0..n).filter(|&i| d[i] != 0.0).collect();
        const C1: f64 = 1e-4;
        let mut alpha = 1.0f64;
        let mut trial = vec![0.0f64; n];
        let mut accepted = false;
        let mut f_new = fx;
        let mut first_trial = true;
        for _ in 0..opts.max_backtracks {
            ls_cell.set(ls_cell.get() + 1);
            for i in 0..n {
                trial[i] = x[i] + alpha * d[i];
            }
            let delta = if first_trial {
                first_trial = false;
                ParamDelta::union_of(&divergence, &supp)
            } else {
                ParamDelta::Coords(supp.clone())
            };
            f_new = eval(&trial, &delta);
            if f_new <= fx + C1 * alpha * dg {
                accepted = true;
                break;
            }
            // Quadratic model through (0, fx), slope dg, (alpha, f_new).
            let denom = 2.0 * (f_new - fx - dg * alpha);
            let alpha_q = if denom > 0.0 {
                -dg * alpha * alpha / denom
            } else {
                0.5 * alpha
            };
            alpha = alpha_q.clamp(0.1 * alpha, 0.5 * alpha);
        }
        if !accepted {
            reason = TerminationReason::LineSearchFailed;
            break;
        }

        // The accepted trial was itself the most recent evaluation, so
        // the gradient's base point starts with no divergence.
        let g_new = gradient(&trial, f_new, &[]);
        divergence = if n > 0 { vec![n - 1] } else { Vec::new() };

        // BFGS update with curvature guard.
        let s: Vec<f64> = (0..n).map(|i| trial[i] - x[i]).collect();
        let y: Vec<f64> = (0..n).map(|i| g_new[i] - g[i]).collect();
        let sy = dot(&s, &y);
        let s_norm = inf_norm(&s);
        if sy > 1e-12 * s_norm.max(1e-30) {
            let rho = 1.0 / sy;
            // hy = H·y
            let mut hy = vec![0.0f64; n];
            for i in 0..n {
                hy[i] = dot(&h[i * n..(i + 1) * n], &y);
            }
            let yhy = dot(&y, &hy);
            let coef = rho * (1.0 + rho * yhy);
            for i in 0..n {
                for j in 0..n {
                    h[i * n + j] += coef * s[i] * s[j] - rho * (s[i] * hy[j] + hy[i] * s[j]);
                }
            }
        }

        let f_change = (fx - f_new).abs();
        x = trial.clone();
        fx = f_new;
        g = g_new;

        // Callers minimize the negative log-likelihood, so -fx is lnL.
        it_span.arg_f64("lnl", -fx);
        it_span.arg_f64("grad_norm", inf_norm(&g));
        it_span.arg_f64("step", alpha);
        it_span.arg_u64("ls_evals", (ls_cell.get() - ls_before) as u64);

        if f_change <= opts.f_tol * (1.0 + fx.abs()) {
            reason = TerminationReason::FunctionConverged;
            break;
        }
    }

    let m = crate::obsm::metrics();
    m.fits.inc();
    m.iterations.add(iterations as u64);
    m.f_evals.add(evals_cell.get() as u64);
    m.grad_evals.add(grads_cell.get() as u64);
    m.line_search_steps.add(ls_cell.get() as u64);
    m.fit_seconds.observe(fit_start.elapsed());

    BfgsResult {
        x,
        f: fx,
        grad: g,
        iterations,
        f_evals: evals_cell.get(),
        reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_bowl() {
        // f = (x-1)² + 4(y+2)²
        let f = |x: &[f64]| (x[0] - 1.0).powi(2) + 4.0 * (x[1] + 2.0).powi(2);
        let r = minimize(f, &[0.0, 0.0], &BfgsOptions::default());
        assert!((r.x[0] - 1.0).abs() < 1e-5, "{:?}", r.x);
        assert!((r.x[1] + 2.0).abs() < 1e-5, "{:?}", r.x);
        assert!(r.f < 1e-9);
        assert!(r.iterations <= 20);
    }

    #[test]
    fn rosenbrock_2d() {
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = minimize(
            f,
            &[-1.2, 1.0],
            &BfgsOptions {
                max_iterations: 2000,
                ..Default::default()
            },
        );
        assert!(
            (r.x[0] - 1.0).abs() < 1e-3,
            "{:?} after {} iters ({:?})",
            r.x,
            r.iterations,
            r.reason
        );
        assert!((r.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn higher_dimensional_quadratic() {
        // f = Σ (i+1)(x_i - i)²
        let f = |x: &[f64]| {
            x.iter()
                .enumerate()
                .map(|(i, &v)| (i + 1) as f64 * (v - i as f64).powi(2))
                .sum::<f64>()
        };
        let r = minimize(f, &[0.0; 10], &BfgsOptions::default());
        for i in 0..10 {
            assert!((r.x[i] - i as f64).abs() < 1e-4, "i={i}: {}", r.x[i]);
        }
    }

    #[test]
    fn already_at_minimum() {
        let f = |x: &[f64]| x[0] * x[0];
        let r = minimize(f, &[0.0], &BfgsOptions::default());
        assert_eq!(r.reason, TerminationReason::GradientConverged);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn forward_mode_cheaper() {
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2);
        let central = minimize(f, &[0.0, 0.0], &BfgsOptions::default());
        let forward = minimize(
            f,
            &[0.0, 0.0],
            &BfgsOptions {
                grad_mode: GradMode::Forward,
                ..Default::default()
            },
        );
        assert!((forward.x[0] - 3.0).abs() < 1e-3);
        assert!(forward.f_evals < central.f_evals);
    }

    #[test]
    fn infinity_treated_as_rejection() {
        // Objective infinite left of x = 0; minimum at x = 1.
        let f = |x: &[f64]| {
            if x[0] <= 0.0 {
                f64::INFINITY
            } else {
                (x[0] - 1.0).powi(2)
            }
        };
        let r = minimize(f, &[2.0], &BfgsOptions::default());
        assert!((r.x[0] - 1.0).abs() < 1e-4, "{:?}", r.x);
    }

    #[test]
    fn iteration_cap_respected() {
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = minimize(
            f,
            &[-1.2, 1.0],
            &BfgsOptions {
                max_iterations: 3,
                ..Default::default()
            },
        );
        assert_eq!(r.iterations, 3);
        assert_eq!(r.reason, TerminationReason::MaxIterations);
    }

    #[test]
    #[should_panic(expected = "starting point")]
    fn non_finite_start_panics() {
        let f = |_: &[f64]| f64::NAN;
        let _ = minimize(f, &[0.0], &BfgsOptions::default());
    }

    #[test]
    fn delta_variant_identical_and_honest() {
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let plain = minimize(f, &[-1.2, 1.0], &BfgsOptions::default());
        let mut last: Option<Vec<f64>> = None;
        let audited = minimize_delta(
            |x, d| {
                if let (Some(prev), ParamDelta::Coords(declared)) = (&last, d) {
                    for (i, (&a, &b)) in prev.iter().zip(x).enumerate() {
                        if a.to_bits() != b.to_bits() {
                            assert!(
                                declared.contains(&i),
                                "coordinate {i} changed but delta {declared:?} omits it"
                            );
                        }
                    }
                }
                last = Some(x.to_vec());
                f(x)
            },
            &[-1.2, 1.0],
            &BfgsOptions::default(),
        );
        assert_eq!(plain.f.to_bits(), audited.f.to_bits());
        assert_eq!(plain.x, audited.x);
        assert_eq!(plain.f_evals, audited.f_evals);
        assert_eq!(plain.iterations, audited.iterations);
    }
}
