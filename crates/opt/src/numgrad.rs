//! Finite-difference gradients.
//!
//! CodeML estimates derivatives of the log-likelihood numerically; so do
//! we. Central differences are more accurate (O(h²)); forward differences
//! halve the function-evaluation count (O(h)), which matters because each
//! evaluation is a full tree-likelihood computation.

/// Finite-difference flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GradMode {
    /// Two evaluations per coordinate, O(h²) error.
    #[default]
    Central,
    /// One extra evaluation per coordinate (plus one shared base), O(h)
    /// error.
    Forward,
}

/// Relative step size: cube root of machine epsilon is the classic
/// optimum for central differences on smooth functions.
fn step(x: f64) -> f64 {
    let h = f64::EPSILON.cbrt() * x.abs().max(1.0);
    // Ensure the step is exactly representable around x to reduce rounding.
    let tmp = x + h;
    tmp - x
}

/// Central-difference gradient of `f` at `x`.
pub fn central_gradient(mut f: impl FnMut(&[f64]) -> f64, x: &[f64]) -> Vec<f64> {
    let mut g = vec![0.0; x.len()];
    let mut work = x.to_vec();
    for i in 0..x.len() {
        let h = step(x[i]);
        work[i] = x[i] + h;
        let fp = f(&work);
        work[i] = x[i] - h;
        let fm = f(&work);
        work[i] = x[i];
        g[i] = (fp - fm) / (2.0 * h);
    }
    g
}

/// Forward-difference gradient of `f` at `x`, given `fx = f(x)`.
pub fn forward_gradient(mut f: impl FnMut(&[f64]) -> f64, x: &[f64], fx: f64) -> Vec<f64> {
    let mut g = vec![0.0; x.len()];
    let mut work = x.to_vec();
    for i in 0..x.len() {
        let h = step(x[i]);
        work[i] = x[i] + h;
        let fp = f(&work);
        work[i] = x[i];
        g[i] = (fp - fx) / h;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(x: &[f64]) -> f64 {
        // f = Σ (i+1)·x_i² + x₀x₁
        let mut s = 0.0;
        for (i, &v) in x.iter().enumerate() {
            s += (i + 1) as f64 * v * v;
        }
        if x.len() >= 2 {
            s += x[0] * x[1];
        }
        s
    }

    fn quadratic_grad(x: &[f64]) -> Vec<f64> {
        let mut g: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| 2.0 * (i + 1) as f64 * v)
            .collect();
        if x.len() >= 2 {
            g[0] += x[1];
            g[1] += x[0];
        }
        g
    }

    #[test]
    fn central_matches_analytic() {
        let x = [1.0, -2.0, 0.5];
        let g = central_gradient(quadratic, &x);
        let expect = quadratic_grad(&x);
        for i in 0..3 {
            assert!(
                (g[i] - expect[i]).abs() < 1e-8,
                "i={i}: {} vs {}",
                g[i],
                expect[i]
            );
        }
    }

    #[test]
    fn forward_matches_analytic_coarser() {
        let x = [1.0, -2.0, 0.5];
        let fx = quadratic(&x);
        let g = forward_gradient(quadratic, &x, fx);
        let expect = quadratic_grad(&x);
        for i in 0..3 {
            assert!((g[i] - expect[i]).abs() < 1e-4, "i={i}");
        }
    }

    #[test]
    fn transcendental_function() {
        let f = |x: &[f64]| x[0].sin() * x[1].exp();
        let x = [0.7, 0.3];
        let g = central_gradient(f, &x);
        assert!((g[0] - x[0].cos() * x[1].exp()).abs() < 1e-9);
        assert!((g[1] - x[0].sin() * x[1].exp()).abs() < 1e-9);
    }

    #[test]
    fn gradient_at_minimum_is_zero() {
        let g = central_gradient(quadratic, &[0.0, 0.0, 0.0]);
        for v in g {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn large_coordinates_use_relative_step() {
        // f(x) = x², at x = 1e8 a fixed absolute step would be hopeless.
        let f = |x: &[f64]| x[0] * x[0];
        let g = central_gradient(f, &[1e8]);
        assert!((g[0] - 2e8).abs() / 2e8 < 1e-7);
    }
}
