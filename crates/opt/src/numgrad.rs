//! Finite-difference gradients.
//!
//! CodeML estimates derivatives of the log-likelihood numerically; so do
//! we. Central differences are more accurate (O(h²)); forward differences
//! halve the function-evaluation count (O(h)), which matters because each
//! evaluation is a full tree-likelihood computation.

/// Finite-difference flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GradMode {
    /// Two evaluations per coordinate, O(h²) error.
    #[default]
    Central,
    /// One extra evaluation per coordinate (plus one shared base), O(h)
    /// error.
    Forward,
}

/// Which coordinates of the evaluation point may differ from the point of
/// the **immediately preceding** evaluation of the same objective.
///
/// This is a declaration the optimizer makes to the objective so that a
/// caching evaluator (the likelihood engine's dirty-path reuse layer) can
/// skip revalidating coordinates that provably did not move. It is always
/// an *upper bound*: listing a coordinate that did not actually change is
/// harmless, omitting one that did is a reporting bug (the reuse engine
/// cross-checks the declaration against the observed parameter bits).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ParamDelta {
    /// No claim: any coordinate may have changed (also the right value
    /// for the first evaluation, which has no predecessor).
    #[default]
    Full,
    /// Only the listed coordinates (sorted, deduplicated) may differ.
    Coords(Vec<usize>),
}

impl ParamDelta {
    /// A sparse delta from an arbitrary coordinate list (sorted and
    /// deduplicated here so consumers can rely on canonical form).
    pub fn coords(mut c: Vec<usize>) -> ParamDelta {
        c.sort_unstable();
        c.dedup();
        ParamDelta::Coords(c)
    }

    /// The union of two coordinate lists as a canonical sparse delta.
    pub fn union_of(a: &[usize], b: &[usize]) -> ParamDelta {
        let mut c = Vec::with_capacity(a.len() + b.len());
        c.extend_from_slice(a);
        c.extend_from_slice(b);
        ParamDelta::coords(c)
    }
}

/// Relative step size: cube root of machine epsilon is the classic
/// optimum for central differences on smooth functions.
fn step(x: f64) -> f64 {
    let h = f64::EPSILON.cbrt() * x.abs().max(1.0);
    // Ensure the step is exactly representable around x to reduce rounding.
    let tmp = x + h;
    tmp - x
}

/// Central-difference gradient of `f` at `x`.
pub fn central_gradient(mut f: impl FnMut(&[f64]) -> f64, x: &[f64]) -> Vec<f64> {
    let mut g = vec![0.0; x.len()];
    let mut work = x.to_vec();
    for i in 0..x.len() {
        let h = step(x[i]);
        work[i] = x[i] + h;
        let fp = f(&work);
        work[i] = x[i] - h;
        let fm = f(&work);
        work[i] = x[i];
        g[i] = (fp - fm) / (2.0 * h);
    }
    g
}

/// Forward-difference gradient of `f` at `x`, given `fx = f(x)`.
pub fn forward_gradient(mut f: impl FnMut(&[f64]) -> f64, x: &[f64], fx: f64) -> Vec<f64> {
    let mut g = vec![0.0; x.len()];
    let mut work = x.to_vec();
    for i in 0..x.len() {
        let h = step(x[i]);
        work[i] = x[i] + h;
        let fp = f(&work);
        work[i] = x[i];
        g[i] = (fp - fx) / h;
    }
    g
}

/// The delta describing probe `i`, given the coordinate the previous
/// evaluation perturbed (`prev`) and, for the very first probe, the
/// divergence of the base point from the previous evaluation
/// (`base_delta`).
fn probe_delta(prev: Option<usize>, base_delta: &[usize], i: usize) -> ParamDelta {
    match prev {
        None => ParamDelta::union_of(base_delta, &[i]),
        Some(p) if p == i => ParamDelta::Coords(vec![i]),
        Some(p) => ParamDelta::coords(vec![p, i]),
    }
}

/// Central-difference gradient of `f` at `x`, reporting a [`ParamDelta`]
/// to every probe evaluation.
///
/// `base_delta` lists the coordinates where `x` may differ from the point
/// `f` evaluated *immediately before this call* (empty when `f(x)` itself
/// was the last evaluation). On return, the last point `f` saw differs
/// from `x` only in the final coordinate — callers tracking divergence
/// should record `{x.len() - 1}`.
pub fn central_gradient_delta(
    mut f: impl FnMut(&[f64], &ParamDelta) -> f64,
    x: &[f64],
    base_delta: &[usize],
) -> Vec<f64> {
    let mut g = vec![0.0; x.len()];
    let mut work = x.to_vec();
    let mut prev: Option<usize> = None;
    for i in 0..x.len() {
        let h = step(x[i]);
        work[i] = x[i] + h;
        let fp = f(&work, &probe_delta(prev, base_delta, i));
        work[i] = x[i] - h;
        let fm = f(&work, &ParamDelta::Coords(vec![i]));
        work[i] = x[i];
        prev = Some(i);
        g[i] = (fp - fm) / (2.0 * h);
    }
    g
}

/// Forward-difference gradient of `f` at `x` given `fx = f(x)`, reporting
/// a [`ParamDelta`] to every probe evaluation. Same `base_delta` /
/// trailing-divergence contract as [`central_gradient_delta`].
pub fn forward_gradient_delta(
    mut f: impl FnMut(&[f64], &ParamDelta) -> f64,
    x: &[f64],
    fx: f64,
    base_delta: &[usize],
) -> Vec<f64> {
    let mut g = vec![0.0; x.len()];
    let mut work = x.to_vec();
    let mut prev: Option<usize> = None;
    for i in 0..x.len() {
        let h = step(x[i]);
        work[i] = x[i] + h;
        let fp = f(&work, &probe_delta(prev, base_delta, i));
        work[i] = x[i];
        prev = Some(i);
        g[i] = (fp - fx) / h;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(x: &[f64]) -> f64 {
        // f = Σ (i+1)·x_i² + x₀x₁
        let mut s = 0.0;
        for (i, &v) in x.iter().enumerate() {
            s += (i + 1) as f64 * v * v;
        }
        if x.len() >= 2 {
            s += x[0] * x[1];
        }
        s
    }

    fn quadratic_grad(x: &[f64]) -> Vec<f64> {
        let mut g: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| 2.0 * (i + 1) as f64 * v)
            .collect();
        if x.len() >= 2 {
            g[0] += x[1];
            g[1] += x[0];
        }
        g
    }

    #[test]
    fn central_matches_analytic() {
        let x = [1.0, -2.0, 0.5];
        let g = central_gradient(quadratic, &x);
        let expect = quadratic_grad(&x);
        for i in 0..3 {
            assert!(
                (g[i] - expect[i]).abs() < 1e-8,
                "i={i}: {} vs {}",
                g[i],
                expect[i]
            );
        }
    }

    #[test]
    fn forward_matches_analytic_coarser() {
        let x = [1.0, -2.0, 0.5];
        let fx = quadratic(&x);
        let g = forward_gradient(quadratic, &x, fx);
        let expect = quadratic_grad(&x);
        for i in 0..3 {
            assert!((g[i] - expect[i]).abs() < 1e-4, "i={i}");
        }
    }

    #[test]
    fn transcendental_function() {
        let f = |x: &[f64]| x[0].sin() * x[1].exp();
        let x = [0.7, 0.3];
        let g = central_gradient(f, &x);
        assert!((g[0] - x[0].cos() * x[1].exp()).abs() < 1e-9);
        assert!((g[1] - x[0].sin() * x[1].exp()).abs() < 1e-9);
    }

    #[test]
    fn gradient_at_minimum_is_zero() {
        let g = central_gradient(quadratic, &[0.0, 0.0, 0.0]);
        for v in g {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn large_coordinates_use_relative_step() {
        // f(x) = x², at x = 1e8 a fixed absolute step would be hopeless.
        let f = |x: &[f64]| x[0] * x[0];
        let g = central_gradient(f, &[1e8]);
        assert!((g[0] - 2e8).abs() / 2e8 < 1e-7);
    }

    /// Objective wrapper that panics if a declared delta omits a
    /// coordinate that actually changed since the previous evaluation.
    struct DeltaAudit {
        last: Option<Vec<f64>>,
    }

    impl DeltaAudit {
        fn observe(&mut self, x: &[f64], delta: &ParamDelta) {
            if let (Some(last), ParamDelta::Coords(declared)) = (&self.last, delta) {
                for (i, (&a, &b)) in last.iter().zip(x).enumerate() {
                    if a.to_bits() != b.to_bits() {
                        assert!(
                            declared.contains(&i),
                            "coordinate {i} changed but delta {declared:?} omits it"
                        );
                    }
                }
            }
            self.last = Some(x.to_vec());
        }
    }

    #[test]
    fn central_delta_matches_plain_and_declares_honestly() {
        let x = [1.0, -2.0, 0.5];
        let mut audit = DeltaAudit { last: None };
        // Pretend the previous evaluation diverged from x in coordinate 1.
        let mut before = x.to_vec();
        before[1] += 0.25;
        audit.last = Some(before);
        let g = central_gradient_delta(
            |p, d| {
                audit.observe(p, d);
                quadratic(p)
            },
            &x,
            &[1],
        );
        let plain = central_gradient(quadratic, &x);
        assert_eq!(g, plain, "delta variant must not change the arithmetic");
    }

    #[test]
    fn forward_delta_matches_plain_and_declares_honestly() {
        let x = [1.0, -2.0, 0.5];
        let fx = quadratic(&x);
        let mut audit = DeltaAudit {
            last: Some(x.to_vec()),
        };
        let g = forward_gradient_delta(
            |p, d| {
                audit.observe(p, d);
                quadratic(p)
            },
            &x,
            fx,
            &[],
        );
        let plain = forward_gradient(quadratic, &x, fx);
        assert_eq!(g, plain);
    }

    #[test]
    fn delta_canonical_form() {
        assert_eq!(
            ParamDelta::coords(vec![3, 1, 3, 0]),
            ParamDelta::Coords(vec![0, 1, 3])
        );
        assert_eq!(
            ParamDelta::union_of(&[2, 0], &[1, 2]),
            ParamDelta::Coords(vec![0, 1, 2])
        );
    }
}
