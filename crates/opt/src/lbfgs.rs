//! Limited-memory BFGS (L-BFGS).
//!
//! Dense BFGS keeps an n×n inverse-Hessian approximation — fine for the
//! paper's datasets (≤ ~200 parameters on the 95-species tree) but
//! quadratic in memory and per-iteration update cost. L-BFGS reconstructs
//! the search direction from the last `m` curvature pairs with the
//! two-loop recursion (Nocedal & Wright, Alg. 7.4), making optimizer cost
//! linear in the parameter count — the right choice for the FastCodeML
//! direction of genome-scale trees.

use crate::bfgs::{BfgsOptions, BfgsResult, TerminationReason};
use crate::numgrad::{central_gradient_delta, forward_gradient_delta, GradMode, ParamDelta};
use std::collections::VecDeque;

/// Number of stored curvature pairs.
const MEMORY: usize = 10;

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn inf_norm(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).fold(0.0, f64::max)
}

/// Minimize `f` from `x0` with L-BFGS, reusing [`BfgsOptions`] (the
/// `max_backtracks`, tolerance and gradient-mode knobs mean the same).
pub fn minimize_lbfgs(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    opts: &BfgsOptions,
) -> BfgsResult {
    minimize_lbfgs_delta(move |x, _| f(x), x0, opts)
}

/// [`minimize_lbfgs`] with change reporting: every objective evaluation
/// receives a [`ParamDelta`] naming the coordinates that may differ from
/// the immediately preceding evaluation's point (same contract as
/// [`crate::bfgs::minimize_delta`]). The iterate sequence is identical to
/// [`minimize_lbfgs`]'s.
pub fn minimize_lbfgs_delta(
    f: impl FnMut(&[f64], &ParamDelta) -> f64,
    x0: &[f64],
    opts: &BfgsOptions,
) -> BfgsResult {
    // check: allow(det-wallclock) feeds the obs fit-duration histogram only
    let fit_start = std::time::Instant::now();
    let mut fit_span = slim_trace::span("opt.fit", "opt");
    fit_span.arg_str("algo", "lbfgs");
    let n = x0.len();
    let f_cell = std::cell::RefCell::new(f);
    let evals_cell = std::cell::Cell::new(0usize);
    let grads_cell = std::cell::Cell::new(0usize);
    let ls_cell = std::cell::Cell::new(0usize);
    let eval = |x: &[f64], delta: &ParamDelta| -> f64 {
        evals_cell.set(evals_cell.get() + 1);
        let v = (f_cell.borrow_mut())(x, delta);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    };
    // `base_delta` = coordinates where `x` may differ from the point the
    // objective saw immediately before this gradient call.
    let gradient = |x: &[f64], fx: f64, base_delta: &[usize]| -> Vec<f64> {
        grads_cell.set(grads_cell.get() + 1);
        match opts.grad_mode {
            GradMode::Central => central_gradient_delta(|p, d| eval(p, d), x, base_delta),
            GradMode::Forward => forward_gradient_delta(|p, d| eval(p, d), x, fx, base_delta),
        }
    };

    let mut x = x0.to_vec();
    let mut fx = eval(&x, &ParamDelta::Full);
    assert!(fx.is_finite(), "objective not finite at the starting point");
    let mut g = gradient(&x, fx, &[]);
    // Coordinates where the objective's most recent evaluation point may
    // still differ from the current iterate `x` (the gradient's trailing
    // probe perturbs the last coordinate and restores it unobserved).
    let mut divergence: Vec<usize> = if n > 0 { vec![n - 1] } else { Vec::new() };

    // Curvature history: (s, y, ρ = 1/yᵀs).
    let mut history: VecDeque<(Vec<f64>, Vec<f64>, f64)> = VecDeque::with_capacity(MEMORY);

    let mut iterations = 0usize;
    let mut reason = TerminationReason::MaxIterations;

    while iterations < opts.max_iterations {
        if inf_norm(&g) <= opts.grad_tol * (1.0 + fx.abs()) {
            reason = TerminationReason::GradientConverged;
            break;
        }
        iterations += 1;
        // Convergence-trace span, same shape as dense BFGS.
        let mut it_span = slim_trace::span("opt.iteration", "opt");
        it_span.arg_u64("iter", iterations as u64);
        let ls_before = ls_cell.get();

        // Two-loop recursion: d = -H·g from the stored pairs.
        let mut q = g.clone();
        let mut alphas = Vec::with_capacity(history.len());
        for (s, y, rho) in history.iter().rev() {
            let alpha = rho * dot(s, &q);
            for (qi, yi) in q.iter_mut().zip(y) {
                *qi -= alpha * yi;
            }
            alphas.push(alpha);
        }
        // Initial Hessian scaling γ = sᵀy / yᵀy from the newest pair.
        if let Some((s, y, _)) = history.back() {
            let gamma = dot(s, y) / dot(y, y).max(f64::MIN_POSITIVE);
            for qi in q.iter_mut() {
                *qi *= gamma;
            }
        }
        for ((s, y, rho), alpha) in history.iter().zip(alphas.into_iter().rev()) {
            let beta = rho * dot(y, &q);
            for (qi, si) in q.iter_mut().zip(s) {
                *qi += (alpha - beta) * si;
            }
        }
        let mut d: Vec<f64> = q.into_iter().map(|v| -v).collect();

        let mut dg = dot(&d, &g);
        if dg >= 0.0 {
            // Fall back to steepest descent and drop stale curvature.
            history.clear();
            d = g.iter().map(|v| -v).collect();
            dg = dot(&d, &g);
            if dg >= 0.0 {
                reason = TerminationReason::GradientConverged;
                break;
            }
        }

        // Backtracking Armijo line search (same scheme as dense BFGS).
        // check: allow(det-float-cmp) exact-zero support test — any nonzero direction component may move its coordinate
        let supp: Vec<usize> = (0..n).filter(|&i| d[i] != 0.0).collect();
        const C1: f64 = 1e-4;
        let mut alpha = 1.0f64;
        let mut trial = vec![0.0f64; n];
        let mut accepted = false;
        let mut f_new = fx;
        let mut first_trial = true;
        for _ in 0..opts.max_backtracks {
            ls_cell.set(ls_cell.get() + 1);
            for i in 0..n {
                trial[i] = x[i] + alpha * d[i];
            }
            let delta = if first_trial {
                first_trial = false;
                ParamDelta::union_of(&divergence, &supp)
            } else {
                ParamDelta::Coords(supp.clone())
            };
            f_new = eval(&trial, &delta);
            if f_new <= fx + C1 * alpha * dg {
                accepted = true;
                break;
            }
            let denom = 2.0 * (f_new - fx - dg * alpha);
            let alpha_q = if denom > 0.0 {
                -dg * alpha * alpha / denom
            } else {
                0.5 * alpha
            };
            alpha = alpha_q.clamp(0.1 * alpha, 0.5 * alpha);
        }
        if !accepted {
            reason = TerminationReason::LineSearchFailed;
            break;
        }

        // The accepted trial was itself the most recent evaluation, so
        // the gradient's base point starts with no divergence.
        let g_new = gradient(&trial, f_new, &[]);
        divergence = if n > 0 { vec![n - 1] } else { Vec::new() };
        let s: Vec<f64> = (0..n).map(|i| trial[i] - x[i]).collect();
        let y: Vec<f64> = (0..n).map(|i| g_new[i] - g[i]).collect();
        let sy = dot(&s, &y);
        if sy > 1e-12 * inf_norm(&s).max(1e-30) {
            if history.len() == MEMORY {
                history.pop_front();
            }
            history.push_back((s, y, 1.0 / sy));
        }

        let f_change = (fx - f_new).abs();
        x = trial.clone();
        fx = f_new;
        g = g_new;

        // Callers minimize the negative log-likelihood, so -fx is lnL.
        it_span.arg_f64("lnl", -fx);
        it_span.arg_f64("grad_norm", inf_norm(&g));
        it_span.arg_f64("step", alpha);
        it_span.arg_u64("ls_evals", (ls_cell.get() - ls_before) as u64);

        if f_change <= opts.f_tol * (1.0 + fx.abs()) {
            reason = TerminationReason::FunctionConverged;
            break;
        }
    }

    let m = crate::obsm::metrics();
    m.fits.inc();
    m.iterations.add(iterations as u64);
    m.f_evals.add(evals_cell.get() as u64);
    m.grad_evals.add(grads_cell.get() as u64);
    m.line_search_steps.add(ls_cell.get() as u64);
    m.fit_seconds.observe(fit_start.elapsed());

    BfgsResult {
        x,
        f: fx,
        grad: g,
        iterations,
        f_evals: evals_cell.get(),
        reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_bowl() {
        let f = |x: &[f64]| (x[0] - 1.0).powi(2) + 4.0 * (x[1] + 2.0).powi(2);
        let r = minimize_lbfgs(f, &[0.0, 0.0], &BfgsOptions::default());
        assert!((r.x[0] - 1.0).abs() < 1e-4, "{:?}", r.x);
        assert!((r.x[1] + 2.0).abs() < 1e-4);
    }

    #[test]
    fn rosenbrock() {
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = minimize_lbfgs(
            f,
            &[-1.2, 1.0],
            &BfgsOptions {
                max_iterations: 3000,
                ..Default::default()
            },
        );
        assert!((r.x[0] - 1.0).abs() < 1e-3, "{:?} ({:?})", r.x, r.reason);
        assert!((r.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn high_dimensional_efficiency() {
        // 200-dimensional separable quadratic: L-BFGS must converge in few
        // iterations and never build an n² object.
        let n = 200;
        let f = |x: &[f64]| {
            x.iter()
                .enumerate()
                .map(|(i, &v)| (1.0 + (i % 7) as f64) * v * v)
                .sum::<f64>()
        };
        let r = minimize_lbfgs(f, &vec![1.0; n], &BfgsOptions::default());
        assert!(r.f < 1e-6, "f = {}", r.f);
        assert!(r.iterations < 100);
    }

    #[test]
    fn agrees_with_dense_bfgs() {
        let f = |x: &[f64]| {
            (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2) + 0.5 * (x[0] * x[1] - 1.0).powi(2)
        };
        let dense = crate::bfgs::minimize(f, &[0.0, 0.0], &BfgsOptions::default());
        let limited = minimize_lbfgs(f, &[0.0, 0.0], &BfgsOptions::default());
        assert!(
            (dense.f - limited.f).abs() < 1e-6,
            "{} vs {}",
            dense.f,
            limited.f
        );
    }

    #[test]
    #[should_panic(expected = "starting point")]
    fn non_finite_start_panics() {
        let _ = minimize_lbfgs(|_| f64::INFINITY, &[0.0], &BfgsOptions::default());
    }

    #[test]
    fn delta_variant_identical_and_honest() {
        let f = |x: &[f64]| {
            (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2) + 0.5 * (x[0] * x[1] - 1.0).powi(2)
        };
        let plain = minimize_lbfgs(f, &[0.0, 0.0], &BfgsOptions::default());
        let mut last: Option<Vec<f64>> = None;
        let audited = minimize_lbfgs_delta(
            |x, d| {
                if let (Some(prev), ParamDelta::Coords(declared)) = (&last, d) {
                    for (i, (&a, &b)) in prev.iter().zip(x).enumerate() {
                        if a.to_bits() != b.to_bits() {
                            assert!(
                                declared.contains(&i),
                                "coordinate {i} changed but delta {declared:?} omits it"
                            );
                        }
                    }
                }
                last = Some(x.to_vec());
                f(x)
            },
            &[0.0, 0.0],
            &BfgsOptions::default(),
        );
        assert_eq!(plain.f.to_bits(), audited.f.to_bits());
        assert_eq!(plain.x, audited.x);
        assert_eq!(plain.f_evals, audited.f_evals);
    }
}
