//! Brent's method for bounded 1-D minimization.
//!
//! Used for single-parameter refinements (e.g. re-optimizing one branch
//! length with everything else held fixed) and as a robust fallback when
//! the full BFGS problem is ill-conditioned.

/// Golden ratio complement.
const CGOLD: f64 = 0.381_966_011_250_105;

/// Minimize `f` on `[a, b]` by Brent's parabolic-interpolation/golden-
/// section hybrid. Returns `(x_min, f_min)`.
///
/// # Panics
/// Panics if `a >= b` or `max_iter == 0`.
pub fn brent_min(
    mut f: impl FnMut(f64) -> f64,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> (f64, f64) {
    assert!(a < b, "brent_min: invalid bracket");
    assert!(max_iter > 0);
    let (mut a, mut b) = (a, b);
    let mut x = a + CGOLD * (b - a);
    let (mut w, mut v) = (x, x);
    let mut fx = f(x);
    let (mut fw, mut fv) = (fx, fx);
    let mut d: f64 = 0.0;
    let mut e: f64 = 0.0;

    for _ in 0..max_iter {
        let xm = 0.5 * (a + b);
        let tol1 = tol * x.abs() + 1e-12;
        let tol2 = 2.0 * tol1;
        if (x - xm).abs() <= tol2 - 0.5 * (b - a) {
            break;
        }
        let mut use_golden = true;
        if e.abs() > tol1 {
            // Parabolic fit through (x, w, v).
            let r = (x - w) * (fx - fv);
            let mut q = (x - v) * (fx - fw);
            let mut p = (x - v) * q - (x - w) * r;
            q = 2.0 * (q - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let etemp = e;
            e = d;
            if p.abs() < (0.5 * q * etemp).abs() && p > q * (a - x) && p < q * (b - x) {
                d = p / q;
                let u = x + d;
                if u - a < tol2 || b - u < tol2 {
                    d = tol1.copysign(xm - x);
                }
                use_golden = false;
            }
        }
        if use_golden {
            e = if x >= xm { a - x } else { b - x };
            d = CGOLD * e;
        }
        let u = if d.abs() >= tol1 {
            x + d
        } else {
            x + tol1.copysign(d)
        };
        let fu = f(u);
        if fu <= fx {
            if u >= x {
                a = x;
            } else {
                b = x;
            }
            v = w;
            fv = fw;
            w = x;
            fw = fx;
            x = u;
            fx = fu;
        } else {
            if u < x {
                a = u;
            } else {
                b = u;
            }
            if fu <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu;
            } else if fu <= fv || v == x || v == w {
                v = u;
                fv = fu;
            }
        }
    }
    (x, fx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parabola() {
        let (x, fx) = brent_min(|x| (x - 2.0) * (x - 2.0) + 1.0, 0.0, 5.0, 1e-10, 100);
        assert!((x - 2.0).abs() < 1e-7);
        assert!((fx - 1.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_function() {
        // minimum of x - ln(x) at x = 1
        let (x, _) = brent_min(|x| x - x.ln(), 0.01, 10.0, 1e-10, 200);
        assert!((x - 1.0).abs() < 1e-6);
    }

    #[test]
    fn minimum_near_boundary() {
        let (x, _) = brent_min(|x| (x - 0.001).powi(2), 0.0, 1.0, 1e-10, 200);
        assert!((x - 0.001).abs() < 1e-6);
    }

    #[test]
    fn oscillatory() {
        // global bracket chosen around one well of cos(x): min at π.
        let (x, _) = brent_min(|x| x.cos(), 2.0, 4.5, 1e-10, 200);
        assert!((x - std::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "invalid bracket")]
    fn invalid_bracket_panics() {
        let _ = brent_min(|x| x, 1.0, 0.0, 1e-8, 10);
    }
}
