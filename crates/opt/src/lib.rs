//! # slim-opt
//!
//! Numerical optimization substrate: the paper's §II-B names
//! Newton-Raphson-family iterative maximization and specifically BFGS as
//! the way CodeML maximizes the branch-site likelihood. This crate
//! provides:
//!
//! * [`bfgs`]: dense BFGS with a strong-Wolfe line search and iteration
//!   accounting (the "Iterations" column of the paper's Table III);
//! * [`transform`]: smooth bijections between bounded model parameters
//!   (κ > 0, 0 < ω0 < 1, ω2 ≥ 1, simplex proportions, branch lengths) and
//!   the unconstrained space BFGS works in;
//! * [`numgrad`]: central/forward finite-difference gradients;
//! * [`brent`]: bounded 1-D minimization for single-parameter refinement.

pub mod bfgs;
pub mod brent;
pub mod lbfgs;
pub mod numgrad;
mod obsm;
pub mod transform;

pub use bfgs::{minimize, minimize_delta, BfgsOptions, BfgsResult, TerminationReason};
pub use brent::brent_min;
pub use lbfgs::{minimize_lbfgs, minimize_lbfgs_delta};
pub use numgrad::{
    central_gradient, central_gradient_delta, forward_gradient, forward_gradient_delta, GradMode,
    ParamDelta,
};
pub use obsm::register_metrics;
pub use transform::{Block, BlockTransform};
