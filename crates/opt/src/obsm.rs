//! slim-obs handles for the optimizers.
//!
//! Both [`crate::minimize`] and [`crate::minimize_lbfgs`] record into the
//! same `opt.*` family — the paper's Table III currency (iterations,
//! evaluations) plus per-fit wall time.

use slim_obs::{Counter, Histogram};
use std::sync::{Arc, OnceLock};

#[derive(Debug)]
pub(crate) struct OptMetrics {
    /// `opt.fits` — minimization runs completed.
    pub fits: Arc<Counter>,
    /// `opt.iterations` — quasi-Newton iterations across all fits.
    pub iterations: Arc<Counter>,
    /// `opt.f_evals` — objective evaluations, incl. finite differences.
    pub f_evals: Arc<Counter>,
    /// `opt.grad_evals` — gradient evaluations (each costs n or 2n
    /// objective calls depending on the finite-difference mode).
    pub grad_evals: Arc<Counter>,
    /// `opt.line_search_steps` — Armijo backtracking trials.
    pub line_search_steps: Arc<Counter>,
    /// `opt.fit_seconds` — wall time per minimization run.
    pub fit_seconds: Arc<Histogram>,
}

static M: OnceLock<OptMetrics> = OnceLock::new();

pub(crate) fn metrics() -> &'static OptMetrics {
    M.get_or_init(|| OptMetrics {
        fits: slim_obs::counter("opt.fits"),
        iterations: slim_obs::counter("opt.iterations"),
        f_evals: slim_obs::counter("opt.f_evals"),
        grad_evals: slim_obs::counter("opt.grad_evals"),
        line_search_steps: slim_obs::counter("opt.line_search_steps"),
        fit_seconds: slim_obs::histogram("opt.fit_seconds"),
    })
}

/// Eagerly register every optimizer metric name so snapshots are
/// schema-stable even before the first fit.
pub fn register_metrics() {
    let _ = metrics();
}
