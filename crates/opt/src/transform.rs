//! Bijections between bounded model parameters and unconstrained space.
//!
//! BFGS works on ℝⁿ; the branch-site model's parameters live in boxes,
//! half-lines and a simplex. Each [`Block`] maps a slice of constrained
//! parameters to a slice of unconstrained ones; a [`BlockTransform`]
//! concatenates blocks into a whole-vector bijection.

/// One block of the parameter vector and its constraint geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Block {
    /// A free scalar (identity transform).
    Free,
    /// `x > lo`, via `x = lo + e^z`. Used for κ and ω2 − 1 style bounds.
    LowerBounded {
        /// Exclusive lower bound.
        lo: f64,
    },
    /// `lo < x < hi`, via a logistic map. Used for ω0 ∈ (0, 1) and branch
    /// lengths (which CodeML also caps from above).
    BoxBounded {
        /// Exclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// A parameter held constant (consumes no unconstrained coordinates).
    Fixed {
        /// The pinned value.
        value: f64,
    },
    /// `dim` probabilities that sum to less than 1 with an implicit
    /// remainder class: consumes `dim` constrained values (p₁…p_dim) and
    /// `dim` unconstrained ones, via softmax against the implicit class.
    /// Used for (p0, p1) of Table I, whose remainder 1−p0−p1 is the
    /// positively-selected mass.
    SimplexWithRest {
        /// Number of explicit proportions.
        dim: usize,
    },
    /// `count` box-bounded scalars sharing one (lo, hi) — compact encoding
    /// for branch-length vectors.
    BoxBoundedVec {
        /// Exclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
        /// Number of scalars.
        count: usize,
    },
}

impl Block {
    /// Number of constrained parameters this block covers.
    pub fn constrained_len(&self) -> usize {
        match self {
            Block::Free
            | Block::LowerBounded { .. }
            | Block::BoxBounded { .. }
            | Block::Fixed { .. } => 1,
            Block::SimplexWithRest { dim } => *dim,
            Block::BoxBoundedVec { count, .. } => *count,
        }
    }

    /// Number of unconstrained coordinates this block consumes.
    pub fn unconstrained_len(&self) -> usize {
        match self {
            Block::Fixed { .. } => 0,
            other => other.constrained_len(),
        }
    }
}

/// A whole-vector bijection assembled from [`Block`]s.
#[derive(Debug, Clone)]
pub struct BlockTransform {
    blocks: Vec<Block>,
}

/// Numerical guard: logistic inputs are clamped to ±`ZCAP` so `exp` never
/// overflows and the map stays strictly inside the box.
const ZCAP: f64 = 30.0;

fn logistic(z: f64) -> f64 {
    let z = z.clamp(-ZCAP, ZCAP);
    1.0 / (1.0 + (-z).exp())
}

fn logit(p: f64) -> f64 {
    let p = p.clamp(1e-15, 1.0 - 1e-15);
    (p / (1.0 - p)).ln()
}

impl BlockTransform {
    /// Assemble from blocks.
    pub fn new(blocks: Vec<Block>) -> BlockTransform {
        BlockTransform { blocks }
    }

    /// Total constrained dimension.
    pub fn constrained_len(&self) -> usize {
        self.blocks.iter().map(Block::constrained_len).sum()
    }

    /// Total unconstrained dimension (what BFGS sees).
    pub fn unconstrained_len(&self) -> usize {
        self.blocks.iter().map(Block::unconstrained_len).sum()
    }

    /// Map constrained → unconstrained.
    ///
    /// # Panics
    /// Panics if `x.len()` mismatches, or a value sits outside its block's
    /// domain.
    pub fn to_unconstrained(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.constrained_len(),
            "to_unconstrained: length mismatch"
        );
        let mut z = Vec::with_capacity(self.unconstrained_len());
        let mut xi = 0usize;
        for block in &self.blocks {
            match *block {
                Block::Free => {
                    z.push(x[xi]);
                    xi += 1;
                }
                Block::LowerBounded { lo } => {
                    assert!(x[xi] > lo, "value {} not above lower bound {lo}", x[xi]);
                    z.push((x[xi] - lo).ln());
                    xi += 1;
                }
                Block::BoxBounded { lo, hi } => {
                    assert!(
                        x[xi] > lo && x[xi] < hi,
                        "value {} outside ({lo},{hi})",
                        x[xi]
                    );
                    z.push(logit((x[xi] - lo) / (hi - lo)));
                    xi += 1;
                }
                Block::Fixed { value } => {
                    debug_assert!(
                        (x[xi] - value).abs() < 1e-9,
                        "fixed parameter expected {value}, found {}",
                        x[xi]
                    );
                    xi += 1;
                }
                Block::SimplexWithRest { dim } => {
                    let ps = &x[xi..xi + dim];
                    let rest = (1.0 - ps.iter().sum::<f64>()).clamp(1e-15, 1.0);
                    for &p in ps {
                        z.push((p.max(1e-300) / rest).ln());
                    }
                    xi += dim;
                }
                Block::BoxBoundedVec { lo, hi, count } => {
                    for k in 0..count {
                        let v = x[xi + k];
                        assert!(v > lo && v < hi, "value {v} outside ({lo},{hi})");
                        z.push(logit((v - lo) / (hi - lo)));
                    }
                    xi += count;
                }
            }
        }
        z
    }

    /// Map unconstrained → constrained.
    ///
    /// # Panics
    /// Panics if `z.len()` mismatches.
    pub fn to_constrained(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(
            z.len(),
            self.unconstrained_len(),
            "to_constrained: length mismatch"
        );
        let mut x = Vec::with_capacity(self.constrained_len());
        let mut zi = 0usize;
        for block in &self.blocks {
            match *block {
                Block::Free => {
                    x.push(z[zi]);
                    zi += 1;
                }
                Block::LowerBounded { lo } => {
                    x.push(lo + z[zi].clamp(-ZCAP * 17.0, ZCAP * 17.0).exp());
                    zi += 1;
                }
                Block::BoxBounded { lo, hi } => {
                    x.push(lo + (hi - lo) * logistic(z[zi]));
                    zi += 1;
                }
                Block::Fixed { value } => {
                    x.push(value);
                }
                Block::SimplexWithRest { dim } => {
                    // softmax over (z₁…z_dim, 0): the implicit 0 is the
                    // remainder class.
                    let zs = &z[zi..zi + dim];
                    let zmax = zs.iter().copied().fold(0.0f64, f64::max); // include the 0 logit
                    let exps: Vec<f64> = zs
                        .iter()
                        .map(|&v| (v.clamp(-700.0, 700.0) - zmax).exp())
                        .collect();
                    let rest = (-zmax).exp();
                    let denom: f64 = exps.iter().sum::<f64>() + rest;
                    for e in exps {
                        x.push(e / denom);
                    }
                    zi += dim;
                }
                Block::BoxBoundedVec { lo, hi, count } => {
                    for k in 0..count {
                        x.push(lo + (hi - lo) * logistic(z[zi + k]));
                    }
                    zi += count;
                }
            }
        }
        x
    }

    /// The range of constrained indices that unconstrained coordinate
    /// `z_index` feeds.
    ///
    /// Coordinate-wise blocks map one-to-one; [`Block::SimplexWithRest`]
    /// returns its whole constrained range because the softmax couples
    /// every output to every input. [`Block::Fixed`] consumes no
    /// unconstrained coordinate, so under the H0 layout unconstrained and
    /// constrained indices differ — this is the only correct way to map a
    /// [`crate::ParamDelta`] coordinate back to model parameters.
    ///
    /// # Panics
    /// Panics if `z_index >= unconstrained_len()`.
    pub fn touched_constrained(&self, z_index: usize) -> std::ops::Range<usize> {
        let mut zi = 0usize;
        let mut xi = 0usize;
        for block in &self.blocks {
            let zl = block.unconstrained_len();
            if z_index < zi + zl {
                return match block {
                    Block::SimplexWithRest { .. } => xi..xi + block.constrained_len(),
                    _ => {
                        let off = z_index - zi;
                        xi + off..xi + off + 1
                    }
                };
            }
            zi += zl;
            xi += block.constrained_len();
        }
        // check: allow(rob-unwrap) unreachable: z_index comes from this transform's own coordinate map, always in range
        panic!("touched_constrained: index {z_index} out of range ({zi} unconstrained coordinates)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(t: &BlockTransform, x: &[f64], tol: f64) {
        let z = t.to_unconstrained(x);
        assert_eq!(z.len(), t.unconstrained_len());
        let back = t.to_constrained(&z);
        assert_eq!(back.len(), x.len());
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < tol, "{a} vs {b}");
        }
    }

    #[test]
    fn free_identity() {
        let t = BlockTransform::new(vec![Block::Free, Block::Free]);
        roundtrip(&t, &[1.5, -3.0], 1e-15);
    }

    #[test]
    fn lower_bounded_roundtrip() {
        let t = BlockTransform::new(vec![Block::LowerBounded { lo: 1.0 }]);
        roundtrip(&t, &[2.5], 1e-12);
        roundtrip(&t, &[1.0001], 1e-12);
        // Constrained output never goes below the bound; at z → −∞ the
        // addition rounds to exactly `lo`, which is the closed-boundary
        // value (valid for ω2 ≥ 1 under H1).
        let x = t.to_constrained(&[-100.0]);
        assert!(x[0] >= 1.0);
    }

    #[test]
    fn box_bounded_roundtrip_and_bounds() {
        let t = BlockTransform::new(vec![Block::BoxBounded { lo: 0.0, hi: 1.0 }]);
        roundtrip(&t, &[0.3], 1e-12);
        roundtrip(&t, &[0.999], 1e-9);
        for z in [-1e6, -5.0, 0.0, 5.0, 1e6] {
            let x = t.to_constrained(&[z]);
            assert!(x[0] > 0.0 && x[0] < 1.0, "z={z} -> {}", x[0]);
        }
    }

    #[test]
    fn fixed_consumes_no_coordinates() {
        let t = BlockTransform::new(vec![
            Block::LowerBounded { lo: 0.0 },
            Block::Fixed { value: 1.0 },
            Block::Free,
        ]);
        assert_eq!(t.constrained_len(), 3);
        assert_eq!(t.unconstrained_len(), 2);
        let x = t.to_constrained(&[0.0, 7.0]);
        assert_eq!(x[1], 1.0);
        assert_eq!(x[2], 7.0);
    }

    #[test]
    fn simplex_roundtrip() {
        let t = BlockTransform::new(vec![Block::SimplexWithRest { dim: 2 }]);
        roundtrip(&t, &[0.7, 0.2], 1e-12);
        roundtrip(&t, &[0.05, 0.9], 1e-12);
        // Any z maps inside the simplex with positive remainder.
        for z in [[-50.0, 50.0], [3.0, 3.0], [0.0, 0.0]] {
            let p = t.to_constrained(&z);
            assert!(p[0] > 0.0 && p[1] > 0.0);
            assert!(p[0] + p[1] < 1.0 + 1e-12, "{p:?}");
        }
    }

    #[test]
    fn box_vec_block() {
        let t = BlockTransform::new(vec![Block::BoxBoundedVec {
            lo: 1e-6,
            hi: 50.0,
            count: 3,
        }]);
        assert_eq!(t.constrained_len(), 3);
        roundtrip(&t, &[0.1, 1.0, 10.0], 1e-9);
    }

    #[test]
    fn composite_model_layout() {
        // The H1 layout: κ, ω0, ω2, (p0,p1), 4 branch lengths.
        let t = BlockTransform::new(vec![
            Block::LowerBounded { lo: 0.0 }, // κ
            Block::BoxBounded {
                lo: 1e-6,
                hi: 1.0 - 1e-6,
            }, // ω0
            Block::LowerBounded { lo: 1.0 }, // ω2
            Block::SimplexWithRest { dim: 2 }, // p0, p1
            Block::BoxBoundedVec {
                lo: 1e-6,
                hi: 50.0,
                count: 4,
            },
        ]);
        assert_eq!(t.constrained_len(), 9);
        assert_eq!(t.unconstrained_len(), 9);
        roundtrip(&t, &[2.0, 0.2, 2.5, 0.6, 0.3, 0.1, 0.2, 0.3, 0.4], 1e-9);
    }

    #[test]
    fn h0_layout_fixes_omega2() {
        let t = BlockTransform::new(vec![
            Block::LowerBounded { lo: 0.0 },
            Block::BoxBounded {
                lo: 1e-6,
                hi: 1.0 - 1e-6,
            },
            Block::Fixed { value: 1.0 },
            Block::SimplexWithRest { dim: 2 },
        ]);
        assert_eq!(t.unconstrained_len(), 4);
        let x = t.to_constrained(&[0.7, 0.0, 1.0, -1.0]);
        assert_eq!(x[2], 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let t = BlockTransform::new(vec![Block::Free]);
        let _ = t.to_constrained(&[1.0, 2.0]);
    }

    #[test]
    fn touched_constrained_maps_through_fixed_blocks() {
        // H0-style layout: κ, ω0, Fixed ω2, (p0,p1), 3 branch lengths.
        let t = BlockTransform::new(vec![
            Block::LowerBounded { lo: 0.0 },
            Block::BoxBounded {
                lo: 1e-6,
                hi: 1.0 - 1e-6,
            },
            Block::Fixed { value: 1.0 },
            Block::SimplexWithRest { dim: 2 },
            Block::BoxBoundedVec {
                lo: 1e-6,
                hi: 50.0,
                count: 3,
            },
        ]);
        assert_eq!(t.unconstrained_len(), 7);
        assert_eq!(t.constrained_len(), 8);
        assert_eq!(t.touched_constrained(0), 0..1); // κ
        assert_eq!(t.touched_constrained(1), 1..2); // ω0

        // Simplex coordinates each touch the whole (p0, p1) range; the
        // Fixed ω2 at constrained index 2 shifts everything by one.
        assert_eq!(t.touched_constrained(2), 3..5);
        assert_eq!(t.touched_constrained(3), 3..5);
        // Branch lengths map one-to-one, offset past the fixed slot.
        assert_eq!(t.touched_constrained(4), 5..6);
        assert_eq!(t.touched_constrained(6), 7..8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn touched_constrained_out_of_range_panics() {
        let t = BlockTransform::new(vec![Block::Free]);
        let _ = t.touched_constrained(1);
    }
}
