//! The two-ratio *branch* model: one ω on the foreground branch, another
//! everywhere else, with no site classes.
//!
//! Historically the precursor of the branch-site model (and still used as
//! a complementary test); included as another §V-B "further model" that
//! the optimized pipeline serves unchanged: two eigendecompositions per
//! evaluation, one pruning pass.

use crate::engine::{EngineConfig, ExpmPath};
use crate::problem::LikelihoodProblem;
use crate::pruning::{prune_one_class, TransOp};
use slim_expm::{CpvStrategy, EigenSystem};
use slim_linalg::LinalgError;
use slim_model::{build_rate_matrix, rate_components, ScalePolicy};
use std::sync::Arc;

/// Log-likelihood under the two-ratio branch model.
///
/// `omega_background` applies on all branches except the foreground one,
/// which uses `omega_foreground`. The rate scale is the background flux
/// (branch lengths are expected substitutions per codon under background
/// conditions, CodeML's convention for branch models).
///
/// # Errors
/// Propagates eigensolver failures.
///
/// # Panics
/// Panics on branch-length length mismatch (and the problem must have a
/// foreground branch, enforced at problem construction).
pub fn log_likelihood_branch(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    kappa: f64,
    omega_background: f64,
    omega_foreground: f64,
    branch_lengths: &[f64],
) -> Result<f64, LinalgError> {
    assert_eq!(
        branch_lengths.len(),
        problem.n_branches(),
        "branch length vector has wrong length"
    );
    let (syn, nonsyn) = rate_components(&problem.code, kappa, &problem.pi);
    let scale = syn + omega_background * nonsyn;

    let mut eigensystems: Vec<Arc<EigenSystem>> = Vec::with_capacity(2);
    for &omega in &[omega_background, omega_foreground] {
        let rm = build_rate_matrix(
            &problem.code,
            kappa,
            omega,
            &problem.pi,
            ScalePolicy::External(scale),
        );
        let es = match &config.eigen_cache {
            Some(cache) => cache.get_or_compute(kappa, omega, &rm, config.eigen)?,
            None => Arc::new(EigenSystem::from_rate_matrix(&rm, config.eigen)?),
        };
        eigensystems.push(es);
    }

    let n_nodes = problem.children.len();
    let mut ops: Vec<[Option<TransOp>; 3]> = (0..n_nodes).map(|_| [None, None, None]).collect();
    for node in 0..n_nodes {
        let Some(bi) = problem.branch_index[node] else {
            continue;
        };
        let t = branch_lengths[bi];
        // Slot 0 = background ω, slot 1 = foreground ω; prune_one_class is
        // called with (bg = 0, fg = 1).
        let needed: &[usize] = if problem.is_foreground[node] {
            &[1]
        } else {
            &[0]
        };
        for &w in needed {
            let es = &eigensystems[w];
            ops[node][w] = Some(match config.cpv {
                CpvStrategy::SymmetricSymv => TransOp::Sym(es.symmetric_transition(t)),
                _ => TransOp::Dense(match config.expm {
                    ExpmPath::Eq9Naive => es.transition_matrix_eq9_naive(t),
                    ExpmPath::Eq9Tuned => es.transition_matrix_eq9(t),
                    ExpmPath::Eq10Syrk => es.transition_matrix_eq10(t),
                }),
            });
        }
    }

    let per_pattern = prune_one_class(problem, config, &ops, 0, 1);
    let mut lnl = 0.0;
    for (p, &lp) in per_pattern.iter().enumerate() {
        lnl += problem.patterns.weight(p) * lp;
    }
    Ok(lnl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::m0::log_likelihood_m0;
    use slim_bio::{parse_newick, CodonAlignment, FreqModel, GeneticCode};

    fn problem() -> LikelihoodProblem {
        let tree = parse_newick("((A:0.1,B:0.2)#1:0.05,C:0.3);").unwrap();
        let aln =
            CodonAlignment::from_fasta(">A\nATGCCCTTTAAG\n>B\nATGCCATTTAAG\n>C\nATGCCCTTCAAA\n")
                .unwrap();
        let code = GeneticCode::universal();
        LikelihoodProblem::new(&tree, &aln, &code, FreqModel::F3x4).unwrap()
    }

    #[test]
    fn reduces_to_m0_when_omegas_equal() {
        let p = problem();
        let bl = vec![0.1; p.n_branches()];
        let omega = 0.37;
        let two_ratio =
            log_likelihood_branch(&p, &EngineConfig::slim(), 2.0, omega, omega, &bl).unwrap();
        let m0 = log_likelihood_m0(&p, &EngineConfig::slim(), 2.0, omega, &bl).unwrap();
        assert!(
            (two_ratio - m0).abs() < 1e-10,
            "two-ratio {two_ratio} vs M0 {m0}"
        );
    }

    #[test]
    fn engines_agree() {
        let p = problem();
        let bl = vec![0.1; p.n_branches()];
        let base =
            log_likelihood_branch(&p, &EngineConfig::codeml_style(), 2.0, 0.2, 3.0, &bl).unwrap();
        let slim = log_likelihood_branch(&p, &EngineConfig::slim(), 2.0, 0.2, 3.0, &bl).unwrap();
        assert!(((base - slim) / base).abs() < 1e-10);
    }

    #[test]
    fn foreground_omega_matters() {
        let p = problem();
        let bl = vec![0.1; p.n_branches()];
        let l1 = log_likelihood_branch(&p, &EngineConfig::slim(), 2.0, 0.2, 0.2, &bl).unwrap();
        let l2 = log_likelihood_branch(&p, &EngineConfig::slim(), 2.0, 0.2, 5.0, &bl).unwrap();
        assert!((l1 - l2).abs() > 1e-8, "foreground omega had no effect");
    }
}
