//! Marginal ancestral sequence reconstruction.
//!
//! CodeML's `RateAncestor` feature: after fitting, infer the posterior
//! distribution of the codon at every internal node and site. Uses the
//! standard up/down (inside/outside) algorithm:
//!
//! * **up** pass = Felsenstein pruning: `up_v[s]` is the likelihood of the
//!   data below `v` given state `s` at `v`;
//! * **down** pass (preorder): `down_v[s]` is the likelihood of all data
//!   *outside* `v`'s subtree given state `s` at `v`, built from the
//!   parent's `down` and the siblings' branch-propagated `up`s;
//! * posterior at `v` ∝ `up_v[s] · down_v[s]`, mixed over the four
//!   branch-site classes with their proportions.
//!
//! Reconstruction runs once per fitted model (not in the optimization hot
//! loop), so this implementation favors clarity over kernel tuning — it
//! always uses the Slim Eq. 10 expm path.

use crate::engine::EngineConfig;
use crate::problem::LikelihoodProblem;
use slim_bio::Codon;
use slim_expm::EigenSystem;
use slim_linalg::{LinalgError, Mat};
use slim_model::{build_rate_matrix, rate_components, BranchSiteModel, ScalePolicy};

/// Posterior codon distributions at the internal nodes.
#[derive(Debug, Clone)]
pub struct AncestralReconstruction {
    /// For each node (arena index): `Some(post)` for internal nodes where
    /// `post` is `61 × n_patterns` with columns summing to 1.
    pub posteriors: Vec<Option<Mat>>,
    /// Pattern index per alignment site (copied from the problem for
    /// convenient expansion).
    site_to_pattern: Vec<usize>,
}

/// One reconstructed state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconstructedCodon {
    /// Most probable codon.
    pub codon: Codon,
    /// Its posterior probability.
    pub posterior: f64,
}

impl AncestralReconstruction {
    /// The most probable codon (and its posterior) at `node` for every
    /// alignment site.
    ///
    /// # Panics
    /// Panics if `node` is a leaf (leaves are observed, not
    /// reconstructed).
    pub fn most_probable_codons(
        &self,
        node: usize,
        code: &slim_bio::GeneticCode,
    ) -> Vec<ReconstructedCodon> {
        let post = self.posteriors[node]
            .as_ref()
            .expect("ancestral reconstruction exists only for internal nodes");
        self.site_to_pattern
            .iter()
            .map(|&p| {
                let mut best = 0usize;
                let mut best_p = 0.0f64;
                for s in 0..post.rows() {
                    if post[(s, p)] > best_p {
                        best_p = post[(s, p)];
                        best = s;
                    }
                }
                ReconstructedCodon {
                    codon: code.sense_codon(best),
                    posterior: best_p,
                }
            })
            .collect()
    }
}

/// Reconstruct ancestral codon posteriors under the branch-site model at
/// fixed parameters (typically the H1 MLE).
///
/// # Errors
/// Propagates eigensolver failures.
///
/// # Panics
/// Panics on branch-length length mismatch.
pub fn ancestral_reconstruction(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    model: &BranchSiteModel,
    branch_lengths: &[f64],
) -> Result<AncestralReconstruction, LinalgError> {
    assert_eq!(branch_lengths.len(), problem.n_branches());
    let n = problem.pi.len();
    let n_pat = problem.n_patterns();
    let n_nodes = problem.children.len();

    // Eigensystems per distinct ω, shared-scale convention (same as the
    // likelihood engine).
    let omegas = model.omegas();
    let (syn, nonsyn) = rate_components(&problem.code, model.kappa, &problem.pi);
    let scale = model.shared_scale(syn, nonsyn);
    let eigensystems: Vec<EigenSystem> = omegas
        .iter()
        .map(|&w| {
            let rm = build_rate_matrix(
                &problem.code,
                model.kappa,
                w,
                &problem.pi,
                ScalePolicy::External(scale),
            );
            EigenSystem::from_rate_matrix(&rm, config.eigen)
        })
        .collect::<Result<_, _>>()?;

    // Dense P(t) per (node, needed ω).
    let mut pmats: Vec<[Option<Mat>; 3]> = (0..n_nodes).map(|_| [None, None, None]).collect();
    for node in 0..n_nodes {
        let Some(bi) = problem.branch_index[node] else {
            continue;
        };
        let t = branch_lengths[bi];
        let needed: &[usize] = if problem.is_foreground[node] {
            &[0, 1, 2]
        } else {
            &[0, 1]
        };
        for &w in needed {
            pmats[node][w] = Some(eigensystems[w].transition_matrix_eq10(t));
        }
    }

    let classes = model.site_classes();

    // Accumulate joint (unnormalized) posteriors over classes.
    let mut joint: Vec<Option<Mat>> = (0..n_nodes)
        .map(|i| {
            if problem.children[i].is_empty() {
                None
            } else {
                Some(Mat::zeros(n, n_pat))
            }
        })
        .collect();

    for class in &classes {
        if class.proportion <= 0.0 {
            continue;
        }
        let omega_of = |node: usize| -> usize {
            if problem.is_foreground[node] {
                class.foreground_omega
            } else {
                class.background_omega
            }
        };

        // ---- up pass (postorder). ----
        let mut up: Vec<Mat> = (0..n_nodes).map(|_| Mat::zeros(n, n_pat)).collect();
        // `up_branch[v]` = P(t_v) · up[v] — v's message to its parent.
        let mut up_branch: Vec<Mat> = (0..n_nodes).map(|_| Mat::zeros(n, n_pat)).collect();

        for &node in &problem.postorder {
            if let Some(taxon) = problem.leaf_taxon[node] {
                for p in 0..n_pat {
                    let codon = problem.patterns.pattern(p)[taxon];
                    if codon == slim_bio::patterns::MISSING {
                        for s in 0..n {
                            up[node][(s, p)] = 1.0;
                        }
                    } else {
                        up[node][(codon, p)] = 1.0;
                    }
                }
            } else {
                for s in 0..n {
                    for p in 0..n_pat {
                        up[node][(s, p)] = 1.0;
                    }
                }
                for &child in &problem.children[node] {
                    for s in 0..n {
                        for p in 0..n_pat {
                            up[node][(s, p)] *= up_branch[child][(s, p)];
                        }
                    }
                }
            }
            if problem.branch_index[node].is_some() {
                let pm = pmats[node][omega_of(node)].as_ref().expect("P built");
                slim_expm::cpv::apply_dense(
                    slim_expm::CpvStrategy::BundledGemm,
                    pm,
                    &up[node],
                    &mut up_branch[node],
                );
            }
        }

        // ---- down pass (preorder). ----
        let mut down: Vec<Mat> = (0..n_nodes).map(|_| Mat::zeros(n, n_pat)).collect();
        let preorder: Vec<usize> = problem.postorder.iter().rev().copied().collect();
        for &node in &preorder {
            if node == problem.root {
                for s in 0..n {
                    for p in 0..n_pat {
                        down[node][(s, p)] = problem.pi[s];
                    }
                }
            }
            // Push down to children: down_child = P_childᵀ · (down_node ·
            // Π_{siblings} up_branch_sibling).
            let children = problem.children[node].clone();
            for &child in &children {
                let mut outside = down[node].clone();
                for &sib in &children {
                    if sib != child {
                        for s in 0..n {
                            for p in 0..n_pat {
                                outside[(s, p)] *= up_branch[sib][(s, p)];
                            }
                        }
                    }
                }
                // down_child[s] = Σ_{s'} P(s'→s) outside[s'] — a transposed
                // product.
                let pm = pmats[child][omega_of(child)].as_ref().expect("P built");
                let mut result = Mat::zeros(n, n_pat);
                slim_linalg::gemm(
                    1.0,
                    pm,
                    slim_linalg::Transpose::Yes,
                    &outside,
                    slim_linalg::Transpose::No,
                    0.0,
                    &mut result,
                );
                down[child] = result;
            }
        }

        // ---- joint accumulation for internal nodes. ----
        for node in 0..n_nodes {
            if problem.children[node].is_empty() {
                continue;
            }
            let j = joint[node].as_mut().expect("internal joint allocated");
            for s in 0..n {
                for p in 0..n_pat {
                    j[(s, p)] += class.proportion * up[node][(s, p)] * down[node][(s, p)];
                }
            }
        }
    }

    // Normalize columns.
    let mut posteriors: Vec<Option<Mat>> = Vec::with_capacity(n_nodes);
    for j in joint {
        posteriors.push(j.map(|mut m| {
            for p in 0..n_pat {
                let total: f64 = (0..n).map(|s| m[(s, p)]).sum();
                if total > 0.0 {
                    for s in 0..n {
                        m[(s, p)] /= total;
                    }
                }
            }
            m
        }));
    }

    Ok(AncestralReconstruction {
        posteriors,
        site_to_pattern: (0..problem.n_sites())
            .map(|s| problem.patterns.pattern_of_site(s))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_bio::{parse_newick, CodonAlignment, FreqModel, GeneticCode};
    use slim_model::Hypothesis;

    fn reconstruct(
        newick: &str,
        fasta: &str,
        bl: Option<Vec<f64>>,
    ) -> (LikelihoodProblem, AncestralReconstruction) {
        let tree = parse_newick(newick).unwrap();
        let aln = CodonAlignment::from_fasta(fasta).unwrap();
        let code = GeneticCode::universal();
        let problem = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::Equal).unwrap();
        let model = BranchSiteModel::default_start(Hypothesis::H1);
        let lengths = bl.unwrap_or_else(|| tree.branch_lengths());
        let rec =
            ancestral_reconstruction(&problem, &EngineConfig::slim(), &model, &lengths).unwrap();
        (problem, rec)
    }

    #[test]
    fn posteriors_are_distributions() {
        let (problem, rec) = reconstruct(
            "((A:0.1,B:0.2)#1:0.05,C:0.3);",
            ">A\nATGCCCTTT\n>B\nATGCCATTT\n>C\nATGCCCTTC\n",
            None,
        );
        for node in 0..problem.children.len() {
            if let Some(post) = &rec.posteriors[node] {
                for p in 0..problem.n_patterns() {
                    let total: f64 = (0..61).map(|s| post[(s, p)]).sum();
                    assert!(
                        (total - 1.0).abs() < 1e-10,
                        "node {node} pattern {p}: {total}"
                    );
                }
            } else {
                assert!(problem.children[node].is_empty());
            }
        }
    }

    #[test]
    fn identical_leaves_reconstruct_to_observed() {
        // Short branches + identical sequences: ancestors must match with
        // high confidence.
        let (problem, rec) = reconstruct(
            "((A:0.01,B:0.01)#1:0.01,C:0.01);",
            ">A\nATGTGG\n>B\nATGTGG\n>C\nATGTGG\n",
            None,
        );
        let code = GeneticCode::universal();
        for node in 0..problem.children.len() {
            if rec.posteriors[node].is_some() {
                let best = rec.most_probable_codons(node, &code);
                assert_eq!(best[0].codon.to_string_repr(), "ATG");
                assert_eq!(best[1].codon.to_string_repr(), "TGG");
                assert!(best[0].posterior > 0.99, "{}", best[0].posterior);
            }
        }
    }

    #[test]
    fn two_leaf_root_posterior_matches_manual() {
        // Root of (A, B): post[s] ∝ mix over classes of
        // prop_c π_s P_c(s→a) P_c(s→b).
        let newick = "(A#1:0.3,B:0.6);";
        let fasta = ">A\nATG\n>B\nCTG\n";
        let (problem, rec) = reconstruct(newick, fasta, None);
        let code = GeneticCode::universal();
        let model = BranchSiteModel::default_start(Hypothesis::H1);

        // Manual computation.
        let (syn, nonsyn) = rate_components(&code, model.kappa, &problem.pi);
        let scale = model.shared_scale(syn, nonsyn);
        let omegas = model.omegas();
        let ess: Vec<EigenSystem> = omegas
            .iter()
            .map(|&w| {
                let rm = build_rate_matrix(
                    &code,
                    model.kappa,
                    w,
                    &problem.pi,
                    ScalePolicy::External(scale),
                );
                EigenSystem::from_rate_matrix(&rm, slim_linalg::EigenMethod::HouseholderQl).unwrap()
            })
            .collect();
        let a_idx = code.sense_index(Codon::from_str("ATG").unwrap()).unwrap();
        let b_idx = code.sense_index(Codon::from_str("CTG").unwrap()).unwrap();
        // Identify which leaf has which branch length via the problem.
        // Leaf A is foreground (length 0.3), B background (0.6).
        let mut expected = vec![0.0f64; 61];
        for class in model.site_classes() {
            let p_fg = ess[class.foreground_omega].transition_matrix_eq10(0.3);
            let p_bg = ess[class.background_omega].transition_matrix_eq10(0.6);
            for (s, e) in expected.iter_mut().enumerate() {
                *e += class.proportion * problem.pi[s] * p_fg[(s, a_idx)] * p_bg[(s, b_idx)];
            }
        }
        let total: f64 = expected.iter().sum();
        let root = problem.root;
        let post = rec.posteriors[root].as_ref().unwrap();
        for s in 0..61 {
            assert!(
                (post[(s, 0)] - expected[s] / total).abs() < 1e-10,
                "state {s}: {} vs {}",
                post[(s, 0)],
                expected[s] / total
            );
        }
    }

    #[test]
    fn missing_data_leaf_does_not_break_reconstruction() {
        let (problem, rec) = reconstruct(
            "((A:0.1,B:0.2)#1:0.05,C:0.3);",
            ">A\nATGCCC\n>B\n------\n>C\nATGCCA\n",
            None,
        );
        let code = GeneticCode::universal();
        for node in 0..problem.children.len() {
            if rec.posteriors[node].is_some() {
                let best = rec.most_probable_codons(node, &code);
                assert_eq!(best.len(), 2);
                assert!(best.iter().all(|r| r.posterior > 0.0 && r.posterior <= 1.0));
            }
        }
    }
}
