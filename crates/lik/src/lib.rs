//! # slim-lik
//!
//! The branch-site-model likelihood engine: Felsenstein's pruning
//! algorithm (§II-B of the paper) over codon site patterns, with the four
//! site classes of Table I mixed at the root.
//!
//! The engine is configuration-driven so that the *same* likelihood code
//! can be run as either comparand of the paper's evaluation:
//!
//! * [`EngineConfig::codeml_style`] — Eq. 9 reconstruction through naive
//!   textbook kernels, per-site naive matrix×vector CPV updates, no
//!   eigendecomposition reuse across evaluations: CodeML v4.4c's
//!   computational profile;
//! * [`EngineConfig::slim`] — Eq. 10 (`dsyrk`-style symmetric rank-k)
//!   reconstruction through blocked kernels and per-site `gemv`: the
//!   configuration the paper measured as SlimCodeML;
//! * [`EngineConfig::slim_plus`] — adds the §III-B bundled BLAS-3 site
//!   products and the Eq. 12 symmetric CPV application the paper derived
//!   after its evaluation, plus a cross-evaluation eigendecomposition
//!   cache.
//!
//! Numerical scaling keeps per-pattern conditional probabilities in range
//! on large trees; per-class per-pattern log-likelihoods are exposed for
//! empirical-Bayes site identification.

#![allow(clippy::needless_range_loop)] // indexed loops mirror the math

pub mod ancestral;
pub mod branch_model;
mod engine;
pub mod m0;
mod obsm;
mod par;
mod problem;
mod pruning;
mod reuse;
pub mod site_models;

pub use engine::{EngineConfig, ExpmPath, DEFAULT_PATTERN_BLOCK};
pub use obsm::register_metrics;
pub use par::PhaseTiming;
pub use problem::LikelihoodProblem;
pub use pruning::{
    log_likelihood, site_class_log_likelihoods, site_class_log_likelihoods_timed, LikelihoodValue,
};
pub use reuse::{ReuseEvaluator, ReuseHint};
pub use slim_linalg::simd;
pub use slim_linalg::{SimdBackend, SimdMode};
