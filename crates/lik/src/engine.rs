//! Engine configurations: which numerics compute the same likelihood.

use slim_expm::{CpvStrategy, EigenCache};
use slim_linalg::EigenMethod;
use std::sync::Arc;

/// Which reconstruction of `P(t)` from the eigendecomposition to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpmPath {
    /// Eq. 9 through textbook kernels (`Z = Ỹ·Xᵀ`, strided triple loop).
    Eq9Naive,
    /// Eq. 9 through the blocked `gemm` (isolates kernel tuning from the
    /// flop-count saving in ablations).
    Eq9Tuned,
    /// Eq. 10 through the symmetric rank-k update — the SlimCodeML path.
    #[default]
    Eq10Syrk,
}

/// Full numerical configuration of the likelihood engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Transition-matrix reconstruction path.
    pub expm: ExpmPath,
    /// CPV application strategy.
    pub cpv: CpvStrategy,
    /// Symmetric eigensolver.
    pub eigen: EigenMethod,
    /// Optional cross-evaluation eigendecomposition cache.
    pub eigen_cache: Option<Arc<EigenCache>>,
    /// Scaling threshold: rescale a pattern column when its maximum
    /// conditional probability drops below this.
    pub scale_threshold: f64,
    /// Run the four site-class pruning passes on separate threads
    /// (crossbeam scoped threads). This is the first step of the paper's
    /// §V-B "FastCodeML" future-work direction: the classes share all
    /// transition operators read-only and are otherwise independent.
    pub parallel_classes: bool,
    /// Human-readable label used by the experiment harness.
    pub label: &'static str,
}

impl EngineConfig {
    /// The CodeML v4.4c baseline profile: hand-rolled-loop numerics.
    pub fn codeml_style() -> EngineConfig {
        EngineConfig {
            expm: ExpmPath::Eq9Naive,
            cpv: CpvStrategy::NaivePerSite,
            eigen: EigenMethod::HouseholderQl,
            eigen_cache: None,
            scale_threshold: 1e-100,
            parallel_classes: false,
            label: "CodeML",
        }
    }

    /// The SlimCodeML profile exactly as measured in the paper:
    /// `dsyevr`-style eigensolve, Eq. 10 `dsyrk` reconstruction, per-site
    /// `dgemv` CPV products (§III-B: bundling was deliberately left out of
    /// the measured prototype).
    pub fn slim() -> EngineConfig {
        EngineConfig {
            expm: ExpmPath::Eq10Syrk,
            cpv: CpvStrategy::PerSiteGemv,
            eigen: EigenMethod::HouseholderQl,
            eigen_cache: None,
            scale_threshold: 1e-100,
            parallel_classes: false,
            label: "SlimCodeML",
        }
    }

    /// SlimCodeML plus the post-evaluation improvements the paper
    /// describes but did not measure: bundled BLAS-3 site products and a
    /// cross-evaluation eigendecomposition cache.
    pub fn slim_plus() -> EngineConfig {
        EngineConfig {
            expm: ExpmPath::Eq10Syrk,
            cpv: CpvStrategy::BundledGemm,
            eigen: EigenMethod::HouseholderQl,
            eigen_cache: Some(Arc::new(EigenCache::new(64))),
            scale_threshold: 1e-100,
            parallel_classes: false,
            label: "SlimCodeML+",
        }
    }

    /// SlimCodeML with the Eq. 12 symmetric CPV application (§II-C2) —
    /// per-site `symv` on `Π·w`, halving memory traffic per product.
    pub fn slim_symmetric() -> EngineConfig {
        EngineConfig {
            expm: ExpmPath::Eq10Syrk,
            cpv: CpvStrategy::SymmetricSymv,
            eigen: EigenMethod::HouseholderQl,
            eigen_cache: None,
            scale_threshold: 1e-100,
            parallel_classes: false,
            label: "SlimCodeML-eq12",
        }
    }

    /// The FastCodeML direction (§V-B): the Slim profile with the four
    /// site-class pruning passes fanned out across threads.
    pub fn slim_parallel() -> EngineConfig {
        EngineConfig {
            parallel_classes: true,
            label: "SlimCodeML-par",
            ..EngineConfig::slim()
        }
    }

    /// Swap the eigensolver (builder-style).
    pub fn with_eigen(mut self, method: EigenMethod) -> EngineConfig {
        self.eigen = method;
        self
    }

    /// Swap the CPV strategy (builder-style).
    pub fn with_cpv(mut self, cpv: CpvStrategy) -> EngineConfig {
        self.cpv = cpv;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::slim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_shapes() {
        let base = EngineConfig::codeml_style();
        assert_eq!(base.expm, ExpmPath::Eq9Naive);
        assert_eq!(base.cpv, CpvStrategy::NaivePerSite);
        assert!(base.eigen_cache.is_none());

        let slim = EngineConfig::slim();
        assert_eq!(slim.expm, ExpmPath::Eq10Syrk);
        assert_eq!(slim.cpv, CpvStrategy::PerSiteGemv);

        let plus = EngineConfig::slim_plus();
        assert_eq!(plus.cpv, CpvStrategy::BundledGemm);
        assert!(plus.eigen_cache.is_some());

        let sym = EngineConfig::slim_symmetric();
        assert_eq!(sym.cpv, CpvStrategy::SymmetricSymv);
    }

    #[test]
    fn builders() {
        let cfg = EngineConfig::slim()
            .with_eigen(EigenMethod::BisectionInverse)
            .with_cpv(CpvStrategy::BundledGemm);
        assert_eq!(cfg.eigen, EigenMethod::BisectionInverse);
        assert_eq!(cfg.cpv, CpvStrategy::BundledGemm);
    }
}
