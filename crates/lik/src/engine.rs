//! Engine configurations: which numerics compute the same likelihood.

use slim_expm::{CpvStrategy, EigenCache};
use slim_linalg::{EigenMethod, SimdMode};
use std::sync::Arc;

/// Which reconstruction of `P(t)` from the eigendecomposition to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpmPath {
    /// Eq. 9 through textbook kernels (`Z = Ỹ·Xᵀ`, strided triple loop).
    Eq9Naive,
    /// Eq. 9 through the blocked `gemm` (isolates kernel tuning from the
    /// flop-count saving in ablations).
    Eq9Tuned,
    /// Eq. 10 through the symmetric rank-k update — the SlimCodeML path.
    #[default]
    Eq10Syrk,
}

/// Full numerical configuration of the likelihood engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Transition-matrix reconstruction path.
    pub expm: ExpmPath,
    /// CPV application strategy.
    pub cpv: CpvStrategy,
    /// Symmetric eigensolver.
    pub eigen: EigenMethod,
    /// Optional cross-evaluation eigendecomposition cache.
    pub eigen_cache: Option<Arc<EigenCache>>,
    /// Scaling threshold: rescale a pattern column when its maximum
    /// conditional probability drops below this.
    pub scale_threshold: f64,
    /// Worker threads for one likelihood evaluation (the `slim-par`
    /// intra-gene engine, §V-B's FastCodeML direction): eigendecompositions
    /// and per-branch `exp(Qt)` reconstructions are fanned across
    /// branches × ω-classes, and pruning is fanned across
    /// site-class × pattern-block units. `1` = serial, `0` = auto
    /// (`available_parallelism`). Any value produces **bit-identical**
    /// results: block boundaries are fixed by [`EngineConfig::pattern_block`]
    /// alone, every unit is computed independently, and the final reduction
    /// runs in fixed pattern order with compensated summation.
    pub threads: usize,
    /// Site patterns per pruning block. Fixed boundaries (independent of
    /// the thread count) are what make the thread-determinism guarantee
    /// possible; 256 columns × 61 states ≈ 125 KiB per CPV block, sized to
    /// keep a working set of a few blocks in L2.
    pub pattern_block: usize,
    /// SIMD kernel dispatch for this evaluation (default
    /// [`SimdMode::Auto`]: honor `SLIMCODEML_SIMD`, else CPU detection).
    /// Every mode produces **bit-identical** likelihoods — the kernels
    /// vectorize across independent outputs only, never across a
    /// reduction — so this knob exists for benchmarking and for proving
    /// exactly that property.
    pub simd: SimdMode,
    /// Human-readable label used by the experiment harness.
    pub label: &'static str,
}

/// Default pruning block width (site patterns per unit).
pub const DEFAULT_PATTERN_BLOCK: usize = 256;

impl EngineConfig {
    /// The CodeML v4.4c baseline profile: hand-rolled-loop numerics.
    pub fn codeml_style() -> EngineConfig {
        EngineConfig {
            expm: ExpmPath::Eq9Naive,
            cpv: CpvStrategy::NaivePerSite,
            eigen: EigenMethod::HouseholderQl,
            eigen_cache: None,
            scale_threshold: 1e-100,
            threads: 1,
            pattern_block: DEFAULT_PATTERN_BLOCK,
            simd: SimdMode::Auto,
            label: "CodeML",
        }
    }

    /// The SlimCodeML profile exactly as measured in the paper:
    /// `dsyevr`-style eigensolve, Eq. 10 `dsyrk` reconstruction, per-site
    /// `dgemv` CPV products (§III-B: bundling was deliberately left out of
    /// the measured prototype).
    pub fn slim() -> EngineConfig {
        EngineConfig {
            expm: ExpmPath::Eq10Syrk,
            cpv: CpvStrategy::PerSiteGemv,
            eigen: EigenMethod::HouseholderQl,
            eigen_cache: None,
            scale_threshold: 1e-100,
            threads: 1,
            pattern_block: DEFAULT_PATTERN_BLOCK,
            simd: SimdMode::Auto,
            label: "SlimCodeML",
        }
    }

    /// SlimCodeML plus the post-evaluation improvements the paper
    /// describes but did not measure: bundled BLAS-3 site products and a
    /// cross-evaluation eigendecomposition cache.
    pub fn slim_plus() -> EngineConfig {
        EngineConfig {
            expm: ExpmPath::Eq10Syrk,
            cpv: CpvStrategy::BundledGemm,
            eigen: EigenMethod::HouseholderQl,
            eigen_cache: Some(Arc::new(EigenCache::new(EigenCache::DEFAULT_CAPACITY))),
            scale_threshold: 1e-100,
            threads: 1,
            pattern_block: DEFAULT_PATTERN_BLOCK,
            simd: SimdMode::Auto,
            label: "SlimCodeML+",
        }
    }

    /// SlimCodeML with the Eq. 12 symmetric CPV application (§II-C2) —
    /// per-site `symv` on `Π·w`, halving memory traffic per product.
    pub fn slim_symmetric() -> EngineConfig {
        EngineConfig {
            expm: ExpmPath::Eq10Syrk,
            cpv: CpvStrategy::SymmetricSymv,
            eigen: EigenMethod::HouseholderQl,
            eigen_cache: None,
            scale_threshold: 1e-100,
            threads: 1,
            pattern_block: DEFAULT_PATTERN_BLOCK,
            simd: SimdMode::Auto,
            label: "SlimCodeML-eq12",
        }
    }

    /// The FastCodeML direction (§V-B): the Slim profile on the `slim-par`
    /// intra-gene parallel engine, auto-sized to the machine
    /// (`threads = 0` → `available_parallelism`). Bit-identical to
    /// [`EngineConfig::slim`] with `threads = 1` by the determinism
    /// contract.
    pub fn slim_parallel() -> EngineConfig {
        EngineConfig {
            threads: 0,
            label: "SlimCodeML-par",
            ..EngineConfig::slim()
        }
    }

    /// Swap the eigensolver (builder-style).
    pub fn with_eigen(mut self, method: EigenMethod) -> EngineConfig {
        self.eigen = method;
        self
    }

    /// Swap the CPV strategy (builder-style).
    pub fn with_cpv(mut self, cpv: CpvStrategy) -> EngineConfig {
        self.cpv = cpv;
        self
    }

    /// Set the worker-thread count (builder-style; `0` = auto).
    pub fn with_threads(mut self, threads: usize) -> EngineConfig {
        self.threads = threads;
        self
    }

    /// Set the SIMD dispatch mode (builder-style). Results are
    /// bit-identical for every mode; see [`EngineConfig::simd`].
    pub fn with_simd(mut self, simd: SimdMode) -> EngineConfig {
        self.simd = simd;
        self
    }

    /// Set the pruning pattern-block width (builder-style; clamped to ≥ 1).
    pub fn with_pattern_block(mut self, block: usize) -> EngineConfig {
        self.pattern_block = block.max(1);
        self
    }

    /// The thread count this configuration resolves to on this machine.
    pub fn resolved_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::slim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_shapes() {
        let base = EngineConfig::codeml_style();
        assert_eq!(base.expm, ExpmPath::Eq9Naive);
        assert_eq!(base.cpv, CpvStrategy::NaivePerSite);
        assert!(base.eigen_cache.is_none());

        let slim = EngineConfig::slim();
        assert_eq!(slim.expm, ExpmPath::Eq10Syrk);
        assert_eq!(slim.cpv, CpvStrategy::PerSiteGemv);

        let plus = EngineConfig::slim_plus();
        assert_eq!(plus.cpv, CpvStrategy::BundledGemm);
        assert!(plus.eigen_cache.is_some());

        let sym = EngineConfig::slim_symmetric();
        assert_eq!(sym.cpv, CpvStrategy::SymmetricSymv);
    }

    #[test]
    fn builders() {
        let cfg = EngineConfig::slim()
            .with_eigen(EigenMethod::BisectionInverse)
            .with_cpv(CpvStrategy::BundledGemm);
        assert_eq!(cfg.eigen, EigenMethod::BisectionInverse);
        assert_eq!(cfg.cpv, CpvStrategy::BundledGemm);
    }
}
