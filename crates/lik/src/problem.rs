//! The static part of a likelihood computation: tree topology flattened
//! into traversal-friendly arrays, site patterns, and frequencies.

use slim_bio::{BioError, CodonAlignment, FreqModel, GeneticCode, SitePatterns, Tree};

/// Immutable problem data shared by every likelihood evaluation of one
/// dataset: the flattened tree, the compressed alignment, and π.
///
/// Branch lengths are *not* stored here — the optimizer passes them per
/// evaluation, indexed by [`LikelihoodProblem::branch_index`].
#[derive(Debug, Clone)]
pub struct LikelihoodProblem {
    /// Post-order node visitation (children before parents, root last).
    pub postorder: Vec<usize>,
    /// Children of each node.
    pub children: Vec<Vec<usize>>,
    /// Parent of each node (`None` for the root) — the upward half of the
    /// topology, used by the reuse engine to walk root-paths when a branch
    /// length changes.
    pub parent: Vec<Option<usize>>,
    /// Whether the edge above each node is the foreground branch.
    pub is_foreground: Vec<bool>,
    /// For non-root nodes, the index of their branch in the optimizer's
    /// branch-length vector.
    pub branch_index: Vec<Option<usize>>,
    /// For leaves, the taxon row in the site patterns.
    pub leaf_taxon: Vec<Option<usize>>,
    /// Root node index.
    pub root: usize,
    /// Compressed alignment columns.
    pub patterns: SitePatterns,
    /// Equilibrium codon frequencies.
    pub pi: Vec<f64>,
    /// The genetic code (kept for downstream reporting).
    pub code: GeneticCode,
    /// Number of leaves (species), for reporting.
    pub n_species: usize,
}

impl LikelihoodProblem {
    /// Assemble a problem from a tree, an alignment and a frequency model.
    ///
    /// Leaf names must match alignment names exactly (a bijection); the
    /// tree must have exactly one foreground branch.
    ///
    /// # Errors
    /// [`BioError`] on name mismatches or missing/duplicated foreground
    /// mark.
    pub fn new(
        tree: &Tree,
        aln: &CodonAlignment,
        code: &GeneticCode,
        freq_model: FreqModel,
    ) -> Result<LikelihoodProblem, BioError> {
        tree.foreground_branch()?;
        Self::new_unmarked(tree, aln, code, freq_model)
    }

    /// Like [`LikelihoodProblem::new`] but with the foreground branch
    /// given explicitly, overriding whatever marks the tree carries.
    ///
    /// This is the cheap way to evaluate the same dataset under many
    /// candidate foreground branches (branch scans, batch runs): the tree
    /// is only borrowed, so no arena copy is made per candidate — only
    /// the flattened problem arrays are built.
    ///
    /// # Errors
    /// [`BioError::InvalidTree`] if `foreground` is the root or out of
    /// range; [`BioError`] on tree/alignment inconsistencies.
    pub fn new_with_foreground(
        tree: &Tree,
        foreground: slim_bio::NodeId,
        aln: &CodonAlignment,
        code: &GeneticCode,
        freq_model: FreqModel,
    ) -> Result<LikelihoodProblem, BioError> {
        if foreground.0 >= tree.n_nodes() {
            return Err(BioError::InvalidTree(format!(
                "foreground node {} out of range ({} nodes)",
                foreground.0,
                tree.n_nodes()
            )));
        }
        if tree.node(foreground).parent.is_none() {
            return Err(BioError::InvalidTree("root has no branch to mark".into()));
        }
        let mut problem = Self::new_unmarked(tree, aln, code, freq_model)?;
        for flag in &mut problem.is_foreground {
            *flag = false;
        }
        problem.is_foreground[foreground.0] = true;
        Ok(problem)
    }

    /// Like [`LikelihoodProblem::new`] but without requiring a foreground
    /// branch — for models that treat all branches alike (e.g. M0, the
    /// single-ω model in [`crate::m0`]).
    ///
    /// # Errors
    /// [`BioError`] on tree/alignment inconsistencies.
    pub fn new_unmarked(
        tree: &Tree,
        aln: &CodonAlignment,
        code: &GeneticCode,
        freq_model: FreqModel,
    ) -> Result<LikelihoodProblem, BioError> {
        let leaves = tree.leaves();
        if leaves.len() != aln.n_sequences() {
            return Err(BioError::InvalidTree(format!(
                "tree has {} leaves but alignment has {} sequences",
                leaves.len(),
                aln.n_sequences()
            )));
        }

        let n = tree.n_nodes();
        let mut children = vec![Vec::new(); n];
        let mut is_foreground = vec![false; n];
        let mut branch_index = vec![None; n];
        let mut leaf_taxon = vec![None; n];

        for id in tree.branch_nodes() {
            is_foreground[id.0] = tree.node(id).foreground;
        }
        for (bi, id) in tree.branch_nodes().into_iter().enumerate() {
            branch_index[id.0] = Some(bi);
        }
        for i in 0..n {
            children[i] = tree
                .node(slim_bio::NodeId(i))
                .children
                .iter()
                .map(|c| c.0)
                .collect();
        }
        for id in &leaves {
            let name =
                tree.node(*id).name.as_deref().ok_or_else(|| {
                    BioError::InvalidTree(format!("leaf node {} has no name", id.0))
                })?;
            let taxon = aln.index_of(name).ok_or_else(|| {
                BioError::InvalidTree(format!("leaf {name:?} not found in the alignment"))
            })?;
            leaf_taxon[id.0] = Some(taxon);
        }

        let patterns = SitePatterns::from_alignment(aln, code)?;
        let pi = slim_bio::codon_frequencies(aln, code, freq_model);

        let mut parent = vec![None; n];
        for (p, kids) in children.iter().enumerate() {
            for &c in kids {
                parent[c] = Some(p);
            }
        }

        Ok(LikelihoodProblem {
            postorder: tree.postorder().into_iter().map(|id| id.0).collect(),
            children,
            parent,
            is_foreground,
            branch_index,
            leaf_taxon,
            root: tree.root().0,
            patterns,
            pi,
            code: code.clone(),
            n_species: leaves.len(),
        })
    }

    /// Number of branches (length the optimizer's branch vector must have).
    pub fn n_branches(&self) -> usize {
        self.branch_index.iter().flatten().count()
    }

    /// Inverse of [`LikelihoodProblem::branch_index`]: for each branch
    /// index, the node whose parent edge it is.
    pub fn branch_nodes(&self) -> Vec<usize> {
        let mut nodes = vec![usize::MAX; self.n_branches()];
        for (node, bi) in self.branch_index.iter().enumerate() {
            if let Some(bi) = *bi {
                nodes[bi] = node;
            }
        }
        nodes
    }

    /// Number of unique site patterns.
    pub fn n_patterns(&self) -> usize {
        self.patterns.n_patterns()
    }

    /// Number of alignment sites.
    pub fn n_sites(&self) -> usize {
        self.patterns.n_sites()
    }

    /// Initial branch lengths taken from the tree used at construction
    /// (the caller may also seed its own).
    pub fn branch_order_of(&self, tree: &Tree) -> Vec<f64> {
        tree.branch_lengths()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_bio::parse_newick;

    fn toy() -> (Tree, CodonAlignment) {
        let tree = parse_newick("((A:0.1,B:0.2)#1:0.05,C:0.3);").unwrap();
        let aln =
            CodonAlignment::from_fasta(">A\nCCCTACTGC\n>B\nCCCTACTGC\n>C\nCCCTATTGC\n").unwrap();
        (tree, aln)
    }

    #[test]
    fn builds_and_counts() {
        let (tree, aln) = toy();
        let code = GeneticCode::universal();
        let p = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::F3x4).unwrap();
        assert_eq!(p.n_branches(), 4);
        assert_eq!(p.n_species, 3);
        assert_eq!(p.n_sites(), 3);
        assert!(p.n_patterns() <= 3);
        assert_eq!(p.postorder.len(), 5);
        assert_eq!(*p.postorder.last().unwrap(), p.root);
    }

    #[test]
    fn parent_inverts_children_and_branch_nodes_invert_indices() {
        let (tree, aln) = toy();
        let code = GeneticCode::universal();
        let p = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::F3x4).unwrap();
        assert_eq!(p.parent[p.root], None);
        for (node, kids) in p.children.iter().enumerate() {
            for &c in kids {
                assert_eq!(p.parent[c], Some(node));
            }
        }
        // Every non-root node has a parent.
        assert_eq!(p.parent.iter().filter(|x| x.is_some()).count(), 4);
        let nodes = p.branch_nodes();
        assert_eq!(nodes.len(), p.n_branches());
        for (bi, &node) in nodes.iter().enumerate() {
            assert_eq!(p.branch_index[node], Some(bi));
        }
    }

    #[test]
    fn foreground_flag_propagated() {
        let (tree, aln) = toy();
        let code = GeneticCode::universal();
        let p = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::F3x4).unwrap();
        let n_fg = p.is_foreground.iter().filter(|&&b| b).count();
        assert_eq!(n_fg, 1);
    }

    #[test]
    fn explicit_foreground_overrides_tree_marks() {
        let (tree, aln) = toy();
        let code = GeneticCode::universal();
        let a = tree.leaf_by_name("A").unwrap();
        let p =
            LikelihoodProblem::new_with_foreground(&tree, a, &aln, &code, FreqModel::F3x4).unwrap();
        // Only A's branch is foreground, regardless of the tree's #1 mark.
        assert!(p.is_foreground[a.0]);
        assert_eq!(p.is_foreground.iter().filter(|&&b| b).count(), 1);
        // Matches what a marked clone would produce.
        let marked = tree.with_foreground(a).unwrap();
        let q = LikelihoodProblem::new(&marked, &aln, &code, FreqModel::F3x4).unwrap();
        assert_eq!(p.is_foreground, q.is_foreground);
        // Root and out-of-range rejected.
        assert!(LikelihoodProblem::new_with_foreground(
            &tree,
            tree.root(),
            &aln,
            &code,
            FreqModel::F3x4
        )
        .is_err());
        assert!(LikelihoodProblem::new_with_foreground(
            &tree,
            slim_bio::NodeId(999),
            &aln,
            &code,
            FreqModel::F3x4
        )
        .is_err());
    }

    #[test]
    fn leaf_taxon_mapping_respects_names() {
        // Shuffle the alignment order relative to the tree.
        let tree = parse_newick("((A:0.1,B:0.2)#1:0.05,C:0.3);").unwrap();
        let aln =
            CodonAlignment::from_fasta(">C\nCCCTATTGC\n>A\nCCCTACTGC\n>B\nCCCTACTGC\n").unwrap();
        let code = GeneticCode::universal();
        let p = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::F61).unwrap();
        // Leaf named "A" must map to alignment row 1.
        let a_node = (0..p.children.len())
            .find(|&i| p.children[i].is_empty() && p.leaf_taxon[i] == Some(1))
            .expect("leaf A present");
        let _ = a_node;
    }

    #[test]
    fn missing_name_rejected() {
        let tree = parse_newick("((A:0.1,X:0.2)#1:0.05,C:0.3);").unwrap();
        let aln = CodonAlignment::from_fasta(">A\nCCC\n>B\nCCC\n>C\nCCA\n").unwrap();
        let code = GeneticCode::universal();
        assert!(LikelihoodProblem::new(&tree, &aln, &code, FreqModel::F3x4).is_err());
    }

    #[test]
    fn wrong_leaf_count_rejected() {
        let tree = parse_newick("((A:0.1,B:0.2)#1:0.05,C:0.3);").unwrap();
        let aln = CodonAlignment::from_fasta(">A\nCCC\n>B\nCCC\n").unwrap();
        let code = GeneticCode::universal();
        assert!(LikelihoodProblem::new(&tree, &aln, &code, FreqModel::F3x4).is_err());
    }

    #[test]
    fn no_foreground_rejected() {
        let tree = parse_newick("((A:0.1,B:0.2):0.05,C:0.3);").unwrap();
        let aln = CodonAlignment::from_fasta(">A\nCCC\n>B\nCCC\n>C\nCCA\n").unwrap();
        let code = GeneticCode::universal();
        assert!(LikelihoodProblem::new(&tree, &aln, &code, FreqModel::F3x4).is_err());
    }
}
