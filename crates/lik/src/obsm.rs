//! slim-obs handles for the likelihood engine.
//!
//! One `OnceLock`-cached struct of `Arc` handles: the evaluation hot path
//! records through relaxed atomics and never touches the registry lock.

use slim_obs::{Counter, Gauge, Histogram};
use std::sync::{Arc, OnceLock};

#[derive(Debug)]
pub(crate) struct LikMetrics {
    /// `lik.evaluations` — full likelihood evaluations run.
    pub evaluations: Arc<Counter>,
    /// `lik.pruning.units` — (site class × pattern block) units pruned.
    pub units: Arc<Counter>,
    /// `lik.phase.eigen_seconds` — §III-A steps 1–2 per evaluation.
    pub eigen: Arc<Histogram>,
    /// `lik.phase.expm_seconds` — transition-operator reconstruction.
    pub expm: Arc<Histogram>,
    /// `lik.phase.pruning_seconds` — Felsenstein pruning (wall clock).
    pub pruning: Arc<Histogram>,
    /// `lik.phase.reduction_seconds` — serial class mixing + total.
    pub reduction: Arc<Histogram>,
    /// `lik.pruning.worker_busy_seconds` — per-worker time inside
    /// `prune_block` (one observation per worker per evaluation), so the
    /// spread shows pruning load balance.
    pub worker_busy: Arc<Histogram>,
    /// `lik.threads` — resolved thread count of the last evaluation.
    pub threads: Arc<Gauge>,
    /// `lik.simd.lanes` — vector lanes of the SIMD backend the last
    /// evaluation resolved to (1 = scalar, 4 = AVX2, 2 = NEON).
    pub simd_lanes: Arc<Gauge>,
    /// `lik.reuse.evaluations` — evaluations served by the reuse engine.
    pub reuse_evaluations: Arc<Counter>,
    /// `lik.reuse.full_invalidations` — reuse evaluations that had to
    /// recompute everything (globals changed, first call, or shape
    /// change).
    pub reuse_full_invalidations: Arc<Counter>,
    /// `lik.reuse.dirty_branches` — branches whose length bits changed
    /// since the previous evaluation, summed over evaluations.
    pub reuse_dirty_branches: Arc<Counter>,
    /// `lik.reuse.units_reused` — internal-node CPV blocks served from the
    /// cross-evaluation cache.
    pub reuse_units_reused: Arc<Counter>,
    /// `lik.reuse.units_recomputed` — internal-node CPV blocks recomputed
    /// because they sat on a dirty root-path.
    pub reuse_units_recomputed: Arc<Counter>,
    /// `lik.reuse.hint_violations` — optimizer deltas that failed to cover
    /// an observed parameter change (the bitwise self-diff caught it; the
    /// evaluation stays correct).
    pub reuse_hint_violations: Arc<Counter>,
}

static M: OnceLock<LikMetrics> = OnceLock::new();

pub(crate) fn metrics() -> &'static LikMetrics {
    M.get_or_init(|| LikMetrics {
        evaluations: slim_obs::counter("lik.evaluations"),
        units: slim_obs::counter("lik.pruning.units"),
        eigen: slim_obs::histogram("lik.phase.eigen_seconds"),
        expm: slim_obs::histogram("lik.phase.expm_seconds"),
        pruning: slim_obs::histogram("lik.phase.pruning_seconds"),
        reduction: slim_obs::histogram("lik.phase.reduction_seconds"),
        worker_busy: slim_obs::histogram("lik.pruning.worker_busy_seconds"),
        threads: slim_obs::gauge("lik.threads"),
        simd_lanes: slim_obs::gauge("lik.simd.lanes"),
        reuse_evaluations: slim_obs::counter("lik.reuse.evaluations"),
        reuse_full_invalidations: slim_obs::counter("lik.reuse.full_invalidations"),
        reuse_dirty_branches: slim_obs::counter("lik.reuse.dirty_branches"),
        reuse_units_reused: slim_obs::counter("lik.reuse.units_reused"),
        reuse_units_recomputed: slim_obs::counter("lik.reuse.units_recomputed"),
        reuse_hint_violations: slim_obs::counter("lik.reuse.hint_violations"),
    })
}

/// Eagerly register every likelihood-engine metric name so snapshots are
/// schema-stable even before the first evaluation.
pub fn register_metrics() {
    let _ = metrics();
}
