//! The M0 (one-ratio) codon model: a single ω on every branch.
//!
//! The paper's §V-B notes that "the optimized likelihood computation can
//! also be applied to further maximum likelihood-based evolutionary
//! models"; M0 is the simplest such model and shares every building block
//! — the Eq. 1 rate matrix, the symmetric expm paths, and the pruning
//! engine (a single site class, identical foreground/background ω).

use crate::engine::{EngineConfig, ExpmPath};
use crate::problem::LikelihoodProblem;
use crate::pruning::{prune_one_class, TransOp};
use slim_expm::{CpvStrategy, EigenSystem};
use slim_linalg::LinalgError;
use slim_model::{build_rate_matrix, ScalePolicy};
use std::sync::Arc;

/// Log-likelihood of the alignment under M0 with parameters
/// `(kappa, omega)` and the given branch lengths.
///
/// Works on problems built with
/// [`LikelihoodProblem::new_unmarked`] — no foreground branch is needed.
///
/// # Errors
/// Propagates eigensolver failures.
///
/// # Panics
/// Panics if `branch_lengths.len()` mismatches the problem.
pub fn log_likelihood_m0(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    kappa: f64,
    omega: f64,
    branch_lengths: &[f64],
) -> Result<f64, LinalgError> {
    assert_eq!(
        branch_lengths.len(),
        problem.n_branches(),
        "branch length vector has wrong length"
    );
    let rm = build_rate_matrix(
        &problem.code,
        kappa,
        omega,
        &problem.pi,
        ScalePolicy::PerClass,
    );
    let es = match &config.eigen_cache {
        Some(cache) => cache.get_or_compute(kappa, omega, &rm, config.eigen)?,
        None => Arc::new(EigenSystem::from_rate_matrix(&rm, config.eigen)?),
    };

    let n_nodes = problem.children.len();
    let mut ops: Vec<[Option<TransOp>; 3]> = (0..n_nodes).map(|_| [None, None, None]).collect();
    for (node, op_slot) in ops.iter_mut().enumerate() {
        let Some(bi) = problem.branch_index[node] else {
            continue;
        };
        let t = branch_lengths[bi];
        op_slot[0] = Some(match config.cpv {
            CpvStrategy::SymmetricSymv => TransOp::Sym(es.symmetric_transition(t)),
            _ => TransOp::Dense(match config.expm {
                ExpmPath::Eq9Naive => es.transition_matrix_eq9_naive(t),
                ExpmPath::Eq9Tuned => es.transition_matrix_eq9(t),
                ExpmPath::Eq10Syrk => es.transition_matrix_eq10(t),
            }),
        });
    }

    let per_pattern = prune_one_class(problem, config, &ops, 0, 0);
    let mut lnl = 0.0;
    for (p, &lp) in per_pattern.iter().enumerate() {
        lnl += problem.patterns.weight(p) * lp;
    }
    Ok(lnl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_bio::{parse_newick, CodonAlignment, FreqModel, GeneticCode};
    use slim_model::BranchSiteModel;

    fn problem() -> LikelihoodProblem {
        let tree = parse_newick("((A:0.1,B:0.2):0.05,C:0.3);").unwrap();
        let aln =
            CodonAlignment::from_fasta(">A\nATGCCCTTT\n>B\nATGCCATTT\n>C\nATGCCCTTC\n").unwrap();
        let code = GeneticCode::universal();
        LikelihoodProblem::new_unmarked(&tree, &aln, &code, FreqModel::F3x4).unwrap()
    }

    #[test]
    fn m0_engines_agree() {
        let p = problem();
        let bl = vec![0.1; p.n_branches()];
        let base = log_likelihood_m0(&p, &EngineConfig::codeml_style(), 2.0, 0.5, &bl).unwrap();
        let slim = log_likelihood_m0(&p, &EngineConfig::slim(), 2.0, 0.5, &bl).unwrap();
        assert!(((base - slim) / base).abs() < 1e-10, "{base} vs {slim}");
        assert!(base.is_finite() && base < 0.0);
    }

    #[test]
    fn m0_equals_branch_site_with_degenerate_mixture() {
        // BSM with p0 → 1 and ω0 = ω is (almost) M0 with that ω: class 0
        // dominates and uses ω everywhere.
        let tree = parse_newick("((A:0.1,B:0.2)#1:0.05,C:0.3);").unwrap();
        let aln =
            CodonAlignment::from_fasta(">A\nATGCCCTTT\n>B\nATGCCATTT\n>C\nATGCCCTTC\n").unwrap();
        let code = GeneticCode::universal();
        let p = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::F3x4).unwrap();
        let bl = vec![0.1; p.n_branches()];
        let omega = 0.42;

        let m0 = log_likelihood_m0(&p, &EngineConfig::slim(), 2.0, omega, &bl).unwrap();

        let bsm = BranchSiteModel {
            kappa: 2.0,
            omega0: omega,
            omega2: 1.0,
            p0: 1.0 - 1e-9,
            p1: 1e-9 / 2.0,
        };
        let lnl = crate::pruning::log_likelihood(&p, &EngineConfig::slim(), &bsm, &bl).unwrap();
        // The BSM shared scale reduces to μ(ω) as p0→1, matching M0's
        // per-class scale, so the two likelihoods must coincide.
        assert!((m0 - lnl).abs() < 1e-4, "M0 {m0} vs degenerate BSM {lnl}");
    }

    #[test]
    fn m0_omega_sensitivity() {
        // Purifying data (few differences, mostly synonymous-compatible):
        // small omega should beat large omega.
        let p = problem();
        let bl = vec![0.1; p.n_branches()];
        let small = log_likelihood_m0(&p, &EngineConfig::slim(), 2.0, 0.1, &bl).unwrap();
        let large = log_likelihood_m0(&p, &EngineConfig::slim(), 2.0, 5.0, &bl).unwrap();
        assert!(small.is_finite() && large.is_finite());
        assert_ne!(small, large);
    }
}
