//! Felsenstein pruning over site patterns with branch-site classes.

use crate::engine::{EngineConfig, ExpmPath};
use crate::problem::LikelihoodProblem;
use slim_expm::{cpv, CpvStrategy, EigenSystem, SymTransition};
use slim_linalg::{LinalgError, Mat};
use slim_model::{build_rate_matrix, BranchSiteModel, ScalePolicy, N_SITE_CLASSES};
use std::sync::Arc;

/// Number of distinct ω rate matrices per evaluation (ω0, ω1 = 1, ω2).
const N_OMEGA: usize = 3;

/// A per-branch transition operator, in whichever representation the
/// engine's CPV strategy needs.
pub(crate) enum TransOp {
    /// Dense `P(t)`.
    Dense(Mat),
    /// Eq. 12 symmetric representation.
    Sym(SymTransition),
}

impl TransOp {
    /// `P·e_c` — the CPV a leaf with observed codon `c` propagates to its
    /// parent (the product against an indicator vector collapses to a
    /// column gather; CodeML special-cases this identically).
    fn column(&self, c: usize, out: &mut [f64]) {
        match self {
            TransOp::Dense(p) => {
                for (i, o) in out.iter_mut().enumerate() {
                    *o = p[(i, c)];
                }
            }
            TransOp::Sym(st) => {
                // P·e_c = M·(Π·e_c) = π_c · M[:,c].
                let m = st.matrix();
                let pic = st.pi()[c];
                for (i, o) in out.iter_mut().enumerate() {
                    *o = pic * m[(i, c)];
                }
            }
        }
    }

    /// Apply to a dense block of CPVs (one column per pattern).
    fn apply_dense(&self, strategy: CpvStrategy, w: &Mat, out: &mut Mat) {
        match self {
            TransOp::Dense(p) => cpv::apply_dense(strategy, p, w, out),
            TransOp::Sym(st) => st.apply_dense(w, out),
        }
    }
}

/// Full output of one likelihood evaluation.
#[derive(Debug, Clone)]
pub struct LikelihoodValue {
    /// Total log-likelihood Σ_sites ln Σ_classes p_c L_c(site).
    pub lnl: f64,
    /// Mixture log-likelihood per pattern.
    pub per_pattern: Vec<f64>,
    /// Per-class per-pattern log-likelihoods (`[class][pattern]`), the
    /// inputs to empirical-Bayes site classification.
    pub per_class: Vec<Vec<f64>>,
    /// The four class proportions used.
    pub proportions: [f64; N_SITE_CLASSES],
}

/// Convenience wrapper returning only the scalar log-likelihood.
///
/// # Errors
/// Propagates eigensolver failures.
pub fn log_likelihood(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    model: &BranchSiteModel,
    branch_lengths: &[f64],
) -> Result<f64, LinalgError> {
    site_class_log_likelihoods(problem, config, model, branch_lengths).map(|v| v.lnl)
}

/// Evaluate the branch-site likelihood, returning per-class detail.
///
/// `branch_lengths` is indexed like [`LikelihoodProblem::branch_index`].
///
/// # Errors
/// Propagates eigensolver failures.
///
/// # Panics
/// Panics if `branch_lengths.len()` mismatches the problem.
pub fn site_class_log_likelihoods(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    model: &BranchSiteModel,
    branch_lengths: &[f64],
) -> Result<LikelihoodValue, LinalgError> {
    assert_eq!(
        branch_lengths.len(),
        problem.n_branches(),
        "branch length vector has wrong length"
    );
    let n = problem.pi.len();
    let n_pat = problem.n_patterns();

    // --- 1. Rate matrices + eigendecompositions, one per distinct ω. ---
    // All classes share one rate scale (the background mixture average),
    // so ω2 > 1 genuinely accelerates foreground evolution — see
    // BranchSiteModel::shared_scale.
    let omegas = model.omegas();
    let (syn_flux, nonsyn_flux) =
        slim_model::codon_model::rate_components(&problem.code, model.kappa, &problem.pi);
    let scale = model.shared_scale(syn_flux, nonsyn_flux);
    let mut eigensystems: Vec<Arc<EigenSystem>> = Vec::with_capacity(N_OMEGA);
    for &omega in &omegas {
        let rm = build_rate_matrix(
            &problem.code,
            model.kappa,
            omega,
            &problem.pi,
            ScalePolicy::External(scale),
        );
        let es = match &config.eigen_cache {
            Some(cache) => cache.get_or_compute(model.kappa, omega, &rm, config.eigen)?,
            None => Arc::new(EigenSystem::from_rate_matrix(&rm, config.eigen)?),
        };
        eigensystems.push(es);
    }

    // --- 2. Transition operators per (branch, needed ω). ---
    // Background branches need ω0 and ω1; the foreground branch also ω2.
    let n_nodes = problem.children.len();
    let mut ops: Vec<[Option<TransOp>; N_OMEGA]> =
        (0..n_nodes).map(|_| [None, None, None]).collect();
    for node in 0..n_nodes {
        let Some(bi) = problem.branch_index[node] else {
            continue;
        };
        let t = branch_lengths[bi];
        let needed: &[usize] = if problem.is_foreground[node] {
            &[0, 1, 2]
        } else {
            &[0, 1]
        };
        for &w in needed {
            let es = &eigensystems[w];
            let op = match config.cpv {
                CpvStrategy::SymmetricSymv => TransOp::Sym(es.symmetric_transition(t)),
                _ => TransOp::Dense(match config.expm {
                    ExpmPath::Eq9Naive => es.transition_matrix_eq9_naive(t),
                    ExpmPath::Eq9Tuned => es.transition_matrix_eq9(t),
                    ExpmPath::Eq10Syrk => es.transition_matrix_eq10(t),
                }),
            };
            ops[node][w] = Some(op);
        }
    }

    // --- 3. Pruning per site class (optionally on separate threads —
    // the classes only read shared data, §V-B's FastCodeML direction). ---
    let classes = model.site_classes();
    let per_class: Vec<Vec<f64>> = if config.parallel_classes {
        let ops_ref = &ops;
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = classes
                .iter()
                .map(|class| {
                    let (bg, fg, prop) = (
                        class.background_omega,
                        class.foreground_omega,
                        class.proportion,
                    );
                    scope.spawn(move |_| {
                        if prop <= 0.0 {
                            vec![f64::NEG_INFINITY; n_pat]
                        } else {
                            prune_one_class(problem, config, ops_ref, bg, fg)
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("class pruning thread"))
                .collect()
        })
        .expect("crossbeam scope")
    } else {
        classes
            .iter()
            .map(|class| {
                if class.proportion <= 0.0 {
                    vec![f64::NEG_INFINITY; n_pat]
                } else {
                    prune_one_class(
                        problem,
                        config,
                        &ops,
                        class.background_omega,
                        class.foreground_omega,
                    )
                }
            })
            .collect()
    };

    // --- 4. Mix classes per pattern (log-sum-exp). ---
    let mut per_pattern = vec![0.0f64; n_pat];
    let mut lnl = 0.0f64;
    let props = [
        classes[0].proportion,
        classes[1].proportion,
        classes[2].proportion,
        classes[3].proportion,
    ];
    for p in 0..n_pat {
        let mut max = f64::NEG_INFINITY;
        for c in 0..N_SITE_CLASSES {
            if props[c] > 0.0 {
                let v = props[c].ln() + per_class[c][p];
                if v > max {
                    max = v;
                }
            }
        }
        let value = if max.is_finite() {
            let mut sum = 0.0;
            for c in 0..N_SITE_CLASSES {
                if props[c] > 0.0 {
                    sum += (props[c].ln() + per_class[c][p] - max).exp();
                }
            }
            max + sum.ln()
        } else {
            f64::NEG_INFINITY
        };
        per_pattern[p] = value;
        lnl += problem.patterns.weight(p) * value;
    }
    let _ = n;

    Ok(LikelihoodValue {
        lnl,
        per_pattern,
        per_class,
        proportions: props,
    })
}

/// Pruning pass for one site class: returns per-pattern log-likelihood.
pub(crate) fn prune_one_class(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    ops: &[[Option<TransOp>; N_OMEGA]],
    bg_omega: usize,
    fg_omega: usize,
) -> Vec<f64> {
    let n = problem.pi.len();
    let n_pat = problem.n_patterns();
    let n_nodes = problem.children.len();

    // Per-node CPV blocks (n × patterns); leaves are handled implicitly.
    let mut cpvs: Vec<Option<Mat>> = (0..n_nodes).map(|_| None).collect();
    let mut scale_log = vec![0.0f64; n_pat];
    let mut tmp = Mat::zeros(n, n_pat);

    for &node in &problem.postorder {
        if problem.children[node].is_empty() {
            continue; // leaves contribute through their parent
        }
        let mut combined: Option<Mat> = None;
        for &child in &problem.children[node] {
            let w = if problem.is_foreground[child] {
                fg_omega
            } else {
                bg_omega
            };
            let op = ops[child][w]
                .as_ref()
                .expect("operator built for needed omega");

            if let Some(taxon) = problem.leaf_taxon[child] {
                // Leaf: P·e_c collapses to a column gather per pattern.
                // Missing data integrates the state out: P·1 = 1 (rows of
                // P sum to one), so the contribution is a ones column.
                let mut col = vec![0.0f64; n];
                for p in 0..n_pat {
                    let codon = problem.patterns.pattern(p)[taxon];
                    if codon == slim_bio::patterns::MISSING {
                        for i in 0..n {
                            tmp[(i, p)] = 1.0;
                        }
                        continue;
                    }
                    op.column(codon, &mut col);
                    for i in 0..n {
                        tmp[(i, p)] = col[i];
                    }
                }
            } else {
                let child_cpv = cpvs[child].take().expect("child CPV computed in postorder");
                op.apply_dense(config.cpv, &child_cpv, &mut tmp);
            }

            combined = Some(match combined {
                None => tmp.clone(),
                Some(mut acc) => {
                    for (a, t) in acc.as_mut_slice().iter_mut().zip(tmp.as_slice()) {
                        *a *= t;
                    }
                    acc
                }
            });
        }
        let mut cpv = combined.expect("internal node has children");

        // Numerical rescaling per pattern column.
        for p in 0..n_pat {
            let mut m = 0.0f64;
            for i in 0..n {
                let v = cpv[(i, p)];
                if v > m {
                    m = v;
                }
            }
            if m > 0.0 && m < config.scale_threshold {
                let inv = 1.0 / m;
                for i in 0..n {
                    cpv[(i, p)] *= inv;
                }
                scale_log[p] += m.ln();
            }
        }
        cpvs[node] = Some(cpv);
    }

    // Root combination with π.
    let root_cpv = cpvs[problem.root].take().expect("root CPV computed");
    let mut out = vec![0.0f64; n_pat];
    for p in 0..n_pat {
        let mut s = 0.0;
        for i in 0..n {
            s += problem.pi[i] * root_cpv[(i, p)];
        }
        out[p] = if s > 0.0 {
            s.ln() + scale_log[p]
        } else {
            f64::NEG_INFINITY
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_bio::{parse_newick, CodonAlignment, FreqModel, GeneticCode};
    use slim_model::Hypothesis;

    fn toy_problem() -> LikelihoodProblem {
        let tree = parse_newick("(((A:0.1,B:0.2):0.05,C:0.3)#1:0.1,(D:0.25,E:0.15):0.2);").unwrap();
        // The paper's Fig. 1 example alignment (5 species × 6 codons).
        let aln = CodonAlignment::from_fasta(
            ">A\nCCCTACTGCCCCAAGGAG\n>B\nCCCTACTGCCCCAAGGAG\n>C\nCCCTACTGCCCCAAGGAG\n>D\nCCCTATTGCCCCAAGGAG\n>E\nCCCTACTGCACCAAGGAG\n",
        )
        .unwrap();
        let code = GeneticCode::universal();
        LikelihoodProblem::new(&tree, &aln, &code, FreqModel::F3x4).unwrap()
    }

    fn default_model() -> BranchSiteModel {
        BranchSiteModel::default_start(Hypothesis::H1)
    }

    #[test]
    fn engines_agree_to_high_precision() {
        // The paper's accuracy experiment (§IV-1): relative lnL difference
        // between CodeML-style and Slim paths must be ~1e-10 or better on
        // small data.
        let problem = toy_problem();
        let model = default_model();
        let bl = vec![0.1; problem.n_branches()];
        let base = log_likelihood(&problem, &EngineConfig::codeml_style(), &model, &bl).unwrap();
        let slim = log_likelihood(&problem, &EngineConfig::slim(), &model, &bl).unwrap();
        let plus = log_likelihood(&problem, &EngineConfig::slim_plus(), &model, &bl).unwrap();
        let sym = log_likelihood(&problem, &EngineConfig::slim_symmetric(), &model, &bl).unwrap();
        let d = |a: f64, b: f64| ((a - b) / a).abs();
        assert!(base.is_finite() && base < 0.0);
        assert!(d(base, slim) < 1e-10, "codeml {base} vs slim {slim}");
        assert!(d(base, plus) < 1e-10, "codeml {base} vs slim+ {plus}");
        assert!(d(base, sym) < 1e-10, "codeml {base} vs eq12 {sym}");
    }

    #[test]
    fn missing_data_accepted_and_between_bounds() {
        let tree = parse_newick("((A:0.1,B:0.2)#1:0.05,C:0.3);").unwrap();
        let full = CodonAlignment::from_fasta(">A\nATGCCC\n>B\nATGCCA\n>C\nATGCCC\n").unwrap();
        let gapped = CodonAlignment::from_fasta(">A\nATG---\n>B\nATGCCA\n>C\nATGNNN\n").unwrap();
        let code = GeneticCode::universal();
        let model = default_model();
        let p_full = LikelihoodProblem::new(&tree, &full, &code, FreqModel::Equal).unwrap();
        let p_gap = LikelihoodProblem::new(&tree, &gapped, &code, FreqModel::Equal).unwrap();
        let bl = vec![0.1; 4];
        let l_full = log_likelihood(&p_full, &EngineConfig::slim(), &model, &bl).unwrap();
        let l_gap = log_likelihood(&p_gap, &EngineConfig::slim(), &model, &bl).unwrap();
        // Less observed data → likelihood closer to 0 (larger lnL).
        assert!(l_gap > l_full, "gapped {l_gap} vs full {l_full}");
        assert!(l_gap < 0.0);
    }

    #[test]
    fn all_missing_leaf_equals_pruned_tree() {
        // A leaf with only missing data is integrated out; by
        // Chapman–Kolmogorov the likelihood equals that of the tree with
        // the leaf removed and its sibling path merged.
        let tree_x = parse_newick("((A:0.1,X:0.7):0.2,C#1:0.3);").unwrap();
        let aln_x =
            CodonAlignment::from_fasta(">A\nATGCCCTTT\n>X\n---------\n>C\nATGCCATTC\n").unwrap();
        // Merged: A's branch is 0.1 + 0.2.
        let tree_m = parse_newick("(A:0.3,C#1:0.3);").unwrap();
        let aln_m = CodonAlignment::from_fasta(">A\nATGCCCTTT\n>C\nATGCCATTC\n").unwrap();

        let code = GeneticCode::universal();
        let model = default_model();
        let p_x = LikelihoodProblem::new(&tree_x, &aln_x, &code, FreqModel::Equal).unwrap();
        let p_m = LikelihoodProblem::new(&tree_m, &aln_m, &code, FreqModel::Equal).unwrap();
        let l_x = log_likelihood(
            &p_x,
            &EngineConfig::slim(),
            &model,
            &p_x.branch_order_of(&tree_x),
        )
        .unwrap();
        let l_m = log_likelihood(
            &p_m,
            &EngineConfig::slim(),
            &model,
            &p_m.branch_order_of(&tree_m),
        )
        .unwrap();
        assert!(
            (l_x - l_m).abs() < 1e-9,
            "with missing leaf {l_x} vs pruned {l_m}"
        );
    }

    #[test]
    fn parallel_classes_match_serial() {
        let problem = toy_problem();
        let model = default_model();
        let bl = vec![0.1; problem.n_branches()];
        let serial = log_likelihood(&problem, &EngineConfig::slim(), &model, &bl).unwrap();
        let parallel =
            log_likelihood(&problem, &EngineConfig::slim_parallel(), &model, &bl).unwrap();
        assert!(
            (serial - parallel).abs() < 1e-12,
            "parallel {parallel} vs serial {serial}"
        );
    }

    #[test]
    fn likelihood_value_structure() {
        let problem = toy_problem();
        let model = default_model();
        let bl = vec![0.1; problem.n_branches()];
        let v = site_class_log_likelihoods(&problem, &EngineConfig::slim(), &model, &bl).unwrap();
        assert_eq!(v.per_pattern.len(), problem.n_patterns());
        assert_eq!(v.per_class.len(), 4);
        assert!((v.proportions.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Total equals the weighted per-pattern sum.
        let total: f64 = (0..problem.n_patterns())
            .map(|p| problem.patterns.weight(p) * v.per_pattern[p])
            .sum();
        assert!((total - v.lnl).abs() < 1e-10);
    }

    #[test]
    fn identical_sequences_favor_short_branches() {
        let tree = parse_newick("((A:0.1,B:0.1)#1:0.1,C:0.1);").unwrap();
        let aln =
            CodonAlignment::from_fasta(">A\nATGATGATG\n>B\nATGATGATG\n>C\nATGATGATG\n").unwrap();
        let code = GeneticCode::universal();
        let problem = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::F61).unwrap();
        let model = default_model();
        let short = log_likelihood(&problem, &EngineConfig::slim(), &model, &[0.01; 4]).unwrap();
        let long = log_likelihood(&problem, &EngineConfig::slim(), &model, &[2.0; 4]).unwrap();
        assert!(
            short > long,
            "identical sequences: short {short} vs long {long}"
        );
    }

    #[test]
    fn divergent_sequences_favor_longer_branches() {
        let tree = parse_newick("((A:0.1,B:0.1)#1:0.1,C:0.1);").unwrap();
        let aln =
            CodonAlignment::from_fasta(">A\nATGTTTCCA\n>B\nGTACATCGA\n>C\nTTGGCGAAT\n").unwrap();
        let code = GeneticCode::universal();
        let problem = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::Equal).unwrap();
        let model = default_model();
        let tiny = log_likelihood(&problem, &EngineConfig::slim(), &model, &[1e-5; 4]).unwrap();
        let medium = log_likelihood(&problem, &EngineConfig::slim(), &model, &[0.5; 4]).unwrap();
        assert!(medium > tiny, "divergent: medium {medium} vs tiny {tiny}");
    }

    #[test]
    fn likelihood_invariant_to_pattern_order() {
        // Reordering alignment columns must not change lnL.
        let tree = parse_newick("((A:0.1,B:0.2)#1:0.05,C:0.3);").unwrap();
        let code = GeneticCode::universal();
        let aln1 =
            CodonAlignment::from_fasta(">A\nATGCCCTTT\n>B\nATGCCATTT\n>C\nATGCCCTTC\n").unwrap();
        let aln2 =
            CodonAlignment::from_fasta(">A\nTTTATGCCC\n>B\nTTTATGCCA\n>C\nTTCATGCCC\n").unwrap();
        let model = default_model();
        let p1 = LikelihoodProblem::new(&tree, &aln1, &code, FreqModel::Equal).unwrap();
        let p2 = LikelihoodProblem::new(&tree, &aln2, &code, FreqModel::Equal).unwrap();
        let l1 = log_likelihood(&p1, &EngineConfig::slim(), &model, &[0.1; 4]).unwrap();
        let l2 = log_likelihood(&p2, &EngineConfig::slim(), &model, &[0.1; 4]).unwrap();
        assert!((l1 - l2).abs() < 1e-10);
    }

    #[test]
    fn omega2_changes_likelihood_only_through_foreground() {
        // With the foreground branch length at ~0, ω2 has (almost) no
        // effect on the likelihood.
        let tree = parse_newick("((A:0.1,B:0.2)#1:0.05,C:0.3);").unwrap();
        let aln =
            CodonAlignment::from_fasta(">A\nATGCCCTTT\n>B\nATGCCATTT\n>C\nATGCCCTTC\n").unwrap();
        let code = GeneticCode::universal();
        let problem = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::Equal).unwrap();
        // branch order: find which branch is foreground and zero it.
        let mut bl = vec![0.2; problem.n_branches()];
        for node in 0..problem.children.len() {
            if problem.is_foreground[node] {
                bl[problem.branch_index[node].unwrap()] = 1e-9;
            }
        }
        let m1 = BranchSiteModel {
            omega2: 1.0,
            ..default_model()
        };
        let m2 = BranchSiteModel {
            omega2: 8.0,
            ..default_model()
        };
        let l1 = log_likelihood(&problem, &EngineConfig::slim(), &m1, &bl).unwrap();
        let l2 = log_likelihood(&problem, &EngineConfig::slim(), &m2, &bl).unwrap();
        assert!((l1 - l2).abs() < 1e-6, "{l1} vs {l2}");
    }

    #[test]
    fn scaling_keeps_large_trees_finite() {
        // A caterpillar tree long enough to underflow without scaling.
        let n_leaves = 40;
        let mut newick = String::from("L0:0.5");
        for i in 1..n_leaves {
            newick = format!("({newick},L{i}:0.5):0.5");
        }
        let newick = format!("{newick};");
        let tree = {
            let mut t = parse_newick(&newick).unwrap();
            let leaf = t.leaf_by_name("L0").unwrap();
            t.set_foreground(leaf).unwrap();
            t
        };
        let seq = "ATGCCC";
        let fasta: String = (0..n_leaves).map(|i| format!(">L{i}\n{seq}\n")).collect();
        let aln = CodonAlignment::from_fasta(&fasta).unwrap();
        let code = GeneticCode::universal();
        let problem = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::Equal).unwrap();
        let model = default_model();
        let bl = vec![0.5; problem.n_branches()];
        let lnl = log_likelihood(&problem, &EngineConfig::slim(), &model, &bl).unwrap();
        assert!(lnl.is_finite(), "scaling failed: {lnl}");
        assert!(lnl < 0.0);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn branch_vector_length_checked() {
        let problem = toy_problem();
        let model = default_model();
        let _ = log_likelihood(&problem, &EngineConfig::slim(), &model, &[0.1, 0.2]);
    }
}
