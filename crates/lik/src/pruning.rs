//! Felsenstein pruning over site patterns with branch-site classes.
//!
//! This module holds the *per-unit* pruning kernel: one site class over one
//! contiguous block of site patterns, with caller-owned scratch so the hot
//! path is allocation-free. The `slim-par` driver in [`crate::par`] fans
//! these units across worker threads; `prune_one_class` is the full-width
//! serial wrapper used by the auxiliary models (M0, M1a/M2a, branch model).
//!
//! ## Determinism contract
//!
//! Every per-pattern quantity computed here depends only on the pattern's
//! own column: the CPV kernels apply `P` column-by-column (or, for the
//! bundled `gemm`, accumulate each output element over `k` in an order
//! independent of the number of columns present), rescaling is per column,
//! and the root combination is a per-column dot with π. Therefore pruning
//! a block `[lo, lo+b)` produces exactly the bits the same patterns get in
//! a full-width pass — the partition into blocks, and which thread runs
//! which block, cannot change any per-pattern value.

use crate::engine::EngineConfig;
use crate::par::PhaseTiming;
use crate::problem::LikelihoodProblem;
use slim_expm::{cpv, CpvScratch, CpvStrategy, SymTransition};
use slim_linalg::{LinalgError, Mat};
use slim_model::{BranchSiteModel, N_SITE_CLASSES};

/// Number of distinct ω rate matrices per evaluation (ω0, ω1 = 1, ω2).
pub(crate) const N_OMEGA: usize = 3;

/// A per-branch transition operator, in whichever representation the
/// engine's CPV strategy needs.
pub(crate) enum TransOp {
    /// Dense `P(t)`.
    Dense(Mat),
    /// Eq. 12 symmetric representation.
    Sym(SymTransition),
}

impl TransOp {
    /// `P·e_c` — the CPV a leaf with observed codon `c` propagates to its
    /// parent (the product against an indicator vector collapses to a
    /// column gather; CodeML special-cases this identically).
    // check: allow(panic-free-hot-path) c < cols() by caller loop bound; out sized n by PruneWorkspace::ensure
    fn column(&self, c: usize, out: &mut [f64]) {
        match self {
            TransOp::Dense(p) => {
                for (i, o) in out.iter_mut().enumerate() {
                    *o = p[(i, c)];
                }
            }
            TransOp::Sym(st) => {
                // P·e_c = M·(Π·e_c) = π_c · M[:,c].
                let m = st.matrix();
                let pic = st.pi()[c];
                for (i, o) in out.iter_mut().enumerate() {
                    *o = pic * m[(i, c)];
                }
            }
        }
    }

    /// Apply to a dense block of CPVs (one column per pattern), reusing
    /// caller-owned scratch so the hot path does not allocate.
    fn apply_dense(&self, strategy: CpvStrategy, w: &Mat, out: &mut Mat, scratch: &mut CpvScratch) {
        match self {
            TransOp::Dense(p) => cpv::apply_dense_with(strategy, p, w, out, scratch),
            TransOp::Sym(st) => st.apply_dense_with(w, out, scratch),
        }
    }
}

/// Source of per-(node, ω) transition operators for a pruning pass: the
/// stateless engine hands the kernel a per-evaluation table, the reuse
/// engine a cross-evaluation [`slim_expm::PtCache`] view. Both must hold
/// an operator for every ω the scheduled classes select on every branch.
pub(crate) trait OpSource: Sync {
    /// The operator for the edge above `node` under ω index `w`.
    fn op(&self, node: usize, w: usize) -> &TransOp;
}

impl OpSource for [[Option<TransOp>; N_OMEGA]] {
    // check: allow(panic-free-hot-path) the expm phase builds an operator for every ω a class selects before pruning starts
    fn op(&self, node: usize, w: usize) -> &TransOp {
        self[node][w]
            .as_ref()
            // check: allow(rob-unwrap) the expm phase builds an operator for every ω a class selects before pruning starts
            .expect("operator built for needed omega")
    }
}

/// Full output of one likelihood evaluation.
#[derive(Debug, Clone)]
pub struct LikelihoodValue {
    /// Total log-likelihood Σ_sites ln Σ_classes p_c L_c(site).
    pub lnl: f64,
    /// Mixture log-likelihood per pattern.
    pub per_pattern: Vec<f64>,
    /// Per-class per-pattern log-likelihoods (`[class][pattern]`), the
    /// inputs to empirical-Bayes site classification.
    pub per_class: Vec<Vec<f64>>,
    /// The four class proportions used.
    pub proportions: [f64; N_SITE_CLASSES],
}

/// Convenience wrapper returning only the scalar log-likelihood.
///
/// # Errors
/// Propagates eigensolver failures.
pub fn log_likelihood(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    model: &BranchSiteModel,
    branch_lengths: &[f64],
) -> Result<f64, LinalgError> {
    site_class_log_likelihoods(problem, config, model, branch_lengths).map(|v| v.lnl)
}

/// Evaluate the branch-site likelihood, returning per-class detail.
///
/// `branch_lengths` is indexed like [`LikelihoodProblem::branch_index`].
/// Runs on [`EngineConfig::threads`] workers; results are bit-identical
/// for every thread count (see the module docs).
///
/// # Errors
/// Propagates eigensolver failures.
///
/// # Panics
/// Panics if `branch_lengths.len()` mismatches the problem.
pub fn site_class_log_likelihoods(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    model: &BranchSiteModel,
    branch_lengths: &[f64],
) -> Result<LikelihoodValue, LinalgError> {
    crate::par::evaluate(problem, config, model, branch_lengths, None)
}

/// Like [`site_class_log_likelihoods`], additionally accumulating
/// wall-clock time per engine phase (eigen / expm / pruning / reduction)
/// into `timing` — the `--timing` CLI breakdown and the scaling bench
/// read these.
///
/// # Errors
/// Propagates eigensolver failures.
pub fn site_class_log_likelihoods_timed(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    model: &BranchSiteModel,
    branch_lengths: &[f64],
    timing: &mut PhaseTiming,
) -> Result<LikelihoodValue, LinalgError> {
    crate::par::evaluate(problem, config, model, branch_lengths, Some(timing))
}

/// Reusable buffers for pruning passes. One per worker thread: after the
/// first block at a given (states × block-width) shape, subsequent blocks
/// allocate nothing.
pub(crate) struct PruneWorkspace {
    /// Per-node CPV slots, `take`n by the parent as it consumes children.
    slots: Vec<Option<Mat>>,
    /// Retired CPV matrices awaiting reuse (all at `dims`).
    pool: Vec<Mat>,
    /// Staging block for non-first children.
    tmp: Mat,
    /// One gathered leaf column.
    col: Vec<f64>,
    /// Accumulated log of rescale factors, per block column.
    scale_log: Vec<f64>,
    /// Column/result scratch for the CPV kernels.
    scratch: CpvScratch,
    /// (states, block width) the pooled matrices currently have.
    dims: (usize, usize),
}

impl PruneWorkspace {
    /// Empty workspace; buffers are created on first use.
    pub(crate) fn new() -> PruneWorkspace {
        PruneWorkspace {
            slots: Vec::new(),
            pool: Vec::new(),
            tmp: Mat::zeros(0, 0),
            col: Vec::new(),
            scale_log: Vec::new(),
            scratch: CpvScratch::new(),
            dims: (0, 0),
        }
    }

    /// Size every buffer for a block of `bw` patterns over `n` states in a
    /// tree of `n_nodes` nodes. No-op when already sized.
    fn ensure(&mut self, n_nodes: usize, n: usize, bw: usize) {
        if self.dims != (n, bw) {
            self.pool.clear();
            // Lane-padded blocks (61 → 64 columns): the CPV kernels and the
            // elementwise combine run tail-free, and the pad columns stay
            // zero so whole-storage ops cannot leak them into results.
            self.tmp = Mat::zeros_padded(n, bw);
            self.dims = (n, bw);
        }
        if self.slots.len() < n_nodes {
            self.slots.resize_with(n_nodes, || None);
        }
        if self.col.len() != n {
            self.col = vec![0.0; n];
        }
        self.scale_log.clear();
        self.scale_log.resize(bw, 0.0);
    }

    /// A CPV matrix at the current dims, recycled when possible.
    fn grab(&mut self) -> Mat {
        self.pool
            .pop()
            .unwrap_or_else(|| Mat::zeros_padded(self.dims.0, self.dims.1))
    }
}

/// Pruning pass for one site class over the pattern block
/// `[lo, lo + out.len())`, writing per-pattern log-likelihoods into `out`.
///
/// `ops[node][ω]` must hold operators for every ω this class selects on
/// every branch. Bit-identical to the corresponding slice of a full-width
/// pass (see module docs), so callers may partition patterns freely.
// check: hot per-block pruning unit (paper's inner loop)
#[allow(clippy::too_many_arguments)]
// check: allow(panic-free-hot-path) pattern/node indices bounded by SitePatterns and tree construction; expect() guarded by topological order
pub(crate) fn prune_block<O: OpSource + ?Sized>(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    ops: &O,
    bg_omega: usize,
    fg_omega: usize,
    lo: usize,
    out: &mut [f64],
    ws: &mut PruneWorkspace,
) {
    let n = problem.pi.len();
    let bw = out.len();
    let n_nodes = problem.children.len();
    ws.ensure(n_nodes, n, bw);

    for &node in &problem.postorder {
        // Leaves contribute through their parent; internal nodes combine
        // their first child straight into the accumulator (same bits as
        // computing into staging and copying), later children through
        // `tmp` with an elementwise multiply.
        let Some((&first, rest)) = problem.children[node].split_first() else {
            continue;
        };
        let mut cpv = ws.grab();
        child_block_into(
            problem,
            config,
            ops,
            bg_omega,
            fg_omega,
            lo,
            first,
            &mut cpv,
            &mut ws.col,
            &mut ws.slots,
            &mut ws.pool,
            &mut ws.scratch,
        );
        for &child in rest {
            child_block_into(
                problem,
                config,
                ops,
                bg_omega,
                fg_omega,
                lo,
                child,
                &mut ws.tmp,
                &mut ws.col,
                &mut ws.slots,
                &mut ws.pool,
                &mut ws.scratch,
            );
            // Whole-storage elementwise combine (dispatched kernel): `cpv`
            // and `tmp` share the same padded layout, and pad columns are
            // 0·0 = 0, so logical values match the per-element loop.
            slim_linalg::vecops::hadamard_in_place(ws.tmp.as_slice(), cpv.as_mut_slice());
        }

        // Numerical rescaling per pattern column.
        for q in 0..bw {
            let mut m = 0.0f64;
            for i in 0..n {
                let v = cpv[(i, q)];
                if v > m {
                    m = v;
                }
            }
            if m > 0.0 && m < config.scale_threshold {
                let inv = 1.0 / m;
                for i in 0..n {
                    cpv[(i, q)] *= inv;
                }
                // check: allow(det-float-accum) one rescale term per visited node, fixed postorder
                ws.scale_log[q] += m.ln();
            }
        }
        #[cfg(feature = "sanitize")]
        sanitize_hooks::node_cpv(&cpv, &ws.scale_log, node, bg_omega, fg_omega, lo);
        ws.slots[node] = Some(cpv);
    }

    // Root combination with π.
    // check: allow(rob-unwrap) the root is internal, so the node loop above always fills its slot
    let root_cpv = ws.slots[problem.root].take().expect("root CPV computed");
    for (q, o) in out.iter_mut().enumerate() {
        let mut s = 0.0;
        for i in 0..n {
            // check: allow(det-float-accum) 61-term per-pattern dot with π; fixed order is the determinism contract
            s += problem.pi[i] * root_cpv[(i, q)];
        }
        *o = if s > 0.0 {
            s.ln() + ws.scale_log[q]
        } else {
            f64::NEG_INFINITY
        };
    }
    #[cfg(feature = "sanitize")]
    sanitize_hooks::root_outputs(out, problem.root, bg_omega, fg_omega, lo);
    ws.pool.push(root_cpv);
}

/// Compute one child's contribution to its parent's CPV block into
/// `dest` (the accumulator for the first child, staging for the rest).
/// Leaf children gather operator columns per pattern; internal children
/// consume the CPV their own pruning pass left in `slots`.
#[allow(clippy::too_many_arguments)]
// check: allow(panic-free-hot-path) child partials exist before parents by post-order traversal; indices bounded by block width
fn child_block_into<O: OpSource + ?Sized>(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    ops: &O,
    bg_omega: usize,
    fg_omega: usize,
    lo: usize,
    child: usize,
    dest: &mut Mat,
    col: &mut [f64],
    slots: &mut [Option<Mat>],
    pool: &mut Vec<Mat>,
    scratch: &mut CpvScratch,
) {
    let (n, bw) = (dest.rows(), dest.cols());
    let w = if problem.is_foreground[child] {
        fg_omega
    } else {
        bg_omega
    };
    let op = ops.op(child, w);
    if let Some(taxon) = problem.leaf_taxon[child] {
        // Leaf: P·e_c collapses to a column gather per pattern. Missing
        // data integrates the state out: P·1 = 1 (rows of P sum to one),
        // so the contribution is a ones column.
        for q in 0..bw {
            let codon = problem.patterns.pattern(lo + q)[taxon];
            if codon == slim_bio::patterns::MISSING {
                for i in 0..n {
                    dest[(i, q)] = 1.0;
                }
                continue;
            }
            op.column(codon, col);
            for i in 0..n {
                dest[(i, q)] = col[i];
            }
        }
    } else {
        // check: allow(rob-unwrap) postorder visits children before their parent, so the child slot is always filled
        let child_cpv = slots[child].take().expect("child CPV in postorder");
        op.apply_dense(config.cpv, &child_cpv, dest, scratch);
        pool.push(child_cpv);
    }
}

/// Pruning-phase tripwires (the `sanitize` feature): CPVs and rescale
/// logs stay finite/non-negative at every internal node, and the root
/// per-pattern log-likelihoods are never NaN/+∞ — each failure names the
/// node, the ω classes, and the pattern block it happened in.
#[cfg(feature = "sanitize")]
mod sanitize_hooks {
    use slim_linalg::Mat;

    pub(super) fn node_cpv(
        cpv: &Mat,
        scale_log: &[f64],
        node: usize,
        bg: usize,
        fg: usize,
        lo: usize,
    ) {
        let bw = cpv.cols();
        let ctx = || {
            format!(
                "pruning node {node} (ω classes bg={bg} fg={fg}), pattern block [{lo}, {})",
                lo + bw
            )
        };
        slim_linalg::sanitize::check_finite_nonneg("CPV", cpv.as_slice(), ctx);
        for (q, &sl) in scale_log.iter().enumerate() {
            if !sl.is_finite() || sl > 0.0 {
                // check: allow(rob-unwrap) sanitize tripwire: a detected invariant violation must abort
                panic!(
                    "sanitize: scale_log[{q}] = {sl} (want finite, <= 0: rescale factors are \
                     logs of sub-threshold maxima) in {}",
                    ctx()
                );
            }
        }
    }

    pub(super) fn root_outputs(out: &[f64], root: usize, bg: usize, fg: usize, lo: usize) {
        for (q, &v) in out.iter().enumerate() {
            slim_linalg::sanitize::check_log_value("per-pattern lnL", v, || {
                format!(
                    "root {root} combination (ω classes bg={bg} fg={fg}), pattern {}",
                    lo + q
                )
            });
        }
    }
}

/// Full-width serial pruning pass for one site class: returns per-pattern
/// log-likelihood. Thin wrapper over [`prune_block`] used by the auxiliary
/// models (M0, site models, branch model) and by the parallel driver when
/// running single-threaded.
// check: hot full-width pruning pass (serial driver)
pub(crate) fn prune_one_class(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    ops: &[[Option<TransOp>; N_OMEGA]],
    bg_omega: usize,
    fg_omega: usize,
) -> Vec<f64> {
    let mut out = vec![0.0f64; problem.n_patterns()];
    let mut ws = PruneWorkspace::new();
    prune_block(
        problem, config, ops, bg_omega, fg_omega, 0, &mut out, &mut ws,
    );
    out
}

// ---------------------------------------------------------------------------
// Dirty-path reuse: cached variant of the kernel above.
// ---------------------------------------------------------------------------

/// Cross-evaluation cache for one (site class × pattern block) unit: the
/// post-rescale CPV of every internal node, plus each node's per-column
/// ln-rescale contribution so the block's total scale log can be rebuilt
/// exactly after a partial recompute.
///
/// `0.0` in [`UnitCache::scale`] means "this node did not rescale this
/// column" — unambiguous because a real contribution is `ln m` with
/// `m < scale_threshold ≤ 1e-100`, i.e. at most ≈ −230.
pub(crate) struct UnitCache {
    /// Post-rescale CPV per node; `None` for leaves and never-computed
    /// nodes.
    cpv: Vec<Option<Mat>>,
    /// Per-node per-column ln-rescale contributions (empty for leaves).
    scale: Vec<Vec<f64>>,
    /// (states, block width) of the cached CPVs.
    dims: (usize, usize),
}

impl UnitCache {
    /// An empty cache; buffers appear on first recompute.
    pub(crate) fn new() -> UnitCache {
        UnitCache {
            cpv: Vec::new(),
            scale: Vec::new(),
            dims: (0, 0),
        }
    }

    fn ensure(&mut self, n_nodes: usize, n: usize, bw: usize) {
        if self.dims != (n, bw) {
            self.cpv.clear();
            self.scale.clear();
            self.dims = (n, bw);
        }
        if self.cpv.len() < n_nodes {
            self.cpv.resize_with(n_nodes, || None);
            self.scale.resize_with(n_nodes, Vec::new);
        }
    }
}

/// Per-worker scratch for [`prune_block_cached`] — the subset of
/// [`PruneWorkspace`] the cached kernel needs (per-node CPV storage lives
/// in the [`UnitCache`] instead of worker-local slots).
pub(crate) struct ReuseScratch {
    /// Staging block for non-first children.
    tmp: Mat,
    /// One gathered leaf column.
    col: Vec<f64>,
    /// Rebuilt total log of rescale factors, per block column.
    scale_log: Vec<f64>,
    /// Column/result scratch for the CPV kernels.
    scratch: CpvScratch,
    /// (states, block width) `tmp` currently has.
    dims: (usize, usize),
}

impl ReuseScratch {
    /// Empty scratch; buffers are created on first use.
    pub(crate) fn new() -> ReuseScratch {
        ReuseScratch {
            tmp: Mat::zeros(0, 0),
            col: Vec::new(),
            scale_log: Vec::new(),
            scratch: CpvScratch::new(),
            dims: (0, 0),
        }
    }

    fn ensure(&mut self, n: usize, bw: usize) {
        if self.dims != (n, bw) {
            self.tmp = Mat::zeros_padded(n, bw);
            self.dims = (n, bw);
        }
        if self.col.len() != n {
            self.col = vec![0.0; n];
        }
        self.scale_log.clear();
        self.scale_log.resize(bw, 0.0);
    }
}

/// Cached pruning pass for one site class over the pattern block
/// `[lo, lo + out.len())`: recomputes only `dirty` internal nodes, reusing
/// every clean node's CPV and rescale record byte-for-byte from `cache`.
///
/// ## Bit-identity to [`prune_block`]
///
/// * A clean node's cached CPV and rescale record are exactly what the
///   last recompute stored — and recomputes run the same kernel calls on
///   the same inputs as a fresh pass, so by induction each cached CPV
///   equals the fresh-pass CPV bit-for-bit (the caller guarantees `dirty`
///   covers every node whose inputs changed, and that `dirty` is closed
///   under "parent of").
/// * The block's scale log is rebuilt by summing the per-node records in
///   postorder — the same addition sequence the fresh pass performs
///   (skipping exact-zero records cannot change bits: the accumulator is
///   never −0.0, and the fresh pass performs no addition at those nodes).
/// * The root combination is the same per-column dot with π.
// check: hot dirty-path pruning unit (reuse engine inner loop)
#[allow(clippy::too_many_arguments)]
// check: allow(panic-free-hot-path) same bounds as prune_block; cache slots for clean nodes filled by the previous recompute, for dirty ones by this pass's postorder
pub(crate) fn prune_block_cached<O: OpSource + ?Sized>(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    ops: &O,
    bg_omega: usize,
    fg_omega: usize,
    lo: usize,
    dirty: &[bool],
    out: &mut [f64],
    cache: &mut UnitCache,
    ws: &mut ReuseScratch,
) {
    let n = problem.pi.len();
    let bw = out.len();
    let n_nodes = problem.children.len();
    cache.ensure(n_nodes, n, bw);
    ws.ensure(n, bw);

    for &node in &problem.postorder {
        if problem.children[node].is_empty() {
            continue;
        }
        if !dirty[node] {
            debug_assert!(
                cache.cpv[node].is_some(),
                "clean node {node} must have a cached CPV"
            );
            continue;
        }
        recompute_node_cpv(
            problem, config, ops, bg_omega, fg_omega, lo, node, cache, ws,
        );
    }

    // Rebuild the block's total scale log: postorder sum of the per-node
    // records — the same per-column addition sequence as a fresh pass.
    for v in ws.scale_log.iter_mut() {
        *v = 0.0;
    }
    for &node in &problem.postorder {
        if problem.children[node].is_empty() {
            continue;
        }
        let rec = &cache.scale[node];
        for (sl, &v) in ws.scale_log.iter_mut().zip(rec.iter()) {
            // check: allow(det-float-cmp) 0.0 is the "no rescale" sentinel; real records are ≤ ln(scale_threshold) ≈ −230
            if v != 0.0 {
                // check: allow(det-float-accum) one rescale term per visited node, fixed postorder — same sequence as prune_block
                *sl += v;
            }
        }
    }

    // Root combination with π — identical arithmetic to `prune_block`.
    let root_cpv = cache.cpv[problem.root]
        .as_ref()
        // check: allow(rob-unwrap) the root is internal and either clean (cached) or dirty (just recomputed)
        .expect("root CPV cached or recomputed");
    for (q, o) in out.iter_mut().enumerate() {
        let mut s = 0.0;
        for i in 0..n {
            // check: allow(det-float-accum) 61-term per-pattern dot with π; fixed order is the determinism contract
            s += problem.pi[i] * root_cpv[(i, q)];
        }
        *o = if s > 0.0 {
            s.ln() + ws.scale_log[q]
        } else {
            f64::NEG_INFINITY
        };
    }
    #[cfg(feature = "sanitize")]
    sanitize_hooks::root_outputs(out, problem.root, bg_omega, fg_omega, lo);
}

/// Recompute one internal node's CPV and rescale record into `cache`,
/// consuming children from the cache (leaf children gather operator
/// columns directly). The arithmetic sequence is exactly
/// [`prune_block`]'s per-node body.
#[allow(clippy::too_many_arguments)]
// check: allow(panic-free-hot-path) children precede parents in postorder, so child cache slots are filled; indices bounded as in prune_block
fn recompute_node_cpv<O: OpSource + ?Sized>(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    ops: &O,
    bg_omega: usize,
    fg_omega: usize,
    lo: usize,
    node: usize,
    cache: &mut UnitCache,
    ws: &mut ReuseScratch,
) {
    let n = problem.pi.len();
    let bw = ws.dims.1;
    let (&first, rest) = problem.children[node]
        .split_first()
        // check: allow(rob-unwrap) caller dispatches internal nodes only
        .expect("internal node has children");
    // Take the node's matrix out so the children's cached CPVs can be read
    // immutably while we write into it.
    let mut cpv = cache.cpv[node]
        .take()
        .unwrap_or_else(|| Mat::zeros_padded(n, bw));
    child_block_cached(
        problem,
        config,
        ops,
        bg_omega,
        fg_omega,
        lo,
        first,
        &mut cpv,
        &mut ws.col,
        &cache.cpv,
        &mut ws.scratch,
    );
    for &child in rest {
        child_block_cached(
            problem,
            config,
            ops,
            bg_omega,
            fg_omega,
            lo,
            child,
            &mut ws.tmp,
            &mut ws.col,
            &cache.cpv,
            &mut ws.scratch,
        );
        // Same whole-storage combine as prune_block: pads are 0·0 = 0.
        slim_linalg::vecops::hadamard_in_place(ws.tmp.as_slice(), cpv.as_mut_slice());
    }

    // Numerical rescaling per pattern column, recording this node's
    // contribution instead of accumulating into a running total.
    let rec = &mut cache.scale[node];
    rec.clear();
    rec.resize(bw, 0.0);
    for q in 0..bw {
        let mut m = 0.0f64;
        for i in 0..n {
            let v = cpv[(i, q)];
            if v > m {
                m = v;
            }
        }
        if m > 0.0 && m < config.scale_threshold {
            let inv = 1.0 / m;
            for i in 0..n {
                cpv[(i, q)] *= inv;
            }
            rec[q] = m.ln();
        }
    }
    #[cfg(feature = "sanitize")]
    sanitize_hooks::node_cpv(&cpv, rec, node, bg_omega, fg_omega, lo);
    cache.cpv[node] = Some(cpv);
}

/// [`child_block_into`] against cached child CPVs: identical arithmetic,
/// but internal children are *read* from the unit cache instead of being
/// consumed from worker-local slots.
#[allow(clippy::too_many_arguments)]
// check: allow(panic-free-hot-path) postorder recomputes dirty children before their parent and clean children are cached; indices bounded by block width
fn child_block_cached<O: OpSource + ?Sized>(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    ops: &O,
    bg_omega: usize,
    fg_omega: usize,
    lo: usize,
    child: usize,
    dest: &mut Mat,
    col: &mut [f64],
    cpvs: &[Option<Mat>],
    scratch: &mut CpvScratch,
) {
    let (n, bw) = (dest.rows(), dest.cols());
    let w = if problem.is_foreground[child] {
        fg_omega
    } else {
        bg_omega
    };
    let op = ops.op(child, w);
    if let Some(taxon) = problem.leaf_taxon[child] {
        for q in 0..bw {
            let codon = problem.patterns.pattern(lo + q)[taxon];
            if codon == slim_bio::patterns::MISSING {
                for i in 0..n {
                    dest[(i, q)] = 1.0;
                }
                continue;
            }
            op.column(codon, col);
            for i in 0..n {
                dest[(i, q)] = col[i];
            }
        }
    } else {
        let child_cpv = cpvs[child]
            .as_ref()
            // check: allow(rob-unwrap) child CPV cached (clean) or recomputed earlier in postorder (dirty)
            .expect("child CPV cached or recomputed in postorder");
        op.apply_dense(config.cpv, child_cpv, dest, scratch);
    }
}

/// Sanitize tripwire: recompute one *clean* node's CPV and rescale record
/// from its (cached) children and panic on any bit mismatch with the
/// cached copy — catching invalidation bugs the moment a stale value
/// would be served.
#[cfg(feature = "sanitize")]
pub(crate) fn sanitize_recheck_node<O: OpSource + ?Sized>(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    ops: &O,
    bg_omega: usize,
    fg_omega: usize,
    lo: usize,
    node: usize,
    cache: &UnitCache,
    ws: &mut ReuseScratch,
) {
    let n = problem.pi.len();
    let bw = cache.dims.1;
    ws.ensure(n, bw);
    let (&first, rest) = problem.children[node]
        .split_first()
        // check: allow(rob-unwrap) sanitize spot-check targets only cached internal nodes
        .expect("recheck target is internal");
    let mut fresh = Mat::zeros_padded(n, bw);
    child_block_cached(
        problem,
        config,
        ops,
        bg_omega,
        fg_omega,
        lo,
        first,
        &mut fresh,
        &mut ws.col,
        &cache.cpv,
        &mut ws.scratch,
    );
    for &child in rest {
        child_block_cached(
            problem,
            config,
            ops,
            bg_omega,
            fg_omega,
            lo,
            child,
            &mut ws.tmp,
            &mut ws.col,
            &cache.cpv,
            &mut ws.scratch,
        );
        slim_linalg::vecops::hadamard_in_place(ws.tmp.as_slice(), fresh.as_mut_slice());
    }
    let mut fresh_rec = vec![0.0f64; bw];
    for q in 0..bw {
        let mut m = 0.0f64;
        for i in 0..n {
            let v = fresh[(i, q)];
            if v > m {
                m = v;
            }
        }
        if m > 0.0 && m < config.scale_threshold {
            let inv = 1.0 / m;
            for i in 0..n {
                fresh[(i, q)] *= inv;
            }
            fresh_rec[q] = m.ln();
        }
    }
    let cached = cache.cpv[node]
        .as_ref()
        // check: allow(rob-unwrap) sanitize spot-check picks its target from filled cache slots
        .expect("recheck target has a cached CPV");
    let ctx = || {
        format!(
            "reuse spot-check at node {node} (ω classes bg={bg_omega} fg={fg_omega}), \
             pattern block [{lo}, {})",
            lo + bw
        )
    };
    for (i, (a, b)) in cached
        .as_slice()
        .iter()
        .zip(fresh.as_slice().iter())
        .enumerate()
    {
        if a.to_bits() != b.to_bits() {
            // check: allow(rob-unwrap) sanitize tripwire: a detected invariant violation must abort
            panic!(
                "sanitize: reused CPV diverges from recomputation at flat index {i}: \
                 cached {a:e} vs fresh {b:e} in {}",
                ctx()
            );
        }
    }
    for (q, (a, b)) in cache.scale[node].iter().zip(fresh_rec.iter()).enumerate() {
        if a.to_bits() != b.to_bits() {
            // check: allow(rob-unwrap) sanitize tripwire: a detected invariant violation must abort
            panic!(
                "sanitize: reused rescale record diverges at column {q}: cached {a:e} vs \
                 fresh {b:e} in {}",
                ctx()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_bio::{parse_newick, CodonAlignment, FreqModel, GeneticCode};
    use slim_model::Hypothesis;

    fn toy_problem() -> LikelihoodProblem {
        let tree = parse_newick("(((A:0.1,B:0.2):0.05,C:0.3)#1:0.1,(D:0.25,E:0.15):0.2);").unwrap();
        // The paper's Fig. 1 example alignment (5 species × 6 codons).
        let aln = CodonAlignment::from_fasta(
            ">A\nCCCTACTGCCCCAAGGAG\n>B\nCCCTACTGCCCCAAGGAG\n>C\nCCCTACTGCCCCAAGGAG\n>D\nCCCTATTGCCCCAAGGAG\n>E\nCCCTACTGCACCAAGGAG\n",
        )
        .unwrap();
        let code = GeneticCode::universal();
        LikelihoodProblem::new(&tree, &aln, &code, FreqModel::F3x4).unwrap()
    }

    fn default_model() -> BranchSiteModel {
        BranchSiteModel::default_start(Hypothesis::H1)
    }

    #[test]
    fn engines_agree_to_high_precision() {
        // The paper's accuracy experiment (§IV-1): relative lnL difference
        // between CodeML-style and Slim paths must be ~1e-10 or better on
        // small data.
        let problem = toy_problem();
        let model = default_model();
        let bl = vec![0.1; problem.n_branches()];
        let base = log_likelihood(&problem, &EngineConfig::codeml_style(), &model, &bl).unwrap();
        let slim = log_likelihood(&problem, &EngineConfig::slim(), &model, &bl).unwrap();
        let plus = log_likelihood(&problem, &EngineConfig::slim_plus(), &model, &bl).unwrap();
        let sym = log_likelihood(&problem, &EngineConfig::slim_symmetric(), &model, &bl).unwrap();
        let d = |a: f64, b: f64| ((a - b) / a).abs();
        assert!(base.is_finite() && base < 0.0);
        assert!(d(base, slim) < 1e-10, "codeml {base} vs slim {slim}");
        assert!(d(base, plus) < 1e-10, "codeml {base} vs slim+ {plus}");
        assert!(d(base, sym) < 1e-10, "codeml {base} vs eq12 {sym}");
    }

    #[test]
    fn missing_data_accepted_and_between_bounds() {
        let tree = parse_newick("((A:0.1,B:0.2)#1:0.05,C:0.3);").unwrap();
        let full = CodonAlignment::from_fasta(">A\nATGCCC\n>B\nATGCCA\n>C\nATGCCC\n").unwrap();
        let gapped = CodonAlignment::from_fasta(">A\nATG---\n>B\nATGCCA\n>C\nATGNNN\n").unwrap();
        let code = GeneticCode::universal();
        let model = default_model();
        let p_full = LikelihoodProblem::new(&tree, &full, &code, FreqModel::Equal).unwrap();
        let p_gap = LikelihoodProblem::new(&tree, &gapped, &code, FreqModel::Equal).unwrap();
        let bl = vec![0.1; 4];
        let l_full = log_likelihood(&p_full, &EngineConfig::slim(), &model, &bl).unwrap();
        let l_gap = log_likelihood(&p_gap, &EngineConfig::slim(), &model, &bl).unwrap();
        // Less observed data → likelihood closer to 0 (larger lnL).
        assert!(l_gap > l_full, "gapped {l_gap} vs full {l_full}");
        assert!(l_gap < 0.0);
    }

    #[test]
    fn all_missing_leaf_equals_pruned_tree() {
        // A leaf with only missing data is integrated out; by
        // Chapman–Kolmogorov the likelihood equals that of the tree with
        // the leaf removed and its sibling path merged.
        let tree_x = parse_newick("((A:0.1,X:0.7):0.2,C#1:0.3);").unwrap();
        let aln_x =
            CodonAlignment::from_fasta(">A\nATGCCCTTT\n>X\n---------\n>C\nATGCCATTC\n").unwrap();
        // Merged: A's branch is 0.1 + 0.2.
        let tree_m = parse_newick("(A:0.3,C#1:0.3);").unwrap();
        let aln_m = CodonAlignment::from_fasta(">A\nATGCCCTTT\n>C\nATGCCATTC\n").unwrap();

        let code = GeneticCode::universal();
        let model = default_model();
        let p_x = LikelihoodProblem::new(&tree_x, &aln_x, &code, FreqModel::Equal).unwrap();
        let p_m = LikelihoodProblem::new(&tree_m, &aln_m, &code, FreqModel::Equal).unwrap();
        let l_x = log_likelihood(
            &p_x,
            &EngineConfig::slim(),
            &model,
            &p_x.branch_order_of(&tree_x),
        )
        .unwrap();
        let l_m = log_likelihood(
            &p_m,
            &EngineConfig::slim(),
            &model,
            &p_m.branch_order_of(&tree_m),
        )
        .unwrap();
        assert!(
            (l_x - l_m).abs() < 1e-9,
            "with missing leaf {l_x} vs pruned {l_m}"
        );
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        // The slim-par determinism contract on the toy problem: every
        // thread count (including auto) reproduces the serial bits of the
        // total, the per-pattern mixture, and every per-class vector.
        let problem = toy_problem();
        let model = default_model();
        let bl = vec![0.1; problem.n_branches()];
        let serial =
            site_class_log_likelihoods(&problem, &EngineConfig::slim(), &model, &bl).unwrap();
        for threads in [2usize, 4, 8, 0] {
            let config = EngineConfig::slim().with_threads(threads);
            let par = site_class_log_likelihoods(&problem, &config, &model, &bl).unwrap();
            assert_eq!(serial.lnl.to_bits(), par.lnl.to_bits(), "threads {threads}");
            for (a, b) in serial.per_pattern.iter().zip(&par.per_pattern) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (ca, cb) in serial.per_class.iter().zip(&par.per_class) {
                for (a, b) in ca.iter().zip(cb) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn block_size_is_bit_invariant() {
        // Fixed block boundaries drive the work split; any width must
        // reproduce the same bits, including widths that leave a ragged
        // final block and the degenerate one-pattern-per-block case.
        let problem = toy_problem();
        let model = default_model();
        let bl = vec![0.1; problem.n_branches()];
        let reference =
            site_class_log_likelihoods(&problem, &EngineConfig::slim(), &model, &bl).unwrap();
        for block in [1usize, 2, 3, 7, 4096] {
            for threads in [1usize, 4] {
                let config = EngineConfig::slim()
                    .with_threads(threads)
                    .with_pattern_block(block);
                let v = site_class_log_likelihoods(&problem, &config, &model, &bl).unwrap();
                assert_eq!(
                    reference.lnl.to_bits(),
                    v.lnl.to_bits(),
                    "block {block} threads {threads}"
                );
                for (a, b) in reference.per_pattern.iter().zip(&v.per_pattern) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn timed_evaluation_matches_and_fills_phases() {
        let problem = toy_problem();
        let model = default_model();
        let bl = vec![0.1; problem.n_branches()];
        let plain = log_likelihood(&problem, &EngineConfig::slim(), &model, &bl).unwrap();
        let mut timing = PhaseTiming::default();
        let timed = site_class_log_likelihoods_timed(
            &problem,
            &EngineConfig::slim(),
            &model,
            &bl,
            &mut timing,
        )
        .unwrap();
        assert_eq!(plain.to_bits(), timed.lnl.to_bits());
        assert!(timing.total() > std::time::Duration::ZERO);
    }

    #[test]
    fn likelihood_value_structure() {
        let problem = toy_problem();
        let model = default_model();
        let bl = vec![0.1; problem.n_branches()];
        let v = site_class_log_likelihoods(&problem, &EngineConfig::slim(), &model, &bl).unwrap();
        assert_eq!(v.per_pattern.len(), problem.n_patterns());
        assert_eq!(v.per_class.len(), 4);
        assert!((v.proportions.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Total equals the weighted per-pattern sum.
        let total: f64 = (0..problem.n_patterns())
            .map(|p| problem.patterns.weight(p) * v.per_pattern[p])
            .sum();
        assert!((total - v.lnl).abs() < 1e-10);
    }

    #[test]
    fn identical_sequences_favor_short_branches() {
        let tree = parse_newick("((A:0.1,B:0.1)#1:0.1,C:0.1);").unwrap();
        let aln =
            CodonAlignment::from_fasta(">A\nATGATGATG\n>B\nATGATGATG\n>C\nATGATGATG\n").unwrap();
        let code = GeneticCode::universal();
        let problem = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::F61).unwrap();
        let model = default_model();
        let short = log_likelihood(&problem, &EngineConfig::slim(), &model, &[0.01; 4]).unwrap();
        let long = log_likelihood(&problem, &EngineConfig::slim(), &model, &[2.0; 4]).unwrap();
        assert!(
            short > long,
            "identical sequences: short {short} vs long {long}"
        );
    }

    #[test]
    fn divergent_sequences_favor_longer_branches() {
        let tree = parse_newick("((A:0.1,B:0.1)#1:0.1,C:0.1);").unwrap();
        let aln =
            CodonAlignment::from_fasta(">A\nATGTTTCCA\n>B\nGTACATCGA\n>C\nTTGGCGAAT\n").unwrap();
        let code = GeneticCode::universal();
        let problem = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::Equal).unwrap();
        let model = default_model();
        let tiny = log_likelihood(&problem, &EngineConfig::slim(), &model, &[1e-5; 4]).unwrap();
        let medium = log_likelihood(&problem, &EngineConfig::slim(), &model, &[0.5; 4]).unwrap();
        assert!(medium > tiny, "divergent: medium {medium} vs tiny {tiny}");
    }

    #[test]
    fn likelihood_invariant_to_pattern_order() {
        // Reordering alignment columns must not change lnL.
        let tree = parse_newick("((A:0.1,B:0.2)#1:0.05,C:0.3);").unwrap();
        let code = GeneticCode::universal();
        let aln1 =
            CodonAlignment::from_fasta(">A\nATGCCCTTT\n>B\nATGCCATTT\n>C\nATGCCCTTC\n").unwrap();
        let aln2 =
            CodonAlignment::from_fasta(">A\nTTTATGCCC\n>B\nTTTATGCCA\n>C\nTTCATGCCC\n").unwrap();
        let model = default_model();
        let p1 = LikelihoodProblem::new(&tree, &aln1, &code, FreqModel::Equal).unwrap();
        let p2 = LikelihoodProblem::new(&tree, &aln2, &code, FreqModel::Equal).unwrap();
        let l1 = log_likelihood(&p1, &EngineConfig::slim(), &model, &[0.1; 4]).unwrap();
        let l2 = log_likelihood(&p2, &EngineConfig::slim(), &model, &[0.1; 4]).unwrap();
        assert!((l1 - l2).abs() < 1e-10);
    }

    #[test]
    fn omega2_changes_likelihood_only_through_foreground() {
        // With the foreground branch length at ~0, ω2 has (almost) no
        // effect on the likelihood.
        let tree = parse_newick("((A:0.1,B:0.2)#1:0.05,C:0.3);").unwrap();
        let aln =
            CodonAlignment::from_fasta(">A\nATGCCCTTT\n>B\nATGCCATTT\n>C\nATGCCCTTC\n").unwrap();
        let code = GeneticCode::universal();
        let problem = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::Equal).unwrap();
        // branch order: find which branch is foreground and zero it.
        let mut bl = vec![0.2; problem.n_branches()];
        for node in 0..problem.children.len() {
            if problem.is_foreground[node] {
                bl[problem.branch_index[node].unwrap()] = 1e-9;
            }
        }
        let m1 = BranchSiteModel {
            omega2: 1.0,
            ..default_model()
        };
        let m2 = BranchSiteModel {
            omega2: 8.0,
            ..default_model()
        };
        let l1 = log_likelihood(&problem, &EngineConfig::slim(), &m1, &bl).unwrap();
        let l2 = log_likelihood(&problem, &EngineConfig::slim(), &m2, &bl).unwrap();
        assert!((l1 - l2).abs() < 1e-6, "{l1} vs {l2}");
    }

    #[test]
    fn scaling_keeps_large_trees_finite() {
        // A caterpillar tree long enough to underflow without scaling.
        let n_leaves = 40;
        let mut newick = String::from("L0:0.5");
        for i in 1..n_leaves {
            newick = format!("({newick},L{i}:0.5):0.5");
        }
        let newick = format!("{newick};");
        let tree = {
            let mut t = parse_newick(&newick).unwrap();
            let leaf = t.leaf_by_name("L0").unwrap();
            t.set_foreground(leaf).unwrap();
            t
        };
        let seq = "ATGCCC";
        let fasta: String = (0..n_leaves).map(|i| format!(">L{i}\n{seq}\n")).collect();
        let aln = CodonAlignment::from_fasta(&fasta).unwrap();
        let code = GeneticCode::universal();
        let problem = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::Equal).unwrap();
        let model = default_model();
        let bl = vec![0.5; problem.n_branches()];
        let lnl = log_likelihood(&problem, &EngineConfig::slim(), &model, &bl).unwrap();
        assert!(lnl.is_finite(), "scaling failed: {lnl}");
        assert!(lnl < 0.0);
    }

    #[test]
    fn scaling_path_is_thread_and_block_invariant() {
        // The rescaling branch fires on this deep caterpillar tree; the
        // determinism contract must hold through it too.
        let n_leaves = 40;
        let mut newick = String::from("L0:0.5");
        for i in 1..n_leaves {
            newick = format!("({newick},L{i}:0.5):0.5");
        }
        let newick = format!("{newick};");
        let tree = {
            let mut t = parse_newick(&newick).unwrap();
            let leaf = t.leaf_by_name("L0").unwrap();
            t.set_foreground(leaf).unwrap();
            t
        };
        let fasta: String = (0..n_leaves)
            .map(|i| format!(">L{i}\nATGCCCAAA\n"))
            .collect();
        let aln = CodonAlignment::from_fasta(&fasta).unwrap();
        let code = GeneticCode::universal();
        let problem = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::Equal).unwrap();
        let model = default_model();
        let bl = vec![0.5; problem.n_branches()];
        let serial = log_likelihood(&problem, &EngineConfig::slim(), &model, &bl).unwrap();
        let par = log_likelihood(
            &problem,
            &EngineConfig::slim().with_threads(4).with_pattern_block(2),
            &model,
            &bl,
        )
        .unwrap();
        assert_eq!(serial.to_bits(), par.to_bits());
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn branch_vector_length_checked() {
        let problem = toy_problem();
        let model = default_model();
        let _ = log_likelihood(&problem, &EngineConfig::slim(), &model, &[0.1, 0.2]);
    }
}
