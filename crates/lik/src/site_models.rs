//! Likelihood for the M1a/M2a *site* models (ω varies across sites, not
//! branches) — the §V-B "further models" extension, sharing the expm and
//! pruning machinery with the branch-site engine.

use crate::engine::{EngineConfig, ExpmPath};
use crate::problem::LikelihoodProblem;
use crate::pruning::{prune_one_class, TransOp};
use slim_expm::{CpvStrategy, EigenSystem};
use slim_linalg::LinalgError;
use slim_model::{build_rate_matrix, rate_components, ScalePolicy, SiteModel, SitesHypothesis};
use std::sync::Arc;

/// Result of one site-model likelihood evaluation.
#[derive(Debug, Clone)]
pub struct SitesLikelihoodValue {
    /// Total mixture log-likelihood.
    pub lnl: f64,
    /// Per-class per-pattern log-likelihoods (class order as in
    /// [`SiteModel::classes`]).
    pub per_class: Vec<Vec<f64>>,
    /// Class proportions used.
    pub proportions: Vec<f64>,
}

/// Evaluate the M1a or M2a likelihood. The problem may be built with
/// [`LikelihoodProblem::new_unmarked`] — no foreground branch is used.
///
/// # Errors
/// Propagates eigensolver failures.
///
/// # Panics
/// Panics if `branch_lengths.len()` mismatches the problem.
pub fn site_model_log_likelihood(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    model: &SiteModel,
    hypothesis: SitesHypothesis,
    branch_lengths: &[f64],
) -> Result<SitesLikelihoodValue, LinalgError> {
    assert_eq!(
        branch_lengths.len(),
        problem.n_branches(),
        "branch length vector has wrong length"
    );
    let n_pat = problem.n_patterns();
    let classes = model.classes(hypothesis);

    // One shared rate scale across all classes (all branches see every
    // class — see SiteModel::shared_scale).
    let (syn_flux, nonsyn_flux) = rate_components(&problem.code, model.kappa, &problem.pi);
    let scale = model.shared_scale(hypothesis, syn_flux, nonsyn_flux);

    // One eigendecomposition per class ω.
    let mut eigensystems: Vec<Arc<EigenSystem>> = Vec::with_capacity(classes.len());
    for class in &classes {
        let rm = build_rate_matrix(
            &problem.code,
            model.kappa,
            class.omega,
            &problem.pi,
            ScalePolicy::External(scale),
        );
        let es = match &config.eigen_cache {
            Some(cache) => cache.get_or_compute(model.kappa, class.omega, &rm, config.eigen)?,
            None => Arc::new(EigenSystem::from_rate_matrix(&rm, config.eigen)?),
        };
        eigensystems.push(es);
    }

    // Per class: build per-branch operators at slot 0 and prune.
    // (The pruning kernel indexes [node][omega-slot]; site models use one
    // slot since foreground == background.)
    let n_nodes = problem.children.len();
    let mut per_class: Vec<Vec<f64>> = Vec::with_capacity(classes.len());
    for (k, class) in classes.iter().enumerate() {
        if class.proportion <= 0.0 {
            per_class.push(vec![f64::NEG_INFINITY; n_pat]);
            continue;
        }
        let es = &eigensystems[k];
        let mut ops: Vec<[Option<TransOp>; 3]> = (0..n_nodes).map(|_| [None, None, None]).collect();
        for (node, slot) in ops.iter_mut().enumerate() {
            let Some(bi) = problem.branch_index[node] else {
                continue;
            };
            let t = branch_lengths[bi];
            slot[0] = Some(match config.cpv {
                CpvStrategy::SymmetricSymv => TransOp::Sym(es.symmetric_transition(t)),
                _ => TransOp::Dense(match config.expm {
                    ExpmPath::Eq9Naive => es.transition_matrix_eq9_naive(t),
                    ExpmPath::Eq9Tuned => es.transition_matrix_eq9(t),
                    ExpmPath::Eq10Syrk => es.transition_matrix_eq10(t),
                }),
            });
        }
        per_class.push(prune_one_class(problem, config, &ops, 0, 0));
    }

    // Mix per pattern (log-sum-exp), weight by multiplicity.
    let mut lnl = 0.0f64;
    for p in 0..n_pat {
        let mut max = f64::NEG_INFINITY;
        for (k, class) in classes.iter().enumerate() {
            if class.proportion > 0.0 {
                max = max.max(class.proportion.ln() + per_class[k][p]);
            }
        }
        let value = if max.is_finite() {
            let mut sum = 0.0;
            for (k, class) in classes.iter().enumerate() {
                if class.proportion > 0.0 {
                    sum += (class.proportion.ln() + per_class[k][p] - max).exp();
                }
            }
            max + sum.ln()
        } else {
            f64::NEG_INFINITY
        };
        lnl += problem.patterns.weight(p) * value;
    }

    Ok(SitesLikelihoodValue {
        lnl,
        per_class,
        proportions: classes.iter().map(|c| c.proportion).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_bio::{parse_newick, CodonAlignment, FreqModel, GeneticCode};

    fn problem() -> LikelihoodProblem {
        let tree = parse_newick("((A:0.1,B:0.2):0.05,C:0.3);").unwrap();
        let aln =
            CodonAlignment::from_fasta(">A\nATGCCCTTTAAG\n>B\nATGCCATTTAAG\n>C\nATGCCCTTCAAA\n")
                .unwrap();
        let code = GeneticCode::universal();
        LikelihoodProblem::new_unmarked(&tree, &aln, &code, FreqModel::F3x4).unwrap()
    }

    #[test]
    fn engines_agree_on_m2a() {
        let p = problem();
        let m = SiteModel::default_start(SitesHypothesis::M2a);
        let bl = vec![0.1; p.n_branches()];
        let base = site_model_log_likelihood(
            &p,
            &EngineConfig::codeml_style(),
            &m,
            SitesHypothesis::M2a,
            &bl,
        )
        .unwrap();
        let slim =
            site_model_log_likelihood(&p, &EngineConfig::slim(), &m, SitesHypothesis::M2a, &bl)
                .unwrap();
        assert!(((base.lnl - slim.lnl) / base.lnl).abs() < 1e-10);
        assert!(base.lnl.is_finite() && base.lnl < 0.0);
    }

    #[test]
    fn m2a_reduces_to_m1a_when_omega2_class_empty() {
        // p0 + p1 = 1 kills the ω2 class: M2a lnL must equal M1a lnL with
        // the same (p0, ω0) when M1a's neutral mass matches.
        let p = problem();
        let bl = vec![0.1; p.n_branches()];
        let m2a = SiteModel {
            kappa: 2.0,
            omega0: 0.3,
            omega2: 5.0,
            p0: 0.6,
            p1: 0.4,
        };
        let m1a = SiteModel {
            kappa: 2.0,
            omega0: 0.3,
            omega2: 1.0,
            p0: 0.6,
            p1: 0.4,
        };
        let l2 =
            site_model_log_likelihood(&p, &EngineConfig::slim(), &m2a, SitesHypothesis::M2a, &bl)
                .unwrap();
        let l1 =
            site_model_log_likelihood(&p, &EngineConfig::slim(), &m1a, SitesHypothesis::M1a, &bl)
                .unwrap();
        assert!(
            (l2.lnl - l1.lnl).abs() < 1e-9,
            "M2a {} vs M1a {}",
            l2.lnl,
            l1.lnl
        );
    }

    #[test]
    fn value_structure() {
        let p = problem();
        let m = SiteModel::default_start(SitesHypothesis::M2a);
        let bl = vec![0.1; p.n_branches()];
        let v = site_model_log_likelihood(&p, &EngineConfig::slim(), &m, SitesHypothesis::M2a, &bl)
            .unwrap();
        assert_eq!(v.per_class.len(), 3);
        assert_eq!(v.proportions.len(), 3);
        assert!((v.proportions.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn omega2_moves_likelihood() {
        // Unlike the branch-site model with a zero-length foreground
        // branch, ω2 in M2a acts on every branch: changing it must change
        // the likelihood.
        let p = problem();
        let bl = vec![0.1; p.n_branches()];
        let m_lo = SiteModel {
            omega2: 1.5,
            ..SiteModel::default_start(SitesHypothesis::M2a)
        };
        let m_hi = SiteModel {
            omega2: 6.0,
            ..SiteModel::default_start(SitesHypothesis::M2a)
        };
        let l_lo =
            site_model_log_likelihood(&p, &EngineConfig::slim(), &m_lo, SitesHypothesis::M2a, &bl)
                .unwrap();
        let l_hi =
            site_model_log_likelihood(&p, &EngineConfig::slim(), &m_hi, SitesHypothesis::M2a, &bl)
                .unwrap();
        assert!((l_lo.lnl - l_hi.lnl).abs() > 1e-6);
    }
}
