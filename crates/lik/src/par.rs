//! `slim-par`: the intra-gene parallel evaluation driver (§V-B's
//! FastCodeML direction).
//!
//! One branch-site likelihood evaluation runs as four phases:
//!
//! 1. **eigen** — the three ω rate matrices are built and decomposed, each
//!    independent, fanned one-per-thread;
//! 2. **expm** — one transition operator per (branch, needed ω) pair, all
//!    independent, chunked across threads;
//! 3. **pruning** — units of (site class × pattern block) stream through a
//!    crossbeam channel to workers that each own a
//!    [`PruneWorkspace`](crate::pruning), so the steady state allocates
//!    nothing (the slim-batch pool conventions, applied within a gene);
//! 4. **reduction** — per-pattern class mixing and the weighted total, on
//!    the calling thread, in fixed pattern order with Neumaier compensated
//!    summation.
//!
//! ## Why every thread count gives the same bits
//!
//! Phases 1–2 compute each item identically regardless of which thread
//! runs it. Phase 3's block boundaries depend only on
//! [`EngineConfig::pattern_block`], never on the thread count, and each
//! block's values are bit-identical to a full-width pass (see
//! [`crate::pruning`]). Phase 4 is the only order-sensitive step — a sum
//! over patterns — and it always runs serially in pattern order. Hence
//! `threads = 1` and `threads = N` agree to the last bit, which the
//! thread-determinism test layer locks down.

use crate::engine::{EngineConfig, ExpmPath};
use crate::problem::LikelihoodProblem;
use crate::pruning::{prune_block, LikelihoodValue, PruneWorkspace, TransOp, N_OMEGA};
use slim_expm::{CpvStrategy, EigenSystem};
use slim_linalg::{simd, LinalgError, NeumaierSum};
use slim_model::{build_rate_matrix, BranchSiteModel, ScalePolicy, N_SITE_CLASSES};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock time spent in each phase of one (or more, when accumulated)
/// likelihood evaluations — the `--timing` breakdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTiming {
    /// Rate-matrix construction + eigendecomposition (§III-A steps 1–2).
    pub eigen: Duration,
    /// Transition-operator reconstruction `P(t) = e^{Qt}` per branch × ω.
    pub expm: Duration,
    /// Felsenstein pruning over (site class × pattern block) units.
    pub pruning: Duration,
    /// Class mixing + fixed-order compensated total.
    pub reduction: Duration,
}

impl PhaseTiming {
    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.eigen + self.expm + self.pruning + self.reduction
    }

    /// Accumulate another breakdown (e.g. across evaluations of a fit).
    pub fn accumulate(&mut self, other: &PhaseTiming) {
        self.eigen += other.eigen;
        self.expm += other.expm;
        self.pruning += other.pruning;
        self.reduction += other.reduction;
    }
}

/// One pruning work unit: a site class over a contiguous pattern block.
struct Unit<'a> {
    bg: usize,
    fg: usize,
    lo: usize,
    out: &'a mut [f64],
}

/// Evaluate the branch-site likelihood on `config.threads` workers.
///
/// This is the engine behind
/// [`site_class_log_likelihoods`](crate::site_class_log_likelihoods); see
/// the module docs for the phase structure and determinism argument.
pub(crate) fn evaluate(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    model: &BranchSiteModel,
    branch_lengths: &[f64],
    timing: Option<&mut PhaseTiming>,
) -> Result<LikelihoodValue, LinalgError> {
    // The SIMD dispatch override is thread-local; this call covers the
    // calling thread, and each spawned worker below re-installs it.
    simd::with_forced(config.simd, || {
        evaluate_inner(problem, config, model, branch_lengths, timing)
    })
}

fn evaluate_inner(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    model: &BranchSiteModel,
    branch_lengths: &[f64],
    mut timing: Option<&mut PhaseTiming>,
) -> Result<LikelihoodValue, LinalgError> {
    assert_eq!(
        branch_lengths.len(),
        problem.n_branches(),
        "branch length vector has wrong length"
    );
    let n_pat = problem.n_patterns();
    let threads = config.resolved_threads().max(1);
    let obs = crate::obsm::metrics();
    obs.evaluations.inc();
    obs.threads.set(threads as f64);
    let simd_mode = config.simd;
    obs.simd_lanes.set(simd::resolve(simd_mode).lanes() as f64);
    let mut eval_span = slim_trace::span("lik.evaluate", "lik");
    eval_span.arg_u64("threads", threads as u64);
    eval_span.arg_u64("patterns", n_pat as u64);

    // --- Phase 1: rate matrices + eigendecompositions, one per distinct
    // ω. All classes share one rate scale (the background mixture
    // average), so ω2 > 1 genuinely accelerates foreground evolution —
    // see BranchSiteModel::shared_scale. The three decompositions are
    // independent; with threads they run one-per-spawn.
    // check: allow(det-wallclock) feeds the obs phase-timing histogram only
    let start = Instant::now();
    let phase_span = slim_trace::span("lik.eigen", "lik");
    let omegas = model.omegas();
    let (syn_flux, nonsyn_flux) =
        slim_model::codon_model::rate_components(&problem.code, model.kappa, &problem.pi);
    let scale = model.shared_scale(syn_flux, nonsyn_flux);
    let eigensystems = build_eigensystems(problem, config, model.kappa, &omegas, scale, threads)?;
    drop(phase_span);
    let elapsed = start.elapsed();
    obs.eigen.observe(elapsed);
    if let Some(t) = timing.as_deref_mut() {
        t.eigen += elapsed;
    }

    // --- Phase 2: transition operators per (branch, needed ω). ---
    // Background branches need ω0 and ω1; the foreground branch also ω2.
    // Each reconstruction is an independent dsyrk/gemm; threads take
    // contiguous chunks of the item list (ownership via chunks_mut — no
    // locks, no unsafe).
    // check: allow(det-wallclock) feeds the obs phase-timing histogram only
    let start = Instant::now();
    let phase_span = slim_trace::span("lik.expm", "lik");
    let n_nodes = problem.children.len();
    let mut items: Vec<(usize, usize, f64)> = Vec::new();
    for node in 0..n_nodes {
        let Some(bi) = problem.branch_index[node] else {
            continue;
        };
        let t = branch_lengths[bi];
        let needed: &[usize] = if problem.is_foreground[node] {
            &[0, 1, 2]
        } else {
            &[0, 1]
        };
        for &w in needed {
            items.push((node, w, t));
        }
    }
    let mut built: Vec<Option<TransOp>> = (0..items.len()).map(|_| None).collect();
    let expm_threads = threads.min(items.len()).max(1);
    if expm_threads >= 2 {
        let per = items.len().div_ceil(expm_threads);
        let eigensystems = &eigensystems;
        crossbeam::thread::scope(|scope| {
            for (chunk, out) in items.chunks(per).zip(built.chunks_mut(per)) {
                scope.spawn(move |_| {
                    simd::with_forced(simd_mode, || {
                        for (&(_, w, t), slot) in chunk.iter().zip(out.iter_mut()) {
                            *slot = Some(build_op(&eigensystems[w], config, t));
                        }
                    });
                });
            }
        })
        .expect("expm scope");
    } else {
        for (&(_, w, t), slot) in items.iter().zip(built.iter_mut()) {
            *slot = Some(build_op(&eigensystems[w], config, t));
        }
    }
    let mut ops: Vec<[Option<TransOp>; N_OMEGA]> =
        (0..n_nodes).map(|_| [None, None, None]).collect();
    for (&(node, w, _), op) in items.iter().zip(built) {
        ops[node][w] = op;
    }
    drop(phase_span);
    let elapsed = start.elapsed();
    obs.expm.observe(elapsed);
    if let Some(t) = timing.as_deref_mut() {
        t.expm += elapsed;
    }

    // --- Phase 3: pruning over (site class × pattern block) units. ---
    // Block boundaries are fixed by config.pattern_block alone; which
    // worker computes which block cannot affect any value (see crate
    // module docs), so the channel's nondeterministic scheduling is
    // harmless.
    // check: allow(det-wallclock) feeds the obs phase-timing histogram only
    let start = Instant::now();
    let phase_span = slim_trace::span("lik.pruning", "lik");
    let classes = model.site_classes();
    let block = config.pattern_block.max(1);
    let mut per_class: Vec<Vec<f64>> = classes
        .iter()
        .map(|class| {
            if class.proportion <= 0.0 {
                vec![f64::NEG_INFINITY; n_pat]
            } else {
                vec![0.0f64; n_pat]
            }
        })
        .collect();
    let mut units: Vec<Unit> = Vec::new();
    for (class, buf) in classes.iter().zip(per_class.iter_mut()) {
        if class.proportion <= 0.0 {
            continue; // already filled with −∞; no pruning pass needed
        }
        let mut lo = 0usize;
        for chunk in buf.chunks_mut(block) {
            let len = chunk.len();
            units.push(Unit {
                bg: class.background_omega,
                fg: class.foreground_omega,
                lo,
                out: chunk,
            });
            lo += len;
        }
    }
    obs.units.add(units.len() as u64);
    let prune_threads = threads.min(units.len()).max(1);
    // Per-worker busy time is only clocked while collection is on, so the
    // disabled path takes no Instant reads per unit.
    let obs_on = slim_obs::enabled();
    if prune_threads >= 2 {
        let (tx, rx) = crossbeam::channel::unbounded::<Unit>();
        for unit in units {
            // Unbounded channel with both endpoints alive: send cannot fail.
            let _ = tx.send(unit);
        }
        drop(tx);
        let ops = &ops;
        crossbeam::thread::scope(|scope| {
            for _ in 0..prune_threads {
                let rx = rx.clone();
                scope.spawn(move |_| {
                    simd::with_forced(simd_mode, || {
                        let worker_span = slim_trace::span("lik.worker", "lik");
                        let mut ws = PruneWorkspace::new();
                        let mut busy = Duration::ZERO;
                        while let Ok(unit) = rx.recv() {
                            // check: allow(det-wallclock) feeds the obs worker-busy gauge only
                            let t0 = obs_on.then(Instant::now);
                            // Per-unit block span: which (class ω-pair ×
                            // pattern block) this worker ran, and when.
                            let mut block_span = slim_trace::span("lik.block", "lik");
                            block_span.arg_u64("bg", unit.bg as u64);
                            block_span.arg_u64("fg", unit.fg as u64);
                            block_span.arg_u64("lo", unit.lo as u64);
                            prune_block(
                                problem,
                                config,
                                ops.as_slice(),
                                unit.bg,
                                unit.fg,
                                unit.lo,
                                unit.out,
                                &mut ws,
                            );
                            drop(block_span);
                            if let Some(t0) = t0 {
                                busy += t0.elapsed();
                            }
                        }
                        obs.worker_busy.observe(busy);
                        drop(worker_span);
                    });
                    // Scoped thread: flush before the scope unblocks.
                    if slim_trace::enabled() {
                        slim_trace::flush_thread();
                    }
                });
            }
        })
        .expect("pruning scope");
    } else {
        let mut ws = PruneWorkspace::new();
        // check: allow(det-wallclock) feeds the obs worker-busy gauge only
        let t0 = obs_on.then(Instant::now);
        for unit in units {
            prune_block(
                problem,
                config,
                ops.as_slice(),
                unit.bg,
                unit.fg,
                unit.lo,
                unit.out,
                &mut ws,
            );
        }
        if let Some(t0) = t0 {
            obs.worker_busy.observe(t0.elapsed());
        }
    }
    drop(phase_span);
    let elapsed = start.elapsed();
    obs.pruning.observe(elapsed);
    if let Some(t) = timing.as_deref_mut() {
        t.pruning += elapsed;
    }

    // --- Phase 4: mix classes per pattern (log-sum-exp), then the
    // weighted total — serial, fixed pattern order, compensated. This is
    // the only order-sensitive reduction in the evaluation, which is what
    // makes the whole pipeline thread-count invariant. ---
    // check: allow(det-wallclock) feeds the obs phase-timing histogram only
    let start = Instant::now();
    let phase_span = slim_trace::span("lik.reduction", "lik");
    let props = [
        classes[0].proportion,
        classes[1].proportion,
        classes[2].proportion,
        classes[3].proportion,
    ];
    let (lnl, per_pattern) = mix_and_reduce(problem, props, &per_class, threads);
    drop(phase_span);
    let elapsed = start.elapsed();
    obs.reduction.observe(elapsed);
    if let Some(t) = timing {
        t.reduction += elapsed;
    }

    Ok(LikelihoodValue {
        lnl,
        per_pattern,
        per_class,
        proportions: props,
    })
}

/// Phase 1 as a reusable step: build and decompose the three ω rate
/// matrices (one-per-spawn when `threads >= 2`). Shared by the stateless
/// engine here and by [`crate::reuse::ReuseEvaluator`] when globals
/// change.
pub(crate) fn build_eigensystems(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    kappa: f64,
    omegas: &[f64],
    scale: f64,
    threads: usize,
) -> Result<Vec<Arc<EigenSystem>>, LinalgError> {
    let simd_mode = config.simd;
    if threads >= 2 {
        let mut slots: Vec<Option<Result<Arc<EigenSystem>, LinalgError>>> =
            omegas.iter().map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            for (slot, &omega) in slots.iter_mut().zip(omegas.iter()) {
                scope.spawn(move |_| {
                    simd::with_forced(simd_mode, || {
                        *slot = Some(eigen_for(problem, config, kappa, omega, scale));
                    });
                    // Scoped thread: flush cache-probe instants before
                    // the scope unblocks (see slim_trace::flush_thread).
                    if slim_trace::enabled() {
                        slim_trace::flush_thread();
                    }
                });
            }
        })
        .expect("eigen scope");
        slots
            .into_iter()
            .map(|s| s.expect("eigen thread filled its slot"))
            .collect()
    } else {
        omegas
            .iter()
            .map(|&omega| eigen_for(problem, config, kappa, omega, scale))
            .collect()
    }
}

/// Phase 4 as a reusable step: per-pattern class mixing (log-sum-exp) and
/// the weighted total — always serial, fixed pattern order, Neumaier
/// compensated, so every thread count and both engines (stateless and
/// reuse) produce the same bits. `threads` is reported in the sanitize
/// context only.
pub(crate) fn mix_and_reduce(
    problem: &LikelihoodProblem,
    props: [f64; N_SITE_CLASSES],
    per_class: &[Vec<f64>],
    threads: usize,
) -> (f64, Vec<f64>) {
    let n_pat = problem.n_patterns();
    let mut per_pattern = vec![0.0f64; n_pat];
    let mut acc = NeumaierSum::new();
    for p in 0..n_pat {
        let mut max = f64::NEG_INFINITY;
        for c in 0..N_SITE_CLASSES {
            if props[c] > 0.0 {
                let v = props[c].ln() + per_class[c][p];
                if v > max {
                    max = v;
                }
            }
        }
        let value = if max.is_finite() {
            let mut sum = 0.0;
            for c in 0..N_SITE_CLASSES {
                if props[c] > 0.0 {
                    sum += (props[c].ln() + per_class[c][p] - max).exp();
                }
            }
            max + sum.ln()
        } else {
            f64::NEG_INFINITY
        };
        per_pattern[p] = value;
        acc.add(problem.patterns.weight(p) * value);
    }
    let lnl = acc.total();
    #[cfg(feature = "sanitize")]
    slim_linalg::sanitize::check_log_value("total lnL", lnl, || {
        format!(
            "fixed-order reduction over {n_pat} patterns (threads {threads}, \
             proportions {props:?})"
        )
    });
    #[cfg(not(feature = "sanitize"))]
    let _ = threads;
    (lnl, per_pattern)
}

/// Build (or fetch from the cross-evaluation cache) the eigensystem for
/// one ω.
fn eigen_for(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    kappa: f64,
    omega: f64,
    scale: f64,
) -> Result<Arc<EigenSystem>, LinalgError> {
    let rm = build_rate_matrix(
        &problem.code,
        kappa,
        omega,
        &problem.pi,
        ScalePolicy::External(scale),
    );
    match &config.eigen_cache {
        Some(cache) => cache.get_or_compute(kappa, omega, &rm, config.eigen),
        None => Ok(Arc::new(EigenSystem::from_rate_matrix(&rm, config.eigen)?)),
    }
}

/// Reconstruct one branch's transition operator in the representation the
/// engine's CPV strategy needs.
pub(crate) fn build_op(es: &EigenSystem, config: &EngineConfig, t: f64) -> TransOp {
    match config.cpv {
        CpvStrategy::SymmetricSymv => TransOp::Sym(es.symmetric_transition(t)),
        _ => TransOp::Dense(match config.expm {
            ExpmPath::Eq9Naive => es.transition_matrix_eq9_naive(t),
            ExpmPath::Eq9Tuned => es.transition_matrix_eq9(t),
            ExpmPath::Eq10Syrk => es.transition_matrix_eq10(t),
        }),
    }
}
