//! Dirty-path partial-likelihood reuse across optimizer evaluations.
//!
//! A derivative-based fit evaluates the likelihood hundreds of times, and
//! most evaluations change *one* parameter (a finite-difference probe) or
//! a handful (a line-search step along a sparse direction). The stateless
//! engine in [`crate::par`] recomputes every transition operator and every
//! conditional probability vector (CPV) each time; this module keeps the
//! previous evaluation's intermediates and recomputes only what the
//! parameter delta actually touches:
//!
//! * a changed **branch length** invalidates that branch's `P(t)`
//!   operators and the CPVs of the nodes on the path from the branch's
//!   parent to the root — everything else is served from cache;
//! * a changed **global** (κ, ω0, ω2, p0, p1) invalidates the
//!   eigendecompositions and therefore every CPV (operators whose (κ, ω,
//!   scale) survive via the cross-evaluation [`slim_expm::EigenCache`]
//!   still probe-hit through [`slim_expm::EigenSystem::id`]).
//!
//! ## The invalidation contract
//!
//! The optimizer's `ParamDelta` (crate `slim-opt`) is a *hint*: an
//! upper bound on which coordinates changed. The evaluator does not trust
//! it — it diffs the incoming parameters **bitwise** against the previous
//! evaluation's and derives the dirty set from that ground truth. The hint
//! is only cross-checked; a hint that failed to cover an observed change
//! increments `lik.reuse.hint_violations` (and panics under the `sanitize`
//! feature) but cannot produce a wrong likelihood.
//!
//! ## Why reuse is bit-identical
//!
//! Every cached object is keyed on the exact bits of its inputs
//! ([`PtKey`] for operators; the bitwise parameter diff for CPVs), and
//! recomputation runs the byte-same kernels on the byte-same inputs as the
//! stateless engine (see [`crate::pruning::prune_block_cached`] for the
//! per-unit argument, including the rescale bookkeeping). The final
//! reduction is the same serial fixed-order compensated sum. So reuse-on
//! and reuse-off agree to the last bit — which the identity test layer
//! replays optimizer-like update sequences to enforce.

use crate::engine::EngineConfig;
use crate::par::{build_eigensystems, build_op, mix_and_reduce, PhaseTiming};
use crate::problem::LikelihoodProblem;
use crate::pruning::{
    prune_block_cached, LikelihoodValue, OpSource, ReuseScratch, TransOp, UnitCache, N_OMEGA,
};
use slim_expm::{EigenSystem, PtCache, PtKey};
use slim_linalg::{simd, LinalgError};
use slim_model::BranchSiteModel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the caller believes changed since the previous evaluation —
/// translated from the optimizer's coordinate delta by the analysis
/// layer. Advisory only: see the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReuseHint {
    /// Anything may have changed (first call, restart, unknown caller).
    Full,
    /// Only the listed pieces may have changed.
    Sparse {
        /// Whether any global (κ, ω0, ω2, p0, p1) may have changed.
        globals: bool,
        /// Branch indices whose lengths may have changed.
        branches: Vec<usize>,
    },
}

/// The previous evaluation's reusable intermediates.
struct EvalState {
    /// Globals the caches were computed under (compared bitwise).
    model: BranchSiteModel,
    /// Branch lengths the caches were computed under (compared bitwise).
    branch_lengths: Vec<f64>,
    /// One eigendecomposition per ω class.
    eigensystems: Vec<Arc<EigenSystem>>,
    /// Per-(node × ω) transition operators, validity-keyed on
    /// (decomposition id, branch-length bits).
    ops: PtCache<TransOp>,
    /// (class index, block start, block width) of each pruning unit — a
    /// geometry fingerprint; any change drops every unit cache.
    unit_shape: Vec<(usize, usize, usize)>,
    /// Cached CPVs + rescale records, one per unit in `unit_shape` order.
    units: Vec<UnitCache>,
    /// The full previous result, for the nothing-changed shortcut.
    value: LikelihoodValue,
}

/// Operator view the cached pruning kernel reads: every (node, ω) a unit
/// touches was probed or rebuilt in this evaluation's expm phase.
struct CachedOps<'a>(&'a PtCache<TransOp>);

impl OpSource for CachedOps<'_> {
    // check: hot reuse-engine operator fetch behind the unified kernel interface
    // check: allow(panic-free-hot-path) the expm phase probes/rebuilds every slot a unit can address before pruning starts
    fn op(&self, node: usize, w: usize) -> &TransOp {
        self.0
            .value(node * N_OMEGA + w)
            // check: allow(rob-unwrap) the expm phase probes or rebuilds every slot a unit can address before pruning starts
            .expect("operator probed or rebuilt in the expm phase")
    }
}

/// A stateful likelihood evaluator that reuses the previous evaluation's
/// operators and CPVs along clean paths. One per fit (per hypothesis);
/// owns its caches, no sharing, no locking.
pub struct ReuseEvaluator<'p> {
    problem: &'p LikelihoodProblem,
    config: EngineConfig,
    /// Branch index → the node *below* that branch.
    branch_node: Vec<usize>,
    /// Number of internal (non-leaf) nodes — the per-unit CPV count.
    n_internal: usize,
    state: Option<EvalState>,
    #[cfg(feature = "sanitize")]
    rng_state: u64,
}

impl<'p> ReuseEvaluator<'p> {
    /// A fresh evaluator for `problem` under `config`; the first
    /// [`evaluate`](ReuseEvaluator::evaluate) computes everything.
    pub fn new(problem: &'p LikelihoodProblem, config: EngineConfig) -> ReuseEvaluator<'p> {
        let branch_node = problem.branch_nodes();
        let n_internal = problem
            .children
            .iter()
            .filter(|kids| !kids.is_empty())
            .count();
        ReuseEvaluator {
            problem,
            config,
            branch_node,
            n_internal,
            state: None,
            #[cfg(feature = "sanitize")]
            rng_state: 0x9e3779b97f4a7c15,
        }
    }

    /// Evaluate the branch-site likelihood, reusing whatever the bitwise
    /// parameter diff against the previous call proves unchanged.
    ///
    /// # Errors
    /// Propagates eigensolver failures.
    pub fn evaluate(
        &mut self,
        model: &BranchSiteModel,
        branch_lengths: &[f64],
        hint: &ReuseHint,
        timing: Option<&mut PhaseTiming>,
    ) -> Result<LikelihoodValue, LinalgError> {
        // The SIMD dispatch override is thread-local; this call covers the
        // calling thread, and each spawned worker re-installs it.
        simd::with_forced(self.config.simd, || {
            self.evaluate_inner(model, branch_lengths, hint, timing)
        })
    }

    /// (hits, misses) of the per-branch operator cache since construction.
    pub fn op_cache_stats(&self) -> (u64, u64) {
        self.state.as_ref().map_or((0, 0), |s| s.ops.stats())
    }

    fn evaluate_inner(
        &mut self,
        model: &BranchSiteModel,
        branch_lengths: &[f64],
        hint: &ReuseHint,
        mut timing: Option<&mut PhaseTiming>,
    ) -> Result<LikelihoodValue, LinalgError> {
        let problem = self.problem;
        let config = self.config.clone();
        assert_eq!(
            branch_lengths.len(),
            problem.n_branches(),
            "branch length vector has wrong length"
        );
        let n_pat = problem.n_patterns();
        let n_nodes = problem.children.len();
        let threads = config.resolved_threads().max(1);
        let simd_mode = config.simd;
        let obs = crate::obsm::metrics();
        obs.evaluations.inc();
        obs.reuse_evaluations.inc();
        obs.threads.set(threads as f64);
        obs.simd_lanes.set(simd::resolve(simd_mode).lanes() as f64);
        let mut eval_span = slim_trace::span("lik.evaluate", "lik");
        eval_span.arg_u64("threads", threads as u64);
        eval_span.arg_u64("patterns", n_pat as u64);

        // --- Bitwise diff against the previous evaluation: the ground
        // truth the dirty set is derived from. ---
        let prev = self.state.take();
        let (globals_changed, dirty_branches): (bool, Vec<usize>) = match &prev {
            None => (true, Vec::new()),
            Some(s) => {
                let g = [
                    (model.kappa, s.model.kappa),
                    (model.omega0, s.model.omega0),
                    (model.omega2, s.model.omega2),
                    (model.p0, s.model.p0),
                    (model.p1, s.model.p1),
                ]
                .iter()
                .any(|&(a, b)| a.to_bits() != b.to_bits());
                let dirty: Vec<usize> = branch_lengths
                    .iter()
                    .zip(s.branch_lengths.iter())
                    .enumerate()
                    .filter(|(_, (a, b))| a.to_bits() != b.to_bits())
                    .map(|(i, _)| i)
                    .collect();
                (g, dirty)
            }
        };

        // Cross-check the optimizer's hint against the observed diff. A
        // violation is an optimizer bug, not a correctness problem here —
        // the bitwise diff above is what drives invalidation.
        if prev.is_some() {
            let violated = match hint {
                ReuseHint::Full => false,
                ReuseHint::Sparse { globals, branches } => {
                    (globals_changed && !globals)
                        || dirty_branches.iter().any(|b| !branches.contains(b))
                }
            };
            if violated {
                obs.reuse_hint_violations.inc();
                #[cfg(feature = "sanitize")]
                // check: allow(rob-unwrap) sanitize tripwire: a hint that failed to cover the observed change must abort
                panic!(
                    "sanitize: reuse hint {hint:?} failed to cover the observed parameter \
                     change (globals_changed {globals_changed}, dirty branches \
                     {dirty_branches:?})"
                );
            }
        }

        // --- Nothing changed: serve the previous result outright. ---
        if let Some(s) = &prev {
            if !globals_changed && dirty_branches.is_empty() {
                obs.reuse_units_reused
                    .add((s.unit_shape.len() * self.n_internal) as u64);
                slim_trace::instant_with("lik.reuse.hit", "lik", || {
                    vec![("units", slim_trace::Value::U64(s.unit_shape.len() as u64))]
                });
                let value = s.value.clone();
                self.state = prev;
                return Ok(value);
            }
        }

        // --- Phase 1: eigendecompositions — reused wholesale unless a
        // global changed. ---
        // check: allow(det-wallclock) feeds the obs phase-timing histogram only
        let start = Instant::now();
        let phase_span = slim_trace::span("lik.eigen", "lik");
        let omegas = model.omegas();
        let (mut ops, mut units, prev_shape, eigensystems) = match prev {
            Some(s) if !globals_changed => (s.ops, s.units, s.unit_shape, s.eigensystems),
            other => {
                // First call or globals changed: new decompositions, and
                // no CPV survives (the mixture itself moved). The operator
                // cache persists — its (decomposition id, t) keys reject
                // anything stale, while ops whose (κ, ω, scale) recur
                // through the shared EigenCache keep their decomposition
                // identity and still hit.
                let ops = match other {
                    Some(s) => s.ops,
                    None => PtCache::new(0),
                };
                let (syn_flux, nonsyn_flux) = slim_model::codon_model::rate_components(
                    &problem.code,
                    model.kappa,
                    &problem.pi,
                );
                let scale = model.shared_scale(syn_flux, nonsyn_flux);
                let es =
                    build_eigensystems(problem, &config, model.kappa, &omegas, scale, threads)?;
                (ops, Vec::new(), Vec::new(), es)
            }
        };
        drop(phase_span);
        let elapsed = start.elapsed();
        obs.eigen.observe(elapsed);
        if let Some(t) = timing.as_deref_mut() {
            // check: allow(det-float-accum) Duration phase-timing accumulation, not an f64 reduction
            t.eigen += elapsed;
        }

        // --- Phase 2: transition operators — probe every (branch, needed
        // ω) slot, rebuild only the key misses. ---
        // check: allow(det-wallclock) feeds the obs phase-timing histogram only
        let start = Instant::now();
        let phase_span = slim_trace::span("lik.expm", "lik");
        ops.resize(n_nodes * N_OMEGA);
        let mut stale: Vec<(usize, usize, f64)> = Vec::new();
        for node in 0..n_nodes {
            let Some(bi) = problem.branch_index[node] else {
                continue;
            };
            let t = branch_lengths[bi];
            let needed: &[usize] = if problem.is_foreground[node] {
                &[0, 1, 2]
            } else {
                &[0, 1]
            };
            for &w in needed {
                let key = PtKey::new(&eigensystems[w], t);
                if !ops.probe(node * N_OMEGA + w, key) {
                    stale.push((node, w, t));
                }
            }
        }
        let mut built: Vec<Option<TransOp>> = (0..stale.len()).map(|_| None).collect();
        let expm_threads = threads.min(stale.len()).max(1);
        if expm_threads >= 2 {
            let per = stale.len().div_ceil(expm_threads);
            let eigensystems = &eigensystems;
            let config_ref = &config;
            crossbeam::thread::scope(|scope| {
                for (chunk, out) in stale.chunks(per).zip(built.chunks_mut(per)) {
                    scope.spawn(move |_| {
                        simd::with_forced(simd_mode, || {
                            for (&(_, w, t), slot) in chunk.iter().zip(out.iter_mut()) {
                                *slot = Some(build_op(&eigensystems[w], config_ref, t));
                            }
                        });
                    });
                }
            })
            // check: allow(rob-unwrap) scope join fails only if a worker panicked; propagate the abort
            .expect("expm scope");
        } else {
            for (&(_, w, t), slot) in stale.iter().zip(built.iter_mut()) {
                *slot = Some(build_op(&eigensystems[w], &config, t));
            }
        }
        for ((node, w, t), op) in stale.iter().copied().zip(built) {
            ops.insert(
                node * N_OMEGA + w,
                PtKey::new(&eigensystems[w], t),
                // check: allow(rob-unwrap) every stale slot was filled by the build loop above
                op.expect("stale operator rebuilt"),
            );
        }
        drop(phase_span);
        let elapsed = start.elapsed();
        obs.expm.observe(elapsed);
        if let Some(t) = timing.as_deref_mut() {
            // check: allow(det-float-accum) Duration phase-timing accumulation, not an f64 reduction
            t.expm += elapsed;
        }

        // --- Unit geometry + dirty set. ---
        let classes = model.site_classes();
        let block = config.pattern_block.max(1);
        let mut unit_shape: Vec<(usize, usize, usize)> = Vec::new();
        for (ci, class) in classes.iter().enumerate() {
            if class.proportion <= 0.0 {
                continue;
            }
            let mut lo = 0usize;
            while lo < n_pat {
                let bw = block.min(n_pat - lo);
                unit_shape.push((ci, lo, bw));
                // check: allow(det-float-accum) usize block cursor, not a float accumulation
                lo += bw;
            }
        }
        // Full invalidation when the globals moved (no prior state counts
        // as that) or the cached units are addressed under a different
        // geometry (e.g. a proportion hit exactly 0 and dropped a class).
        let full = globals_changed || prev_shape != unit_shape;
        if full {
            obs.reuse_full_invalidations.inc();
        }
        obs.reuse_dirty_branches.add(dirty_branches.len() as u64);
        if units.len() != unit_shape.len() || full {
            units = unit_shape.iter().map(|_| UnitCache::new()).collect();
        }

        let mut dirty = vec![false; n_nodes];
        let mut n_dirty_internal = 0usize;
        if full {
            for node in 0..n_nodes {
                if !problem.children[node].is_empty() {
                    dirty[node] = true;
                    n_dirty_internal += 1;
                }
            }
        } else {
            // A changed branch above node v changes the operator applied
            // *to* v, so v's parent and every ancestor up to the root must
            // recompute; v's own CPV is untouched. Dirty sets are closed
            // under "parent of", so an already-marked node ends the walk.
            for &bi in &dirty_branches {
                let mut cur = problem.parent[self.branch_node[bi]];
                while let Some(p) = cur {
                    if dirty[p] {
                        break;
                    }
                    dirty[p] = true;
                    n_dirty_internal += 1;
                    cur = problem.parent[p];
                }
            }
        }
        let n_units = unit_shape.len();
        obs.units.add(n_units as u64);
        obs.reuse_units_recomputed
            .add((n_units * n_dirty_internal) as u64);
        obs.reuse_units_reused
            .add((n_units * (self.n_internal - n_dirty_internal)) as u64);
        if n_dirty_internal < self.n_internal {
            slim_trace::instant_with("lik.reuse.hit", "lik", || {
                vec![(
                    "cpv_blocks",
                    slim_trace::Value::U64((n_units * (self.n_internal - n_dirty_internal)) as u64),
                )]
            });
        }
        if n_dirty_internal > 0 {
            slim_trace::instant_with("lik.reuse.miss", "lik", || {
                vec![
                    (
                        "cpv_blocks",
                        slim_trace::Value::U64((n_units * n_dirty_internal) as u64),
                    ),
                    ("full", slim_trace::Value::U64(full as u64)),
                ]
            });
        }

        // --- Phase 3: dirty-path pruning over cached units. ---
        // check: allow(det-wallclock) feeds the obs phase-timing histogram only
        let start = Instant::now();
        let phase_span = slim_trace::span("lik.pruning", "lik");
        let mut per_class: Vec<Vec<f64>> = classes
            .iter()
            .map(|class| {
                if class.proportion <= 0.0 {
                    vec![f64::NEG_INFINITY; n_pat]
                } else {
                    vec![0.0f64; n_pat]
                }
            })
            .collect();
        // Carve the per-class buffers into per-unit output slices in
        // `unit_shape` order, pairing each with its cache.
        struct RUnit<'a> {
            bg: usize,
            fg: usize,
            lo: usize,
            out: &'a mut [f64],
            cache: &'a mut UnitCache,
        }
        let mut runits: Vec<RUnit> = Vec::with_capacity(n_units);
        {
            let mut cache_iter = units.iter_mut();
            let mut chunkers: Vec<Option<std::slice::ChunksMut<f64>>> = per_class
                .iter_mut()
                .zip(classes.iter())
                .map(|(buf, class)| (class.proportion > 0.0).then(|| buf.chunks_mut(block)))
                .collect();
            for &(ci, lo, _bw) in &unit_shape {
                let chunk = chunkers[ci]
                    .as_mut()
                    .and_then(|c| c.next())
                    // check: allow(rob-unwrap) unit_shape was derived from the same class/block walk that drives the chunkers
                    .expect("unit_shape matches class chunking");
                // check: allow(rob-unwrap) units was sized to unit_shape above
                let cache = cache_iter.next().expect("one cache per unit");
                runits.push(RUnit {
                    bg: classes[ci].background_omega,
                    fg: classes[ci].foreground_omega,
                    lo,
                    out: chunk,
                    cache,
                });
            }
        }
        let view = CachedOps(&ops);
        let dirty_ref: &[bool] = &dirty;
        let prune_threads = threads.min(runits.len()).max(1);
        // Per-worker busy time is only clocked while collection is on, so
        // the disabled path takes no Instant reads per unit.
        let obs_on = slim_obs::enabled();
        if prune_threads >= 2 {
            let (tx, rx) = crossbeam::channel::unbounded::<RUnit>();
            for unit in runits {
                // Unbounded channel with both endpoints alive: send cannot fail.
                let _ = tx.send(unit);
            }
            drop(tx);
            let view = &view;
            let config_ref = &config;
            crossbeam::thread::scope(|scope| {
                for _ in 0..prune_threads {
                    let rx = rx.clone();
                    scope.spawn(move |_| {
                        simd::with_forced(simd_mode, || {
                            let worker_span = slim_trace::span("lik.worker", "lik");
                            let mut ws = ReuseScratch::new();
                            let mut busy = Duration::ZERO;
                            while let Ok(unit) = rx.recv() {
                                // check: allow(det-wallclock) feeds the obs worker-busy gauge only
                                let t0 = obs_on.then(Instant::now);
                                let mut block_span = slim_trace::span("lik.block", "lik");
                                block_span.arg_u64("bg", unit.bg as u64);
                                block_span.arg_u64("fg", unit.fg as u64);
                                block_span.arg_u64("lo", unit.lo as u64);
                                prune_block_cached(
                                    problem, config_ref, view, unit.bg, unit.fg, unit.lo,
                                    dirty_ref, unit.out, unit.cache, &mut ws,
                                );
                                drop(block_span);
                                if let Some(t0) = t0 {
                                    // check: allow(det-float-accum) Duration worker-busy accumulation, not an f64 reduction
                                    busy += t0.elapsed();
                                }
                            }
                            obs.worker_busy.observe(busy);
                            drop(worker_span);
                        });
                        // Scoped thread: flush before the scope unblocks.
                        if slim_trace::enabled() {
                            slim_trace::flush_thread();
                        }
                    });
                }
            })
            // check: allow(rob-unwrap) scope join fails only if a worker panicked; propagate the abort
            .expect("pruning scope");
        } else {
            let mut ws = ReuseScratch::new();
            // check: allow(det-wallclock) feeds the obs worker-busy gauge only
            let t0 = obs_on.then(Instant::now);
            for unit in runits {
                prune_block_cached(
                    problem, &config, &view, unit.bg, unit.fg, unit.lo, dirty_ref, unit.out,
                    unit.cache, &mut ws,
                );
            }
            if let Some(t0) = t0 {
                obs.worker_busy.observe(t0.elapsed());
            }
        }

        // Sanitize tripwire: recompute one randomly chosen *reused* CPV
        // block from its cached children and demand bit equality — a
        // stale-serve is caught at the evaluation that commits it.
        #[cfg(feature = "sanitize")]
        if !full && n_dirty_internal < self.n_internal && !unit_shape.is_empty() {
            let clean: Vec<usize> = (0..n_nodes)
                .filter(|&v| !problem.children[v].is_empty() && !dirty[v])
                .collect();
            let mut next = || {
                self.rng_state = self
                    .rng_state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (self.rng_state >> 33) as usize
            };
            let node = clean[next() % clean.len()];
            let ui = next() % unit_shape.len();
            let (ci, lo, _) = unit_shape[ui];
            let mut ws = ReuseScratch::new();
            crate::pruning::sanitize_recheck_node(
                problem,
                &config,
                &view,
                classes[ci].background_omega,
                classes[ci].foreground_omega,
                lo,
                node,
                &units[ui],
                &mut ws,
            );
        }
        drop(phase_span);
        let elapsed = start.elapsed();
        obs.pruning.observe(elapsed);
        if let Some(t) = timing.as_deref_mut() {
            // check: allow(det-float-accum) Duration phase-timing accumulation, not an f64 reduction
            t.pruning += elapsed;
        }

        // --- Phase 4: the shared serial fixed-order reduction. ---
        // check: allow(det-wallclock) feeds the obs phase-timing histogram only
        let start = Instant::now();
        let phase_span = slim_trace::span("lik.reduction", "lik");
        let props = [
            classes[0].proportion,
            classes[1].proportion,
            classes[2].proportion,
            classes[3].proportion,
        ];
        let (lnl, per_pattern) = mix_and_reduce(problem, props, &per_class, threads);
        drop(phase_span);
        let elapsed = start.elapsed();
        obs.reduction.observe(elapsed);
        if let Some(t) = timing {
            // check: allow(det-float-accum) Duration phase-timing accumulation, not an f64 reduction
            t.reduction += elapsed;
        }

        let value = LikelihoodValue {
            lnl,
            per_pattern,
            per_class,
            proportions: props,
        };
        self.state = Some(EvalState {
            model: *model,
            branch_lengths: branch_lengths.to_vec(),
            eigensystems,
            ops,
            unit_shape,
            units,
            value: value.clone(),
        });
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::site_class_log_likelihoods;
    use slim_bio::{parse_newick, CodonAlignment, FreqModel, GeneticCode};
    use slim_model::Hypothesis;

    fn toy_problem() -> LikelihoodProblem {
        let tree = parse_newick("(((A:0.1,B:0.2):0.05,C:0.3)#1:0.1,(D:0.25,E:0.15):0.2);").unwrap();
        let aln = CodonAlignment::from_fasta(
            ">A\nCCCTACTGCCCCAAGGAG\n>B\nCCCTACTGCCCCAAGGAG\n>C\nCCCTACTGCCCCAAGGAG\n>D\nCCCTATTGCCCCAAGGAG\n>E\nCCCTACTGCACCAAGGAG\n",
        )
        .unwrap();
        let code = GeneticCode::universal();
        LikelihoodProblem::new(&tree, &aln, &code, FreqModel::F3x4).unwrap()
    }

    fn assert_bits_equal(a: &LikelihoodValue, b: &LikelihoodValue, step: usize) {
        assert_eq!(
            a.lnl.to_bits(),
            b.lnl.to_bits(),
            "lnL bits diverge at step {step}: reuse {} vs fresh {}",
            a.lnl,
            b.lnl
        );
        for (p, (x, y)) in a.per_pattern.iter().zip(b.per_pattern.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "per-pattern bits diverge at step {step}, pattern {p}"
            );
        }
        for (c, (xs, ys)) in a.per_class.iter().zip(b.per_class.iter()).enumerate() {
            for (p, (x, y)) in xs.iter().zip(ys.iter()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "per-class bits diverge at step {step}, class {c}, pattern {p}"
                );
            }
        }
    }

    /// An optimizer-shaped update script: finite-difference probes on
    /// single branches, a sparse line-search move, a global bump, and an
    /// exact repeat — each step checked bit-for-bit against a fresh
    /// stateless evaluation.
    fn run_script(config: EngineConfig) {
        let problem = toy_problem();
        let mut ev = ReuseEvaluator::new(&problem, config.clone());
        let mut model = BranchSiteModel::default_start(Hypothesis::H1);
        let mut bl: Vec<f64> = (0..problem.n_branches())
            .map(|i| 0.08 + 0.03 * i as f64)
            .collect();
        let n_br = bl.len();

        let mut step = 0usize;
        let mut check =
            |ev: &mut ReuseEvaluator, model: &BranchSiteModel, bl: &[f64], hint: &ReuseHint| {
                let reuse = ev.evaluate(model, bl, hint, None).unwrap();
                let fresh = site_class_log_likelihoods(&problem, &config, model, bl).unwrap();
                assert_bits_equal(&reuse, &fresh, step);
                step += 1;
            };

        check(&mut ev, &model, &bl, &ReuseHint::Full);
        // Single-branch finite-difference probes (the numgrad pattern).
        for i in 0..n_br {
            let saved = bl[i];
            bl[i] += 1e-6;
            let hint = ReuseHint::Sparse {
                globals: false,
                branches: vec![i],
            };
            check(&mut ev, &model, &bl, &hint);
            bl[i] = saved;
            check(&mut ev, &model, &bl, &hint);
        }
        // Exact repeat: the nothing-changed shortcut.
        check(
            &mut ev,
            &model,
            &bl,
            &ReuseHint::Sparse {
                globals: false,
                branches: Vec::new(),
            },
        );
        // Sparse line-search step over two branches.
        bl[0] *= 1.25;
        bl[n_br - 1] *= 0.75;
        check(
            &mut ev,
            &model,
            &bl,
            &ReuseHint::Sparse {
                globals: false,
                branches: vec![0, n_br - 1],
            },
        );
        // Global move: everything invalidates.
        model.kappa += 0.125;
        check(
            &mut ev,
            &model,
            &bl,
            &ReuseHint::Sparse {
                globals: true,
                branches: Vec::new(),
            },
        );
        // Mixed move after the full invalidation.
        model.p0 -= 0.0625;
        bl[1] += 0.01;
        check(
            &mut ev,
            &model,
            &bl,
            &ReuseHint::Sparse {
                globals: true,
                branches: vec![1],
            },
        );
        let (hits, misses) = ev.op_cache_stats();
        assert!(hits > 0, "the script must exercise operator reuse");
        assert!(misses > 0, "the script must exercise operator rebuilds");
    }

    #[test]
    fn reuse_matches_stateless_bit_identically_serial() {
        // Small blocks force several units per class so root-path
        // invalidation crosses block boundaries.
        run_script(EngineConfig::slim().with_pattern_block(2));
    }

    #[test]
    fn reuse_matches_stateless_bit_identically_threaded() {
        run_script(EngineConfig::slim().with_pattern_block(2).with_threads(4));
    }

    #[test]
    fn reuse_matches_stateless_with_eigen_cache_profile() {
        run_script(EngineConfig::slim_plus().with_pattern_block(3));
    }

    // Under `sanitize` a deliberately wrong hint panics instead.
    #[cfg(not(feature = "sanitize"))]
    #[test]
    fn too_narrow_hint_cannot_corrupt_the_likelihood() {
        let problem = toy_problem();
        let config = EngineConfig::slim().with_pattern_block(2);
        let mut ev = ReuseEvaluator::new(&problem, config.clone());
        let model = BranchSiteModel::default_start(Hypothesis::H0);
        let mut bl = vec![0.1; problem.n_branches()];
        ev.evaluate(&model, &bl, &ReuseHint::Full, None).unwrap();
        // Change branch 2 but claim nothing changed: the bitwise self-diff
        // must still invalidate the right paths.
        bl[2] = 0.17;
        let lying_hint = ReuseHint::Sparse {
            globals: false,
            branches: Vec::new(),
        };
        let reuse = ev.evaluate(&model, &bl, &lying_hint, None).unwrap();
        let fresh = site_class_log_likelihoods(&problem, &config, &model, &bl).unwrap();
        assert_bits_equal(&reuse, &fresh, 1);
    }
}
