//! Property tests on the parallel likelihood engine's determinism contract.
//!
//! Two invariants, checked over *random* configurations rather than the
//! hand-picked ones in the unit tests:
//!
//! 1. **Bit-determinism** — thread count and pattern-block size are pure
//!    scheduling knobs. For arbitrary `(threads, block)` the engine must
//!    return the same log-likelihood *bits* as the serial engine, because
//!    every per-pattern value depends only on its own column and the final
//!    weighted reduction always runs serially in fixed pattern order.
//! 2. **Pattern-permutation invariance** — shuffling alignment columns
//!    permutes the site patterns (and may change how columns compress into
//!    patterns), so the reduction visits the same terms in a different
//!    order. That changes rounding but not the mathematical value: the lnL
//!    must agree to tight relative tolerance.

use proptest::prelude::*;
use slim_bio::{CodonAlignment, FreqModel, GeneticCode, Site};
use slim_lik::{site_class_log_likelihoods, EngineConfig, LikelihoodProblem};
use slim_model::BranchSiteModel;
use slim_sim::{dataset, DatasetId, SimulatedDataset};
use std::sync::OnceLock;

/// Dataset III analog (25 species × 67 codons): the smallest preset with a
/// non-trivial tree, cheap enough to evaluate many times under proptest.
fn preset() -> &'static SimulatedDataset {
    static DATA: OnceLock<SimulatedDataset> = OnceLock::new();
    DATA.get_or_init(|| dataset(DatasetId::III))
}

fn model_strategy() -> impl Strategy<Value = BranchSiteModel> {
    (
        0.5f64..8.0,
        0.01f64..0.95,
        1.0f64..10.0,
        0.1f64..0.7,
        0.05f64..0.25,
    )
        .prop_map(|(kappa, omega0, omega2, p0, p1)| BranchSiteModel {
            kappa,
            omega0,
            omega2,
            p0,
            p1,
        })
}

/// Block sizes around every interesting boundary: single-pattern blocks,
/// odd sizes that leave a ragged tail, and blocks larger than the whole
/// pattern set.
const BLOCKS: [usize; 7] = [1, 2, 3, 17, 64, 256, 4096];

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Arbitrary (threads, block) schedules reproduce the serial engine
    /// bit for bit: total lnL, per-pattern mixture values, and per-class
    /// values.
    #[test]
    fn schedule_is_bit_invariant(
        model in model_strategy(),
        threads in 1usize..9,
        block_ix in 0usize..BLOCKS.len(),
    ) {
        let d = preset();
        let problem = LikelihoodProblem::new(
            &d.tree,
            &d.alignment,
            &GeneticCode::universal(),
            FreqModel::F3x4,
        )
        .expect("preset dataset is well-formed");
        let bl = d.tree.branch_lengths();

        let serial = site_class_log_likelihoods(
            &problem,
            &EngineConfig::slim().with_threads(1),
            &model,
            &bl,
        )
        .expect("serial evaluation");
        let scheduled = site_class_log_likelihoods(
            &problem,
            &EngineConfig::slim()
                .with_threads(threads)
                .with_pattern_block(BLOCKS[block_ix]),
            &model,
            &bl,
        )
        .expect("scheduled evaluation");

        prop_assert_eq!(serial.lnl.to_bits(), scheduled.lnl.to_bits(),
            "threads={} block={}: {} vs {}",
            threads, BLOCKS[block_ix], serial.lnl, scheduled.lnl);
        for (p, (a, b)) in serial.per_pattern.iter().zip(&scheduled.per_pattern).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "per-pattern {} differs", p);
        }
        for (c, (a, b)) in serial.per_class.iter().zip(&scheduled.per_class).enumerate() {
            for (p, (x, y)) in a.iter().zip(b).enumerate() {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "class {} pattern {} differs", c, p);
            }
        }
    }

    /// Permuting alignment columns must not change the log-likelihood
    /// beyond reduction-order rounding.
    #[test]
    fn lnl_is_invariant_under_site_permutation(
        model in model_strategy(),
        seed in 0u64..1000,
        threads in 1usize..5,
    ) {
        let d = preset();
        let code = GeneticCode::universal();
        let n_codons = d.alignment.n_codons();

        // Seeded Fisher–Yates permutation of column indices.
        let mut perm: Vec<usize> = (0..n_codons).collect();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for i in (1..n_codons).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }

        let names = d.alignment.names().to_vec();
        let seqs: Vec<Vec<Site>> = (0..d.alignment.n_sequences())
            .map(|s| {
                let row = d.alignment.sequence(s);
                perm.iter().map(|&c| row[c]).collect()
            })
            .collect();
        let shuffled = CodonAlignment::new(names, seqs).expect("permuted alignment is valid");

        let config = EngineConfig::slim().with_threads(threads);
        let bl = d.tree.branch_lengths();
        let original = site_class_log_likelihoods(
            &LikelihoodProblem::new(&d.tree, &d.alignment, &code, FreqModel::F3x4).unwrap(),
            &config,
            &model,
            &bl,
        )
        .expect("original evaluation");
        let permuted = site_class_log_likelihoods(
            &LikelihoodProblem::new(&d.tree, &shuffled, &code, FreqModel::F3x4).unwrap(),
            &config,
            &model,
            &bl,
        )
        .expect("permuted evaluation");

        let rel = (original.lnl - permuted.lnl).abs() / original.lnl.abs().max(1.0);
        prop_assert!(rel <= 1e-10,
            "lnL changed under column permutation: {} vs {} (rel {})",
            original.lnl, permuted.lnl, rel);
    }
}
