//! Property tests on the cross-evaluation reuse engine's bit-identity
//! contract.
//!
//! The reuse engine ([`slim_lik::ReuseEvaluator`]) promises that for
//! *any* sequence of parameter updates — the optimizer-shaped mix of
//! single-coordinate finite-difference probes, multi-branch line-search
//! moves, global model steps, and exact repeats — every evaluation
//! returns the same log-likelihood **bits** as a fresh stateless
//! evaluation of the same point, regardless of how much of the previous
//! evaluation it reused. Proptest drives that promise over random
//! sequences on every Table II dataset analog, at 1 and 4 threads, with
//! SIMD forced scalar and forced native, and with deliberately *sloppy*
//! hints (the evaluator's bitwise self-diff, not the caller's hint, is
//! the ground truth; a hint that is too narrow must be caught, never
//! believed).

use proptest::prelude::*;
use slim_bio::{FreqModel, GeneticCode};
use slim_lik::{
    site_class_log_likelihoods, EngineConfig, LikelihoodProblem, ReuseEvaluator, ReuseHint,
    SimdMode,
};
use slim_model::BranchSiteModel;
use slim_sim::{dataset, DatasetId};

/// One optimizer-like step applied to the current point.
#[derive(Debug, Clone)]
enum Step {
    /// Central-difference probe: nudge one branch length and restore it
    /// next step (the dominant evaluation shape in a numgrad fit).
    BranchProbe { branch: usize, eps: f64 },
    /// Line-search move: scale several branch lengths at once.
    BranchMove { branches: Vec<(usize, f64)> },
    /// Global model step (κ / ω0 / ω2 / p0 / p1) — invalidates everything.
    Global { which: usize, delta: f64 },
    /// Mixed step: a global change plus a branch change in one move.
    Mixed { which: usize, branch: usize },
    /// Re-evaluate the unchanged point (hit path).
    Repeat,
}

/// Weighted mix of step kinds (the vendored proptest has no `prop_oneof`,
/// so the choice is an explicit flat-map over a weight range): 3 parts
/// single-branch probes — the numgrad-dominant shape — 2 parts
/// line-search moves, 2 parts global steps, 1 part mixed, 1 part repeat.
fn step_strategy(n_branches: usize) -> impl Strategy<Value = Step> {
    (0usize..9).prop_flat_map(move |kind| match kind {
        0..=2 => (0..n_branches, 0usize..3)
            .prop_map(|(branch, e)| Step::BranchProbe {
                branch,
                eps: [1e-6, -1e-6, 1e-4][e],
            })
            .boxed(),
        3..=4 => proptest::collection::vec((0..n_branches, 0.8f64..1.25), 1..4)
            .prop_map(|branches| Step::BranchMove { branches })
            .boxed(),
        5..=6 => (0usize..5, 0usize..2)
            .prop_map(|(which, d)| Step::Global {
                which,
                delta: [0.0625, -0.03125][d],
            })
            .boxed(),
        7 => (0usize..5, 0..n_branches)
            .prop_map(|(which, branch)| Step::Mixed { which, branch })
            .boxed(),
        _ => Just(Step::Repeat).boxed(),
    })
}

/// Apply `step` to the point, returning the honest hint for it.
fn apply(step: &Step, model: &mut BranchSiteModel, bl: &mut [f64]) -> ReuseHint {
    let global = |m: &mut BranchSiteModel, which: usize, delta: f64| match which {
        0 => m.kappa = (m.kappa + delta).max(0.5),
        1 => m.omega0 = (m.omega0 + delta).clamp(0.01, 0.9),
        2 => m.omega2 = (m.omega2 + delta).max(1.0),
        3 => m.p0 = (m.p0 + delta).clamp(0.05, 0.6),
        _ => m.p1 = (m.p1 + delta).clamp(0.05, 0.3),
    };
    match step {
        Step::BranchProbe { branch, eps } => {
            bl[*branch] = (bl[*branch] + eps).max(1e-7);
            ReuseHint::Sparse {
                globals: false,
                branches: vec![*branch],
            }
        }
        Step::BranchMove { branches } => {
            let mut touched: Vec<usize> = Vec::new();
            for &(b, factor) in branches {
                bl[b] *= factor;
                touched.push(b);
            }
            touched.sort_unstable();
            touched.dedup();
            ReuseHint::Sparse {
                globals: false,
                branches: touched,
            }
        }
        Step::Global { which, delta } => {
            global(model, *which, *delta);
            ReuseHint::Sparse {
                globals: true,
                branches: Vec::new(),
            }
        }
        Step::Mixed { which, branch } => {
            global(model, *which, 0.015625);
            bl[*branch] = (bl[*branch] * 1.0625).max(1e-7);
            ReuseHint::Sparse {
                globals: true,
                branches: vec![*branch],
            }
        }
        Step::Repeat => ReuseHint::Sparse {
            globals: false,
            branches: Vec::new(),
        },
    }
}

/// Run a random update sequence through the reuse evaluator and a fresh
/// stateless evaluation per step, asserting bit identity throughout.
fn check_sequence(
    id: DatasetId,
    config: &EngineConfig,
    steps: &[Step],
) -> Result<(), TestCaseError> {
    let d = dataset(id);
    let problem = LikelihoodProblem::new(
        &d.tree,
        &d.alignment,
        &GeneticCode::universal(),
        FreqModel::F3x4,
    )
    .expect("preset dataset is well-formed");
    let mut model = d.true_model;
    let mut bl = d.tree.branch_lengths();

    let mut evaluator = ReuseEvaluator::new(&problem, config.clone());
    let mut hint = ReuseHint::Full;
    for (i, step) in std::iter::once(None)
        .chain(steps.iter().map(Some))
        .enumerate()
    {
        if let Some(step) = step {
            hint = apply(step, &mut model, &mut bl);
        }
        let reused = evaluator
            .evaluate(&model, &bl, &hint, None)
            .expect("reuse evaluation");
        let fresh =
            site_class_log_likelihoods(&problem, config, &model, &bl).expect("fresh evaluation");
        prop_assert_eq!(
            reused.lnl.to_bits(),
            fresh.lnl.to_bits(),
            "step {} ({:?}): reused lnL {} != fresh lnL {}",
            i,
            step,
            reused.lnl,
            fresh.lnl
        );
        for (p, (a, b)) in reused
            .per_pattern
            .iter()
            .zip(&fresh.per_pattern)
            .enumerate()
        {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "step {} pattern {} differs", i, p);
        }
        for (c, (a, b)) in reused.per_class.iter().zip(&fresh.per_class).enumerate() {
            for (p, (x, y)) in a.iter().zip(b).enumerate() {
                prop_assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "step {} class {} pattern {} differs",
                    i,
                    c,
                    p
                );
            }
        }
    }
    Ok(())
}

/// Cheap-enough analogs for the per-case proptest loop. Datasets ii
/// (2431 patterns) and iv (188 branches) run one fixed sequence each in
/// the deterministic test below instead.
const PROPTEST_IDS: [DatasetId; 2] = [DatasetId::I, DatasetId::III];

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// Random optimizer-like sequences on the small analogs, random
    /// (threads, SIMD, block) schedule.
    #[test]
    fn reuse_is_bit_identical_over_random_sequences(
        dataset_ix in 0usize..PROPTEST_IDS.len(),
        threads_four in (0usize..2).prop_map(|b| b == 1),
        force_scalar in (0usize..2).prop_map(|b| b == 1),
        block in (0usize..3).prop_map(|i| [7usize, 64, 256][i]),
        steps in proptest::collection::vec(step_strategy(10), 2..7),
    ) {
        let id = PROPTEST_IDS[dataset_ix];
        // Branch indices from the strategy are modulo the real count.
        let n_branches = dataset(id).tree.branch_lengths().len();
        let steps: Vec<Step> = steps
            .into_iter()
            .map(|s| match s {
                Step::BranchProbe { branch, eps } => Step::BranchProbe { branch: branch % n_branches, eps },
                Step::BranchMove { branches } => Step::BranchMove {
                    branches: branches.into_iter().map(|(b, f)| (b % n_branches, f)).collect(),
                },
                Step::Mixed { which, branch } => Step::Mixed { which, branch: branch % n_branches },
                other => other,
            })
            .collect();
        let config = EngineConfig::slim()
            .with_threads(if threads_four { 4 } else { 1 })
            .with_pattern_block(block)
            .with_simd(if force_scalar { SimdMode::ForceScalar } else { SimdMode::Auto });
        check_sequence(id, &config, &steps)?;
    }
}

/// Every Table II analog, both thread counts, both SIMD modes, on one
/// fixed optimizer-shaped sequence — the coverage matrix the random test
/// samples from, run deterministically so the big analogs (ii, iv) are
/// exercised exactly once per mode.
#[test]
fn reuse_is_bit_identical_on_every_dataset_shape() {
    let steps = [
        Step::BranchProbe {
            branch: 0,
            eps: 1e-6,
        },
        Step::BranchProbe {
            branch: 0,
            eps: -1e-6,
        },
        Step::BranchMove {
            branches: vec![(1, 1.25), (3, 0.8)],
        },
        Step::Repeat,
        Step::Global {
            which: 0,
            delta: 0.0625,
        },
        Step::Mixed {
            which: 3,
            branch: 2,
        },
    ];
    for id in DatasetId::ALL {
        for threads in [1usize, 4] {
            for simd in [SimdMode::ForceScalar, SimdMode::Auto] {
                let config = EngineConfig::slim().with_threads(threads).with_simd(simd);
                check_sequence(id, &config, &steps)
                    .unwrap_or_else(|e| panic!("{} threads={threads} {simd:?}: {e}", id.label()));
            }
        }
    }
}
