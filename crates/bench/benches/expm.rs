//! Criterion: the matrix-exponential reconstruction paths — the paper's
//! headline Eq. 9 → Eq. 10 comparison (§II-C1, §III-A steps 3–5).

use criterion::{criterion_group, criterion_main, Criterion};
use slim_bio::GeneticCode;
use slim_expm::{expm_taylor, EigenSystem};
use slim_linalg::EigenMethod;
use slim_model::{build_rate_matrix, ScalePolicy};
use std::hint::black_box;

fn bench_expm(c: &mut Criterion) {
    let code = GeneticCode::universal();
    let mut pi: Vec<f64> = (0..61).map(|i| 1.0 + ((i * 7) % 13) as f64).collect();
    let s: f64 = pi.iter().sum();
    pi.iter_mut().for_each(|p| *p /= s);
    let rm = build_rate_matrix(&code, 2.3, 0.5, &pi, ScalePolicy::PerClass);
    let es = EigenSystem::from_rate_matrix(&rm, EigenMethod::HouseholderQl).unwrap();
    let t = 0.37;

    let mut group = c.benchmark_group("expm_reconstruction_61");
    group.sample_size(80);
    group.bench_function("eq9_naive (CodeML)", |bench| {
        bench.iter(|| black_box(es.transition_matrix_eq9_naive(black_box(t))))
    });
    group.bench_function("eq9_gemm", |bench| {
        bench.iter(|| black_box(es.transition_matrix_eq9(black_box(t))))
    });
    group.bench_function("eq10_syrk (SlimCodeML)", |bench| {
        bench.iter(|| black_box(es.transition_matrix_eq10(black_box(t))))
    });
    group.bench_function("eq12_symmetric_form", |bench| {
        bench.iter(|| black_box(es.symmetric_transition(black_box(t))))
    });
    group.finish();

    // Full pipeline including the eigendecomposition, and the oracle.
    let mut full = c.benchmark_group("expm_full_61");
    full.sample_size(20);
    full.bench_function("eigen_plus_eq10", |bench| {
        bench.iter(|| {
            let es =
                EigenSystem::from_rate_matrix(black_box(&rm), EigenMethod::HouseholderQl).unwrap();
            black_box(es.transition_matrix_eq10(t))
        })
    });
    full.bench_function("taylor_scaling_squaring (oracle)", |bench| {
        let mut qt = rm.q.clone();
        qt.scale(t);
        bench.iter(|| black_box(expm_taylor(black_box(&qt))))
    });
    full.finish();
}

criterion_group!(benches, bench_expm);
criterion_main!(benches);
