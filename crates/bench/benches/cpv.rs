//! Criterion: conditional-probability-vector application strategies
//! (§III-B) at short and long alignment sizes.
//!
//! The per-site vs bundled contrast is the paper's "BLAS level 3"
//! opportunity; the symmetric variant is Eq. 12. Long blocks (1024
//! patterns) model dataset ii, short blocks (64) datasets iii/iv.

use criterion::{criterion_group, criterion_main, Criterion};
use slim_bio::GeneticCode;
use slim_expm::{cpv, CpvStrategy, EigenSystem};
use slim_linalg::{EigenMethod, Mat};
use slim_model::{build_rate_matrix, ScalePolicy};
use std::hint::black_box;

fn bench_cpv(c: &mut Criterion) {
    let code = GeneticCode::universal();
    let pi = vec![1.0 / 61.0; 61];
    let rm = build_rate_matrix(&code, 2.0, 0.5, &pi, ScalePolicy::PerClass);
    let es = EigenSystem::from_rate_matrix(&rm, EigenMethod::HouseholderQl).unwrap();
    let p = es.transition_matrix_eq10(0.3);
    let sym = es.symmetric_transition(0.3);

    for sites in [64usize, 1024] {
        let mut state = 7u64;
        let w = Mat::from_fn(61, sites, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64).abs()
        });
        let mut out = Mat::zeros(61, sites);
        let mut group = c.benchmark_group(format!("cpv_{sites}_sites"));
        group.sample_size(40);
        for (label, strategy) in [
            ("naive_per_site (CodeML)", CpvStrategy::NaivePerSite),
            ("per_site_gemv (SlimCodeML)", CpvStrategy::PerSiteGemv),
            ("bundled_gemm (SS III-B)", CpvStrategy::BundledGemm),
        ] {
            group.bench_function(label, |bench| {
                bench.iter(|| {
                    cpv::apply_dense(strategy, black_box(&p), black_box(&w), &mut out);
                    black_box(&out);
                })
            });
        }
        group.bench_function("symmetric_symv (Eq. 12)", |bench| {
            bench.iter(|| {
                sym.apply_dense(black_box(&w), &mut out);
                black_box(&out);
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_cpv);
criterion_main!(benches);
