//! Criterion: symmetric eigensolvers on the actual 61×61 codon `A`
//! matrix (§III-A step 2, the `dsyevr` role).

use criterion::{criterion_group, criterion_main, Criterion};
use slim_bio::GeneticCode;
use slim_linalg::{sym_eigen, EigenMethod};
use slim_model::{build_rate_matrix, ScalePolicy};
use std::hint::black_box;

fn bench_eigen(c: &mut Criterion) {
    let code = GeneticCode::universal();
    let mut pi: Vec<f64> = (0..61).map(|i| 1.0 + ((i * 5) % 11) as f64).collect();
    let s: f64 = pi.iter().sum();
    pi.iter_mut().for_each(|p| *p /= s);
    let rm = build_rate_matrix(&code, 2.3, 0.5, &pi, ScalePolicy::PerClass);

    let mut group = c.benchmark_group("eigen_codon_61");
    group.sample_size(30);
    for (label, method) in [
        ("householder_ql (tred2+tql2)", EigenMethod::HouseholderQl),
        (
            "bisection_inverse (dsyevr stand-in)",
            EigenMethod::BisectionInverse,
        ),
        ("jacobi", EigenMethod::Jacobi),
    ] {
        group.bench_function(label, |bench| {
            bench.iter(|| black_box(sym_eigen(black_box(&rm.a), method).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eigen);
criterion_main!(benches);
