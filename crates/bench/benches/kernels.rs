//! Criterion: the BLAS-substitute kernels at codon-model size (n = 61).
//!
//! Measures the paper's §III-A step 4 claim directly: `syrk` (n³ flops)
//! vs `gemm` (2n³) vs the naive strided triple loop CodeML used.

use criterion::{criterion_group, criterion_main, Criterion};
use slim_linalg::gemm::{matmul, Transpose};
use slim_linalg::{naive, syrk, Mat};
use std::hint::black_box;

fn rng_mat(n: usize, seed: u64) -> Mat {
    let mut state = seed;
    Mat::from_fn(n, n, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    })
}

fn bench_kernels(c: &mut Criterion) {
    let n = 61;
    let a = rng_mat(n, 1);
    let b = rng_mat(n, 2);

    let mut group = c.benchmark_group("kernels_61");
    group.sample_size(60);

    group.bench_function("naive_matmul (CodeML-style)", |bench| {
        bench.iter(|| black_box(naive::matmul(black_box(&a), black_box(&b))))
    });
    group.bench_function("naive_matmul_bt", |bench| {
        bench.iter(|| black_box(naive::matmul_bt(black_box(&a), black_box(&b))))
    });
    group.bench_function("blocked_gemm", |bench| {
        bench.iter(|| {
            black_box(matmul(
                black_box(&a),
                Transpose::No,
                black_box(&b),
                Transpose::No,
            ))
        })
    });
    group.bench_function("blocked_gemm_abt", |bench| {
        bench.iter(|| {
            black_box(matmul(
                black_box(&a),
                Transpose::No,
                black_box(&b),
                Transpose::Yes,
            ))
        })
    });
    group.bench_function("syrk_aat (SlimCodeML)", |bench| {
        let mut out = Mat::zeros(n, n);
        bench.iter(|| {
            syrk(1.0, black_box(&a), 0.0, &mut out);
            black_box(&out);
        })
    });
    group.finish();

    let mut gv = c.benchmark_group("matvec_61");
    gv.sample_size(100);
    let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    gv.bench_function("naive_matvec", |bench| {
        let mut y = vec![0.0; n];
        bench.iter(|| {
            naive::matvec(black_box(&a), black_box(&x), &mut y);
            black_box(&y);
        })
    });
    gv.bench_function("gemv", |bench| {
        let mut y = vec![0.0; n];
        bench.iter(|| {
            slim_linalg::gemv(1.0, black_box(&a), black_box(&x), 0.0, &mut y);
            black_box(&y);
        })
    });
    gv.bench_function("symv (Eq. 12 kernel)", |bench| {
        let mut sym = a.clone();
        sym.symmetrize();
        let mut y = vec![0.0; n];
        bench.iter(|| {
            slim_linalg::symv(1.0, black_box(&sym), black_box(&x), 0.0, &mut y);
            black_box(&y);
        })
    });
    gv.finish();
}

/// The same kernels under forced SIMD dispatch: scalar vs the best backend
/// the host resolves (results are bit-identical by the dispatch contract;
/// only the throughput differs). Complements the `simd_kernels` bin, which
/// emits the machine-readable `BENCH_simd.json` for CI.
fn bench_simd_dispatch(c: &mut Criterion) {
    use slim_linalg::simd::{self, SimdMode};
    let n = 61;
    let a = rng_mat(n, 1);
    let b = rng_mat(n, 2);
    let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();

    let mut group = c.benchmark_group("simd_dispatch_61");
    group.sample_size(60);
    for (label, mode) in [
        ("scalar", SimdMode::ForceScalar),
        ("simd", SimdMode::ForceAvx2),
    ] {
        group.bench_function(format!("gemm/{label}"), |bench| {
            let mut c_out = Mat::zeros_padded(n, n);
            bench.iter(|| {
                simd::with_forced(mode, || {
                    slim_linalg::gemm(
                        1.0,
                        black_box(&a),
                        Transpose::No,
                        black_box(&b),
                        Transpose::No,
                        0.0,
                        &mut c_out,
                    );
                });
                black_box(&c_out);
            })
        });
        group.bench_function(format!("syrk/{label}"), |bench| {
            let mut c_out = Mat::zeros_padded(n, n);
            bench.iter(|| {
                simd::with_forced(mode, || {
                    syrk(1.0, black_box(&a), 0.0, &mut c_out);
                });
                black_box(&c_out);
            })
        });
        group.bench_function(format!("gemv/{label}"), |bench| {
            let mut y = vec![0.0; n];
            bench.iter(|| {
                simd::with_forced(mode, || {
                    slim_linalg::gemv(1.0, black_box(&a), black_box(&x), 0.0, &mut y);
                });
                black_box(&y);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_simd_dispatch);
criterion_main!(benches);
