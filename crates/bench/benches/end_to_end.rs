//! Criterion: a short optimization burst per backend — the unit the
//! paper's Table III/IV runtimes are made of (likelihood + finite
//! differences + line search, §II-B).

use criterion::{criterion_group, criterion_main, Criterion};
use slim_core::{Analysis, AnalysisOptions, Backend, Hypothesis};
use slim_model::BranchSiteModel;
use slim_opt::GradMode;
use slim_sim::{simulate_alignment, yule_tree};
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let tree = yule_tree(10, 0.15, 5);
    let truth = BranchSiteModel::default_start(Hypothesis::H1);
    let pi = vec![1.0 / 61.0; 61];
    let aln = simulate_alignment(&tree, &truth, &pi, 120, 55);

    let mut group = c.benchmark_group("bfgs_burst_10sp_120cod");
    group.sample_size(10);
    for backend in [Backend::CodeMlStyle, Backend::Slim, Backend::SlimPlus] {
        group.bench_function(backend.label(), |bench| {
            bench.iter(|| {
                let options = AnalysisOptions {
                    backend,
                    max_iterations: 2,
                    grad_mode: GradMode::Forward,
                    ..Default::default()
                };
                let analysis = Analysis::new(&tree, &aln, options).unwrap();
                black_box(analysis.fit(Hypothesis::H0).unwrap().lnl)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
