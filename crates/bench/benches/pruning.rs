//! Criterion: one full branch-site likelihood evaluation per backend on
//! two dataset shapes — the §II-B pruning pipeline end to end.
//!
//! "tall" mimics dataset iv (many species, short alignment: expm-bound);
//! "wide" mimics dataset ii scaled down (few species, long alignment:
//! CPV-bound). The Slim/CodeML ratio differs between them exactly as the
//! paper's per-iteration speedups differ between datasets ii and iv.

use criterion::{criterion_group, criterion_main, Criterion};
use slim_bio::{FreqModel, GeneticCode};
use slim_lik::{log_likelihood, EngineConfig, LikelihoodProblem};
use slim_model::{BranchSiteModel, Hypothesis};
use slim_sim::{simulate_alignment, yule_tree};
use std::hint::black_box;

fn make_problem(n_species: usize, n_codons: usize, seed: u64) -> (LikelihoodProblem, Vec<f64>) {
    let tree = yule_tree(n_species, 0.15, seed);
    let model = BranchSiteModel::default_start(Hypothesis::H1);
    let pi = vec![1.0 / 61.0; 61];
    let aln = simulate_alignment(&tree, &model, &pi, n_codons, seed ^ 0xBEEF);
    let code = GeneticCode::universal();
    let problem = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::F3x4).unwrap();
    let bl = tree.branch_lengths();
    (problem, bl)
}

fn bench_pruning(c: &mut Criterion) {
    let model = BranchSiteModel::default_start(Hypothesis::H1);
    for (label, species, codons) in [
        ("tall_40sp_39cod", 40usize, 39usize),
        ("wide_6sp_800cod", 6, 800),
    ] {
        let (problem, bl) = make_problem(species, codons, 42);
        let mut group = c.benchmark_group(format!("likelihood_eval_{label}"));
        group.sample_size(20);
        for (name, config) in [
            ("codeml_style", EngineConfig::codeml_style()),
            ("slim", EngineConfig::slim()),
            ("slim_plus", EngineConfig::slim_plus()),
            ("slim_eq12", EngineConfig::slim_symmetric()),
        ] {
            group.bench_function(name, |bench| {
                bench.iter(|| {
                    black_box(
                        log_likelihood(black_box(&problem), &config, black_box(&model), &bl)
                            .unwrap(),
                    )
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
