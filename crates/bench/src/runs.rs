//! Shared execution + caching of the Table III / Table IV / accuracy runs.
//!
//! The three binaries consume the same (dataset × engine) fit grid; this
//! module executes it once and caches the outcome as JSON under
//! `target/` so `table3`, `table4` and `accuracy` can be run in any order
//! without repeating hours of fitting. Pass `--fresh` to recompute.

use crate::{run_engine, EngineRun, RunBudget};
use serde_json::Value;
use slim_core::{Backend, Fit};
use slim_opt::GradMode;
use slim_sim::{dataset, DatasetId};
use std::path::PathBuf;

/// Serializable summary of one hypothesis fit.
#[derive(Debug, Clone)]
pub struct StoredFit {
    /// Maximized log-likelihood.
    pub lnl: f64,
    /// Optimizer iterations.
    pub iterations: usize,
    /// Objective evaluations.
    pub f_evals: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl From<&Fit> for StoredFit {
    fn from(f: &Fit) -> Self {
        StoredFit {
            lnl: f.lnl,
            iterations: f.iterations,
            f_evals: f.f_evals,
            seconds: f.wall_time.as_secs_f64(),
        }
    }
}

impl StoredFit {
    /// Seconds per iteration (Table IV's per-iteration speedups).
    pub fn seconds_per_iteration(&self) -> f64 {
        self.seconds / self.iterations.max(1) as f64
    }

    /// JSON tree for the `target/` cache files.
    pub fn to_json_value(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert("lnl".into(), Value::Number(self.lnl));
        m.insert("iterations".into(), Value::Number(self.iterations as f64));
        m.insert("f_evals".into(), Value::Number(self.f_evals as f64));
        m.insert("seconds".into(), Value::Number(self.seconds));
        Value::Object(m)
    }

    /// Parse back from a cache file; `None` on shape mismatch (treated
    /// as a stale cache and recomputed).
    pub fn from_json_value(v: &Value) -> Option<StoredFit> {
        Some(StoredFit {
            lnl: v.get("lnl")?.as_f64()?,
            iterations: v.get("iterations")?.as_u64()? as usize,
            f_evals: v.get("f_evals")?.as_u64()? as usize,
            seconds: v.get("seconds")?.as_f64()?,
        })
    }
}

/// Serializable summary of one engine's H0+H1 on one dataset.
#[derive(Debug, Clone)]
pub struct StoredRun {
    /// Dataset label ("i".."iv").
    pub dataset: String,
    /// Backend label ("CodeML"/"SlimCodeML").
    pub backend: String,
    /// Null fit summary.
    pub h0: StoredFit,
    /// Alternative fit summary.
    pub h1: StoredFit,
}

impl StoredRun {
    fn from_run(dataset: DatasetId, run: &EngineRun) -> StoredRun {
        StoredRun {
            dataset: dataset.label().to_string(),
            backend: run.backend.label().to_string(),
            h0: (&run.h0).into(),
            h1: (&run.h1).into(),
        }
    }

    /// Combined H0+H1 seconds.
    pub fn total_seconds(&self) -> f64 {
        self.h0.seconds + self.h1.seconds
    }

    /// Combined iterations.
    pub fn total_iterations(&self) -> usize {
        self.h0.iterations + self.h1.iterations
    }

    /// JSON tree for the `target/` cache files.
    pub fn to_json_value(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert("dataset".into(), Value::String(self.dataset.clone()));
        m.insert("backend".into(), Value::String(self.backend.clone()));
        m.insert("h0".into(), self.h0.to_json_value());
        m.insert("h1".into(), self.h1.to_json_value());
        Value::Object(m)
    }

    /// Parse back from a cache file; `None` on shape mismatch.
    pub fn from_json_value(v: &Value) -> Option<StoredRun> {
        Some(StoredRun {
            dataset: v.get("dataset")?.as_str()?.to_string(),
            backend: v.get("backend")?.as_str()?.to_string(),
            h0: StoredFit::from_json_value(v.get("h0")?)?,
            h1: StoredFit::from_json_value(v.get("h1")?)?,
        })
    }
}

/// Parse a cached run grid; `None` if the file is not a JSON array of
/// well-formed runs.
pub fn runs_from_json(text: &str) -> Option<Vec<StoredRun>> {
    let root: Value = serde_json::from_str(text).ok()?;
    root.as_array()?
        .iter()
        .map(StoredRun::from_json_value)
        .collect()
}

/// Pretty-printed JSON array for a run grid.
pub fn runs_to_json(runs: &[StoredRun]) -> String {
    let arr = Value::Array(runs.iter().map(StoredRun::to_json_value).collect());
    serde_json::to_string_pretty(&arr).expect("JSON tree printing is infallible")
}

/// Per-dataset iteration caps. Dataset iv's full CodeML run took the
/// paper 14.7 hours; the caps keep this reproduction's grid tractable
/// while leaving per-iteration comparisons exact.
pub fn iteration_cap(budget: &RunBudget, id: DatasetId) -> usize {
    let quick = budget.max_iterations <= RunBudget::quick().max_iterations;
    match (quick, id) {
        (false, DatasetId::I) => 30,
        (false, DatasetId::II) => 10,
        (false, DatasetId::III) => 20,
        (false, DatasetId::IV) => 4,
        (true, DatasetId::I) => 6,
        (true, DatasetId::II) => 3,
        (true, DatasetId::III) => 5,
        (true, DatasetId::IV) => 2,
    }
}

fn cache_path(budget: &RunBudget) -> PathBuf {
    let tag = if budget.max_iterations <= RunBudget::quick().max_iterations {
        "quick"
    } else {
        "full"
    };
    PathBuf::from(format!("target/slim-bench-results-{tag}.json"))
}

/// The engines Table III/IV compare.
pub const COMPARED: [Backend; 2] = [Backend::CodeMlStyle, Backend::Slim];

/// Execute (or load from cache) the full (dataset × engine) grid.
///
/// # Panics
/// Panics on fit failures or unwritable cache paths.
pub fn load_or_run_all(budget: &RunBudget) -> Vec<StoredRun> {
    let path = cache_path(budget);
    let fresh = std::env::args().any(|a| a == "--fresh");
    if !fresh {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Some(runs) = runs_from_json(&text) {
                eprintln!(
                    "[bench] using cached runs from {} (pass --fresh to recompute)",
                    path.display()
                );
                return runs;
            }
        }
    }

    let mut out = Vec::new();
    for id in DatasetId::ALL {
        let ds = dataset(id);
        eprintln!(
            "[bench] dataset {} ({} species × {} codons, {} branches)…",
            id.label(),
            ds.alignment.n_sequences(),
            ds.alignment.n_codons(),
            ds.tree.n_branches()
        );
        let ds_budget = RunBudget {
            max_iterations: iteration_cap(budget, id),
            grad_mode: GradMode::Forward,
        };
        for backend in COMPARED {
            eprintln!("[bench]   engine {}…", backend.label());
            let run = run_engine(&ds, backend, &ds_budget);
            eprintln!(
                "[bench]     H0 {:.2}s/{} iters, H1 {:.2}s/{} iters",
                run.h0.wall_time.as_secs_f64(),
                run.h0.iterations,
                run.h1.wall_time.as_secs_f64(),
                run.h1.iterations
            );
            out.push(StoredRun::from_run(id, &run));
        }
    }
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&path, runs_to_json(&out)).expect("write bench cache");
    out
}

/// Fetch the (baseline, slim) pair for a dataset from a stored grid.
///
/// # Panics
/// Panics if the grid is missing entries.
pub fn pair_for<'a>(runs: &'a [StoredRun], label: &str) -> (&'a StoredRun, &'a StoredRun) {
    let base = runs
        .iter()
        .find(|r| r.dataset == label && r.backend == "CodeML")
        .expect("baseline run present");
    let slim = runs
        .iter()
        .find(|r| r.dataset == label && r.backend == "SlimCodeML")
        .expect("slim run present");
    (base, slim)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stored(dataset: &str, backend: &str, secs: f64, iters: usize) -> StoredRun {
        let fit = StoredFit {
            lnl: -100.0,
            iterations: iters,
            f_evals: 10,
            seconds: secs,
        };
        StoredRun {
            dataset: dataset.into(),
            backend: backend.into(),
            h0: fit.clone(),
            h1: fit,
        }
    }

    #[test]
    fn caps_shrink_for_quick_and_big_datasets() {
        let full = RunBudget::full();
        let quick = RunBudget::quick();
        for id in DatasetId::ALL {
            assert!(
                iteration_cap(&quick, id) < iteration_cap(&full, id),
                "{id:?}"
            );
        }
        // Dataset iv (the 14.7-hour one in the paper) gets the smallest cap.
        assert!(iteration_cap(&full, DatasetId::IV) < iteration_cap(&full, DatasetId::I));
    }

    #[test]
    fn pair_lookup_and_totals() {
        let runs = vec![
            stored("i", "CodeML", 10.0, 5),
            stored("i", "SlimCodeML", 4.0, 5),
        ];
        let (base, slim) = pair_for(&runs, "i");
        assert_eq!(base.total_seconds(), 20.0);
        assert_eq!(slim.total_iterations(), 10);
        assert!((base.h0.seconds_per_iteration() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stored_fit_roundtrips_through_json() {
        let runs = vec![stored("iv", "CodeML", 1.5, 3)];
        let text = runs_to_json(&runs);
        let back = runs_from_json(&text).unwrap();
        assert_eq!(back[0].dataset, "iv");
        assert_eq!(back[0].h1.iterations, 3);
        assert!((back[0].h0.seconds - 1.5).abs() < 1e-15);
        // Malformed caches are rejected, not half-parsed.
        assert!(runs_from_json("[{\"dataset\": 3}]").is_none());
        assert!(runs_from_json("not json").is_none());
    }
}
