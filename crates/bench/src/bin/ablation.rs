//! Ablation study: which of the paper's optimizations buys what.
//!
//! Times a full likelihood evaluation (the §III pipeline end to end) on a
//! dataset-iii-shaped problem while toggling one knob at a time:
//!
//! 1. expm path: Eq. 9 naive → Eq. 9 blocked gemm → Eq. 10 syrk;
//! 2. CPV strategy: naive per-site → gemv per-site → bundled gemm →
//!    Eq. 12 symmetric symv;
//! 3. eigensolver: Householder+QL vs bisection+inverse-iteration
//!    (`dsyevr`'s MRRR stand-in) vs Jacobi;
//! 4. eigendecomposition cache on/off across branch-length-only changes
//!    (the gradient-loop access pattern).
//!
//! ```text
//! cargo run --release -p slim-bench --bin ablation [--quick]
//! ```

use slim_bio::GeneticCode;
use slim_expm::{CpvStrategy, EigenCache};
use slim_lik::{log_likelihood, EngineConfig, ExpmPath, LikelihoodProblem};
use slim_linalg::EigenMethod;
use slim_model::{BranchSiteModel, Hypothesis};
use slim_sim::{dataset, DatasetId};
use std::sync::Arc;
use std::time::Instant;

fn time_eval(
    problem: &LikelihoodProblem,
    config: &EngineConfig,
    model: &BranchSiteModel,
    bl: &[f64],
    reps: usize,
) -> (f64, f64) {
    // Warm once (also fills any cache).
    let lnl = log_likelihood(problem, config, model, bl).expect("likelihood");
    let start = Instant::now();
    for _ in 0..reps {
        let _ = log_likelihood(problem, config, model, bl).expect("likelihood");
    }
    (start.elapsed().as_secs_f64() / reps as f64 * 1e3, lnl)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 3 } else { 10 };

    let ds = dataset(DatasetId::III);
    let code = GeneticCode::universal();
    let problem = LikelihoodProblem::new(&ds.tree, &ds.alignment, &code, slim_bio::FreqModel::F3x4)
        .expect("problem");
    let model = BranchSiteModel::default_start(Hypothesis::H1);
    let bl = ds.tree.branch_lengths();

    println!(
        "Ablation on dataset iii shape ({} species × {} codons, {} patterns, {} branches); ms per likelihood evaluation",
        ds.alignment.n_sequences(),
        ds.alignment.n_codons(),
        problem.n_patterns(),
        problem.n_branches()
    );
    println!();

    println!("1. expm path (CPV fixed at per-site gemv):");
    for (label, path) in [
        ("Eq. 9, naive kernels (CodeML)", ExpmPath::Eq9Naive),
        ("Eq. 9, blocked gemm", ExpmPath::Eq9Tuned),
        ("Eq. 10, syrk (SlimCodeML)", ExpmPath::Eq10Syrk),
    ] {
        let mut cfg = EngineConfig::slim();
        cfg.expm = path;
        let (ms, lnl) = time_eval(&problem, &cfg, &model, &bl, reps);
        println!("   {label:<36} {ms:>9.2} ms   (lnL {lnl:.6})");
    }

    println!();
    println!("2. CPV strategy (expm fixed at Eq. 10):");
    for (label, cpv) in [
        ("naive per-site matvec (CodeML)", CpvStrategy::NaivePerSite),
        (
            "per-site gemv (paper's SlimCodeML)",
            CpvStrategy::PerSiteGemv,
        ),
        (
            "bundled gemm over sites (SS III-B)",
            CpvStrategy::BundledGemm,
        ),
        ("Eq. 12 symmetric symv", CpvStrategy::SymmetricSymv),
    ] {
        let cfg = EngineConfig::slim().with_cpv(cpv);
        let (ms, lnl) = time_eval(&problem, &cfg, &model, &bl, reps);
        println!("   {label:<36} {ms:>9.2} ms   (lnL {lnl:.6})");
    }

    println!();
    println!("2b. parallel site classes (SS V-B FastCodeML direction):");
    for (label, cfg) in [
        ("serial classes", EngineConfig::slim()),
        ("4 threads (crossbeam scope)", EngineConfig::slim_parallel()),
    ] {
        let (ms, lnl) = time_eval(&problem, &cfg, &model, &bl, reps);
        println!("   {label:<36} {ms:>9.2} ms   (lnL {lnl:.6})");
    }

    println!();
    println!("3. symmetric eigensolver (full Slim config):");
    for (label, method) in [
        ("Householder + implicit QL", EigenMethod::HouseholderQl),
        (
            "bisection + inverse iteration",
            EigenMethod::BisectionInverse,
        ),
        ("cyclic Jacobi", EigenMethod::Jacobi),
    ] {
        let cfg = EngineConfig::slim().with_eigen(method);
        let (ms, lnl) = time_eval(&problem, &cfg, &model, &bl, reps);
        println!("   {label:<36} {ms:>9.2} ms   (lnL {lnl:.6})");
    }

    println!();
    println!("4. eigendecomposition cache across branch-length-only changes:");
    {
        let no_cache = EngineConfig::slim();
        let mut cached = EngineConfig::slim();
        cached.eigen_cache = Some(Arc::new(EigenCache::new(64)));
        for (label, cfg) in [("no cache", &no_cache), ("with cache", &cached)] {
            // Simulate the gradient loop: perturb one branch at a time.
            let warm = log_likelihood(&problem, cfg, &model, &bl).unwrap();
            let start = Instant::now();
            let mut work = bl.clone();
            let sweeps = if quick { 1 } else { 3 };
            for _ in 0..sweeps {
                for i in 0..work.len().min(16) {
                    work[i] += 1e-6;
                    let _ = log_likelihood(&problem, cfg, &model, &work).unwrap();
                    work[i] -= 1e-6;
                }
            }
            let evals = sweeps * bl.len().min(16);
            let ms = start.elapsed().as_secs_f64() / evals as f64 * 1e3;
            println!("   {label:<36} {ms:>9.2} ms/eval   (lnL {warm:.6})");
        }
        if let Some(c) = &cached.eigen_cache {
            let (hits, misses) = c.stats();
            println!("   cache stats: {hits} hits, {misses} misses");
        }
    }
}
