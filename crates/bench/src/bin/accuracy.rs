//! Regenerate the §IV-1 accuracy experiment.
//!
//! The paper reports the relative difference `D = |lnL − lnL̂| / |lnL|`
//! between CodeML's and SlimCodeML's final log-likelihoods on datasets
//! i–iv for both hypotheses, obtaining D between 0 and 5.5·10⁻⁸. Here D
//! compares the CodeML-style and Slim engines after identically-seeded
//! optimizations.
//!
//! ```text
//! cargo run --release -p slim-bench --bin accuracy [--quick] [--fresh]
//! ```

use slim_bench::relative_difference;
use slim_bench::runs::{load_or_run_all, pair_for};
use slim_bench::RunBudget;

fn main() {
    let budget = RunBudget::from_args();
    let runs = load_or_run_all(&budget);

    println!("Accuracy (paper §IV-1): relative lnL difference D = |lnL - lnL_hat| / |lnL|");
    println!();
    println!(
        "{:<8} {:>16} {:>16} {:>12} {:>12}",
        "dataset", "lnL CodeML", "lnL SlimCodeML", "D(H0)", "D(H1)"
    );
    for label in ["i", "ii", "iii", "iv"] {
        let (base, slim) = pair_for(&runs, label);
        let d_h0 = relative_difference(base.h0.lnl, slim.h0.lnl);
        let d_h1 = relative_difference(base.h1.lnl, slim.h1.lnl);
        println!(
            "{:<8} {:>16.6} {:>16.6} {:>12.2e} {:>12.2e}",
            label, base.h1.lnl, slim.h1.lnl, d_h0, d_h1
        );
    }
    println!();
    println!("paper reported D in [0, 5.5e-8] (H0) and [0, 4.9e-8] (H1);");
    println!("identical-seed optimizations of the two engines are expected to land");
    println!("within ~1e-6 relative when iteration caps truncate convergence, and");
    println!("tighter as caps are raised.");
}
