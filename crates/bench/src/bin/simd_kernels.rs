//! Scalar vs SIMD throughput of the linalg hot-path kernels at the codon
//! order (n = 61), emitted as `BENCH_simd.json`.
//!
//! Each kernel runs twice under forced dispatch — `SLIMCODEML_SIMD=scalar`
//! semantics vs the best backend the host resolves (AVX2 where available,
//! otherwise scalar, making the comparison a no-op that still validates
//! the fallback). The harness cross-checks the determinism contract on
//! the way: both runs must produce **bit-identical** outputs.
//!
//! ```text
//! cargo run --release -p slim-bench --bin simd_kernels [--quick]
//! ```

use slim_linalg::simd::{self, SimdMode};
use slim_linalg::{gemm, gemv, symv, syrk, vecops, Mat, Transpose};
use std::hint::black_box;
use std::time::Instant;

const N: usize = 61;

fn rng_mat(n: usize, seed: u64) -> Mat {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    Mat::from_fn(n, n, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    })
}

/// Best-of-3 throughput of `f` in calls/second, each trial at least
/// `min_time` seconds of accumulated work.
fn calls_per_second(min_time: f64, mut f: impl FnMut()) -> f64 {
    for _ in 0..3 {
        f(); // warm caches and the dispatch OnceLocks
    }
    let mut best = 0.0f64;
    for _ in 0..3 {
        let mut iters = 0u64;
        let started = Instant::now();
        loop {
            f();
            iters += 1;
            let elapsed = started.elapsed().as_secs_f64();
            if elapsed >= min_time {
                best = best.max(iters as f64 / elapsed);
                break;
            }
        }
    }
    best
}

/// One kernel measured under both dispatch modes.
struct Row {
    name: &'static str,
    flops_per_call: f64,
    scalar_gflops: f64,
    simd_gflops: f64,
    bit_identical: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        if self.scalar_gflops > 0.0 {
            self.simd_gflops / self.scalar_gflops
        } else {
            0.0
        }
    }
}

/// Measure `f` (which writes its result's bits into the returned vector)
/// under forced scalar and the host's best backend.
fn measure(
    name: &'static str,
    flops_per_call: f64,
    min_time: f64,
    mut run: impl FnMut() -> Vec<u64>,
) -> Row {
    let scalar_bits = simd::with_forced(SimdMode::ForceScalar, &mut run);
    let simd_bits = simd::with_forced(SimdMode::ForceAvx2, &mut run);
    let bit_identical = scalar_bits == simd_bits;
    let scalar = simd::with_forced(SimdMode::ForceScalar, || {
        calls_per_second(min_time, || {
            black_box(run());
        })
    });
    let fast = simd::with_forced(SimdMode::ForceAvx2, || {
        calls_per_second(min_time, || {
            black_box(run());
        })
    });
    Row {
        name,
        flops_per_call,
        scalar_gflops: scalar * flops_per_call / 1e9,
        simd_gflops: fast * flops_per_call / 1e9,
        bit_identical,
    }
}

fn mat_bits(m: &Mat) -> Vec<u64> {
    (0..m.rows())
        .flat_map(|i| m.row(i).iter().map(|v| v.to_bits()))
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let min_time = if quick { 0.01 } else { 0.15 };
    let n = N;
    let nf = n as f64;
    let a = rng_mat(n, 1);
    let b = rng_mat(n, 2);
    let mut sym = rng_mat(n, 3);
    sym.symmetrize();
    let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let y: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
    let host = simd::resolve(SimdMode::ForceAvx2);

    println!(
        "simd kernels — n = {n}, scalar vs {} ({} lanes), min {min_time}s/trial",
        host.name(),
        host.lanes()
    );

    let rows = vec![
        measure("gemm", 2.0 * nf * nf * nf, min_time, || {
            let mut c = Mat::zeros_padded(n, n);
            gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
            mat_bits(&c)
        }),
        measure("syrk", nf * nf * (nf + 1.0), min_time, || {
            let mut c = Mat::zeros_padded(n, n);
            syrk(1.0, &a, 0.0, &mut c);
            mat_bits(&c)
        }),
        measure("gemv", 2.0 * nf * nf, min_time, || {
            let mut out = y.clone();
            gemv(1.0, &a, &x, 0.0, &mut out);
            out.iter().map(|v| v.to_bits()).collect()
        }),
        measure("symv", 2.0 * nf * nf, min_time, || {
            let mut out = y.clone();
            symv(1.0, &sym, &x, 0.0, &mut out);
            out.iter().map(|v| v.to_bits()).collect()
        }),
        measure("dot", 2.0 * nf, min_time, || {
            vec![vecops::dot(&x, &y).to_bits()]
        }),
        measure("hadamard", nf, min_time, || {
            let mut out = y.clone();
            vecops::hadamard_in_place(&x, &mut out);
            out.iter().map(|v| v.to_bits()).collect()
        }),
    ];

    let mut all_identical = true;
    for r in &rows {
        println!(
            "  {:<10} scalar {:>7.3} GF/s   simd {:>7.3} GF/s   speedup {:>5.2}x   bits {}",
            r.name,
            r.scalar_gflops,
            r.simd_gflops,
            r.speedup(),
            if r.bit_identical {
                "identical"
            } else {
                "DIFFER"
            },
        );
        all_identical &= r.bit_identical;
    }
    assert!(
        all_identical,
        "determinism contract violated: scalar and SIMD outputs differ"
    );

    let kernels: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                r#"{{"name":"{}","flops_per_call":{},"scalar_gflops":{:.4},"simd_gflops":{:.4},"speedup":{:.4},"bit_identical":{}}}"#,
                r.name,
                r.flops_per_call,
                r.scalar_gflops,
                r.simd_gflops,
                r.speedup(),
                r.bit_identical,
            )
        })
        .collect();
    let json = format!(
        r#"{{"schema":"slimcodeml.bench.simd.v1","n":{n},"host_backend":"{}","host_lanes":{},"quick":{quick},"kernels":[{}]}}"#,
        host.name(),
        host.lanes(),
        kernels.join(","),
    );
    std::fs::write("BENCH_simd.json", format!("{json}\n")).expect("write BENCH_simd.json");
    println!("wrote BENCH_simd.json");
}
