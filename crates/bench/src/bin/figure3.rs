//! Regenerate Fig. 3: speedup vs number of species on dataset-iv analogs.
//!
//! The paper sub-samples dataset iv (95 species × 39 codons) down to 15
//! species in steps of 10 and plots three speedup series: overall H0,
//! overall H1, and combined H0+H1. More species ⇒ more branches ⇒ the
//! per-branch matrix exponential dominates ⇒ the Eq. 10 optimization
//! matters more, so speedup grows with species count.
//!
//! ```text
//! cargo run --release -p slim-bench --bin figure3 [--quick] [--fresh]
//! ```

use serde_json::Value;
use slim_bench::runs::StoredRun;
use slim_bench::{run_engine, RunBudget};
use slim_core::Backend;
use slim_opt::GradMode;
use slim_sim::subsample_dataset;

struct Point {
    species: usize,
    base: StoredRun,
    slim: StoredRun,
}

impl Point {
    fn to_json_value(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert("species".into(), Value::Number(self.species as f64));
        m.insert("base".into(), self.base.to_json_value());
        m.insert("slim".into(), self.slim.to_json_value());
        Value::Object(m)
    }

    fn from_json_value(v: &Value) -> Option<Point> {
        Some(Point {
            species: v.get("species")?.as_u64()? as usize,
            base: StoredRun::from_json_value(v.get("base")?)?,
            slim: StoredRun::from_json_value(v.get("slim")?)?,
        })
    }
}

fn points_from_json(text: &str) -> Option<Vec<Point>> {
    let root: Value = serde_json::from_str(text).ok()?;
    root.as_array()?
        .iter()
        .map(Point::from_json_value)
        .collect()
}

fn main() {
    let budget = RunBudget::from_args();
    let quick = budget.max_iterations <= RunBudget::quick().max_iterations;
    let species: Vec<usize> = if quick {
        vec![15, 35, 55, 75, 95]
    } else {
        (15..=95).step_by(10).collect()
    };
    let cap = if quick { 2 } else { 3 };
    let path = format!(
        "target/slim-bench-figure3-{}.json",
        if quick { "quick" } else { "full" }
    );

    let fresh = std::env::args().any(|a| a == "--fresh");
    let cached: Option<Vec<Point>> = if fresh {
        None
    } else {
        std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| points_from_json(&text))
    };
    let points: Vec<Point> = if let Some(points) = cached {
        eprintln!("[bench] using cached sweep from {path} (pass --fresh to recompute)");
        points
    } else {
        let mut points = Vec::new();
        for &n in &species {
            eprintln!("[bench] {n} species…");
            let ds = subsample_dataset(n);
            let b = RunBudget {
                max_iterations: cap,
                grad_mode: GradMode::Forward,
            };
            let base = run_engine(&ds, Backend::CodeMlStyle, &b);
            let slim = run_engine(&ds, Backend::Slim, &b);
            points.push(Point {
                species: n,
                base: StoredRun {
                    dataset: format!("iv@{n}"),
                    backend: "CodeML".into(),
                    h0: (&base.h0).into(),
                    h1: (&base.h1).into(),
                },
                slim: StoredRun {
                    dataset: format!("iv@{n}"),
                    backend: "SlimCodeML".into(),
                    h0: (&slim.h0).into(),
                    h1: (&slim.h1).into(),
                },
            });
        }
        let arr = Value::Array(points.iter().map(Point::to_json_value).collect());
        std::fs::write(&path, serde_json::to_string_pretty(&arr).unwrap()).unwrap();
        points
    };

    println!("Figure 3 analog — speedup vs species count (dataset-iv shape, 39 codons)");
    println!();
    println!(
        "{:>8} {:>12} {:>12} {:>14}",
        "species", "overall H0", "overall H1", "combined H0+H1"
    );
    let mut series: Vec<(usize, f64)> = Vec::new();
    for p in &points {
        let s_h0 = p.base.h0.seconds / p.slim.h0.seconds;
        let s_h1 = p.base.h1.seconds / p.slim.h1.seconds;
        let s_c = p.base.total_seconds() / p.slim.total_seconds();
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>14.2}",
            p.species, s_h0, s_h1, s_c
        );
        series.push((p.species, s_c));
    }

    // ASCII rendering of the combined series.
    println!();
    println!("combined speedup (ASCII plot, each column = one species count):");
    let max_s = series.iter().map(|(_, s)| *s).fold(1.0f64, f64::max);
    let rows = 12usize;
    for r in (0..rows).rev() {
        let level = max_s * (r as f64 + 0.5) / rows as f64;
        let mut line = format!("{level:>6.2} |");
        for (_, s) in &series {
            line.push_str(if *s >= level { "   #" } else { "    " });
        }
        println!("{line}");
    }
    let mut axis = String::from("       +");
    let mut labels = String::from("        ");
    for (n, _) in &series {
        axis.push_str("----");
        labels.push_str(&format!("{n:>4}"));
    }
    println!("{axis}");
    println!("{labels}  (species)");
    println!();
    println!("paper: combined speedup rises from ~1.5-2x at 15-25 species toward");
    println!("6.4x at 95 species (amplified there by iteration-count divergence).");
}
