//! Supplementary experiment: where does each CPV strategy win as the
//! alignment grows?
//!
//! The paper's dataset ii (5004 codons) is bound by per-site CPV products
//! (§III-B). This sweep measures one full likelihood evaluation per CPV
//! strategy across alignment lengths on a fixed 8-species tree, exposing
//! the crossovers between per-site, bundled-BLAS-3 and Eq. 12 symmetric
//! application — evidence for the paper's "bundle operations" rule of
//! thumb (§V-C).
//!
//! ```text
//! cargo run --release -p slim-bench --bin cpv_crossover [--quick]
//! ```

use slim_bio::{FreqModel, GeneticCode};
use slim_expm::CpvStrategy;
use slim_lik::{log_likelihood, EngineConfig, LikelihoodProblem};
use slim_model::{BranchSiteModel, Hypothesis};
use slim_sim::{simulate_alignment, yule_tree};
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let lengths: &[usize] = if quick {
        &[50, 400]
    } else {
        &[50, 200, 800, 3200]
    };
    let reps = if quick { 2 } else { 5 };

    let tree = yule_tree(8, 0.15, 77);
    let model = BranchSiteModel::default_start(Hypothesis::H1);
    let pi = vec![1.0 / 61.0; 61];
    let code = GeneticCode::universal();

    println!("CPV-strategy sweep on an 8-species tree; ms per likelihood evaluation");
    println!();
    println!(
        "{:>8} {:>9} | {:>12} {:>12} {:>12} {:>12}",
        "codons", "patterns", "naive", "gemv", "bundled", "eq12-symv"
    );
    for &len in lengths {
        let aln = simulate_alignment(&tree, &model, &pi, len, 3);
        let problem = LikelihoodProblem::new(&tree, &aln, &code, FreqModel::F3x4).unwrap();
        let bl = tree.branch_lengths();
        let mut row = format!("{:>8} {:>9} |", len, problem.n_patterns());
        for cpv in [
            CpvStrategy::NaivePerSite,
            CpvStrategy::PerSiteGemv,
            CpvStrategy::BundledGemm,
            CpvStrategy::SymmetricSymv,
        ] {
            let cfg = EngineConfig::slim().with_cpv(cpv);
            let _ = log_likelihood(&problem, &cfg, &model, &bl).unwrap(); // warm
            let start = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(log_likelihood(&problem, &cfg, &model, &bl).unwrap());
            }
            let ms = start.elapsed().as_secs_f64() / reps as f64 * 1e3;
            row.push_str(&format!(" {ms:>12.2}"));
        }
        println!("{row}");
    }
    println!();
    println!("expected shape: all strategies tie at short lengths (expm dominates);");
    println!("bundled BLAS-3 pulls ahead as patterns grow — the paper's SS III-B point.");
}
