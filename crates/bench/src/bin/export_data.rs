//! Export the simulated Table II dataset analogs as FASTA + Newick files
//! under `data/`, so the `slimcodeml` CLI can be exercised on them:
//!
//! ```text
//! cargo run --release -p slim-bench --bin export_data
//! cargo run --release -p slim-cli --bin slimcodeml -- \
//!     --seq data/primate_like.fasta --tree data/primate_like.nwk
//! ```

use slim_bio::write_newick;
use slim_sim::{dataset, DatasetId};

fn main() {
    std::fs::create_dir_all("data").expect("create data/");
    let ds = dataset(DatasetId::I);
    std::fs::write("data/primate_like.fasta", ds.alignment.to_fasta()).expect("write fasta");
    std::fs::write(
        "data/primate_like.nwk",
        format!("{}\n", write_newick(&ds.tree)),
    )
    .expect("write newick");
    println!(
        "exported dataset i analog: {} species × {} codons → data/primate_like.*",
        ds.alignment.n_sequences(),
        ds.alignment.n_codons()
    );
}
