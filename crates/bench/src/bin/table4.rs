//! Regenerate Table IV: the three speedup flavors of §IV-2.
//!
//! * overall speedup `S_o = S_t1 / S_t2` (total runtime ratio) per
//!   hypothesis,
//! * combined speedup `S_c` over H0+H1,
//! * per-iteration speedups `S_i` (runtime normalized by iterations).
//!
//! ```text
//! cargo run --release -p slim-bench --bin table4 [--quick] [--fresh]
//! ```

use slim_bench::runs::{load_or_run_all, pair_for, StoredRun};
use slim_bench::RunBudget;

fn row(label: &str, f: impl Fn(&StoredRun, &StoredRun) -> f64, runs: &[StoredRun]) {
    print!("{label:<34}");
    for ds in ["i", "ii", "iii", "iv"] {
        let (base, slim) = pair_for(runs, ds);
        print!(" {:>7.1}", f(base, slim));
    }
    println!();
}

fn main() {
    let budget = RunBudget::from_args();
    let runs = load_or_run_all(&budget);

    println!("Table IV analog — speedups of SlimCodeML over CodeML-style engine");
    println!();
    println!(
        "{:<34} {:>7} {:>7} {:>7} {:>7}",
        "Dataset", "i", "ii", "iii", "iv"
    );
    println!("{}", "-".repeat(66));
    row(
        "Overall speedup H0",
        |b, s| b.h0.seconds / s.h0.seconds,
        &runs,
    );
    row(
        "Overall speedup H1",
        |b, s| b.h1.seconds / s.h1.seconds,
        &runs,
    );
    row(
        "Combined speedup H0+H1",
        |b, s| b.total_seconds() / s.total_seconds(),
        &runs,
    );
    row(
        "Per-iteration speedup H0",
        |b, s| b.h0.seconds_per_iteration() / s.h0.seconds_per_iteration(),
        &runs,
    );
    row(
        "Per-iteration speedup H1",
        |b, s| b.h1.seconds_per_iteration() / s.h1.seconds_per_iteration(),
        &runs,
    );
    row(
        "Per-iteration speedup H0+H1",
        |b, s| {
            (b.total_seconds() / b.total_iterations().max(1) as f64)
                / (s.total_seconds() / s.total_iterations().max(1) as f64)
        },
        &runs,
    );
    println!();
    println!("paper values:");
    println!("  Overall H0:        1.9  2.3  2.6  9.4");
    println!("  Overall H1:        2.0  1.6  2.4  4.4");
    println!("  Combined H0+H1:    2.0  1.9  2.5  6.4");
    println!("  Per-iter H0:       2.1  1.8  2.7  3.3");
    println!("  Per-iter H1:       1.9  1.7  2.5  3.0");
    println!("  Per-iter H0+H1:    2.0  1.7  2.6  3.1");
    println!();
    println!("notes: with identical iteration caps for both engines, the overall and");
    println!("per-iteration rows coincide by construction; the paper's >4x overall");
    println!("speedups on dataset iv come from CodeML needing ~2x more iterations to");
    println!("converge there, an effect of run-to-run FP divergence that capped runs");
    println!("cannot express.");
}
