//! Intra-gene scaling of the `slim-par` likelihood engine: evaluate the
//! branch-site likelihood of all four Table II dataset analogs at
//! 1/2/4/8 threads and emit `BENCH_par.json` with wall time, per-phase
//! breakdown, and speedup per thread count. Each dataset also gets a
//! short cached H1 fit whose optimizer-iteration and eigen-cache
//! counters (read back through the `slim-obs` registry) land in the
//! JSON, and the final registry snapshot is written to
//! `BENCH_metrics.json`.
//!
//! The sweep also cross-checks the determinism contract: every thread
//! count must produce the *bit-identical* log-likelihood (threads only
//! move fixed pattern blocks between workers; the reduction is serial and
//! compensated). The report records `available_cores` — on machines with
//! fewer cores than threads the extra threads time-slice one core, so
//! measured speedups above that count are meaningless and honest numbers
//! require reading that field.
//!
//! ```text
//! cargo run --release -p slim-bench --bin par_scaling [--quick]
//! ```

use slim_bio::FreqModel;
use slim_core::{Analysis, AnalysisOptions, Backend, Hypothesis};
use slim_lik::{site_class_log_likelihoods_timed, EngineConfig, LikelihoodProblem, PhaseTiming};
use slim_sim::{dataset, DatasetId};
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A short cached H1 fit; returns the JSON fragment with optimizer and
/// eigen-cache counters, read back as `slim-obs` registry deltas (the
/// bench is single-threaded, so deltas are exact).
fn fit_counters(d: &slim_sim::SimulatedDataset, quick: bool) -> String {
    let before = slim_obs::snapshot();
    let started = Instant::now();
    let options = AnalysisOptions {
        backend: Backend::SlimPlus,
        max_iterations: if quick { 2 } else { 6 },
        seed: 11,
        ..AnalysisOptions::default()
    };
    let analysis =
        Analysis::new(&d.tree, &d.alignment, options).expect("preset dataset is well-formed");
    let fit = analysis.fit(Hypothesis::H1).expect("H1 fit");
    let wall = started.elapsed().as_secs_f64();
    let after = slim_obs::snapshot();
    let delta = |name: &str| {
        after
            .counter(name)
            .unwrap_or(0)
            .saturating_sub(before.counter(name).unwrap_or(0))
    };
    let (hits, misses) = analysis.eigen_cache_stats().unwrap_or((0, 0));
    let rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    assert!(fit.lnl.is_finite(), "fit must produce a finite lnL");
    format!(
        r#"{{"backend":"slim+","wall_seconds":{wall:.6},"iterations":{},"f_evals":{},"grad_evals":{},"line_search_steps":{},"cache_hits":{hits},"cache_misses":{misses},"cache_hit_rate":{rate:.4}}}"#,
        delta("opt.iterations"),
        delta("opt.f_evals"),
        delta("opt.grad_evals"),
        delta("opt.line_search_steps"),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };
    // Collect registry metrics for the whole sweep; handles register
    // lazily at first recording, so no eager registration is needed.
    slim_obs::set_enabled(true);
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    println!(
        "par scaling — slim-par engine, {reps} rep{}/point, {cores} core{} available{}",
        if reps == 1 { "" } else { "s" },
        if cores == 1 { "" } else { "s" },
        if quick { ", quick" } else { "" }
    );
    println!(
        "{:>8} {:>8} {:>12} {:>9}  {:>9} {:>9} {:>9} {:>9}",
        "dataset", "threads", "wall (s)", "speedup", "eigen", "expm", "prune", "reduce"
    );

    let mut dataset_rows = Vec::new();
    for id in DatasetId::ALL {
        let d = dataset(id);
        let problem = LikelihoodProblem::new(
            &d.tree,
            &d.alignment,
            &slim_bio::GeneticCode::universal(),
            FreqModel::F3x4,
        )
        .expect("preset dataset is well-formed");
        let bl = d.tree.branch_lengths();
        let model = d.true_model;
        let (species, codons) = id.shape();

        let mut rows = Vec::new();
        let mut baseline_secs = 0.0f64;
        let mut baseline_bits: Option<u64> = None;
        for &threads in &THREAD_COUNTS {
            let config = EngineConfig::slim().with_threads(threads);
            // Warmup: touch every allocation and code path once.
            let mut warm = PhaseTiming::default();
            let value = site_class_log_likelihoods_timed(&problem, &config, &model, &bl, &mut warm)
                .expect("likelihood evaluation");
            match baseline_bits {
                None => baseline_bits = Some(value.lnl.to_bits()),
                Some(bits) => assert_eq!(
                    bits,
                    value.lnl.to_bits(),
                    "determinism violated on dataset {}: {threads}-thread lnL differs from 1-thread",
                    id.label()
                ),
            }

            // Best-of-reps wall time with per-phase breakdown.
            let mut best = f64::INFINITY;
            let mut best_timing = PhaseTiming::default();
            for _ in 0..reps {
                let mut timing = PhaseTiming::default();
                let started = Instant::now();
                let v =
                    site_class_log_likelihoods_timed(&problem, &config, &model, &bl, &mut timing)
                        .expect("likelihood evaluation");
                let wall = started.elapsed().as_secs_f64();
                assert_eq!(
                    v.lnl.to_bits(),
                    baseline_bits.expect("baseline recorded"),
                    "determinism violated within the timing loop"
                );
                if wall < best {
                    best = wall;
                    best_timing = timing;
                }
            }
            if threads == 1 {
                baseline_secs = best;
            }
            let speedup = baseline_secs / best;
            println!(
                "{:>8} {:>8} {:>12.4} {:>9.2}  {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
                id.label(),
                threads,
                best,
                speedup,
                best_timing.eigen.as_secs_f64(),
                best_timing.expm.as_secs_f64(),
                best_timing.pruning.as_secs_f64(),
                best_timing.reduction.as_secs_f64(),
            );
            rows.push(format!(
                r#"{{"threads":{threads},"wall_seconds":{best:.6},"speedup":{speedup:.4},"eigen_seconds":{:.6},"expm_seconds":{:.6},"pruning_seconds":{:.6},"reduction_seconds":{:.6}}}"#,
                best_timing.eigen.as_secs_f64(),
                best_timing.expm.as_secs_f64(),
                best_timing.pruning.as_secs_f64(),
                best_timing.reduction.as_secs_f64(),
            ));
        }
        let fit = fit_counters(&d, quick);
        dataset_rows.push(format!(
            r#"{{"dataset":"{}","species":{species},"codons":{codons},"patterns":{},"lnl_bits_identical":true,"fit":{fit},"runs":[{}]}}"#,
            id.label(),
            problem.n_patterns(),
            rows.join(",")
        ));
    }

    let json = format!(
        r#"{{"bench":"par_scaling","engine":"slim-par","available_cores":{cores},"reps":{reps},"quick":{quick},"datasets":[{}]}}
"#,
        dataset_rows.join(",")
    );
    std::fs::write("BENCH_par.json", &json).expect("cannot write BENCH_par.json");
    std::fs::write("BENCH_metrics.json", slim_obs::snapshot().to_json())
        .expect("cannot write BENCH_metrics.json");
    println!("\nwrote BENCH_par.json, BENCH_metrics.json");
}
