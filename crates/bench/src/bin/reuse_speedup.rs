//! Cross-evaluation partial-likelihood reuse: run the full H0+H1
//! positive-selection test on Table II dataset analogs with reuse on and
//! off and emit `BENCH_reuse.json` with wall times, speedups, and the
//! reuse counters (`lik.reuse.*`, read back as `slim-obs` registry
//! deltas).
//!
//! The bench also enforces the contract the speedup rests on: with reuse
//! the optimizer walks the *bit-identical* trajectory, so final H0 and
//! H1 log-likelihoods, iteration counts, and evaluation counts must all
//! match the reuse-off run exactly — any divergence aborts the bench.
//!
//! ```text
//! cargo run --release -p slim-bench --bin reuse_speedup [--quick]
//! ```

use slim_core::{Analysis, AnalysisOptions, Backend, TestResult};
use slim_sim::{dataset, DatasetId};
use std::time::Instant;

/// One timed H0+H1 test with explicit reuse setting; returns the result,
/// wall seconds, and the `lik.reuse.*` counter deltas as a JSON object.
fn run(d: &slim_sim::SimulatedDataset, quick: bool, reuse: bool) -> (TestResult, f64, String) {
    let before = slim_obs::snapshot();
    let options = AnalysisOptions {
        backend: Backend::SlimPlus,
        max_iterations: if quick { 4 } else { 30 },
        seed: 17,
        reuse: Some(reuse),
        ..AnalysisOptions::default()
    };
    let analysis =
        Analysis::new(&d.tree, &d.alignment, options).expect("preset dataset is well-formed");
    let started = Instant::now();
    let result = analysis
        .test_positive_selection()
        .expect("H0+H1 test on preset dataset");
    let wall = started.elapsed().as_secs_f64();
    let after = slim_obs::snapshot();
    let delta = |name: &str| {
        after
            .counter(name)
            .unwrap_or(0)
            .saturating_sub(before.counter(name).unwrap_or(0))
    };
    let reused = delta("lik.reuse.units_reused");
    let recomputed = delta("lik.reuse.units_recomputed");
    let hit_rate = if reused + recomputed > 0 {
        reused as f64 / (reused + recomputed) as f64
    } else {
        0.0
    };
    let counters = format!(
        r#"{{"evaluations":{},"full_invalidations":{},"dirty_branches":{},"units_reused":{reused},"units_recomputed":{recomputed},"hit_rate":{hit_rate:.4},"hint_violations":{}}}"#,
        delta("lik.reuse.evaluations"),
        delta("lik.reuse.full_invalidations"),
        delta("lik.reuse.dirty_branches"),
        delta("lik.reuse.hint_violations"),
    );
    (result, wall, counters)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Datasets i (long alignment, shallow 12-branch tree) and iii (short
    // alignment, deep 48-branch tree) stress the two ends of the reuse
    // trade-off: per-unit CPV work vs how much of the tree a dirty
    // root-path touches. Quick mode keeps iii — the shape the
    // optimization targets (single-branch probes prune O(depth) of a
    // deep tree) and the headline ≥2× number.
    let ids: &[DatasetId] = if quick {
        &[DatasetId::III]
    } else {
        &[DatasetId::I, DatasetId::III]
    };
    slim_obs::set_enabled(true);

    println!(
        "reuse speedup — slim+ backend, full H0+H1 test per point{}",
        if quick { ", quick" } else { "" }
    );
    println!(
        "{:>8} {:>12} {:>12} {:>9} {:>10} {:>10}",
        "dataset", "off (s)", "on (s)", "speedup", "hit_rate", "f_evals"
    );

    let mut rows = Vec::new();
    let mut worst = f64::INFINITY;
    let mut best = 0.0f64;
    for &id in ids {
        let d = dataset(id);
        // Order: reuse-off first so its caches can't warm the reuse run.
        let (off, off_secs, _) = run(&d, quick, false);
        let (on, on_secs, counters) = run(&d, quick, true);

        // Bit-identical trajectory: same evaluations, same optimum.
        for (name, a, b) in [
            ("H0 lnL", off.h0.lnl, on.h0.lnl),
            ("H1 lnL", off.h1.lnl, on.h1.lnl),
            ("LRT stat", off.lrt.statistic, on.lrt.statistic),
        ] {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{name} differs between reuse off/on on dataset {}: {a:?} vs {b:?}",
                id.label()
            );
        }
        for (name, a, b) in [
            ("H0 f_evals", off.h0.f_evals, on.h0.f_evals),
            ("H1 f_evals", off.h1.f_evals, on.h1.f_evals),
            ("H0 iterations", off.h0.iterations, on.h0.iterations),
            ("H1 iterations", off.h1.iterations, on.h1.iterations),
        ] {
            assert_eq!(
                a,
                b,
                "{name} differs between reuse off/on on dataset {}",
                id.label()
            );
        }
        assert_eq!(
            off.site_posteriors.len(),
            on.site_posteriors.len(),
            "posterior length differs on dataset {}",
            id.label()
        );
        for (i, (a, b)) in off
            .site_posteriors
            .iter()
            .zip(&on.site_posteriors)
            .enumerate()
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "site posterior {i} differs between reuse off/on on dataset {}",
                id.label()
            );
        }

        let speedup = off_secs / on_secs;
        worst = worst.min(speedup);
        best = best.max(speedup);
        let (species, codons) = id.shape();
        let hit_rate: f64 = counters
            .split("\"hit_rate\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.0);
        println!(
            "{:>8} {:>12.4} {:>12.4} {:>8.2}x {:>10.4} {:>10}",
            id.label(),
            off_secs,
            on_secs,
            speedup,
            hit_rate,
            off.h0.f_evals + off.h1.f_evals,
        );
        rows.push(format!(
            r#"{{"dataset":"{}","species":{species},"codons":{codons},"lnl0":{:.6},"lnl1":{:.6},"f_evals":{},"iterations":{},"lnl_bits_identical":true,"off_seconds":{off_secs:.6},"on_seconds":{on_secs:.6},"speedup":{speedup:.4},"reuse":{counters}}}"#,
            id.label(),
            on.h0.lnl,
            on.h1.lnl,
            off.h0.f_evals + off.h1.f_evals,
            off.h0.iterations + off.h1.iterations,
        ));
    }

    let json = format!(
        r#"{{"bench":"reuse_speedup","backend":"slim+","quick":{quick},"min_speedup":{worst:.4},"max_speedup":{best:.4},"datasets":[{}]}}
"#,
        rows.join(",")
    );
    std::fs::write("BENCH_reuse.json", &json).expect("cannot write BENCH_reuse.json");
    println!("\nspeedup range {worst:.2}x–{best:.2}x — wrote BENCH_reuse.json");
}
