//! Batch-subsystem throughput: generate a 16-gene manifest with
//! `slim-sim`, run it through `slim-batch` at 1/2/4/8 workers, and emit
//! `BENCH_batch.json` with jobs/sec and speedup per worker count —
//! seeding the perf trajectory for the orchestration layer.
//!
//! The sweep also cross-checks the determinism contract: every worker
//! count must produce a byte-identical TSV report.
//!
//! ```text
//! cargo run --release -p slim-bench --bin batch_throughput [--quick]
//! ```

use slim_batch::{run_batch, RunConfig};
use slim_core::BranchSiteModel;
use slim_sim::{simulate_alignment, yule_tree};
use std::path::{Path, PathBuf};
use std::time::Instant;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const N_GENES: usize = 16;

fn generating_model() -> BranchSiteModel {
    BranchSiteModel {
        kappa: 2.0,
        omega0: 0.2,
        omega2: 3.0,
        p0: 0.7,
        p1: 0.2,
    }
}

/// Write `N_GENES` simulated gene families plus a manifest testing one
/// terminal branch each — a 16-job manifest, the acceptance workload.
fn generate_workspace(dir: &Path, n_codons: usize, max_iterations: usize) -> PathBuf {
    let code = slim_bio::GeneticCode::universal();
    let pi = vec![1.0 / code.n_sense() as f64; code.n_sense()];
    let model = generating_model();
    let mut genes = Vec::with_capacity(N_GENES);
    for i in 0..N_GENES {
        let seed = 40_000 + i as u64;
        let tree = yule_tree(4, 0.15, seed);
        let aln = simulate_alignment(&tree, &model, &pi, n_codons, seed ^ 0x5111);
        std::fs::write(
            dir.join(format!("gene{i}.nwk")),
            slim_bio::write_newick(&tree),
        )
        .unwrap();
        std::fs::write(dir.join(format!("gene{i}.fasta")), aln.to_fasta()).unwrap();
        genes.push(format!(
            r#"{{"id":"gene{i}","alignment":"gene{i}.fasta","tree":"gene{i}.nwk","branches":["S1"],"backend":"slim","max_iterations":{max_iterations},"seed":{seed}}}"#
        ));
    }
    let manifest = dir.join("manifest.json");
    std::fs::write(
        &manifest,
        format!(r#"{{"version":1,"genes":[{}]}}"#, genes.join(",")),
    )
    .unwrap();
    manifest
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_codons, max_iterations) = if quick { (20, 5) } else { (60, 25) };

    let dir = std::env::temp_dir().join(format!("slim_batch_throughput_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = generate_workspace(&dir, n_codons, max_iterations);

    println!(
        "batch throughput — {N_GENES} jobs ({n_codons} codons, {max_iterations} iters/hypothesis{})",
        if quick { ", quick" } else { "" }
    );
    println!(
        "{:>8} {:>12} {:>10} {:>9}",
        "workers", "wall (s)", "jobs/sec", "speedup"
    );

    let mut rows = Vec::new();
    let mut baseline_tsv: Option<String> = None;
    let mut baseline_secs = 0.0f64;
    for &workers in &WORKER_COUNTS {
        let config = RunConfig {
            workers,
            journal_path: dir.join(format!("w{workers}.journal.jsonl")),
            ..RunConfig::default()
        };
        let started = Instant::now();
        let report = run_batch(&manifest, &config).expect("batch run failed");
        let wall = started.elapsed().as_secs_f64();
        assert_eq!(report.summary.done, N_GENES, "all jobs must fit");

        let tsv = report.to_tsv();
        match &baseline_tsv {
            None => {
                baseline_tsv = Some(tsv);
                baseline_secs = wall;
            }
            Some(base) => assert_eq!(
                base, &tsv,
                "determinism violated: {workers}-worker TSV differs from 1-worker TSV"
            ),
        }

        let jobs_per_sec = N_GENES as f64 / wall;
        let speedup = baseline_secs / wall;
        println!("{workers:>8} {wall:>12.3} {jobs_per_sec:>10.2} {speedup:>9.2}");
        rows.push(format!(
            r#"{{"workers":{workers},"wall_seconds":{wall:.4},"jobs_per_sec":{jobs_per_sec:.4},"speedup":{speedup:.4}}}"#
        ));
    }

    let json = format!(
        r#"{{"bench":"batch_throughput","jobs":{N_GENES},"codons":{n_codons},"max_iterations":{max_iterations},"quick":{quick},"runs":[{}]}}
"#,
        rows.join(",")
    );
    std::fs::write("BENCH_batch.json", &json).expect("cannot write BENCH_batch.json");
    println!("\nwrote BENCH_batch.json");
    std::fs::remove_dir_all(&dir).ok();
}
