//! Supplementary experiment: organic iteration-count divergence.
//!
//! The paper's Table III shows CodeML and SlimCodeML converging after
//! *different* iteration counts (dataset iv: 1039 vs 509) despite
//! identical seeds, because their different numerics produce rounding-
//! level differences in intermediate results that compound over the
//! optimization ("this sensitivity can also be observed by distinct
//! seeds", §IV). This binary reproduces the effect on the dataset-i
//! analog: both engines run to convergence (no caps) with identical
//! starts; the Slim engine additionally uses the bisection/inverse-
//! iteration eigensolver (the `dsyevr` MRRR stand-in), so its
//! eigendecompositions differ from the baseline's QL at the ~1e-12 level
//! — exactly the kind of benign perturbation that splits trajectories.
//!
//! ```text
//! cargo run --release -p slim-bench --bin iteration_divergence [--quick]
//! ```

use slim_bench::{run_engine, RunBudget};
use slim_core::{Analysis, AnalysisOptions, Backend, Hypothesis};
use slim_linalg::EigenMethod;
use slim_opt::GradMode;
use slim_sim::{dataset, DatasetId};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cap = if quick { 40 } else { 200 };
    let ds = dataset(DatasetId::I);

    println!("Iteration-divergence experiment on the dataset-i analog (convergence-based stop, cap {cap})");
    println!();

    // Baseline: CodeML profile with QL eigensolver.
    let budget = RunBudget {
        max_iterations: cap,
        grad_mode: GradMode::Forward,
    };
    let base = run_engine(&ds, Backend::CodeMlStyle, &budget);
    println!(
        "CodeML-style (QL eigen):        H0 {:>4} iters (lnL {:.6}), H1 {:>4} iters (lnL {:.6})",
        base.h0.iterations, base.h0.lnl, base.h1.iterations, base.h1.lnl
    );

    // Slim with the MRRR-stand-in eigensolver: same math, different
    // rounding.
    let mut options = AnalysisOptions {
        backend: Backend::Slim,
        max_iterations: cap,
        grad_mode: GradMode::Forward,
        seed: 1,
        ..Default::default()
    };
    // Route the Slim engine through bisection+inverse iteration by
    // building the analysis by hand (Backend::Slim defaults to QL).
    options.backend = Backend::Slim;
    let analysis = Analysis::new(&ds.tree, &ds.alignment, options).expect("consistent");
    // The engine config lives inside Backend; to vary the eigensolver we
    // evaluate through the lik-level API instead.
    let _ = analysis;
    let slim_h0 = fit_with_eigen(&ds, Hypothesis::H0, cap, EigenMethod::BisectionInverse);
    let slim_h1 = fit_with_eigen(&ds, Hypothesis::H1, cap, EigenMethod::BisectionInverse);
    println!(
        "SlimCodeML (bisection eigen):   H0 {:>4} iters (lnL {:.6}), H1 {:>4} iters (lnL {:.6})",
        slim_h0.0, slim_h0.1, slim_h1.0, slim_h1.1
    );

    println!();
    let d_h0 = ((base.h0.lnl - slim_h0.1) / base.h0.lnl).abs();
    let d_h1 = ((base.h1.lnl - slim_h1.1) / base.h1.lnl).abs();
    println!("relative lnL differences: D(H0) = {d_h0:.2e}, D(H1) = {d_h1:.2e}");
    println!();
    println!("expected shape: iteration counts differ between the engines while both");
    println!("log-likelihoods agree to ~1e-8 relative or better — the paper's Table III");
    println!("phenomenon (e.g. 80 vs 74 iterations on its dataset ii).");
}

/// Fit one hypothesis with an explicit eigensolver choice through the
/// likelihood-level API (bypassing the fixed Backend presets).
fn fit_with_eigen(
    ds: &slim_sim::SimulatedDataset,
    hypothesis: Hypothesis,
    cap: usize,
    eigen: EigenMethod,
) -> (usize, f64) {
    use slim_bio::{FreqModel, GeneticCode};
    use slim_lik::{log_likelihood, EngineConfig, LikelihoodProblem};
    use slim_model::BranchSiteModel;
    use slim_opt::{minimize, BfgsOptions, Block, BlockTransform};

    let code = GeneticCode::universal();
    let problem = LikelihoodProblem::new(&ds.tree, &ds.alignment, &code, FreqModel::F3x4)
        .expect("consistent inputs");
    let config = EngineConfig::slim().with_eigen(eigen);

    let transform = BlockTransform::new(vec![
        Block::LowerBounded { lo: 1e-3 },
        Block::BoxBounded {
            lo: 1e-6,
            hi: 1.0 - 1e-6,
        },
        match hypothesis {
            Hypothesis::H0 => Block::Fixed { value: 1.0 },
            Hypothesis::H1 => Block::LowerBounded { lo: 1.0 },
        },
        Block::SimplexWithRest { dim: 2 },
        Block::BoxBoundedVec {
            lo: 1e-6,
            hi: 50.0,
            count: problem.n_branches(),
        },
    ]);

    // Same seeded start as Analysis::start_vector (seed 1, jitter 0.05).
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(1);
    let mut jitter = |v: f64| v * (1.0 + 0.05 * (rng.gen::<f64>() - 0.5) * 2.0);
    let m = BranchSiteModel::default_start(hypothesis);
    let mut x0 = vec![
        jitter(m.kappa),
        jitter(m.omega0).clamp(2e-6, 0.5),
        match hypothesis {
            Hypothesis::H0 => 1.0,
            Hypothesis::H1 => 1.0 + jitter(m.omega2 - 1.0).max(1e-3),
        },
        jitter(m.p0).clamp(0.05, 0.9),
        jitter(m.p1).clamp(0.05, 0.9),
    ];
    if x0[3] + x0[4] > 0.95 {
        let s = x0[3] + x0[4];
        x0[3] *= 0.9 / s;
        x0[4] *= 0.9 / s;
    }
    // Mirror Analysis::new + start_vector exactly (pre-clamp, jitter,
    // post-clamp) so both engines start from the identical point.
    for b in ds.tree.branch_lengths() {
        let pre = b.clamp(1e-5, 5.0);
        x0.push(jitter(pre).clamp(2e-6, 25.0));
    }
    let z0 = transform.to_unconstrained(&x0);

    let objective = |z: &[f64]| -> f64 {
        let x = transform.to_constrained(z);
        let model = BranchSiteModel {
            kappa: x[0],
            omega0: x[1],
            omega2: x[2],
            p0: x[3],
            p1: x[4],
        };
        match log_likelihood(&problem, &config, &model, &x[5..]) {
            Ok(lnl) if lnl.is_finite() => -lnl,
            _ => f64::INFINITY,
        }
    };
    let result = minimize(
        objective,
        &z0,
        &BfgsOptions {
            max_iterations: cap,
            grad_mode: GradMode::Forward,
            grad_tol: 1e-6,
            f_tol: 1e-10,
            ..Default::default()
        },
    );
    (result.iterations, -result.f)
}
