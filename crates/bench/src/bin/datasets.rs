//! Regenerate Table II: the four evaluation datasets.
//!
//! The paper's datasets are Ensembl/Selectome alignments identified by
//! their (species × codons) shape; this reproduction simulates analogs of
//! identical shape (DESIGN.md §2). This binary prints the Table II analog
//! with the simulated datasets' actual statistics.

use slim_bio::{write_newick, GeneticCode, SitePatterns};
use slim_sim::{dataset, DatasetId};

fn main() {
    println!("Table II analog — simulated stand-ins for the Ensembl/Selectome datasets");
    println!();
    println!(
        "{:<4} {:<42} {:>8} {:>9} {:>10} {:>10} {:>12}",
        "No.", "Simulated analog of", "species", "codons", "patterns", "branches", "tree length"
    );
    let paper_names = [
        "ENSGT00390000016702.Primates.1.2",
        "ENSGT00580000081590.Primates.1.2",
        "ENSGT00550000073950.Euteleostomi.7.2",
        "ENSGT00530000063518.Primates.1.1",
    ];
    let code = GeneticCode::universal();
    for (id, name) in DatasetId::ALL.into_iter().zip(paper_names) {
        let ds = dataset(id);
        let patterns = SitePatterns::from_alignment(&ds.alignment, &code).expect("valid dataset");
        println!(
            "{:<4} {:<42} {:>8} {:>9} {:>10} {:>10} {:>12.3}",
            id.label(),
            name,
            ds.alignment.n_sequences(),
            ds.alignment.n_codons(),
            patterns.n_patterns(),
            ds.tree.n_branches(),
            ds.tree.total_length(),
        );
    }
    println!();
    println!("generating model: kappa = 2.5, w0 = 0.15, w2 = 3.0, p0 = 0.65, p1 = 0.25");
    println!();
    println!(
        "dataset i tree (Newick): {}",
        write_newick(&dataset(DatasetId::I).tree)
    );
}
