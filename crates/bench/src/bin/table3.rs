//! Regenerate Table III: runtimes and iteration counts, H0+H1 combined,
//! for CodeML-style vs Slim engines on datasets i–iv.
//!
//! ```text
//! cargo run --release -p slim-bench --bin table3 [--quick] [--fresh]
//! ```
//!
//! Absolute seconds are not comparable to the paper's 2012 testbed (and
//! iteration caps keep dataset iv tractable — the paper's CodeML run took
//! 14.7 hours); the comparison of interest is *between the two columns*.

use slim_bench::runs::{load_or_run_all, pair_for};
use slim_bench::RunBudget;

fn main() {
    let budget = RunBudget::from_args();
    let runs = load_or_run_all(&budget);

    println!("Table III analog — runtimes and iterations (H0+H1 combined)");
    println!();
    println!(
        "{:<8} | {:>14} {:>11} | {:>14} {:>11}",
        "", "CodeML", "", "SlimCodeML", ""
    );
    println!(
        "{:<8} | {:>14} {:>11} | {:>14} {:>11}",
        "No.", "Runtime [s]", "Iterations", "Runtime [s]", "Iterations"
    );
    println!("{}", "-".repeat(68));
    for label in ["i", "ii", "iii", "iv"] {
        let (base, slim) = pair_for(&runs, label);
        println!(
            "{:<8} | {:>14.2} {:>11} | {:>14.2} {:>11}",
            label,
            base.total_seconds(),
            base.total_iterations(),
            slim.total_seconds(),
            slim.total_iterations(),
        );
    }
    println!();
    println!("paper (Xeon W3540, GotoBLAS2):");
    println!("  i:   85 s /108 it   vs  43 s /108 it");
    println!("  ii:  121 s / 80 it  vs  65 s / 74 it");
    println!("  iii: 1010 s /241 it vs  407 s /252 it");
    println!("  iv:  52822 s /1039 it vs 8298 s /509 it");
}
