//! # slim-bench
//!
//! The experiment harness reproducing every table and figure of the
//! paper's evaluation (§IV), plus Criterion microbenchmarks of the
//! individual optimizations.
//!
//! ## Table/figure regeneration binaries
//!
//! | paper artifact | command |
//! |---|---|
//! | Table II (datasets) | `cargo run --release -p slim-bench --bin datasets` |
//! | §IV-1 accuracy (relative lnL difference D) | `cargo run --release -p slim-bench --bin accuracy` |
//! | Table III (runtimes & iterations) | `cargo run --release -p slim-bench --bin table3` |
//! | Table IV (speedups) | `cargo run --release -p slim-bench --bin table4` |
//! | Fig. 3 (speedup vs species) | `cargo run --release -p slim-bench --bin figure3` |
//! | ablations (Eq9/Eq10, CPV strategies, eigensolvers, cache) | `cargo run --release -p slim-bench --bin ablation` |
//!
//! Binaries accept `--quick` (reduced iteration caps / species grids) so
//! the full suite completes on a laptop; the shapes of the results —
//! which engine wins, how speedup grows with species count — are
//! preserved. Absolute runtimes are *not* expected to match the paper's
//! 2012 Xeon/GotoBLAS testbed (see EXPERIMENTS.md).
//!
//! ## Criterion microbenches
//!
//! `cargo bench -p slim-bench` measures: `kernels` (naive vs blocked
//! gemm, syrk), `eigen` (QL vs bisection vs Jacobi at n = 61), `expm`
//! (Eq. 9 naive / Eq. 9 gemm / Eq. 10 syrk / Taylor oracle), `cpv` (the
//! four §III-B application strategies), `pruning` (one likelihood
//! evaluation per backend per dataset shape), `end_to_end` (one BFGS
//! iteration per backend).

pub mod runs;

use slim_core::{Analysis, AnalysisOptions, Backend, Fit, Hypothesis};
use slim_opt::GradMode;
use slim_sim::SimulatedDataset;
use std::time::Duration;

/// Iteration caps used by the table binaries. The paper lets CodeML run
/// to convergence (its Table III iteration counts are 80–1039); this
/// reproduction caps iterations to keep the suite tractable and reports
/// per-iteration speedups, which are cap-independent.
#[derive(Debug, Clone, Copy)]
pub struct RunBudget {
    /// BFGS iteration cap per hypothesis.
    pub max_iterations: usize,
    /// Finite-difference flavor (Forward halves evaluation counts).
    pub grad_mode: GradMode,
}

impl RunBudget {
    /// Budget for the full (default) profile.
    pub fn full() -> RunBudget {
        RunBudget {
            max_iterations: 50,
            grad_mode: GradMode::Forward,
        }
    }

    /// Budget for `--quick` runs.
    pub fn quick() -> RunBudget {
        RunBudget {
            max_iterations: 8,
            grad_mode: GradMode::Forward,
        }
    }

    /// Parse from argv: `--quick` selects the quick budget.
    pub fn from_args() -> RunBudget {
        if std::env::args().any(|a| a == "--quick") {
            RunBudget::quick()
        } else {
            RunBudget::full()
        }
    }
}

/// One timed hypothesis fit.
#[derive(Debug, Clone)]
pub struct TimedFit {
    /// The fit (includes wall time and iteration count).
    pub fit: Fit,
}

/// H0 + H1 runs of one engine on one dataset.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Engine used.
    pub backend: Backend,
    /// Null fit.
    pub h0: Fit,
    /// Alternative fit.
    pub h1: Fit,
}

impl EngineRun {
    /// Combined H0+H1 wall time (the paper's Table III "Runtime" column).
    pub fn total_time(&self) -> Duration {
        self.h0.wall_time + self.h1.wall_time
    }

    /// Combined iteration count.
    pub fn total_iterations(&self) -> usize {
        self.h0.iterations + self.h1.iterations
    }
}

/// Fit H0 and H1 with one backend on a simulated dataset.
///
/// # Panics
/// Panics on analysis failure (bench binaries want loud failures).
pub fn run_engine(dataset: &SimulatedDataset, backend: Backend, budget: &RunBudget) -> EngineRun {
    let options = AnalysisOptions {
        backend,
        max_iterations: budget.max_iterations,
        grad_mode: budget.grad_mode,
        seed: 1, // fixed seed: identical starts for both engines (§IV)
        ..Default::default()
    };
    let analysis =
        Analysis::new(&dataset.tree, &dataset.alignment, options).expect("dataset is consistent");
    let h0 = analysis.fit(Hypothesis::H0).expect("H0 fit");
    let h1 = analysis.fit(Hypothesis::H1).expect("H1 fit");
    EngineRun { backend, h0, h1 }
}

/// The paper's three speedup flavors (§IV-2) between a baseline and an
/// optimized run.
#[derive(Debug, Clone, Copy)]
pub struct Speedups {
    /// `S_o` for H0: total-time ratio.
    pub overall_h0: f64,
    /// `S_o` for H1.
    pub overall_h1: f64,
    /// `S_c`: H0+H1 combined total-time ratio.
    pub combined: f64,
    /// `S_i` for H0: per-iteration time ratio.
    pub per_iteration_h0: f64,
    /// `S_i` for H1.
    pub per_iteration_h1: f64,
    /// `S_i` for H0+H1 combined.
    pub per_iteration_combined: f64,
}

/// Compute the Table IV speedups of `fast` relative to `slow`.
pub fn speedups(slow: &EngineRun, fast: &EngineRun) -> Speedups {
    let secs = |d: Duration| d.as_secs_f64();
    let per_iter = |fit: &Fit| fit.seconds_per_iteration();
    let combined_per_iter =
        |run: &EngineRun| secs(run.total_time()) / run.total_iterations().max(1) as f64;
    Speedups {
        overall_h0: secs(slow.h0.wall_time) / secs(fast.h0.wall_time),
        overall_h1: secs(slow.h1.wall_time) / secs(fast.h1.wall_time),
        combined: secs(slow.total_time()) / secs(fast.total_time()),
        per_iteration_h0: per_iter(&slow.h0) / per_iter(&fast.h0),
        per_iteration_h1: per_iter(&slow.h1) / per_iter(&fast.h1),
        per_iteration_combined: combined_per_iter(slow) / combined_per_iter(fast),
    }
}

/// The paper's relative accuracy measure `D = |lnL − lnL̂| / |lnL|`
/// (§IV-1).
pub fn relative_difference(lnl: f64, lnl_hat: f64) -> f64 {
    (lnl - lnl_hat).abs() / lnl.abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_model::BranchSiteModel;
    use slim_opt::TerminationReason;

    fn fake_fit(secs: f64, iters: usize) -> Fit {
        Fit {
            hypothesis: Hypothesis::H0,
            lnl: -100.0,
            model: BranchSiteModel::default_start(Hypothesis::H0),
            branch_lengths: vec![],
            iterations: iters,
            f_evals: 0,
            wall_time: Duration::from_secs_f64(secs),
            termination: TerminationReason::FunctionConverged,
        }
    }

    #[test]
    fn speedup_arithmetic_matches_paper_definitions() {
        let slow = EngineRun {
            backend: Backend::CodeMlStyle,
            h0: fake_fit(10.0, 10),
            h1: fake_fit(20.0, 20),
        };
        let fast = EngineRun {
            backend: Backend::Slim,
            h0: fake_fit(2.0, 10),
            h1: fake_fit(5.0, 10),
        };
        let s = speedups(&slow, &fast);
        assert!((s.overall_h0 - 5.0).abs() < 1e-12);
        assert!((s.overall_h1 - 4.0).abs() < 1e-12);
        assert!((s.combined - 30.0 / 7.0).abs() < 1e-12);
        // per-iteration: slow h0 1.0 s/it vs fast 0.2 → 5; h1: 1.0 vs 0.5 → 2.
        assert!((s.per_iteration_h0 - 5.0).abs() < 1e-12);
        assert!((s.per_iteration_h1 - 2.0).abs() < 1e-12);
        // combined: 30/30 vs 7/20.
        assert!((s.per_iteration_combined - 1.0 / (7.0 / 20.0)).abs() < 1e-12);
    }

    #[test]
    fn relative_difference_definition() {
        assert_eq!(relative_difference(-100.0, -100.0), 0.0);
        assert!((relative_difference(-100.0, -100.001) - 1e-5).abs() < 1e-12);
    }

    #[test]
    fn budgets() {
        assert!(RunBudget::quick().max_iterations < RunBudget::full().max_iterations);
    }
}
