//! Branch-site model A (Table I of the paper).
//!
//! Site classes and their ω values on background vs foreground branches:
//!
//! | class | proportion              | background | foreground |
//! |-------|-------------------------|------------|------------|
//! | 0     | p0                      | ω0         | ω0         |
//! | 1     | p1                      | ω1 = 1     | ω1 = 1     |
//! | 2a    | (1−p0−p1)·p0/(p0+p1)    | ω0         | ω2         |
//! | 2b    | (1−p0−p1)·p1/(p0+p1)    | ω1 = 1     | ω2         |
//!
//! H1 (model A) has ω2 ≥ 1 free; H0 fixes ω2 = 1.

/// Number of site classes in branch-site model A.
pub const N_SITE_CLASSES: usize = 4;

/// Number of *distinct* ω values (ω0, ω1 = 1, ω2) — and hence distinct
/// rate matrices / eigendecompositions per likelihood evaluation.
pub const N_OMEGA_CLASSES: usize = 3;

/// Which hypothesis of the positive-selection test is being fitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hypothesis {
    /// Null: branch-site model A with ω₂ = 1 fixed.
    H0,
    /// Alternative: branch-site model A with ω₂ ≥ 1 estimated.
    H1,
}

impl Hypothesis {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Hypothesis::H0 => "H0",
            Hypothesis::H1 => "H1",
        }
    }
}

/// One of the four site classes, with its proportion and the indices of
/// its background/foreground ω within [`BranchSiteModel::omegas`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteClass {
    /// Mixing proportion of this class (Table I column 2).
    pub proportion: f64,
    /// Index into `omegas()` used on background branches.
    pub background_omega: usize,
    /// Index into `omegas()` used on the foreground branch.
    pub foreground_omega: usize,
}

/// Parameter set of branch-site model A.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchSiteModel {
    /// Transition/transversion rate ratio κ > 0.
    pub kappa: f64,
    /// Conserved-class selective pressure, 0 < ω0 < 1.
    pub omega0: f64,
    /// Foreground positive-selection pressure, ω2 ≥ 1 (exactly 1 under H0).
    pub omega2: f64,
    /// Proportion of class-0 sites, p0 > 0.
    pub p0: f64,
    /// Proportion of class-1 sites, p1 ≥ 0 with p0 + p1 ≤ 1.
    pub p1: f64,
}

impl BranchSiteModel {
    /// A reasonable starting point for optimization (CodeML uses similar
    /// defaults before jittering with the seeded RNG).
    pub fn default_start(hypothesis: Hypothesis) -> Self {
        BranchSiteModel {
            kappa: 2.0,
            omega0: 0.2,
            omega2: match hypothesis {
                Hypothesis::H0 => 1.0,
                Hypothesis::H1 => 2.0,
            },
            p0: 0.7,
            p1: 0.2,
        }
    }

    /// The distinct ω values: `[ω0, ω1 = 1, ω2]`. Only these three rate
    /// matrices are ever built — the core saving that makes the per-branch
    /// expm (not the Q construction) the hot spot.
    pub fn omegas(&self) -> [f64; N_OMEGA_CLASSES] {
        [self.omega0, 1.0, self.omega2]
    }

    /// The four site classes of Table I.
    ///
    /// # Panics
    /// Panics (debug) if the proportions are outside the simplex.
    pub fn site_classes(&self) -> [SiteClass; N_SITE_CLASSES] {
        let (p0, p1) = (self.p0, self.p1);
        debug_assert!(
            p0 > 0.0 && p1 >= 0.0 && p0 + p1 <= 1.0 + 1e-12,
            "invalid proportions"
        );
        let rest = (1.0 - p0 - p1).max(0.0);
        let denom = p0 + p1;
        let p2a = rest * p0 / denom;
        let p2b = rest * p1 / denom;
        [
            SiteClass {
                proportion: p0,
                background_omega: 0,
                foreground_omega: 0,
            },
            SiteClass {
                proportion: p1,
                background_omega: 1,
                foreground_omega: 1,
            },
            SiteClass {
                proportion: p2a,
                background_omega: 0,
                foreground_omega: 2,
            },
            SiteClass {
                proportion: p2b,
                background_omega: 1,
                foreground_omega: 2,
            },
        ]
    }

    /// Proportion of sites under positive selection on the foreground
    /// branch (classes 2a + 2b).
    pub fn positive_selection_proportion(&self) -> f64 {
        let c = self.site_classes();
        c[2].proportion + c[3].proportion
    }

    /// The shared branch-site rate scale: the stationary substitution
    /// rate averaged over site classes **on background branches**, given
    /// the synonymous/non-synonymous flux components from
    /// [`crate::codon_model::rate_components`].
    ///
    /// All four ω rate matrices are divided by this one factor, so a site
    /// under ω₂ > 1 on the foreground branch genuinely accumulates more
    /// substitutions per unit branch length — the signal the LRT detects.
    /// (Normalizing each ω class separately would cancel that rate
    /// elevation and cripple the test; CodeML shares the scale.)
    pub fn shared_scale(&self, syn_flux: f64, nonsyn_flux: f64) -> f64 {
        let mu = |omega: f64| syn_flux + omega * nonsyn_flux;
        let omegas = self.omegas();
        self.site_classes()
            .iter()
            .map(|c| c.proportion * mu(omegas[c.background_omega]))
            .sum()
    }

    /// Expected synonymous and non-synonymous substitutions per codon on
    /// a branch of length `t` (in shared-scale units), given the flux
    /// components from [`crate::codon_model::rate_components`] — the
    /// quantities CodeML reports as `t·S·dS`-style branch summaries.
    ///
    /// Returns `(expected_synonymous, expected_nonsynonymous)`.
    pub fn branch_expected_substitutions(
        &self,
        syn_flux: f64,
        nonsyn_flux: f64,
        t: f64,
        is_foreground: bool,
    ) -> (f64, f64) {
        let scale = self.shared_scale(syn_flux, nonsyn_flux);
        let omegas = self.omegas();
        let mut nonsyn = 0.0;
        for class in self.site_classes() {
            let w = omegas[if is_foreground {
                class.foreground_omega
            } else {
                class.background_omega
            }];
            nonsyn += class.proportion * w * nonsyn_flux;
        }
        (t * syn_flux / scale, t * nonsyn / scale)
    }

    /// The effective (class-averaged) ω on a branch: the expected dN/dS a
    /// single-ratio model would see there.
    pub fn effective_omega(&self, is_foreground: bool) -> f64 {
        let omegas = self.omegas();
        self.site_classes()
            .iter()
            .map(|c| {
                c.proportion
                    * omegas[if is_foreground {
                        c.foreground_omega
                    } else {
                        c.background_omega
                    }]
            })
            .sum()
    }

    /// Validity check for optimizer candidates.
    pub fn is_valid(&self, hypothesis: Hypothesis) -> bool {
        let omega2_ok = match hypothesis {
            Hypothesis::H0 => (self.omega2 - 1.0).abs() < 1e-12,
            Hypothesis::H1 => self.omega2 >= 1.0 - 1e-12,
        };
        self.kappa > 0.0
            && self.kappa.is_finite()
            && self.omega0 > 0.0
            && self.omega0 < 1.0
            && omega2_ok
            && self.omega2.is_finite()
            && self.p0 > 0.0
            && self.p1 >= 0.0
            && self.p0 + self.p1 < 1.0 + 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> BranchSiteModel {
        BranchSiteModel {
            kappa: 2.0,
            omega0: 0.1,
            omega2: 3.0,
            p0: 0.6,
            p1: 0.3,
        }
    }

    #[test]
    fn proportions_sum_to_one() {
        let m = model();
        let total: f64 = m.site_classes().iter().map(|c| c.proportion).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_i_proportions() {
        let m = model();
        let c = m.site_classes();
        assert!((c[0].proportion - 0.6).abs() < 1e-15);
        assert!((c[1].proportion - 0.3).abs() < 1e-15);
        // (1-0.9)*0.6/0.9 and (1-0.9)*0.3/0.9
        assert!((c[2].proportion - 0.1 * 0.6 / 0.9).abs() < 1e-12);
        assert!((c[3].proportion - 0.1 * 0.3 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn omega_assignment_matches_table_i() {
        let m = model();
        let omegas = m.omegas();
        assert_eq!(omegas, [0.1, 1.0, 3.0]);
        let c = m.site_classes();
        // class 0: ω0 everywhere
        assert_eq!((c[0].background_omega, c[0].foreground_omega), (0, 0));
        // class 1: ω1 everywhere
        assert_eq!((c[1].background_omega, c[1].foreground_omega), (1, 1));
        // class 2a: ω0 background, ω2 foreground
        assert_eq!((c[2].background_omega, c[2].foreground_omega), (0, 2));
        // class 2b: ω1 background, ω2 foreground
        assert_eq!((c[3].background_omega, c[3].foreground_omega), (1, 2));
    }

    #[test]
    fn positive_selection_proportion() {
        let m = model();
        assert!((m.positive_selection_proportion() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn validity() {
        let m = model();
        assert!(m.is_valid(Hypothesis::H1));
        assert!(!m.is_valid(Hypothesis::H0)); // omega2 = 3 under H0 invalid
        let h0 = BranchSiteModel { omega2: 1.0, ..m };
        assert!(h0.is_valid(Hypothesis::H0));
        assert!(h0.is_valid(Hypothesis::H1)); // boundary allowed under H1

        assert!(!BranchSiteModel { omega0: 1.5, ..m }.is_valid(Hypothesis::H1));
        assert!(!BranchSiteModel { kappa: -1.0, ..m }.is_valid(Hypothesis::H1));
        assert!(!BranchSiteModel {
            p0: 0.9,
            p1: 0.2,
            ..m
        }
        .is_valid(Hypothesis::H1));
    }

    #[test]
    fn default_starts_are_valid() {
        assert!(BranchSiteModel::default_start(Hypothesis::H0).is_valid(Hypothesis::H0));
        assert!(BranchSiteModel::default_start(Hypothesis::H1).is_valid(Hypothesis::H1));
    }

    #[test]
    fn branch_substitution_expectations() {
        let m = model(); // ω0 = 0.1, ω2 = 3.0, p0 = 0.6, p1 = 0.3
        let (syn, nonsyn) = (0.5, 1.0);
        let t = 2.0;
        let (s_bg, n_bg) = m.branch_expected_substitutions(syn, nonsyn, t, false);
        let (s_fg, n_fg) = m.branch_expected_substitutions(syn, nonsyn, t, true);
        // Synonymous expectation is ω-independent: same on both roles.
        assert!((s_bg - s_fg).abs() < 1e-12);
        // Positive selection elevates non-synonymous counts on the
        // foreground branch only.
        assert!(n_fg > n_bg);
        // Totals on the background equal t (branch lengths are measured
        // in expected substitutions per codon under background mixing).
        assert!((s_bg + n_bg - t).abs() < 1e-12, "{}", s_bg + n_bg);
    }

    #[test]
    fn effective_omega_mixture() {
        let m = model();
        // background: 0.6·0.1 + 0.3·1 + 2a·0.1 + 2b·1
        let c = m.site_classes();
        let expect_bg = c[0].proportion * 0.1
            + c[1].proportion * 1.0
            + c[2].proportion * 0.1
            + c[3].proportion * 1.0;
        assert!((m.effective_omega(false) - expect_bg).abs() < 1e-12);
        assert!(m.effective_omega(true) > m.effective_omega(false));
    }

    #[test]
    fn shared_scale_is_background_mixture() {
        let m = model(); // p0=0.6, p1=0.3 → classes use ω0 on 0.6+(0.1·0.6/0.9), ω1 on the rest
        let (syn, nonsyn) = (0.4, 0.8);
        let mu = |w: f64| syn + w * nonsyn;
        let c = m.site_classes();
        let expect = (c[0].proportion + c[2].proportion) * mu(0.1)
            + (c[1].proportion + c[3].proportion) * mu(1.0);
        assert!((m.shared_scale(syn, nonsyn) - expect).abs() < 1e-14);
        // ω2 must NOT enter the scale (it only acts on the foreground).
        let m2 = BranchSiteModel { omega2: 99.0, ..m };
        assert_eq!(m.shared_scale(syn, nonsyn), m2.shared_scale(syn, nonsyn));
    }

    #[test]
    fn hypothesis_names() {
        assert_eq!(Hypothesis::H0.name(), "H0");
        assert_eq!(Hypothesis::H1.name(), "H1");
    }
}
