//! Site models M1a (nearly neutral) and M2a (positive selection).
//!
//! The paper focuses on the branch-site model but notes (§V-B) that "the
//! optimized likelihood computation can also be applied to further
//! maximum likelihood-based evolutionary models". M1a/M2a are the classic
//! *sites* test (Yang et al. 2005, ref. 13 in the paper): ω varies across
//! sites but not across branches, so no foreground branch is needed.
//!
//! | model | classes |
//! |---|---|
//! | M1a | (p0, 0 < ω0 < 1), (1−p0, ω1 = 1) |
//! | M2a | (p0, ω0), (p1, ω1 = 1), (1−p0−p1, ω2 > 1) |
//!
//! M1a vs M2a is an LRT with two extra parameters (ω2 and one mixing
//! proportion), conventionally referred to χ²₂.

/// Which sites hypothesis is being fitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SitesHypothesis {
    /// Nearly neutral: two classes, no positive selection.
    M1a,
    /// Positive selection: adds the ω2 > 1 class.
    M2a,
}

impl SitesHypothesis {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SitesHypothesis::M1a => "M1a",
            SitesHypothesis::M2a => "M2a",
        }
    }
}

/// One mixture component of a site model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OmegaClass {
    /// Mixing proportion.
    pub proportion: f64,
    /// The ω applied on **every** branch for sites of this class.
    pub omega: f64,
}

/// Parameters of M1a/M2a (M1a ignores `omega2` and folds `p1`'s mass
/// into the neutral class).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteModel {
    /// Transition/transversion ratio.
    pub kappa: f64,
    /// Conserved-class ω, in (0, 1).
    pub omega0: f64,
    /// Positive-selection ω (> 1, M2a only).
    pub omega2: f64,
    /// Proportion of conserved sites.
    pub p0: f64,
    /// Proportion of neutral sites (M2a; M1a uses 1 − p0).
    pub p1: f64,
}

impl SiteModel {
    /// A reasonable optimization start.
    pub fn default_start(hypothesis: SitesHypothesis) -> SiteModel {
        match hypothesis {
            SitesHypothesis::M1a => SiteModel {
                kappa: 2.0,
                omega0: 0.2,
                omega2: 1.0,
                p0: 0.7,
                p1: 0.3,
            },
            SitesHypothesis::M2a => SiteModel {
                kappa: 2.0,
                omega0: 0.2,
                omega2: 2.5,
                p0: 0.6,
                p1: 0.3,
            },
        }
    }

    /// The mixture components under a hypothesis.
    pub fn classes(&self, hypothesis: SitesHypothesis) -> Vec<OmegaClass> {
        match hypothesis {
            SitesHypothesis::M1a => vec![
                OmegaClass {
                    proportion: self.p0,
                    omega: self.omega0,
                },
                OmegaClass {
                    proportion: 1.0 - self.p0,
                    omega: 1.0,
                },
            ],
            SitesHypothesis::M2a => {
                let p2 = (1.0 - self.p0 - self.p1).max(0.0);
                vec![
                    OmegaClass {
                        proportion: self.p0,
                        omega: self.omega0,
                    },
                    OmegaClass {
                        proportion: self.p1,
                        omega: 1.0,
                    },
                    OmegaClass {
                        proportion: p2,
                        omega: self.omega2,
                    },
                ]
            }
        }
    }

    /// Shared rate scale: the class-mixture-averaged stationary flux
    /// (every branch sees every class, so — unlike the branch-site model —
    /// the average runs over *all* classes).
    pub fn shared_scale(
        &self,
        hypothesis: SitesHypothesis,
        syn_flux: f64,
        nonsyn_flux: f64,
    ) -> f64 {
        self.classes(hypothesis)
            .iter()
            .map(|c| c.proportion * (syn_flux + c.omega * nonsyn_flux))
            .sum()
    }

    /// Parameter validity under a hypothesis.
    pub fn is_valid(&self, hypothesis: SitesHypothesis) -> bool {
        let base = self.kappa > 0.0
            && self.kappa.is_finite()
            && self.omega0 > 0.0
            && self.omega0 < 1.0
            && self.p0 > 0.0
            && self.p0 < 1.0;
        match hypothesis {
            SitesHypothesis::M1a => base,
            SitesHypothesis::M2a => {
                base && self.omega2 >= 1.0 && self.p1 >= 0.0 && self.p0 + self.p1 < 1.0 + 1e-12
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_proportions_sum_to_one() {
        let m = SiteModel {
            kappa: 2.0,
            omega0: 0.1,
            omega2: 3.0,
            p0: 0.5,
            p1: 0.3,
        };
        for h in [SitesHypothesis::M1a, SitesHypothesis::M2a] {
            let total: f64 = m.classes(h).iter().map(|c| c.proportion).sum();
            assert!((total - 1.0).abs() < 1e-12, "{h:?}");
        }
    }

    #[test]
    fn m1a_has_two_classes_m2a_three() {
        let m = SiteModel::default_start(SitesHypothesis::M2a);
        assert_eq!(m.classes(SitesHypothesis::M1a).len(), 2);
        assert_eq!(m.classes(SitesHypothesis::M2a).len(), 3);
        // Class omegas in canonical order.
        let c = m.classes(SitesHypothesis::M2a);
        assert!(c[0].omega < 1.0);
        assert_eq!(c[1].omega, 1.0);
        assert!(c[2].omega > 1.0);
    }

    #[test]
    fn shared_scale_weights_all_classes() {
        let m = SiteModel {
            kappa: 2.0,
            omega0: 0.5,
            omega2: 2.0,
            p0: 0.5,
            p1: 0.25,
        };
        let (syn, nonsyn) = (1.0, 1.0);
        // M2a: 0.5·(1+0.5) + 0.25·(1+1) + 0.25·(1+2) = 0.75+0.5+0.75 = 2.0
        assert!((m.shared_scale(SitesHypothesis::M2a, syn, nonsyn) - 2.0).abs() < 1e-12);
        // M1a: 0.5·1.5 + 0.5·2 = 1.75
        assert!((m.shared_scale(SitesHypothesis::M1a, syn, nonsyn) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn validity() {
        let good = SiteModel::default_start(SitesHypothesis::M2a);
        assert!(good.is_valid(SitesHypothesis::M2a));
        assert!(good.is_valid(SitesHypothesis::M1a));
        assert!(!SiteModel {
            omega0: 1.5,
            ..good
        }
        .is_valid(SitesHypothesis::M1a));
        assert!(!SiteModel {
            omega2: 0.5,
            ..good
        }
        .is_valid(SitesHypothesis::M2a));
        assert!(!SiteModel {
            p0: 0.8,
            p1: 0.5,
            ..good
        }
        .is_valid(SitesHypothesis::M2a));
    }

    #[test]
    fn names() {
        assert_eq!(SitesHypothesis::M1a.name(), "M1a");
        assert_eq!(SitesHypothesis::M2a.name(), "M2a");
    }
}
