//! # slim-model
//!
//! Codon substitution models for the SlimCodeML reproduction.
//!
//! * [`codon_model`]: the Goldman–Yang-style rate matrix of Eq. 1 — rates
//!   between codons differing by one nucleotide, parameterized by the
//!   transition/transversion ratio κ, the selective pressure ω, and the
//!   equilibrium codon frequencies π. Also builds the symmetric forms the
//!   paper's expm optimization relies on: the exchangeability matrix `S`
//!   (with `Q = SΠ`) and `A = Π^{1/2} S Π^{1/2}` (Eq. 2).
//! * [`branch_site`]: branch-site model A (Table I) with its four site
//!   classes, the alternative hypothesis H1 (ω₂ ≥ 1 free) and the null H0
//!   (ω₂ = 1 fixed).

pub mod branch_site;
pub mod codon_model;
pub mod site_model;

pub use branch_site::{BranchSiteModel, Hypothesis, SiteClass, N_SITE_CLASSES};
pub use codon_model::{
    build_rate_matrix, build_rate_matrix_mg94, rate_components, RateMatrix, ScalePolicy,
};
pub use site_model::{OmegaClass, SiteModel, SitesHypothesis};
